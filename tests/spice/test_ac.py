"""AC sweeps, cutoff extraction and step-response characterisation."""

import numpy as np
import pytest

from repro.spice import Circuit, Step, ac_sweep, cutoff_frequency, step_response


def first_order(r=1e3, c=1e-6):
    circ = Circuit("rc")
    circ.add_voltage_source("vin", "in", 0, 1.0)
    circ.add_resistor("r", "in", "out", r)
    circ.add_capacitor("c", "out", 0, c)
    return circ


def second_order(r1=1e3, c1=1e-6, r2=1e3, c2=1e-6):
    circ = Circuit("so")
    circ.add_voltage_source("vin", "in", 0, 1.0)
    circ.add_resistor("r1", "in", "m", r1)
    circ.add_capacitor("c1", "m", 0, c1)
    circ.add_resistor("r2", "m", "out", r2)
    circ.add_capacitor("c2", "out", 0, c2)
    return circ


class TestFirstOrder:
    def test_magnitude_matches_analytic(self):
        r, c = 1e3, 1e-6
        freqs = np.logspace(0, 5, 50)
        res = ac_sweep(first_order(r, c), "vin", "out", freqs)
        analytic = 1.0 / np.sqrt(1.0 + (2 * np.pi * freqs * r * c) ** 2)
        assert np.allclose(res.magnitude, analytic, rtol=1e-6)

    def test_cutoff_is_1_over_2pi_rc(self):
        r, c = 1e3, 1e-6
        res = ac_sweep(first_order(r, c), "vin", "out", np.logspace(0, 5, 400))
        assert np.isclose(cutoff_frequency(res), 1.0 / (2 * np.pi * r * c), rtol=0.01)

    def test_rolloff_20db_per_decade(self):
        res = ac_sweep(first_order(), "vin", "out", np.logspace(3, 5, 3))
        slope = res.magnitude_db[-1] - res.magnitude_db[-2]
        assert np.isclose(slope, -20.0, atol=1.0)

    def test_phase_approaches_minus_90(self):
        res = ac_sweep(first_order(), "vin", "out", np.array([1e6]))
        assert np.isclose(res.phase[0], -np.pi / 2, atol=0.01)


class TestSecondOrder:
    def test_rolloff_40db_per_decade(self):
        res = ac_sweep(second_order(), "vin", "out", np.logspace(4, 6, 3))
        slope = res.magnitude_db[-1] - res.magnitude_db[-2]
        assert np.isclose(slope, -40.0, atol=2.0)

    def test_sharper_than_first_order(self):
        """The paper's rationale for SO-LF: better separation past cutoff."""
        freqs = np.logspace(3, 5, 20)
        first = ac_sweep(first_order(), "vin", "out", freqs)
        second = ac_sweep(second_order(), "vin", "out", freqs)
        assert np.all(second.magnitude < first.magnitude)

    def test_dc_gain_unity(self):
        res = ac_sweep(second_order(), "vin", "out", np.array([0.01]))
        assert np.isclose(res.magnitude[0], 1.0, atol=1e-4)


class TestValidation:
    def test_unknown_source_raises(self):
        with pytest.raises(KeyError):
            ac_sweep(first_order(), "nope", "out", np.array([1.0]))

    def test_nonpositive_frequency_raises(self):
        with pytest.raises(ValueError):
            ac_sweep(first_order(), "vin", "out", np.array([0.0]))

    def test_cutoff_requires_crossing(self):
        res = ac_sweep(first_order(), "vin", "out", np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            cutoff_frequency(res)


class TestStepResponse:
    def test_monotone_rise_to_one(self):
        out = step_response(first_order(), "vin", "out", dt=1e-5, steps=500)
        assert out[-1] > 0.99
        assert np.all(np.diff(out) >= -1e-12)

    def test_restores_original_waveform(self):
        circ = first_order()
        original = circ["vin"].waveform
        step_response(circ, "vin", "out", dt=1e-5, steps=10)
        assert circ["vin"].waveform is original

    def test_unknown_source_raises(self):
        with pytest.raises(KeyError):
            step_response(first_order(), "ghost", "out", dt=1e-5, steps=10)

    def test_63_percent_at_tau(self):
        r, c = 1e3, 1e-6
        dt = r * c / 100
        out = step_response(first_order(r, c), "vin", "out", dt=dt, steps=150)
        assert np.isclose(out[100], 1 - np.exp(-1), atol=0.01)
