"""Branch currents and simulation-measured power."""

import numpy as np
import pytest

from repro.spice import (
    Circuit,
    measure_static_power,
    resistor_currents,
    resistor_power,
    source_currents,
)


def divider(v=10.0, r1=1e3, r2=1e3):
    c = Circuit()
    c.add_voltage_source("vin", "in", 0, v)
    c.add_resistor("r1", "in", "mid", r1)
    c.add_resistor("r2", "mid", 0, r2)
    return c


class TestResistorCurrents:
    def test_series_currents_equal(self):
        i = resistor_currents(divider())
        assert np.isclose(i["r1"], i["r2"])
        assert np.isclose(i["r1"], 5e-3)

    def test_sign_convention(self):
        i = resistor_currents(divider())
        assert i["r1"] > 0  # flows pos -> neg (in -> mid)

    def test_ohms_law(self):
        c = divider(v=3.0, r1=2e3, r2=1e3)
        i = resistor_currents(c)
        assert np.isclose(i["r1"], 3.0 / 3e3)


class TestPower:
    def test_i_squared_r(self):
        p = resistor_power(divider())
        assert np.isclose(p["r1"], 25e-3)
        assert np.isclose(p["r2"], 25e-3)

    def test_tellegen_balance(self):
        """Resistive dissipation equals delivered source power."""
        c = divider(v=7.0, r1=3.3e3, r2=4.7e3)
        dissipated = measure_static_power(c)
        source_i = source_currents(c)["vin"]
        delivered = 7.0 * source_i
        assert np.isclose(dissipated, delivered, rtol=1e-9)

    def test_parallel_network(self):
        c = Circuit()
        c.add_voltage_source("v", "a", 0, 1.0)
        c.add_resistor("ra", "a", 0, 1e3)
        c.add_resistor("rb", "a", 0, 2e3)
        total = measure_static_power(c)
        assert np.isclose(total, 1.0 / 1e3 + 1.0 / 2e3)


class TestCrossbarPowerCrossCheck:
    def test_simulated_power_matches_hw_estimate_order(self, rng):
        """The hw power estimate and the MNA-measured dissipation of a
        compiled crossbar agree within the utilisation-factor margin."""
        from repro.compile.model_compiler import _compile_crossbar
        from repro.circuits import PrintedCrossbar, DEFAULT_PDK
        from repro.hw import estimate_power
        from repro.spice import NonlinearCircuit

        xb = PrintedCrossbar(3, 2, pdk=DEFAULT_PDK, rng=rng)
        circuit = NonlinearCircuit()
        circuit.add_voltage_source("vdd", "vdd", 0, 1.0)
        circuit.add_vcvs("evss", "vss", 0, "vdd", 0, -1.0)
        inputs = []
        for i in range(3):
            circuit.add_voltage_source(f"vin{i}", f"in{i}", 0, 0.5)
            inputs.append(f"in{i}")
        _compile_crossbar(circuit, xb, inputs, "b0", "vdd", "vss")

        measured = measure_static_power(circuit)
        estimated = estimate_power(xb).crossbar_resistors
        # same order of magnitude: the estimate folds operating-point
        # statistics into a 0.5 utilisation factor
        assert estimated / 10 < measured < estimated * 10
