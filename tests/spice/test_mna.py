"""DC operating-point correctness of the MNA solver."""

import numpy as np
import pytest

from repro.spice import Circuit, dc_operating_point


class TestDividers:
    def test_two_resistor_divider(self):
        c = Circuit()
        c.add_voltage_source("vin", "in", 0, 10.0)
        c.add_resistor("r1", "in", "mid", 1e3)
        c.add_resistor("r2", "mid", 0, 3e3)
        op = dc_operating_point(c)
        assert np.isclose(op["mid"], 7.5)

    def test_three_way_divider(self):
        c = Circuit()
        c.add_voltage_source("vin", "in", 0, 6.0)
        for i, (a, b) in enumerate([("in", "n1"), ("n1", "n2"), ("n2", "0")]):
            c.add_resistor(f"r{i}", a, b, 1e3)
        op = dc_operating_point(c)
        assert np.isclose(op["n1"], 4.0)
        assert np.isclose(op["n2"], 2.0)

    def test_parallel_resistors(self):
        c = Circuit()
        c.add_voltage_source("vin", "in", 0, 1.0)
        c.add_resistor("r1", "in", "out", 1e3)
        c.add_resistor("r2", "out", 0, 1e3)
        c.add_resistor("r3", "out", 0, 1e3)  # 500 ohm to ground
        op = dc_operating_point(c)
        assert np.isclose(op["out"], 500.0 / 1500.0)


class TestSources:
    def test_current_source_into_resistor(self):
        c = Circuit()
        c.add_current_source("i1", 0, "n", 2e-3)  # 2 mA into node n
        c.add_resistor("r1", "n", 0, 1e3)
        op = dc_operating_point(c)
        assert np.isclose(op["n"], 2.0)

    def test_superposition(self):
        def build(v, i):
            c = Circuit()
            c.add_voltage_source("v1", "a", 0, v)
            c.add_resistor("r1", "a", "n", 1e3)
            c.add_current_source("i1", 0, "n", i)
            c.add_resistor("r2", "n", 0, 1e3)
            return dc_operating_point(c)["n"]

        both = build(2.0, 1e-3)
        only_v = build(2.0, 0.0)
        only_i = build(0.0, 1e-3)
        assert np.isclose(both, only_v + only_i)

    def test_vcvs_inverter_gain(self):
        c = Circuit()
        c.add_voltage_source("vin", "in", 0, 0.7)
        c.add_vcvs("e1", "out", 0, "in", 0, -1.0)
        c.add_resistor("rl", "out", 0, 1e4)
        op = dc_operating_point(c)
        assert np.isclose(op["out"], -0.7)

    def test_vcvs_amplifier(self):
        c = Circuit()
        c.add_voltage_source("vin", "in", 0, 0.1)
        c.add_vcvs("e1", "out", 0, "in", 0, 10.0)
        c.add_resistor("rl", "out", 0, 1e4)
        op = dc_operating_point(c)
        assert np.isclose(op["out"], 1.0)

    def test_time_dependent_source_evaluated_at_t(self):
        from repro.spice import Step

        c = Circuit()
        c.add_voltage_source("vin", "in", 0, Step(0.0, 5.0, t0=1.0))
        c.add_resistor("r1", "in", 0, 1e3)
        assert np.isclose(dc_operating_point(c, t=0.0)["in"], 0.0, atol=1e-6)
        assert np.isclose(dc_operating_point(c, t=2.0)["in"], 5.0)


class TestCrossbarEquation:
    def test_resistor_crossbar_matches_eq1(self):
        """A 3-input crossbar column must satisfy the paper's Eq. (1)."""
        g = np.array([1e-5, 2e-5, 0.5e-5])  # input conductances
        g_b, g_d = 1e-5, 3e-5
        v_in = np.array([0.3, -0.5, 0.8])
        v_b = 1.0

        c = Circuit()
        for i, (gi, vi) in enumerate(zip(g, v_in)):
            c.add_voltage_source(f"v{i}", f"in{i}", 0, vi)
            c.add_resistor(f"r{i}", f"in{i}", "out", 1.0 / gi)
        c.add_voltage_source("vb", "b", 0, v_b)
        c.add_resistor("rb", "b", "out", 1.0 / g_b)
        c.add_resistor("rd", "out", 0, 1.0 / g_d)
        op = dc_operating_point(c)

        big_g = g.sum() + g_b + g_d
        expected = (g @ v_in + g_b * v_b) / big_g
        assert np.isclose(op["out"], expected, atol=1e-9)


class TestKCL:
    def test_current_conservation_at_node(self):
        # Currents into the mid node of a divider must sum to zero.
        c = Circuit()
        c.add_voltage_source("vin", "in", 0, 10.0)
        c.add_resistor("r1", "in", "mid", 1e3)
        c.add_resistor("r2", "mid", 0, 2e3)
        op = dc_operating_point(c)
        i_in = (op["in"] - op["mid"]) / 1e3
        i_out = op["mid"] / 2e3
        assert np.isclose(i_in, i_out, rtol=1e-9)

    def test_floating_capacitive_node_is_regularised(self):
        # A node connected only through a capacitor (open in DC) must not
        # blow up the solve thanks to gmin.
        c = Circuit()
        c.add_voltage_source("vin", "in", 0, 1.0)
        c.add_capacitor("c1", "in", "float", 1e-6)
        op = dc_operating_point(c)
        assert np.isfinite(op["float"])
