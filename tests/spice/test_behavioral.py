"""Behavioural transfer elements in the nonlinear solver."""

import numpy as np
import pytest

from repro.spice import NonlinearCircuit, newton_dc, transient_nonlinear
from repro.spice.waveforms import Step


def tanh_stage(gain: float = 4.0):
    """vin -> behavioural tanh -> out, with a load resistor."""
    c = NonlinearCircuit()
    c.add_voltage_source("vin", "in", 0, 0.5)
    c.add_behavioral(
        "act", "out", "in",
        fn=lambda v, g=gain: np.tanh(v * g),
        dfn=lambda v, g=gain: g * (1 - np.tanh(v * g) ** 2),
    )
    c.add_resistor("rl", "out", 0, 1e4)
    return c


class TestBehavioralDC:
    def test_output_equals_transfer(self):
        op = newton_dc(tanh_stage())
        assert np.isclose(op["out"], np.tanh(0.5 * 4.0), atol=1e-8)

    @pytest.mark.parametrize("vin", [-0.8, -0.1, 0.0, 0.3, 1.0])
    def test_across_input_range(self, vin):
        from repro.spice import DC

        c = tanh_stage()
        c["vin"].waveform = DC(vin)
        op = newton_dc(c)
        assert np.isclose(op["out"], np.tanh(vin * 4.0), atol=1e-8)

    def test_ideal_source_unaffected_by_load(self):
        light = tanh_stage()
        heavy = tanh_stage()
        heavy["rl"].resistance = 10.0  # brutal load
        assert np.isclose(newton_dc(light)["out"], newton_dc(heavy)["out"], atol=1e-9)

    def test_duplicate_name_rejected(self):
        c = NonlinearCircuit()
        c.add_behavioral("b", "out", "in", lambda v: v, lambda v: 1.0)
        with pytest.raises(ValueError):
            c.add_behavioral("b", "out2", "in", lambda v: v, lambda v: 1.0)

    def test_cascaded_behaviorals(self):
        c = NonlinearCircuit()
        c.add_voltage_source("vin", "in", 0, 0.4)
        c.add_behavioral("a1", "mid", "in", lambda v: np.tanh(2 * v), lambda v: 2 * (1 - np.tanh(2 * v) ** 2))
        c.add_behavioral("a2", "out", "mid", lambda v: np.tanh(3 * v), lambda v: 3 * (1 - np.tanh(3 * v) ** 2))
        op = newton_dc(c)
        assert np.isclose(op["out"], np.tanh(3 * np.tanh(2 * 0.4)), atol=1e-8)


class TestBehavioralTransient:
    def test_rc_then_tanh(self):
        """RC filter into a behavioural tanh: output = tanh(filter state)."""
        r, cval, dt = 1e3, 1e-6, 1e-5
        circ = NonlinearCircuit()
        circ.add_voltage_source("vin", "in", 0, Step(0, 1, 0))
        circ.add_resistor("r", "in", "f", r)
        circ.add_capacitor("c", "f", 0, cval)
        circ.add_behavioral(
            "act", "out", "f",
            fn=lambda v: np.tanh(3 * v),
            dfn=lambda v: 3 * (1 - np.tanh(3 * v) ** 2),
        )
        res = transient_nonlinear(circ, dt=dt, steps=300, probes=["f", "out"])
        assert np.allclose(res["out"], np.tanh(3 * res["f"]), atol=1e-7)

    def test_transient_validation(self):
        with pytest.raises(ValueError):
            transient_nonlinear(tanh_stage(), dt=0.0, steps=5)
        with pytest.raises(ValueError):
            transient_nonlinear(tanh_stage(), dt=1e-5, steps=0)
        with pytest.raises(KeyError):
            transient_nonlinear(tanh_stage(), dt=1e-5, steps=5, probes=["ghost"])
