"""Netlist construction and component validation."""

import pytest

from repro.spice import Circuit
from repro.spice.components import Capacitor, Resistor


class TestCircuitBuilding:
    def test_builders_register_components(self):
        c = Circuit("t")
        c.add_resistor("r1", "a", "b", 100.0)
        c.add_capacitor("c1", "b", 0, 1e-6)
        c.add_voltage_source("v1", "a", 0, 1.0)
        c.add_current_source("i1", "b", 0, 1e-3)
        c.add_vcvs("e1", "c", 0, "a", 0, -1.0)
        assert c.num_components() == 5
        assert "r1" in c and "e1" in c

    def test_duplicate_name_rejected(self):
        c = Circuit()
        c.add_resistor("r1", "a", 0, 1.0)
        with pytest.raises(ValueError):
            c.add_resistor("r1", "b", 0, 1.0)

    def test_ground_aliases_unify(self):
        c = Circuit()
        c.add_resistor("r1", "a", "gnd", 1.0)
        c.add_resistor("r2", "b", 0, 1.0)
        c.add_resistor("r3", "c", "0", 1.0)
        assert set(c.nodes) == {"a", "b", "c"}

    def test_node_indices_stable(self):
        c = Circuit()
        c.add_resistor("r1", "a", "b", 1.0)
        assert c.node_index("a") == 0
        assert c.node_index("b") == 1

    def test_ground_has_no_index(self):
        c = Circuit()
        c.add_resistor("r1", "a", 0, 1.0)
        with pytest.raises(KeyError):
            c.node_index(0)

    def test_getitem_returns_component(self):
        c = Circuit()
        r = c.add_resistor("r1", "a", 0, 42.0)
        assert c["r1"] is r

    def test_repr_summarises(self):
        c = Circuit("demo")
        c.add_resistor("r1", "a", 0, 1.0)
        assert "demo" in repr(c) and "R=1" in repr(c)


class TestComponentValidation:
    @pytest.mark.parametrize("value", [0.0, -1.0])
    def test_resistor_rejects_nonpositive(self, value):
        with pytest.raises(ValueError):
            Resistor("r", "a", "b", value)

    @pytest.mark.parametrize("value", [0.0, -1e-9])
    def test_capacitor_rejects_nonpositive(self, value):
        with pytest.raises(ValueError):
            Capacitor("c", "a", "b", value)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Resistor("", "a", "b", 1.0)

    def test_conductance(self):
        assert Resistor("r", "a", "b", 4.0).conductance == 0.25
