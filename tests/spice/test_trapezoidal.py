"""Trapezoidal integration cross-check."""

import numpy as np
import pytest

from repro.spice import Circuit, Sine, Step, transient


def rc_circuit(r=1e3, c=1e-6):
    circ = Circuit("rc")
    circ.add_voltage_source("vin", "in", 0, Step(0, 1, 0))
    circ.add_resistor("r", "in", "out", r)
    circ.add_capacitor("c", "out", 0, c)
    return circ


class TestTrapezoidal:
    def test_second_order_beats_backward_euler(self):
        r, c, dt = 1e3, 1e-6, 2e-5
        circ = rc_circuit(r, c)
        analytic = lambda t: 1 - np.exp(-t / (r * c))  # noqa: E731
        be = transient(circ, dt=dt, steps=200, probes=["out"], method="backward_euler")
        tr = transient(circ, dt=dt, steps=200, probes=["out"], method="trapezoidal")
        err_be = np.max(np.abs(be["out"][1:] - analytic(be.times[1:])))
        err_tr = np.max(np.abs(tr["out"][1:] - analytic(tr.times[1:])))
        assert err_tr < err_be / 20

    def test_error_scales_quadratically(self):
        """Halving dt must cut the trapezoidal error ~4x (2nd order)."""
        r, c = 1e3, 1e-6
        analytic = lambda t: 1 - np.exp(-t / (r * c))  # noqa: E731
        errors = []
        for dt in (4e-5, 2e-5):
            res = transient(
                rc_circuit(r, c), dt=dt, steps=int(4e-3 / dt), probes=["out"],
                method="trapezoidal",
            )
            errors.append(np.max(np.abs(res["out"][1:] - analytic(res.times[1:]))))
        ratio = errors[0] / errors[1]
        assert 3.0 < ratio < 5.5

    def test_both_methods_agree_at_steady_state(self):
        circ = rc_circuit()
        be = transient(circ, dt=1e-4, steps=100, probes=["out"])
        tr = transient(circ, dt=1e-4, steps=100, probes=["out"], method="trapezoidal")
        assert np.isclose(be["out"][-1], tr["out"][-1], atol=1e-3)

    def test_sine_steady_state_amplitude(self):
        r, c = 1e3, 1e-6
        fc = 1.0 / (2 * np.pi * r * c)
        circ = Circuit()
        circ.add_voltage_source("vin", "in", 0, Sine(1.0, fc))
        circ.add_resistor("r", "in", "out", r)
        circ.add_capacitor("c", "out", 0, c)
        dt = 1.0 / (fc * 100)
        res = transient(circ, dt=dt, steps=1000, probes=["out"], method="trapezoidal")
        settled = res["out"][500:]
        gain = (settled.max() - settled.min()) / 2
        assert np.isclose(gain, 1 / np.sqrt(2), atol=0.02)  # -3 dB at cutoff

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            transient(rc_circuit(), dt=1e-5, steps=5, method="forward_euler")

    def test_initial_condition_preserved(self):
        circ = Circuit()
        circ.add_voltage_source("vin", "in", 0, Step(0, 1, 0))
        circ.add_resistor("r", "in", "out", 1e3)
        circ.add_capacitor("c", "out", 0, 1e-6, initial_voltage=0.5)
        res = transient(circ, dt=1e-5, steps=10, probes=["out"], method="trapezoidal")
        assert np.isclose(res["out"][0], 0.5, atol=1e-2)
