"""SPICE netlist file I/O."""

import numpy as np
import pytest

from repro.spice import (
    Circuit,
    circuit_to_spice,
    dc_operating_point,
    format_value,
    parse_value,
    spice_to_circuit,
)


class TestValueFormatting:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (4700.0, "4.7k"),
            (1e6, "1meg"),
            (1e-7, "100n"),
            (2.2e-6, "2.2u"),
            (0.0, "0"),
            (1e-12, "1p"),
            (3.3e9, "3.3g"),
            (0.5, "500m"),
        ],
    )
    def test_format(self, value, expected):
        assert format_value(value) == expected

    @pytest.mark.parametrize(
        "token,expected",
        [
            ("4.7k", 4700.0),
            ("100n", 1e-7),
            ("1meg", 1e6),
            ("2.2u", 2.2e-6),
            ("1e-6", 1e-6),
            ("10K", 1e4),
            ("470", 470.0),
            ("-1.5", -1.5),
        ],
    )
    def test_parse(self, token, expected):
        assert np.isclose(parse_value(token), expected)

    def test_roundtrip_random_values(self, rng):
        for _ in range(50):
            value = float(np.exp(rng.uniform(np.log(1e-12), np.log(1e9))))
            assert np.isclose(parse_value(format_value(value)), value, rtol=1e-5)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_value("ohm")


def build_demo() -> Circuit:
    c = Circuit("demo")
    c.add_voltage_source("vin", "in", 0, 2.0)
    c.add_resistor("r1", "in", "mid", 4700.0)
    c.add_resistor("r2", "mid", 0, 10e3)
    c.add_capacitor("c1", "mid", 0, 100e-9, initial_voltage=0.25)
    c.add_vcvs("e1", "out", 0, "mid", 0, -2.0)
    c.add_current_source("i1", 0, "mid", 1e-3)
    return c


class TestExport:
    def test_all_elements_emitted(self):
        # SPICE designators are case-insensitive; names already starting
        # with their element letter are emitted as-is.
        text = circuit_to_spice(build_demo())
        for token in ("r1 in mid", "r2 mid 0", "c1 mid 0", "vin in 0", "e1 out 0", "i1 0 mid", ".title demo", ".end"):
            assert token in text

    def test_capacitor_ic_emitted(self):
        assert "IC=250m" in circuit_to_spice(build_demo())

    def test_time_varying_source_annotated(self):
        from repro.spice import Sine

        c = Circuit()
        c.add_voltage_source("vin", "a", 0, Sine(1.0, 50.0))
        c.add_resistor("r", "a", 0, 1e3)
        assert "time-varying" in circuit_to_spice(c)

    def test_compiled_model_exports_b_sources(self, rng):
        from repro.compile import compile_model
        from repro.core import PTPNC

        text = circuit_to_spice(compile_model(PTPNC(2, rng=rng)).circuit)
        assert text.count("tanh(") >= 2  # one behavioural source per neuron
        assert "_branch" not in text  # internal rows hidden


class TestImport:
    def test_roundtrip_preserves_operating_point(self):
        original = build_demo()
        restored = spice_to_circuit(circuit_to_spice(original))
        op_a = dc_operating_point(original)
        op_b = dc_operating_point(restored)
        for node in ("in", "mid", "out"):
            assert np.isclose(op_a[node], op_b[node], atol=1e-9)

    def test_roundtrip_preserves_capacitor_ic(self):
        restored = spice_to_circuit(circuit_to_spice(build_demo()))
        assert np.isclose(restored["c1"].initial_voltage, 0.25)

    def test_comments_and_directives_ignored(self):
        text = """.title t
* a comment
R1 a 0 1k  * inline comment
.options whatever
.end
R2 never 0 1k
"""
        c = spice_to_circuit(text)
        assert len(c.resistors) == 1

    def test_unsupported_element_raises(self):
        with pytest.raises(ValueError):
            spice_to_circuit("Q1 c b e model\n")

    def test_parses_external_style_netlist(self):
        text = """.title rc_filter
Vin in 0 DC 1
R1 in out 1k
C1 out 0 1u
.end
"""
        c = spice_to_circuit(text)
        assert np.isclose(dc_operating_point(c)["out"], 1.0, atol=1e-6)
