"""Backward-Euler transient analysis."""

import numpy as np
import pytest

from repro.spice import Circuit, PiecewiseLinear, Sine, Step, transient


def rc_circuit(r=1e3, c=1e-6, vin=None, ic=0.0):
    circ = Circuit("rc")
    circ.add_voltage_source("vin", "in", 0, vin if vin is not None else Step(0, 1, 0))
    circ.add_resistor("r", "in", "out", r)
    circ.add_capacitor("c", "out", 0, c, initial_voltage=ic)
    return circ


class TestRCStep:
    def test_matches_analytic_charging(self):
        r, c, dt = 1e3, 1e-6, 1e-5
        res = transient(rc_circuit(r, c), dt=dt, steps=500, probes=["out"])
        analytic = 1.0 - np.exp(-res.times / (r * c))
        assert np.max(np.abs(res["out"] - analytic)) < 5e-3

    def test_matches_paper_recurrence_exactly(self):
        """Backward Euler must reproduce Eq. (3): V_k = (RC V_{k-1} + dt V_in)/(RC + dt)."""
        r, c, dt = 1e3, 1e-6, 1e-5
        res = transient(rc_circuit(r, c), dt=dt, steps=200, probes=["out"])
        v, expected = 0.0, [0.0]
        for _ in range(200):
            v = (r * c * v + dt * 1.0) / (r * c + dt)
            expected.append(v)
        assert np.allclose(res["out"], expected, atol=1e-7)

    def test_initial_condition_respected(self):
        res = transient(rc_circuit(ic=0.5), dt=1e-5, steps=10, probes=["out"])
        assert np.isclose(res["out"][0], 0.5, atol=1e-3)

    def test_steady_state_reaches_input(self):
        r, c = 1e3, 1e-6
        res = transient(rc_circuit(r, c), dt=1e-4, steps=200, probes=["out"])
        assert np.isclose(res["out"][-1], 1.0, atol=1e-3)


class TestSineResponse:
    def test_attenuation_beyond_cutoff(self):
        # Drive at 10x the cutoff: output amplitude ~ 1/10 of input.
        r, c = 1e3, 1e-6
        fc = 1.0 / (2 * np.pi * r * c)
        f = 10 * fc
        circ = rc_circuit(r, c, vin=Sine(amplitude=1.0, frequency=f))
        dt = 1.0 / (f * 200)
        res = transient(circ, dt=dt, steps=2000, probes=["out"])
        settled = res["out"][1000:]
        gain = (settled.max() - settled.min()) / 2.0
        assert 0.05 < gain < 0.18

    def test_passband_transparency(self):
        r, c = 1e3, 1e-6
        fc = 1.0 / (2 * np.pi * r * c)
        f = fc / 50
        circ = rc_circuit(r, c, vin=Sine(amplitude=1.0, frequency=f))
        dt = 1.0 / (f * 400)
        res = transient(circ, dt=dt, steps=1200, probes=["out"])
        settled = res["out"][400:]
        gain = (settled.max() - settled.min()) / 2.0
        assert gain > 0.97


class TestSecondOrder:
    def test_two_stage_smoother_than_one(self):
        """The SO filter's step response must lag the first-order one."""
        one = rc_circuit(1e3, 1e-6)
        two = Circuit("so")
        two.add_voltage_source("vin", "in", 0, Step(0, 1, 0))
        two.add_resistor("r1", "in", "m", 1e3)
        two.add_capacitor("c1", "m", 0, 1e-6)
        two.add_resistor("r2", "m", "out", 1e3)
        two.add_capacitor("c2", "out", 0, 1e-6)
        dt = 1e-5
        r1 = transient(one, dt=dt, steps=100, probes=["out"])["out"]
        r2 = transient(two, dt=dt, steps=100, probes=["out"])["out"]
        assert np.all(r2[1:] <= r1[1:] + 1e-12)

    def test_pwl_driven_filter_tracks_input_mean(self):
        times = np.linspace(0, 0.01, 11)
        values = np.full(11, 0.6)
        circ = rc_circuit(1e2, 1e-6, vin=PiecewiseLinear(times, values))
        res = transient(circ, dt=1e-5, steps=100, probes=["out"])
        assert np.isclose(res["out"][-1], 0.6, atol=0.01)


class TestValidation:
    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            transient(rc_circuit(), dt=0.0, steps=10)

    def test_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            transient(rc_circuit(), dt=1e-5, steps=0)

    def test_rejects_unknown_probe(self):
        with pytest.raises(KeyError):
            transient(rc_circuit(), dt=1e-5, steps=10, probes=["nope"])

    def test_records_all_nodes_by_default(self):
        res = transient(rc_circuit(), dt=1e-5, steps=5)
        assert set(res.voltages) == {"in", "out"}

    def test_times_axis(self):
        res = transient(rc_circuit(), dt=1e-5, steps=5)
        assert np.allclose(res.times, np.arange(6) * 1e-5)
