"""Source waveforms."""

import numpy as np
import pytest

from repro.spice import DC, PiecewiseLinear, Pulse, Sine, Step


class TestDC:
    def test_constant(self):
        w = DC(2.5)
        assert w(0.0) == 2.5 and w(1e6) == 2.5


class TestStep:
    def test_transitions_at_t0(self):
        w = Step(low=0.0, high=1.0, t0=0.5)
        assert w(0.49) == 0.0
        assert w(0.5) == 1.0
        assert w(10.0) == 1.0


class TestSine:
    def test_value(self):
        w = Sine(amplitude=2.0, frequency=1.0, offset=0.5)
        assert np.isclose(w(0.25), 0.5 + 2.0)  # quarter period: peak

    def test_phase(self):
        w = Sine(amplitude=1.0, frequency=1.0, phase=np.pi / 2)
        assert np.isclose(w(0.0), 1.0)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            Sine(frequency=0.0)


class TestPulse:
    def test_duty_cycle(self):
        w = Pulse(low=0.0, high=1.0, width=0.3, period=1.0)
        assert w(0.1) == 1.0
        assert w(0.5) == 0.0
        assert w(1.1) == 1.0  # periodic

    def test_before_start(self):
        w = Pulse(t0=1.0)
        assert w(0.5) == 0.0

    @pytest.mark.parametrize("bad", [{"width": 0.0}, {"period": 0.0}, {"width": 2.0, "period": 1.0}])
    def test_rejects_bad_geometry(self, bad):
        with pytest.raises(ValueError):
            Pulse(**bad)


class TestPiecewiseLinear:
    def test_interpolates(self):
        w = PiecewiseLinear([0.0, 1.0], [0.0, 2.0])
        assert np.isclose(w(0.5), 1.0)

    def test_holds_outside_range(self):
        w = PiecewiseLinear([0.0, 1.0], [3.0, 5.0])
        assert w(-1.0) == 3.0
        assert w(2.0) == 5.0

    def test_rejects_nonmonotone_times(self):
        with pytest.raises(ValueError):
            PiecewiseLinear([0.0, 0.0, 1.0], [1.0, 2.0, 3.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            PiecewiseLinear([0.0, 1.0], [1.0, 2.0, 3.0])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            PiecewiseLinear([0.0], [1.0])
