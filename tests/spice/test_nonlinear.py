"""Nonlinear DC analysis: EGT model and Newton solver."""

import numpy as np
import pytest

from repro.spice import (
    EGTParameters,
    NonlinearCircuit,
    dc_transfer_sweep,
    newton_dc,
)


class TestEGTModel:
    def test_cutoff_no_current(self):
        egt = EGTParameters(k=1e-4, v_t=0.3)
        assert egt.current(0.2, 0.5) == 0.0
        assert egt.derivatives(0.2, 0.5) == (0.0, 0.0)

    def test_saturation_square_law(self):
        egt = EGTParameters(k=1e-4, v_t=0.3, lambda_=0.0)
        assert np.isclose(egt.current(0.8, 1.0), 1e-4 * 0.5**2)

    def test_triode_formula(self):
        egt = EGTParameters(k=1e-4, v_t=0.3, lambda_=0.0)
        v_ov, v_ds = 0.5, 0.2
        assert np.isclose(
            egt.current(0.8, v_ds), 1e-4 * (2 * v_ov * v_ds - v_ds**2)
        )

    def test_current_continuous_at_boundary(self):
        """The λ factor must apply in both regimes (Newton stability)."""
        egt = EGTParameters(k=1e-4, v_t=0.3, lambda_=0.1)
        v_ov = 0.5
        below = egt.current(0.8, v_ov - 1e-9)
        above = egt.current(0.8, v_ov + 1e-9)
        assert np.isclose(below, above, rtol=1e-6)

    def test_derivatives_continuous_at_boundary(self):
        egt = EGTParameters(k=1e-4, v_t=0.3, lambda_=0.1)
        v_ov = 0.5
        gm_b, gds_b = egt.derivatives(0.8, v_ov - 1e-9)
        gm_a, gds_a = egt.derivatives(0.8, v_ov + 1e-9)
        assert np.isclose(gm_b, gm_a, rtol=1e-6)
        assert np.isclose(gds_b, gds_a, rtol=1e-3)

    def test_derivatives_match_finite_differences(self):
        egt = EGTParameters(k=2e-4, v_t=0.25, lambda_=0.08)
        eps = 1e-7
        for v_gs, v_ds in [(0.7, 0.1), (0.7, 0.9), (0.5, 0.24)]:
            g_m, g_ds = egt.derivatives(v_gs, v_ds)
            num_gm = (egt.current(v_gs + eps, v_ds) - egt.current(v_gs - eps, v_ds)) / (2 * eps)
            num_gds = (egt.current(v_gs, v_ds + eps) - egt.current(v_gs, v_ds - eps)) / (2 * eps)
            assert np.isclose(g_m, num_gm, rtol=1e-4)
            assert np.isclose(g_ds, num_gds, rtol=1e-4)

    @pytest.mark.parametrize("bad", [{"k": 0.0}, {"k": -1e-4}, {"lambda_": -0.1}])
    def test_rejects_bad_parameters(self, bad):
        with pytest.raises(ValueError):
            EGTParameters(**bad)


class TestNewtonDC:
    def test_linear_circuit_matches_linear_solver(self):
        from repro.spice import dc_operating_point

        c = NonlinearCircuit()
        c.add_voltage_source("vin", "in", 0, 2.0)
        c.add_resistor("r1", "in", "mid", 1e3)
        c.add_resistor("r2", "mid", 0, 1e3)
        newton = newton_dc(c)
        linear = dc_operating_point(c)
        assert np.isclose(newton["mid"], linear["mid"])

    def test_common_source_stage_operating_point(self):
        """Resistor-loaded EGT: solve the triode quadratic analytically."""
        c = NonlinearCircuit()
        c.add_voltage_source("vdd", "vdd", 0, 1.0)
        c.add_voltage_source("vg", "g", 0, 1.0)
        c.add_resistor("rl", "vdd", "d", 2e4)
        c.add_egt("t1", "d", "g", 0, EGTParameters(k=1e-4, v_t=0.3, lambda_=0.0))
        op = newton_dc(c)
        # triode: 2e4 * 1e-4 (2*0.7 v - v^2) = 1 - v  =>  2v^2 - 3.8v + 1 = 0
        expected = (3.8 - np.sqrt(3.8**2 - 8.0)) / 4.0
        assert np.isclose(op["d"], expected, atol=1e-6)

    def test_transistor_off_output_at_rail(self):
        c = NonlinearCircuit()
        c.add_voltage_source("vdd", "vdd", 0, 1.0)
        c.add_voltage_source("vg", "g", 0, 0.0)  # below threshold
        c.add_resistor("rl", "vdd", "d", 2e4)
        c.add_egt("t1", "d", "g", 0)
        op = newton_dc(c)
        assert np.isclose(op["d"], 1.0, atol=1e-6)

    def test_warm_start_size_validated(self):
        c = NonlinearCircuit()
        c.add_voltage_source("v", "a", 0, 1.0)
        c.add_resistor("r", "a", 0, 1e3)
        with pytest.raises(ValueError):
            newton_dc(c, x0=np.zeros(99))

    def test_duplicate_egt_name_rejected(self):
        c = NonlinearCircuit()
        c.add_egt("t1", "d", "g", 0)
        with pytest.raises(ValueError):
            c.add_egt("t1", "d2", "g2", 0)


class TestTransferSweep:
    def test_inverter_transfer_monotone_falling(self):
        c = NonlinearCircuit()
        c.add_voltage_source("vdd", "vdd", 0, 1.0)
        c.add_voltage_source("vin", "in", 0, 0.0)
        c.add_resistor("rl", "vdd", "out", 2e4)
        c.add_egt("t1", "out", "in", 0)
        v_in = np.linspace(0, 1, 21)
        v_out = dc_transfer_sweep(c, "vin", "out", v_in)
        assert np.all(np.diff(v_out) <= 1e-9)
        assert v_out[0] > 0.99  # off: output at the rail
        assert v_out[-1] < 0.5  # on: pulled down

    def test_sweep_restores_waveform(self):
        c = NonlinearCircuit()
        c.add_voltage_source("vdd", "vdd", 0, 1.0)
        c.add_voltage_source("vin", "in", 0, 0.42)
        c.add_resistor("rl", "vdd", "out", 2e4)
        c.add_egt("t1", "out", "in", 0)
        original = c["vin"].waveform
        dc_transfer_sweep(c, "vin", "out", np.array([0.0, 1.0]))
        assert c["vin"].waveform is original

    def test_unknown_source_rejected(self):
        c = NonlinearCircuit()
        c.add_resistor("r", "a", 0, 1e3)
        with pytest.raises(KeyError):
            dc_transfer_sweep(c, "ghost", "a", np.array([0.0]))
