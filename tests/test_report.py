"""Markdown report generation."""

import json

import pytest

from repro.report import render_report, render_report_file


@pytest.fixture
def record():
    return {
        "scale": "ci",
        "datasets": ["Slope", "CBF"],
        "seeds": [0, 1],
        "table1": {
            "Slope": {
                "elman": {"mean": 0.9, "std": 0.01},
                "ptpnc": {"mean": 0.8, "std": 0.02},
                "adapt": {"mean": 0.95, "std": 0.01},
            },
            "Average": {
                "elman": {"mean": 0.9, "std": 0.01},
                "ptpnc": {"mean": 0.8, "std": 0.02},
                "adapt": {"mean": 0.95, "std": 0.01},
            },
        },
        "table2_seconds_per_step": {"elman": 0.016, "ptpnc": 0.012, "adapt": 0.060},
        "table3": [
            {
                "dataset": "Slope",
                "baseline": [22, 45, 4, 71],
                "proposed": [52, 76, 12, 140],
                "baseline_power_mw": 0.948,
                "proposed_power_mw": 0.103,
            }
        ],
        "fig5": {"clean_ideal": 0.78, "perturbed_varied": 0.64},
        "fig7": {
            "baseline": {
                "clean": {"mean": 0.75, "std": 0.19},
                "perturbed": {"mean": 0.72, "std": 0.18},
            }
        },
        "mu_extraction": {
            "mu_min": 1.0,
            "mu_max": 1.1,
            "mu_mean": 1.03,
            "within_paper_band": 1.0,
        },
    }


class TestRenderReport:
    def test_all_sections_present(self, record):
        text = render_report(record)
        for heading in ("Table I", "Table II", "Table III", "Fig. 5", "Fig. 7", "µ extraction"):
            assert heading in text

    def test_shape_check_reproduced(self, record):
        assert "**reproduced**" in render_report(record)

    def test_shape_check_flags_regression(self, record):
        record["table1"]["Average"]["adapt"]["mean"] = 0.5
        assert "NOT reproduced" in render_report(record)

    def test_device_ratio_computed(self, record):
        text = render_report(record)
        assert "1.97×" in text  # 140 / 71

    def test_missing_sections_skipped(self):
        text = render_report({"scale": "smoke", "datasets": [], "seeds": []})
        assert "Table I" not in text
        assert text.startswith("# ADAPT-pNC evaluation report")

    def test_render_from_file(self, record, tmp_path):
        path = tmp_path / "results.json"
        path.write_text(json.dumps(record))
        out = tmp_path / "report.md"
        text = render_report_file(path, out)
        assert out.read_text() == text
        assert "Table I" in text

    def test_mc_counters_render_namespaced_backends(self, record):
        record["mc_vectorization"] = {
            "rows": [
                {
                    "draws": 8,
                    "sequential_s": 0.4,
                    "batched_s": 0.1,
                    "speedup": 4.0,
                    "batched_draws_per_sec": 80.0,
                }
            ],
            "equivalent": True,
            "max_abs_loss_delta": 1e-12,
            "equivalence_atol": 1e-8,
            "counters": {
                "forward_seconds": 0.5,
                "backward_seconds": 0.2,
                "forward_calls": 6,
                "draws": 48,
                "draws_per_second": 96.0,
                "by_backend": {"batched": 0.1, "sequential": 0.4},
                "scan": {
                    "fused": {"seconds": 0.05, "calls": 12},
                    "unfused": {"seconds": 0.3, "calls": 12},
                },
            },
        }
        text = render_report(record)
        assert "Monte-Carlo vectorization" in text
        assert "by MC backend" in text and "sequential 0.40 s" in text
        assert "Filter-scan wall-clock by kernel" in text
        assert "fused 50.0 ms / 12 scans" in text

    def test_filter_scan_section(self, record):
        record["filter_scan"] = {
            "solf": {
                "seq_len": 64,
                "batch": 32,
                "draws": 8,
                "num_filters": 8,
                "fused_forward_s": 0.0013,
                "fused_backward_s": 0.0017,
                "fused_s": 0.0030,
                "unfused_forward_s": 0.0046,
                "unfused_backward_s": 0.0187,
                "unfused_s": 0.0233,
                "speedup": 7.7,
                "loss_delta": 0.0,
                "max_abs_grad_delta": 5e-19,
            },
            "equivalence_atol": 1e-10,
            "grad_atol": 1e-8,
            "equivalent": True,
            "training": {
                "epochs": 3,
                "fused_epoch_s": 0.005,
                "unfused_epoch_s": 0.012,
                "epoch_speedup": 2.4,
            },
        }
        text = render_report(record)
        assert "Fused filter scan" in text
        assert "7.70×" in text
        assert "**equivalent**" in text
        assert "Trainer.fit" in text and "2.40×" in text

    def test_filter_scan_flags_divergence(self, record):
        record["filter_scan"] = {
            "solf": {"speedup": 1.0, "loss_delta": 1.0, "max_abs_grad_delta": 1.0},
            "equivalent": False,
        }
        assert "NOT equivalent" in render_report(record)

    def test_renders_real_ci_results_if_present(self):
        import pathlib

        real = pathlib.Path("results/ci/results.json")
        if not real.exists():
            pytest.skip("no CI results on disk")
        text = render_report_file(real)
        assert "Table I" in text and "reproduced" in text
