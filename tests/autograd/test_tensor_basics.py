"""Construction, introspection and bookkeeping of Tensor."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.data.dtype == np.float64

    def test_from_scalar(self):
        t = Tensor(2.5)
        assert t.shape == ()
        assert t.item() == 2.5

    def test_from_int_array_coerces_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.data.dtype == np.float64

    def test_from_tensor_shares_nothing_graphwise(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor(a)
        assert not b.requires_grad

    def test_zeros_ones_eye_full(self):
        assert np.array_equal(Tensor.zeros(2, 3).data, np.zeros((2, 3)))
        assert np.array_equal(Tensor.ones(4).data, np.ones(4))
        assert np.array_equal(Tensor.eye(3).data, np.eye(3))
        assert np.array_equal(Tensor.full((2, 2), 7.0).data, np.full((2, 2), 7.0))

    def test_requires_grad_flag(self):
        assert Tensor([1.0], requires_grad=True).requires_grad
        assert not Tensor([1.0]).requires_grad


class TestIntrospection:
    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24
        assert len(t) == 2

    def test_repr_mentions_grad(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_item_rejects_non_scalar(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_numpy_returns_copy(self):
        t = Tensor([1.0, 2.0])
        arr = t.numpy()
        arr[0] = 99.0
        assert t.data[0] == 1.0

    def test_detach_breaks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
        assert b._backward_fn is None


class TestGradBookkeeping:
    def test_zero_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * a).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_grad_accumulates_across_backwards(self):
        a = Tensor([3.0], requires_grad=True)
        (a * 2.0).backward()
        (a * 2.0).backward()
        assert np.allclose(a.grad, [4.0])

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_non_scalar_needs_grad_argument(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2.0).backward()

    def test_backward_with_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3.0).backward(np.array([1.0, 10.0]))
        assert np.allclose(a.grad, [3.0, 30.0])


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2.0
        assert not b.requires_grad

    def test_no_grad_blocks_new_tensors(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad

    def test_no_grad_restores_on_exception(self):
        from repro.autograd import is_grad_enabled

        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_enable_grad_inside_no_grad(self):
        from repro.autograd import enable_grad

        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            with enable_grad():
                b = a * 2.0
        assert b.requires_grad
