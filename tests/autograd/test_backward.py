"""Backward-pass graph mechanics: topology, reuse, deep chains."""

import numpy as np

from repro.autograd import Tensor, stack


class TestGraphTraversal:
    def test_diamond_graph_accumulates_once(self):
        # x -> a, b -> c: each path contributes; node visited once.
        x = Tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x * 5.0
        c = a + b
        c.backward()
        assert np.allclose(x.grad, [8.0])

    def test_reused_intermediate(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * x  # d/dx = 2x = 4
        c = a + a  # total d/dx = 8
        c.backward()
        assert np.allclose(x.grad, [8.0])

    def test_deep_chain_no_recursion_limit(self):
        # 5000-deep chain would overflow a recursive traversal.
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 0.001
        y.backward()
        assert np.allclose(x.grad, [1.0])

    def test_rnn_like_unrolled_loop(self):
        # gradient through a 100-step scan, matching the closed form a^T.
        a = 0.9
        x = Tensor([1.0], requires_grad=True)
        v = x
        for _ in range(100):
            v = v * a
        v.backward()
        assert np.allclose(x.grad, [a**100])

    def test_grad_not_propagated_to_frozen_leaves(self):
        x = Tensor([1.0], requires_grad=True)
        frozen = Tensor([2.0], requires_grad=False)
        (x * frozen).backward()
        assert frozen.grad is None
        assert np.allclose(x.grad, [2.0])

    def test_branch_with_detach_is_cut(self):
        x = Tensor([3.0], requires_grad=True)
        kept = x * 2.0
        cut = (x * 100.0).detach()
        (kept + cut).backward()
        assert np.allclose(x.grad, [2.0])

    def test_stack_then_index_roundtrip(self):
        xs = [Tensor([float(i)], requires_grad=True) for i in range(4)]
        s = stack(xs, axis=0)
        s[2].backward()
        assert np.allclose(xs[2].grad, [1.0])
        for i, x in enumerate(xs):
            if i != 2:
                assert x.grad is None or np.allclose(x.grad, [0.0])


class TestGradientValues:
    def test_product_rule(self):
        x = Tensor([3.0], requires_grad=True)
        y = Tensor([4.0], requires_grad=True)
        (x * y + x).backward()
        assert np.allclose(x.grad, [5.0])
        assert np.allclose(y.grad, [3.0])

    def test_chain_rule_composite(self):
        x = Tensor([0.5], requires_grad=True)
        y = (x * 2.0).tanh().exp()
        y.backward()
        t = np.tanh(1.0)
        expected = np.exp(t) * (1 - t**2) * 2.0
        assert np.allclose(x.grad, [expected])

    def test_mean_of_squares(self):
        x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        (x * x).mean().backward()
        assert np.allclose(x.grad, 2.0 * x.data / 3.0)
