"""Precision-policy machinery and dtype-aware numerics.

Covers the process-level :mod:`repro.autograd.precision` policy (name
resolution, scoped activation, dtype plumbing into Tensor creation),
the per-dtype gradient-check tolerances, the float32 finite-difference
suite for the fused :func:`~repro.autograd.filter_scan` kernel
(mirroring the float64 suite of ``test_function.py``), and the
``Tensor.var`` single-``diff`` graph regression.
"""

import numpy as np
import pytest

from repro.autograd import (
    PRECISION_POLICIES,
    PrecisionPolicy,
    Tensor,
    check_gradients,
    compute_dtype,
    default_tolerances,
    filter_scan,
    get_precision,
    master_dtype,
    resolve_policy,
    set_precision,
    use_precision,
)


class TestPolicyResolution:
    def test_default_policy_is_float64(self):
        policy = get_precision()
        assert policy.name == "float64"
        assert policy.compute == np.dtype(np.float64)
        assert policy.master == np.dtype(np.float64)
        assert not policy.is_mixed

    def test_known_policies(self):
        assert PRECISION_POLICIES == ("float64", "float32", "mixed")
        f32 = resolve_policy("float32")
        assert f32.compute == np.dtype(np.float32)
        assert not f32.is_mixed
        mixed = resolve_policy("mixed")
        assert mixed.compute == np.dtype(np.float32)
        assert mixed.master == np.dtype(np.float64)
        assert mixed.is_mixed

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown precision policy"):
            resolve_policy("float16")
        with pytest.raises(ValueError, match="unknown precision policy"):
            set_precision("bfloat16")

    def test_resolve_does_not_activate(self):
        resolve_policy("float32")
        assert get_precision().name == "float64"

    def test_use_precision_scopes_and_restores(self):
        assert compute_dtype() == np.dtype(np.float64)
        with use_precision("mixed") as policy:
            assert policy is get_precision()
            assert compute_dtype() == np.dtype(np.float32)
            assert master_dtype() == np.dtype(np.float64)
        assert get_precision().name == "float64"

    def test_use_precision_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_precision("float32"):
                raise RuntimeError("boom")
        assert get_precision().name == "float64"

    def test_accepts_policy_instances(self):
        policy = resolve_policy("float32")
        assert isinstance(policy, PrecisionPolicy)
        with use_precision(policy) as active:
            assert active is policy


class TestTensorDtype:
    def test_tensor_coercion_follows_policy(self):
        data = [1.0, 2.0, 3.0]
        assert Tensor(data).data.dtype == np.float64
        with use_precision("float32"):
            assert Tensor(data).data.dtype == np.float32
            # float64 input is recast down to the compute dtype.
            assert Tensor(np.zeros(3)).data.dtype == np.float32

    def test_constructors_follow_policy(self):
        with use_precision("float32"):
            assert Tensor.zeros(2, 2).data.dtype == np.float32
            assert Tensor.ones(2).data.dtype == np.float32

    def test_arithmetic_and_grads_stay_in_compute_dtype(self, rng):
        with use_precision("float32"):
            x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
            y = (x * 2.0 + 1.0).tanh().sum()
            assert y.data.dtype == np.float32
            y.backward()
            assert x.grad.dtype == np.float32

    def test_filter_scan_buffers_follow_inputs(self, rng):
        with use_precision("float32"):
            x = Tensor(rng.uniform(-1, 1, (2, 5, 3)), requires_grad=True)
            a = Tensor(np.full(3, 0.9))
            b = Tensor(np.full(3, 0.1))
            v0 = Tensor(np.zeros((2, 3)))
            out = filter_scan(x, a, b, v0)
            assert out.data.dtype == np.float32
            out.sum().backward()
            assert x.grad.dtype == np.float32


class TestDefaultTolerances:
    def test_float64_matches_historical_defaults(self):
        tol = default_tolerances(np.float64)
        assert tol == {"eps": 1e-6, "atol": 1e-5, "rtol": 1e-4}

    def test_float32_is_looser(self):
        tol = default_tolerances(np.float32)
        assert tol["eps"] > default_tolerances(np.float64)["eps"]
        assert tol["atol"] > default_tolerances(np.float64)["atol"]

    def test_unknown_dtype_falls_back_to_float64(self):
        assert default_tolerances(np.int64) == default_tolerances(np.float64)

    def test_returns_fresh_copy(self):
        tol = default_tolerances(np.float32)
        tol["atol"] = 0.0
        assert default_tolerances(np.float32)["atol"] > 0.0


def _coeffs(rng, n, mu, draws=None):
    """Physical recurrence coefficients a, b (as in ``test_function.py``)."""
    shape = (n,) if draws is None else (draws, n)
    r = np.exp(rng.uniform(np.log(2e3), np.log(50e3), shape))
    c = np.exp(rng.uniform(np.log(1e-5), np.log(1e-4), shape))
    rc = r * c
    dt = 1e-3
    return rc / (rc + mu * dt), dt / (rc + mu * dt)


class TestFilterScanFloat32:
    """float32 finite-difference suite for the fused scan kernel.

    Mirrors the float64 suite at the paper's coupling corners
    (μ = 1 unloaded, μ = 1.3 fully coupled) and across draw counts; the
    tolerances resolve from :func:`default_tolerances` for float32.
    """

    @pytest.mark.parametrize("mu", [1.0, 1.3])
    @pytest.mark.parametrize("draws", [1, 8])
    def test_finite_differences_float32(self, rng, mu, draws):
        batch, steps, n = 2, 6, 3
        x = rng.uniform(-1, 1, (batch, steps, n)).astype(np.float32)
        a, b = _coeffs(rng, n, mu, draws)
        a, b = a.astype(np.float32), b.astype(np.float32)
        v0 = rng.uniform(-0.1, 0.1, (draws, batch, n)).astype(np.float32)
        assert check_gradients(
            lambda xx, aa, bb, vv: (filter_scan(xx, aa, bb, vv) ** 2).mean(),
            [x, a, b, v0],
        )

    def test_float32_evaluations_run_in_float32(self, rng):
        """The checker activates the float32 policy for its evaluations
        (Tensor coercion would otherwise upcast to the ambient
        float64)."""
        seen = []

        def fn(xx):
            seen.append(xx.data.dtype)
            return (xx * xx).mean()

        check_gradients(fn, [rng.uniform(-1, 1, 3).astype(np.float32)])
        assert seen and all(d == np.float32 for d in seen)

    def test_float64_inputs_keep_historical_behaviour(self, rng):
        seen = []

        def fn(xx):
            seen.append(xx.data.dtype)
            return (xx * xx).mean()

        check_gradients(fn, [rng.uniform(-1, 1, 3)])
        assert seen and all(d == np.float64 for d in seen)


def _graph_nodes(out: Tensor):
    """All unique tensors reachable from ``out`` through the tape."""
    seen, stack = set(), [out]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend(node._parents)
    return seen


class TestVarGraph:
    def test_var_builds_one_diff_node(self, rng):
        """``var`` reuses one ``self - mu`` node: the square is
        ``diff * diff`` with both parents the *same* tensor, and the
        graph holds exactly 5 nodes (x, mu, diff, square, mean) instead
        of the historical 6 (two independent subtractions)."""
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        out = x.var()
        square = out._parents[0]
        assert len(square._parents) == 2
        assert square._parents[0] is square._parents[1]
        assert len(_graph_nodes(out)) == 5

    def test_var_value_and_gradient(self, rng):
        data = rng.normal(size=(5, 4))
        x = Tensor(data, requires_grad=True)
        out = x.var()
        np.testing.assert_allclose(out.data, data.var(), rtol=1e-12)
        out.backward()
        expected = 2.0 * (data - data.mean()) / data.size
        np.testing.assert_allclose(x.grad, expected, rtol=1e-10, atol=1e-12)

    def test_var_axis_keepdims(self, rng):
        data = rng.normal(size=(3, 6))
        out = Tensor(data).var(axis=1, keepdims=True)
        np.testing.assert_allclose(
            out.data, data.var(axis=1, keepdims=True), rtol=1e-12
        )
