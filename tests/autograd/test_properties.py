"""Property-based tests of autograd invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autograd import Tensor, logsumexp, softmax

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def batches(max_rows: int = 5, max_cols: int = 6):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=max(max_rows, max_cols)),
        elements=finite_floats,
    )


@given(batches())
@settings(max_examples=40, deadline=None)
def test_softmax_rows_sum_to_one(x):
    out = softmax(Tensor(x), axis=-1).data
    assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-9)
    assert np.all(out >= 0)


@given(batches())
@settings(max_examples=40, deadline=None)
def test_logsumexp_dominates_max(x):
    lse = logsumexp(Tensor(x), axis=-1).data
    assert np.all(lse >= x.max(axis=-1) - 1e-12)
    assert np.all(lse <= x.max(axis=-1) + np.log(x.shape[-1]) + 1e-12)


@given(batches())
@settings(max_examples=40, deadline=None)
def test_sum_gradient_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    assert np.array_equal(t.grad, np.ones_like(x))


@given(batches(), batches())
@settings(max_examples=40, deadline=None)
def test_addition_commutes(a, b):
    if a.shape != b.shape:
        return
    left = (Tensor(a) + Tensor(b)).data
    right = (Tensor(b) + Tensor(a)).data
    assert np.array_equal(left, right)


@given(batches())
@settings(max_examples=40, deadline=None)
def test_tanh_bounded_and_odd(x):
    out = Tensor(x).tanh().data
    assert np.all(np.abs(out) <= 1.0)
    assert np.allclose(Tensor(-x).tanh().data, -out)


@given(batches())
@settings(max_examples=40, deadline=None)
def test_reshape_roundtrip_preserves_gradient(x):
    t = Tensor(x, requires_grad=True)
    t.reshape(-1).reshape(*x.shape).sum().backward()
    assert np.array_equal(t.grad, np.ones_like(x))


@given(
    arrays(dtype=np.float64, shape=(4, 3), elements=finite_floats),
    arrays(dtype=np.float64, shape=(3,), elements=finite_floats),
)
@settings(max_examples=40, deadline=None)
def test_broadcast_gradient_shape_invariant(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta * tb).sum().backward()
    assert ta.grad.shape == a.shape
    assert tb.grad.shape == b.shape
    # The broadcast operand's gradient is the column sum.
    assert np.allclose(tb.grad, a.sum(axis=0))


@given(st.integers(min_value=1, max_value=50))
@settings(max_examples=20, deadline=None)
def test_linear_chain_gradient_is_product(depth):
    x = Tensor([1.0], requires_grad=True)
    v = x
    for _ in range(depth):
        v = v * 0.5
    v.backward()
    assert np.allclose(x.grad, [0.5**depth])
