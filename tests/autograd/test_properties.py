"""Property-based tests of autograd invariants (hypothesis).

Beyond the algebraic invariants, this module certifies gradients by
randomized central finite differences (:func:`check_gradients`) over
the awkward corners that targeted unit tests historically missed:
broadcast edge shapes (size-1 axes, scalar operands, leading-axis
expansion), the fused ``filter_scan`` kernel at the paper's μ coupling
boundaries (μ = 1.0 unloaded, μ = 1.3 fully loaded), and
non-contiguous (transposed / strided / reversed) input arrays.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autograd import Tensor, check_gradients, filter_scan, logsumexp, softmax

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)

#: Gentler magnitudes for FD checks: keeps |f(x±eps)| in a regime where
#: central differences are accurate to the default tolerances.
small_floats = st.floats(
    min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False
)


def batches(max_rows: int = 5, max_cols: int = 6):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=max(max_rows, max_cols)),
        elements=finite_floats,
    )


@given(batches())
@settings(max_examples=40, deadline=None)
def test_softmax_rows_sum_to_one(x):
    out = softmax(Tensor(x), axis=-1).data
    assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-9)
    assert np.all(out >= 0)


@given(batches())
@settings(max_examples=40, deadline=None)
def test_logsumexp_dominates_max(x):
    lse = logsumexp(Tensor(x), axis=-1).data
    assert np.all(lse >= x.max(axis=-1) - 1e-12)
    assert np.all(lse <= x.max(axis=-1) + np.log(x.shape[-1]) + 1e-12)


@given(batches())
@settings(max_examples=40, deadline=None)
def test_sum_gradient_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    assert np.array_equal(t.grad, np.ones_like(x))


@given(batches(), batches())
@settings(max_examples=40, deadline=None)
def test_addition_commutes(a, b):
    if a.shape != b.shape:
        return
    left = (Tensor(a) + Tensor(b)).data
    right = (Tensor(b) + Tensor(a)).data
    assert np.array_equal(left, right)


@given(batches())
@settings(max_examples=40, deadline=None)
def test_tanh_bounded_and_odd(x):
    out = Tensor(x).tanh().data
    assert np.all(np.abs(out) <= 1.0)
    assert np.allclose(Tensor(-x).tanh().data, -out)


@given(batches())
@settings(max_examples=40, deadline=None)
def test_reshape_roundtrip_preserves_gradient(x):
    t = Tensor(x, requires_grad=True)
    t.reshape(-1).reshape(*x.shape).sum().backward()
    assert np.array_equal(t.grad, np.ones_like(x))


@given(
    arrays(dtype=np.float64, shape=(4, 3), elements=finite_floats),
    arrays(dtype=np.float64, shape=(3,), elements=finite_floats),
)
@settings(max_examples=40, deadline=None)
def test_broadcast_gradient_shape_invariant(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta * tb).sum().backward()
    assert ta.grad.shape == a.shape
    assert tb.grad.shape == b.shape
    # The broadcast operand's gradient is the column sum.
    assert np.allclose(tb.grad, a.sum(axis=0))


@given(st.integers(min_value=1, max_value=50))
@settings(max_examples=20, deadline=None)
def test_linear_chain_gradient_is_product(depth):
    x = Tensor([1.0], requires_grad=True)
    v = x
    for _ in range(depth):
        v = v * 0.5
    v.backward()
    assert np.allclose(x.grad, [0.5**depth])


# -- randomized finite-difference checks: broadcast edge shapes --------------

#: Shape pairs that broadcast together but stress the unbroadcast
#: reductions: size-1 axes, scalars, missing leading axes.
_BROADCAST_SHAPE_PAIRS = [
    ((3, 1), (1, 4)),
    ((1,), (5, 3)),
    ((2, 1, 3), (4, 3)),
    ((), (2, 3)),
    ((2, 3), ()),
    ((1, 1), (3, 1)),
    ((4, 1, 1), (1, 2, 3)),
]


def _pair_arrays(draw_shapes):
    """Strategy producing (a, b) arrays for one broadcast shape pair."""
    sa, sb = draw_shapes
    return st.tuples(
        arrays(dtype=np.float64, shape=sa, elements=small_floats),
        arrays(dtype=np.float64, shape=sb, elements=small_floats),
    )


@given(
    st.sampled_from(_BROADCAST_SHAPE_PAIRS).flatmap(_pair_arrays),
    st.sampled_from(["add", "mul", "sub"]),
)
@settings(max_examples=30, deadline=None)
def test_broadcast_gradients_match_finite_differences(pair, op):
    a, b = pair
    fn = {
        "add": lambda x, y: x + y,
        "mul": lambda x, y: x * y,
        "sub": lambda x, y: x - y,
    }[op]
    assert check_gradients(fn, [a, b])


@given(
    st.sampled_from(_BROADCAST_SHAPE_PAIRS).flatmap(_pair_arrays),
)
@settings(max_examples=20, deadline=None)
def test_broadcast_composite_gradients_match_finite_differences(pair):
    a, b = pair
    assert check_gradients(lambda x, y: (x * y + x).tanh(), [a, b])


# -- filter_scan at the paper's μ coupling boundaries ------------------------


def _scan_coefficients(rc: np.ndarray, mu: float, dt: float = 1e-3):
    """Backward-Euler coefficients a = RC/(RC+μΔt), b = Δt/(RC+μΔt)."""
    inv = 1.0 / (rc + mu * dt)
    return rc * inv, dt * inv


@given(
    st.sampled_from([1.0, 1.3]),  # μ band of the SPICE study (Sec. III-2)
    st.integers(min_value=1, max_value=5),  # time steps
    st.integers(min_value=1, max_value=3),  # filters
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=25, deadline=None)
def test_filter_scan_gradients_at_mu_boundaries(mu, steps, n, seed):
    rng = np.random.default_rng(seed)
    # RC spans fast (~Δt) to slow (~100 Δt) time constants.
    rc = rng.uniform(1e-3, 0.1, size=n)
    a, b = _scan_coefficients(rc, mu)
    assert np.all((0 < a) & (a < 1)) and np.all(b > 0)
    x = rng.uniform(-1.0, 1.0, size=(2, steps, n))
    v0 = rng.uniform(-0.5, 0.5, size=n)
    assert check_gradients(
        lambda xs, av, bv, v: filter_scan(xs, av, bv, v), [x, a, b, v0]
    )


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_filter_scan_mu_boundary_ordering(seed):
    """More coupling (larger μ) never increases the scan magnitude."""
    rng = np.random.default_rng(seed)
    rc = rng.uniform(1e-3, 0.1, size=3)
    x = np.abs(rng.uniform(0.1, 1.0, size=(2, 6, 3)))
    v0 = np.zeros(3)
    outs = {}
    for mu in (1.0, 1.3):
        a, b = _scan_coefficients(rc, mu)
        outs[mu] = filter_scan(x, a, b, v0).data
    # For a non-negative input and zero initial state the loaded stage
    # (μ=1.3, DC gain 1/1.3) sits strictly below the unloaded one.
    assert np.all(outs[1.3] <= outs[1.0] + 1e-12)
    assert np.all(outs[1.3] >= 0.0)


# -- non-contiguous inputs ---------------------------------------------------


@given(
    st.sampled_from(["transpose", "reverse", "strided"]),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=20, deadline=None)
def test_elementwise_gradients_on_noncontiguous_inputs(layout, seed):
    rng = np.random.default_rng(seed)
    base = rng.uniform(-2.0, 2.0, size=(6, 8))
    if layout == "transpose":
        view = base.T  # (8, 6), F-ordered view
    elif layout == "reverse":
        view = base[::-1]  # negative stride
    else:
        view = base[:, ::2]  # (6, 4) strided view
    assert not view.flags["C_CONTIGUOUS"]
    assert check_gradients(lambda t: (t * t).tanh() + t, [view])


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_filter_scan_accepts_noncontiguous_input(seed):
    """The fused kernel must not silently misread strided memory."""
    rng = np.random.default_rng(seed)
    n = 3
    rc = rng.uniform(1e-3, 0.1, size=n)
    a, b = _scan_coefficients(rc, mu=1.15)
    big = rng.uniform(-1.0, 1.0, size=(2, 10, 2 * n))
    x_view = big[:, ::2, ::2]  # non-contiguous (2, 5, 3) slice
    assert not x_view.flags["C_CONTIGUOUS"]
    v0 = rng.uniform(-0.5, 0.5, size=n)
    dense = filter_scan(np.ascontiguousarray(x_view), a, b, v0).data
    strided = filter_scan(x_view, a, b, v0).data
    assert np.array_equal(dense, strided)
    assert check_gradients(
        lambda xs, av, bv, v: filter_scan(xs, av, bv, v), [x_view, a, b, v0]
    )
