"""Gradient correctness of every Tensor operation vs finite differences."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients


@pytest.fixture
def x(rng):
    return rng.normal(size=(3, 4))


@pytest.fixture
def y(rng):
    return rng.normal(size=(3, 4))


class TestArithmeticGradients:
    def test_add(self, x, y):
        check_gradients(lambda a, b: a + b, [x, y])

    def test_sub(self, x, y):
        check_gradients(lambda a, b: a - b, [x, y])

    def test_mul(self, x, y):
        check_gradients(lambda a, b: a * b, [x, y])

    def test_div(self, x, y):
        check_gradients(lambda a, b: a / (b.abs() + 1.0), [x, y])

    def test_neg(self, x):
        check_gradients(lambda a: -a, [x])

    def test_pow(self, x):
        check_gradients(lambda a: (a.abs() + 0.5) ** 2.5, [x])

    def test_scalar_operand(self, x):
        check_gradients(lambda a: 2.0 * a + 1.0 - a / 4.0, [x])

    def test_rsub_rdiv(self, x):
        check_gradients(lambda a: 1.0 - a, [x])
        check_gradients(lambda a: 1.0 / (a.abs() + 1.0), [x])

    def test_pow_rejects_tensor_exponent(self, x):
        with pytest.raises(TypeError):
            Tensor(x) ** Tensor(x)


class TestBroadcastingGradients:
    def test_add_row_vector(self, rng):
        check_gradients(lambda a, b: a + b, [rng.normal(size=(3, 4)), rng.normal(size=(4,))])

    def test_mul_column_vector(self, rng):
        check_gradients(
            lambda a, b: a * b, [rng.normal(size=(3, 4)), rng.normal(size=(3, 1))]
        )

    def test_scalar_tensor_broadcast(self, rng):
        check_gradients(lambda a, b: a * b, [rng.normal(size=(3, 4)), rng.normal(size=())])

    def test_3d_broadcast(self, rng):
        check_gradients(
            lambda a, b: a + b,
            [rng.normal(size=(2, 3, 4)), rng.normal(size=(3, 1))],
        )

    def test_broadcast_grad_shape_matches_operand(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)


class TestMatmulGradients:
    def test_2d_2d(self, rng):
        check_gradients(
            lambda a, b: a @ b, [rng.normal(size=(3, 4)), rng.normal(size=(4, 2))]
        )

    def test_2d_1d(self, rng):
        check_gradients(lambda a, b: a @ b, [rng.normal(size=(3, 4)), rng.normal(size=(4,))])

    def test_1d_2d(self, rng):
        check_gradients(lambda a, b: a @ b, [rng.normal(size=(4,)), rng.normal(size=(4, 2))])

    def test_batched(self, rng):
        check_gradients(
            lambda a, b: a @ b,
            [rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 4, 2))],
        )

    def test_value_matches_numpy(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)


class TestNonlinearityGradients:
    @pytest.mark.parametrize(
        "name", ["exp", "tanh", "sigmoid", "relu", "abs", "sqrt", "log"]
    )
    def test_unary(self, name, rng):
        x = rng.uniform(0.2, 2.0, size=(3, 4))  # positive for log/sqrt; off 0 for relu/abs
        check_gradients(lambda a: getattr(a, name)(), [x])

    def test_tanh_values(self, rng):
        x = rng.normal(size=(5,))
        assert np.allclose(Tensor(x).tanh().data, np.tanh(x))

    def test_sigmoid_values(self, rng):
        x = rng.normal(size=(5,))
        assert np.allclose(Tensor(x).sigmoid().data, 1 / (1 + np.exp(-x)))

    def test_relu_kills_negatives(self):
        out = Tensor([-1.0, 0.0, 2.0]).relu()
        assert np.array_equal(out.data, [0.0, 0.0, 2.0])

    def test_clip_gradient_mask(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert np.array_equal(a.grad, [0.0, 1.0, 0.0])

    def test_clip_values(self):
        assert np.array_equal(
            Tensor([-2.0, 0.5, 2.0]).clip(-1.0, 1.0).data, [-1.0, 0.5, 1.0]
        )


class TestReductionGradients:
    def test_sum_all(self, x):
        check_gradients(lambda a: a.sum(), [x])

    @pytest.mark.parametrize("axis", [0, 1])
    def test_sum_axis(self, x, axis):
        check_gradients(lambda a: a.sum(axis=axis), [x])

    def test_sum_keepdims(self, x):
        check_gradients(lambda a: a.sum(axis=1, keepdims=True), [x])

    def test_mean_all(self, x):
        check_gradients(lambda a: a.mean(), [x])

    @pytest.mark.parametrize("axis", [0, 1])
    def test_mean_axis(self, x, axis):
        check_gradients(lambda a: a.mean(axis=axis), [x])

    def test_mean_tuple_axis(self, rng):
        check_gradients(lambda a: a.mean(axis=(0, 2)), [rng.normal(size=(2, 3, 4))])

    def test_max_axis(self, rng):
        # well-separated values so the finite-difference step can't flip argmax
        x = rng.permutation(np.arange(12.0)).reshape(3, 4)
        check_gradients(lambda a: a.max(axis=1), [x])

    def test_min_axis(self, rng):
        x = rng.permutation(np.arange(12.0)).reshape(3, 4)
        check_gradients(lambda a: a.min(axis=1), [x])

    def test_max_tie_splits_gradient(self):
        a = Tensor([[1.0, 1.0, 0.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.5, 0.5, 0.0]])

    def test_var(self, x):
        check_gradients(lambda a: a.var(axis=1), [x])
        assert np.allclose(Tensor(x).var(axis=1).data, x.var(axis=1))


class TestShapeGradients:
    def test_reshape(self, x):
        check_gradients(lambda a: a.reshape(4, 3).tanh(), [x])

    def test_reshape_tuple_arg(self, x):
        assert Tensor(x).reshape((2, 6)).shape == (2, 6)

    def test_transpose_default(self, x):
        check_gradients(lambda a: a.transpose().tanh(), [x])

    def test_transpose_axes(self, rng):
        check_gradients(
            lambda a: a.transpose(1, 2, 0).tanh(), [rng.normal(size=(2, 3, 4))]
        )

    def test_T_property(self, x):
        assert np.allclose(Tensor(x).T.data, x.T)

    def test_getitem_slice(self, x):
        check_gradients(lambda a: a[1:, :2].exp(), [x])

    def test_getitem_fancy(self, x):
        idx = np.array([0, 2])
        check_gradients(lambda a: a[idx].exp(), [x])

    def test_getitem_repeated_index_accumulates(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        idx = np.array([0, 0, 1])
        a[idx].sum().backward()
        assert np.allclose(a.grad, [2.0, 1.0])

    def test_squeeze_unsqueeze(self, rng):
        a = Tensor(rng.normal(size=(3, 1, 4)))
        assert a.squeeze().shape == (3, 4)
        assert a.squeeze(axis=1).shape == (3, 4)
        assert Tensor(rng.normal(size=(3, 4))).unsqueeze(1).shape == (3, 1, 4)
        assert Tensor(rng.normal(size=(3, 4))).unsqueeze(-1).shape == (3, 4, 1)

    def test_unsqueeze_grad(self, x):
        check_gradients(lambda a: a.unsqueeze(0).tanh(), [x])


class TestComparisons:
    def test_comparisons_return_numpy(self):
        a = Tensor([1.0, 2.0, 3.0])
        assert np.array_equal(a > 2.0, [False, False, True])
        assert np.array_equal(a < 2.0, [True, False, False])
        assert np.array_equal(a >= 2.0, [False, True, True])
        assert np.array_equal(a <= 2.0, [True, True, False])
