"""Custom autograd Functions — the fused-op extension point.

Covers the :class:`~repro.autograd.Function` machinery (Tensor
coercion, single-node graph wiring, broadcast-aware gradient routing,
``needs_input_grad`` dead-gradient elision, ``no_grad`` behaviour) and
the :func:`~repro.autograd.filter_scan` kernel built on it: analytic
adjoint vs central finite differences at the paper's coupling-factor
corners (μ = 1 unloaded, μ = 1.3 fully coupled) and across Monte-Carlo
draw counts, plus bit-equality with the node-per-step oracle.
"""

import numpy as np
import pytest

from repro.autograd import (
    Function,
    FunctionContext,
    Tensor,
    filter_scan,
    no_grad,
)
from repro.autograd.grad_check import check_gradients
from repro.circuits.filters import _unfused_recurrence


class _Affine(Function):
    """y = w * x + c — small op exercising ctx plumbing and broadcasting."""

    @staticmethod
    def forward(ctx, x, w, c):
        ctx.save_for_backward(x, w)
        return w * x + c

    @staticmethod
    def backward(ctx, grad):
        x, w = ctx.saved_arrays
        grad_x = grad * w if ctx.needs_input_grad[0] else None
        grad_w = grad * x if ctx.needs_input_grad[1] else None
        grad_c = grad if ctx.needs_input_grad[2] else None
        return grad_x, grad_w, grad_c


class _WrongArity(Function):
    @staticmethod
    def forward(ctx, x):
        return x * 2.0

    @staticmethod
    def backward(ctx, grad):
        return grad * 2.0, None  # one gradient too many


class TestFunctionBase:
    def test_forward_value_and_single_node(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(4,)), requires_grad=True)
        out = _Affine.apply(x, w, 1.5)
        assert np.allclose(out.data, w.data * x.data + 1.5)
        # The whole op is one graph node named after the subclass.
        assert out._op == "_Affine"

    def test_broadcast_gradients_reduced_to_input_shapes(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(4,)), requires_grad=True)
        c = Tensor(np.array(0.3), requires_grad=True)
        _Affine.apply(x, w, c).sum().backward()
        assert x.grad.shape == (3, 4)
        assert w.grad.shape == (4,)  # reduced from the (3, 4) result shape
        assert c.grad.shape == ()
        np.testing.assert_allclose(w.grad, x.data.sum(axis=0))
        np.testing.assert_allclose(c.grad, 12.0)

    def test_coerces_raw_arrays(self, rng):
        out = _Affine.apply(np.ones((2, 2)), 2.0, 0.0)
        assert isinstance(out, Tensor)
        np.testing.assert_allclose(out.data, 2.0)

    def test_needs_input_grad_mirrors_requires_grad(self, rng):
        x = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        w = Tensor(rng.normal(size=(2,)))  # no grad
        captured = {}

        class Probe(Function):
            @staticmethod
            def forward(ctx, x, w):
                captured["needs"] = ctx.needs_input_grad
                return x * w

            @staticmethod
            def backward(ctx, grad):
                return grad, None

        Probe.apply(x, w).sum().backward()
        assert captured["needs"] == (True, False)
        assert x.grad is not None and w.grad is None

    def test_no_grad_skips_graph(self, rng):
        x = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        with no_grad():
            out = _Affine.apply(x, 2.0, 0.0)
        assert not out.requires_grad

    def test_wrong_gradient_arity_raises(self, rng):
        x = Tensor(rng.normal(size=(2,)), requires_grad=True)
        out = _WrongArity.apply(x)
        with pytest.raises(RuntimeError, match="2 gradients for 1 inputs"):
            out.sum().backward()

    def test_base_methods_are_abstract(self):
        ctx = FunctionContext()
        with pytest.raises(NotImplementedError):
            Function.forward(ctx)
        with pytest.raises(NotImplementedError):
            Function.backward(ctx, np.zeros(1))


def _coeffs(rng, n, mu, draws=None):
    """Physical recurrence coefficients a, b from log-uniform R, C at μ."""
    shape = (n,) if draws is None else (draws, n)
    r = np.exp(rng.uniform(np.log(2e3), np.log(50e3), shape))
    c = np.exp(rng.uniform(np.log(1e-5), np.log(1e-4), shape))
    rc = r * c
    dt = 1e-3
    return rc / (rc + mu * dt), dt / (rc + mu * dt)


class TestFilterScan:
    @pytest.mark.parametrize("mu", [1.0, 1.3])
    @pytest.mark.parametrize("draws", [None, 1, 8])
    def test_finite_differences(self, rng, mu, draws):
        """Analytic adjoint matches central differences for every input."""
        batch, steps, n = 2, 6, 3
        x = rng.uniform(-1, 1, (batch, steps, n))
        a, b = _coeffs(rng, n, mu, draws)
        v0_shape = (batch, n) if draws is None else (draws, batch, n)
        v0 = rng.uniform(-0.1, 0.1, v0_shape)
        assert check_gradients(
            lambda xx, aa, bb, vv: (filter_scan(xx, aa, bb, vv) ** 2).mean(),
            [x, a, b, v0],
        )

    @pytest.mark.parametrize("draws", [None, 8])
    def test_bit_equal_to_unfused_oracle(self, rng, draws):
        batch, steps, n = 4, 16, 5
        x = rng.uniform(-1, 1, (batch, steps, n))
        a, b = _coeffs(rng, n, 1.15, draws)
        v0_shape = (batch, n) if draws is None else (draws, batch, n)
        v0 = rng.uniform(-0.1, 0.1, v0_shape)
        fused_in = [Tensor(t, requires_grad=True) for t in (x, a, b, v0)]
        oracle_in = [Tensor(t, requires_grad=True) for t in (x, a, b, v0)]
        fused = filter_scan(*fused_in)
        oracle = _unfused_recurrence(*oracle_in)
        np.testing.assert_array_equal(fused.data, oracle.data)
        (fused * fused).mean().backward()
        (oracle * oracle).mean().backward()
        for tf, tu in zip(fused_in, oracle_in):
            np.testing.assert_allclose(tf.grad, tu.grad, atol=1e-14)

    def test_draw_dependent_input_stack(self, rng):
        """x may itself carry the draws axis (draw-dependent inputs)."""
        draws, batch, steps, n = 3, 2, 5, 4
        x = rng.uniform(-1, 1, (draws, batch, steps, n))
        a, b = _coeffs(rng, n, 1.0, draws)
        v0 = rng.uniform(-0.1, 0.1, (draws, batch, n))
        out = filter_scan(Tensor(x), Tensor(a), Tensor(b), Tensor(v0))
        assert out.shape == (draws, batch, steps, n)
        oracle = _unfused_recurrence(Tensor(x), Tensor(a), Tensor(b), Tensor(v0))
        np.testing.assert_array_equal(out.data, oracle.data)

    def test_matches_closed_form_single_step(self):
        x = np.array([[[2.0]]])
        out = filter_scan(x, np.array([0.5]), np.array([0.25]), np.array([[1.0]]))
        # v1 = a v0 + b x0 = 0.5 + 0.5
        np.testing.assert_allclose(out.data, [[[1.0]]])

    def test_gradient_wrt_shared_input_sums_over_draws(self, rng):
        """A (batch, time, n) input broadcast over draws accumulates the
        draws-summed gradient, matching the oracle's broadcast rule."""
        draws, batch, steps, n = 4, 2, 6, 3
        x = rng.uniform(-1, 1, (batch, steps, n))
        a, b = _coeffs(rng, n, 1.2, draws)
        v0 = rng.uniform(-0.1, 0.1, (draws, batch, n))
        xt = Tensor(x, requires_grad=True)
        filter_scan(xt, Tensor(a), Tensor(b), Tensor(v0)).sum().backward()
        assert xt.grad.shape == (batch, steps, n)
        xo = Tensor(x, requires_grad=True)
        _unfused_recurrence(xo, Tensor(a), Tensor(b), Tensor(v0)).sum().backward()
        np.testing.assert_allclose(xt.grad, xo.grad, atol=1e-12)
