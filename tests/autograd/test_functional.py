"""Free-function graph builders and the softmax family."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    check_gradients,
    concat,
    log_softmax,
    logsumexp,
    maximum,
    minimum,
    one_hot,
    outer,
    softmax,
    stack,
    where,
)


class TestStackConcat:
    def test_stack_values(self, rng):
        parts = [rng.normal(size=(2, 3)) for _ in range(4)]
        out = stack([Tensor(p) for p in parts], axis=1)
        assert np.allclose(out.data, np.stack(parts, axis=1))

    @pytest.mark.parametrize("axis", [0, 1])
    def test_stack_gradients(self, rng, axis):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        check_gradients(lambda p, q: stack([p, q], axis=axis).tanh(), [a, b])

    def test_concat_values(self, rng):
        parts = [rng.normal(size=(2, k)) for k in (1, 3, 2)]
        out = concat([Tensor(p) for p in parts], axis=1)
        assert np.allclose(out.data, np.concatenate(parts, axis=1))

    @pytest.mark.parametrize("axis", [0, 1])
    def test_concat_gradients(self, rng, axis):
        a, b = rng.normal(size=(2, 2)), rng.normal(size=(2, 2))
        check_gradients(lambda p, q: concat([p, q], axis=axis).exp(), [a, b])

    def test_stack_accepts_raw_arrays(self, rng):
        out = stack([rng.normal(size=3), rng.normal(size=3)])
        assert out.shape == (2, 3)


class TestWhereMaxMin:
    def test_where_values(self):
        out = where([True, False], Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        assert np.array_equal(out.data, [1.0, 2.0])

    def test_where_gradients(self, rng):
        a, b = rng.normal(size=(4,)), rng.normal(size=(4,))
        cond = a > 0
        check_gradients(lambda p, q: where(cond, p * 2.0, q * 3.0), [a, b])

    def test_maximum_minimum_values(self, rng):
        a, b = rng.normal(size=5), rng.normal(size=5)
        assert np.allclose(maximum(Tensor(a), Tensor(b)).data, np.maximum(a, b))
        assert np.allclose(minimum(Tensor(a), Tensor(b)).data, np.minimum(a, b))

    def test_maximum_gradients(self, rng):
        a, b = rng.normal(size=5), rng.normal(size=5)
        b += 0.5 * np.sign(b - a)  # separate values so FD is stable
        check_gradients(lambda p, q: maximum(p, q), [a, b])


class TestSoftmaxFamily:
    def test_softmax_sums_to_one(self, rng):
        out = softmax(Tensor(rng.normal(size=(4, 6)) * 10), axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_stability_large_logits(self):
        out = softmax(Tensor([[1000.0, 1000.0, 0.0]]), axis=-1)
        assert np.all(np.isfinite(out.data))
        assert np.allclose(out.data[0, :2], 0.5, atol=1e-6)

    def test_log_softmax_matches_scipy(self, rng):
        from scipy.special import log_softmax as scipy_ls

        x = rng.normal(size=(3, 5))
        assert np.allclose(log_softmax(Tensor(x), axis=-1).data, scipy_ls(x, axis=-1))

    def test_softmax_gradients(self, rng):
        check_gradients(lambda a: softmax(a, axis=-1), [rng.normal(size=(3, 4))])

    def test_log_softmax_gradients(self, rng):
        check_gradients(lambda a: log_softmax(a, axis=-1), [rng.normal(size=(3, 4))])

    def test_logsumexp_values(self, rng):
        from scipy.special import logsumexp as scipy_lse

        x = rng.normal(size=(3, 5))
        assert np.allclose(logsumexp(Tensor(x), axis=1).data, scipy_lse(x, axis=1))

    def test_logsumexp_keepdims(self, rng):
        out = logsumexp(Tensor(rng.normal(size=(3, 5))), axis=1, keepdims=True)
        assert out.shape == (3, 1)

    def test_logsumexp_gradients(self, rng):
        check_gradients(lambda a: logsumexp(a, axis=-1), [rng.normal(size=(3, 4))])


class TestOneHotOuter:
    def test_one_hot_values(self):
        out = one_hot([0, 2, 1], 3)
        assert np.array_equal(out, np.eye(3)[[0, 2, 1]])

    def test_one_hot_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            one_hot([0, 3], 3)
        with pytest.raises(ValueError):
            one_hot([-1], 3)
        with pytest.raises(ValueError):
            one_hot([[0, 1]], 3)

    def test_outer_values(self, rng):
        a, b = rng.normal(size=3), rng.normal(size=4)
        assert np.allclose(outer(Tensor(a), Tensor(b)).data, np.outer(a, b))

    def test_outer_gradients(self, rng):
        check_gradients(
            lambda p, q: outer(p, q), [rng.normal(size=3), rng.normal(size=4)]
        )

    def test_outer_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            outer(Tensor(rng.normal(size=(2, 2))), Tensor(rng.normal(size=2)))
