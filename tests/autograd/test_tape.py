"""Unit and property tests of the tape compiler.

Covers the capture/compile/replay cycle directly (bit-equal forward
replays, input rebinding, backward into leaf gradients), the peephole
optimizer counters (fusion, dead-gradient elimination), cache
signature invalidation (hypothesis: any shape/dtype/draws/flag change
produces a distinct key, forcing a clean retrace), dynamic-leaf
providers, fallback routing, and the interpreted engine's
grad-bearing-parent pruning that the tape work introduced.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.autograd.tape import (
    CompiledTape,
    TapeCache,
    TapeCapture,
    TapeError,
    active_capture,
    dynamic,
    mark_dynamic,
    tape_counters,
    tracing,
)


def _trace_affine_tanh(rng, batch=4, n_in=3, n_out=2):
    """Capture ``tanh(x @ w + b)`` summed to a scalar loss."""
    x_arr = rng.uniform(-1, 1, (batch, n_in))
    w = Tensor(rng.uniform(-1, 1, (n_in, n_out)), requires_grad=True)
    b = Tensor(rng.uniform(-1, 1, n_out), requires_grad=True)
    capture = TapeCapture()
    capture.tag_input("x", x_arr)
    with tracing(capture):
        x = Tensor(x_arr)
        loss = (x @ w + b).tanh().sum()
    return capture, loss, (x_arr, w, b)


class TestCaptureReplay:
    def test_forward_replay_bit_equal(self, rng):
        capture, loss, (x_arr, _, _) = _trace_affine_tanh(rng)
        compiled = CompiledTape(capture, loss)
        out = compiled.replay_forward({"x": x_arr})
        np.testing.assert_array_equal(out, loss.data)

    def test_rebound_input_matches_fresh_interpretation(self, rng):
        capture, loss, (x_arr, w, b) = _trace_affine_tanh(rng)
        compiled = CompiledTape(capture, loss)
        x2 = rng.uniform(-1, 1, x_arr.shape)
        want = ((Tensor(x2) @ w + b).tanh().sum()).data
        np.testing.assert_array_equal(compiled.replay_forward({"x": x2}), want)

    def test_binding_shape_mismatch_raises(self, rng):
        capture, loss, (x_arr, _, _) = _trace_affine_tanh(rng)
        compiled = CompiledTape(capture, loss)
        with pytest.raises(TapeError, match="binding"):
            compiled.replay_forward({"x": x_arr[:2]})

    def test_missing_binding_raises(self, rng):
        capture, loss, _ = _trace_affine_tanh(rng)
        compiled = CompiledTape(capture, loss)
        with pytest.raises(TapeError, match="missing binding"):
            compiled.replay_forward({})

    def test_backward_matches_interpreted_gradients(self, rng):
        capture, loss, (x_arr, w, b) = _trace_affine_tanh(rng)
        compiled = CompiledTape(capture, loss)
        loss.backward()
        want_w, want_b = w.grad.copy(), b.grad.copy()
        w.grad = b.grad = None
        compiled.replay_forward({"x": x_arr})
        compiled.replay_backward()
        np.testing.assert_array_equal(w.grad, want_w)
        np.testing.assert_array_equal(b.grad, want_b)

    def test_empty_capture_rejected(self):
        with pytest.raises(TapeError, match="empty capture"):
            CompiledTape(TapeCapture(), Tensor(np.ones(2)))

    def test_foreign_output_rejected(self, rng):
        capture, _, _ = _trace_affine_tanh(rng)
        with pytest.raises(TapeError, match="not produced"):
            CompiledTape(capture, Tensor(np.ones(2)))

    def test_unsupported_op_falls_back(self, rng):
        capture, loss, _ = _trace_affine_tanh(rng)
        fake = Tensor(np.ones(2))
        capture(fake, (loss,), "fft", None)  # fabricated unknown op
        with pytest.raises(TapeError, match="unsupported op"):
            CompiledTape(capture, loss)

    def test_captures_cannot_nest(self, rng):
        with tracing(TapeCapture()):
            with pytest.raises(TapeError, match="nest"):
                with tracing(TapeCapture()):
                    pass  # pragma: no cover
        assert active_capture() is None


class TestOptimizerCounters:
    def test_matmul_add_fusion_counted(self, rng):
        before = tape_counters.fused_ops
        capture, loss, (x_arr, _, _) = _trace_affine_tanh(rng)
        compiled = CompiledTape(capture, loss)
        assert tape_counters.fused_ops > before
        np.testing.assert_array_equal(
            compiled.replay_forward({"x": x_arr}), loss.data
        )

    def test_dead_gradient_elimination(self, rng):
        """A non-grad operand contributes no backward step and stays
        grad-free after a replayed backward."""
        x_arr = rng.uniform(-1, 1, (4, 3))
        w = Tensor(rng.uniform(-1, 1, (4, 3)), requires_grad=True)
        frozen = Tensor(rng.uniform(0.5, 1.5, (4, 3)))  # no grad
        before = tape_counters.dead_grad_skips
        capture = TapeCapture()
        capture.tag_input("x", x_arr)
        with tracing(capture):
            loss = ((Tensor(x_arr) * frozen) * w).sum()
        compiled = CompiledTape(capture, loss)
        assert tape_counters.dead_grad_skips > before
        compiled.replay_forward({"x": x_arr})
        compiled.replay_backward()
        assert frozen.grad is None
        np.testing.assert_array_equal(w.grad, x_arr * frozen.data)


class TestDynamicLeaves:
    def test_mark_dynamic_is_noop_outside_capture(self, rng):
        arr = rng.uniform(size=3)
        assert mark_dynamic(arr, lambda: arr) is arr

    def test_provider_redraws_on_replay(self, rng):
        """Each replay re-invokes the provider; the forward tracks it."""
        calls = []

        def provider():
            calls.append(1)
            return np.full(3, float(len(calls)))  # 1.0 at trace, then 2, 3…

        w = Tensor(rng.uniform(size=3), requires_grad=True)
        capture = TapeCapture()
        with tracing(capture):
            eps = Tensor(dynamic(provider))
            loss = (w * eps).sum()
        compiled = CompiledTape(capture, loss)
        first = compiled.replay_forward()
        second = compiled.replay_forward()
        assert first != second  # fresh draw per replay
        np.testing.assert_allclose(second, float(w.data.sum()) * 3.0)

    def test_provider_shape_drift_raises(self, rng):
        shapes = iter([(3,), (4,)])

        def provider():
            return np.ones(next(shapes))

        w = Tensor(rng.uniform(size=3), requires_grad=True)
        capture = TapeCapture()
        with tracing(capture):
            loss = (w * Tensor(dynamic(provider))).sum()
        compiled = CompiledTape(capture, loss)
        with pytest.raises(TapeError, match="provider"):
            compiled.replay_forward()

    def test_ideal_sampler_draws_are_static(self):
        """Deterministic samplers register no per-replay providers."""
        from repro.circuits import UniformVariation, VariationSampler
        from repro.circuits.variation import ideal_sampler

        capture = TapeCapture()
        with tracing(capture):
            ideal_sampler().epsilon((2, 2))
        assert not capture.providers

        capture = TapeCapture()
        sampler = VariationSampler(
            model=UniformVariation(0.1), rng=np.random.default_rng(0)
        )
        with tracing(capture):
            sampler.epsilon((2, 2))
        assert len(capture.providers) == 1


class TestCache:
    def test_lookup_store_failed_routing(self, rng):
        capture, loss, _ = _trace_affine_tanh(rng)
        compiled = CompiledTape(capture, loss)
        cache = TapeCache()
        assert cache.lookup(("k",)) is None
        cache.store(("k",), compiled)
        assert cache.lookup(("k",)) is compiled
        cache.mark_failed(("k",))
        assert cache.lookup(("k",)) == "failed"
        cache.clear()
        assert cache.lookup(("k",)) is None

    def test_trainer_routes_failed_signature_to_interpreter(self, rng):
        """A signature marked failed counts a fallback and still returns
        the interpreted loss."""
        from repro.core import AdaptPNC, Trainer, TrainingConfig
        from dataclasses import replace

        x = rng.uniform(-1, 1, (6, 8))
        y = rng.integers(0, 3, 6)
        model = AdaptPNC(3, rng=np.random.default_rng(0))
        config = replace(TrainingConfig.ci(), graph_backend="tape")
        trainer = Trainer(model, config, seed=0)
        xa = np.asarray(x, dtype=np.float64)
        key = trainer._tape_signature(xa, y, "deterministic", 1)
        trainer._tape_cache.mark_failed(key)
        fallbacks_before = tape_counters.fallbacks
        loss = trainer._loss(xa, y)
        assert tape_counters.fallbacks == fallbacks_before + 1
        want = trainer._interpreted_loss(xa, y)
        assert float(loss.item()) == float(want.item())


@st.composite
def signature_inputs(draw):
    batch = draw(st.integers(min_value=1, max_value=6))
    seq = draw(st.integers(min_value=1, max_value=6))
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    draws = draw(st.integers(min_value=1, max_value=4))
    variant = draw(st.sampled_from(["deterministic", "batched", "sequential"]))
    y = draw(
        st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=4)
    )
    return batch, seq, dtype, draws, variant, tuple(y)


class TestSignatures:
    @staticmethod
    def _trainer():
        from repro.core import AdaptPNC, Trainer

        return Trainer(AdaptPNC(3, rng=np.random.default_rng(0)), seed=0)

    @given(signature_inputs(), signature_inputs())
    @settings(max_examples=50, deadline=None)
    def test_distinct_inputs_produce_distinct_keys(self, a, b):
        """Any shape/dtype/draws/variant/label change changes the key."""
        trainer = self._trainer()
        keys = []
        for batch, seq, dtype, draws, variant, y in (a, b):
            xa = np.zeros((batch, seq), dtype=dtype)
            keys.append(trainer._tape_signature(xa, np.asarray(y), variant, draws))
        assert (keys[0] == keys[1]) == (a == b)

    @given(signature_inputs())
    @settings(max_examples=25, deadline=None)
    def test_same_inputs_produce_equal_keys(self, params):
        """Signatures are stable across calls (memoised label hash)."""
        trainer = self._trainer()
        batch, seq, dtype, draws, variant, y = params
        xa = np.zeros((batch, seq), dtype=dtype)
        ya = np.asarray(y)
        assert trainer._tape_signature(
            xa, ya, variant, draws
        ) == trainer._tape_signature(xa, ya, variant, draws)

    def test_requires_grad_flip_changes_key(self, rng):
        trainer = self._trainer()
        xa = np.zeros((2, 4))
        y = np.zeros(2, dtype=np.int64)
        before = trainer._tape_signature(xa, y, "deterministic", 1)
        param = trainer._sig_params[0]
        param.requires_grad = not param.requires_grad
        try:
            after = trainer._tape_signature(xa, y, "deterministic", 1)
        finally:
            param.requires_grad = not param.requires_grad
        assert before != after


class TestInterpretedParentPruning:
    """The interpreted micro-opt: ``_from_op`` drops non-grad parents
    from ``_parents`` so ``backward()``'s DFS never visits them."""

    def test_non_grad_parents_pruned(self, rng):
        a = Tensor(rng.uniform(size=3), requires_grad=True)
        frozen = Tensor(rng.uniform(size=3))
        out = a * frozen
        assert out._parents == (a,)

    def test_gradients_unaffected_by_pruning(self, rng):
        a = Tensor(rng.uniform(size=3), requires_grad=True)
        frozen = Tensor(rng.uniform(size=3))
        ((a * frozen).sum()).backward()
        np.testing.assert_array_equal(a.grad, frozen.data)
        assert frozen.grad is None

    def test_all_parents_kept_when_all_require_grad(self, rng):
        a = Tensor(rng.uniform(size=3), requires_grad=True)
        b = Tensor(rng.uniform(size=3), requires_grad=True)
        assert (a * b)._parents == (a, b)
