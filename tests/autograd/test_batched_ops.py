"""Gradient checks for the ops behind the batched Monte-Carlo engine.

The vectorized variation engine leans on broadcasting matmul with a
leading draws axis, axis-polymorphic ``swapaxes``, negative-axis
``stack``/``unsqueeze`` and the basic-index fast path of ``__getitem__``
— each is certified here against central finite differences.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, stack


class TestSwapaxes:
    def test_forward_matches_numpy(self, rng):
        data = rng.normal(size=(2, 3, 4))
        out = Tensor(data).swapaxes(-1, -2)
        np.testing.assert_array_equal(out.data, np.swapaxes(data, -1, -2))

    def test_double_swap_is_identity(self, rng):
        data = rng.normal(size=(2, 3, 4))
        out = Tensor(data).swapaxes(0, 2).swapaxes(0, 2)
        np.testing.assert_array_equal(out.data, data)

    def test_gradient(self, rng):
        x = rng.normal(size=(2, 3, 4))
        w = rng.normal(size=(2, 4, 3))
        check_gradients(lambda a, b: (a.swapaxes(-1, -2) * b).sum(), [x, w])

    def test_gradient_leading_axes(self, rng):
        x = rng.normal(size=(3, 2, 4))
        check_gradients(lambda a: (a.swapaxes(0, 1) ** 2).sum(), [x])


class TestBatchedMatmul:
    def test_broadcasts_draws_axis(self, rng):
        x = rng.normal(size=(5, 3))        # (batch, in)
        w = rng.normal(size=(4, 3, 2))     # (draws, in, out)
        out = Tensor(x) @ Tensor(w)
        assert out.shape == (4, 5, 2)
        for d in range(4):
            np.testing.assert_allclose(out.data[d], x @ w[d], atol=1e-12)

    def test_gradient_shared_lhs(self, rng):
        """(batch, in) @ (draws, in, out): the lhs grad must sum over draws."""
        x = rng.normal(size=(2, 3))
        w = rng.normal(size=(3, 3, 2))
        check_gradients(lambda a, b: a @ b, [x, w])

    def test_gradient_stacked_lhs(self, rng):
        x = rng.normal(size=(3, 2, 3))
        w = rng.normal(size=(3, 3, 2))
        check_gradients(lambda a, b: a @ b, [x, w])


class TestBasicIndexBackward:
    def test_last_step_slice_gradient(self, rng):
        """``seq[..., -1, :]`` — the classifier's readout on a
        (draws, batch, time, features) stack."""
        x = rng.normal(size=(2, 2, 3, 2))
        check_gradients(lambda t: (t[..., -1, :] ** 2).sum(), [x])

    def test_integer_index_gradient(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradients(lambda t: (t[1] * 2.0).sum(), [x])

    def test_fancy_index_accumulates(self, rng):
        """Repeated fancy indices must accumulate (np.add.at path)."""
        x = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        y = x[np.array([0, 0, 1])].sum()
        y.backward()
        np.testing.assert_allclose(x.grad[0], [2.0, 2.0])
        np.testing.assert_allclose(x.grad[2], [0.0, 0.0])


class TestStackNegativeAxis:
    def test_forward_shape(self, rng):
        parts = [Tensor(rng.normal(size=(2, 3))) for _ in range(4)]
        assert stack(parts, axis=-2).shape == (2, 4, 3)

    def test_gradient(self, rng):
        xs = [rng.normal(size=(2, 3)) for _ in range(3)]
        check_gradients(lambda *ts: (stack(list(ts), axis=-2) ** 2).sum(), xs)


class TestRecurrenceShaped:
    """Property: the unrolled filter recurrence is linear in its input."""

    @pytest.mark.parametrize("shape", [(2, 4, 3), (2, 2, 4, 3)])
    def test_linearity(self, rng, shape):
        a = Tensor(rng.uniform(0.5, 0.9, size=shape[-1]))
        b = Tensor(rng.uniform(0.1, 0.5, size=shape[-1]))

        def run(x: Tensor) -> Tensor:
            v = Tensor(np.zeros(shape[:-2] + shape[-1:]))
            outs = []
            for k in range(shape[-2]):
                v = a * v + b * x[..., k, :]
                outs.append(v)
            return stack(outs, axis=-2)

        x1, x2 = rng.normal(size=shape), rng.normal(size=shape)
        lhs = run(Tensor(x1) + Tensor(x2)).data
        rhs = run(Tensor(x1)).data + run(Tensor(x2)).data
        np.testing.assert_allclose(lhs, rhs, atol=1e-12)
