"""Learned-filter frequency analysis."""

import numpy as np
import pytest

from repro.analysis import (
    filter_cutoff_frequencies,
    filter_frequency_response,
    stage_response,
)
from repro.circuits import (
    FirstOrderLearnableFilter,
    SecondOrderLearnableFilter,
    ideal_sampler,
)


def make_first(r, c, dt=1e-3):
    flt = FirstOrderLearnableFilter(1, dt=dt, sampler=ideal_sampler(), rng=np.random.default_rng(0))
    flt.stage.log_r.data = np.log([r])
    flt.stage.log_c.data = np.log([c])
    return flt


def make_second(r1, c1, r2, c2, dt=1e-3):
    flt = SecondOrderLearnableFilter(1, dt=dt, sampler=ideal_sampler(), rng=np.random.default_rng(0))
    flt.stage1.log_r.data = np.log([r1])
    flt.stage1.log_c.data = np.log([c1])
    flt.stage2.log_r.data = np.log([r2])
    flt.stage2.log_c.data = np.log([c2])
    return flt


class TestClosedForm:
    def test_dc_limit_unity(self):
        flt = make_first(500.0, 10e-6)
        h = filter_frequency_response(flt, np.array([1e-3 / (2 * np.pi)]))
        assert np.isclose(np.abs(h[0, 0]), 1.0, atol=1e-3)

    def test_matches_empirical_sine_gain(self):
        """Closed-form |H(f)| equals the gain measured by actually
        filtering a sine through the recurrence."""
        flt = make_first(800.0, 20e-6)
        f = 30.0
        h = filter_frequency_response(flt, np.array([f]))
        from repro.autograd import Tensor

        steps = 4000
        t = np.arange(steps) * flt.dt
        x = np.sin(2 * np.pi * f * t)
        out = flt(Tensor(x.reshape(1, steps, 1))).data[0, :, 0]
        settled = out[steps // 2 :]
        empirical = (settled.max() - settled.min()) / 2.0
        assert np.isclose(empirical, np.abs(h[0, 0]), rtol=0.02)

    def test_so_is_product_of_stages(self):
        flt = make_second(400, 2e-5, 800, 1e-5)
        freqs = np.logspace(0, 2, 10)
        combined = filter_frequency_response(flt, freqs)
        s1 = stage_response(flt.stage1, freqs, flt.dt)
        s2 = stage_response(flt.stage2, freqs, flt.dt)
        assert np.allclose(combined, s1 * s2)

    def test_so_rolls_off_faster(self):
        first = make_first(500, 2e-5)
        second = make_second(500, 2e-5, 500, 2e-5)
        f_hi = np.array([200.0])
        h1 = np.abs(filter_frequency_response(first, f_hi))[0, 0]
        h2 = np.abs(filter_frequency_response(second, f_hi))[0, 0]
        assert h2 < h1**1.5  # much steeper than a single pole

    def test_matches_continuous_rc_below_nyquist(self):
        """Backward-Euler response tracks the analog RC at low freq."""
        r, c = 500.0, 2e-5
        flt = make_first(r, c, dt=1e-4)  # oversampled
        freqs = np.array([1.0, 5.0, 10.0])
        digital = np.abs(filter_frequency_response(flt, freqs))[:, 0]
        analog = 1.0 / np.sqrt(1.0 + (2 * np.pi * freqs * r * c) ** 2)
        assert np.allclose(digital, analog, rtol=0.02)

    def test_rejects_out_of_band_frequencies(self):
        flt = make_first(500, 1e-5)
        with pytest.raises(ValueError):
            filter_frequency_response(flt, np.array([0.0]))
        with pytest.raises(ValueError):
            filter_frequency_response(flt, np.array([1e9]))

    def test_rejects_unknown_filter_type(self):
        with pytest.raises(TypeError):
            filter_frequency_response(object(), np.array([1.0]))


class TestCutoffs:
    def test_cutoff_matches_analog_pole(self):
        r, c = 500.0, 2e-5  # f_c = 15.9 Hz, well below 500 Hz Nyquist
        flt = make_first(r, c)
        fc = filter_cutoff_frequencies(flt)[0]
        assert np.isclose(fc, 1.0 / (2 * np.pi * r * c), rtol=0.1)

    def test_per_channel_cutoffs(self):
        flt = FirstOrderLearnableFilter(2, dt=1e-3, sampler=ideal_sampler(), rng=np.random.default_rng(0))
        flt.stage.log_r.data = np.log([200.0, 1000.0])
        flt.stage.log_c.data = np.log([1e-5, 5e-5])
        fcs = filter_cutoff_frequencies(flt)
        assert fcs[0] > fcs[1]  # smaller tau -> higher cutoff

    def test_wideband_channel_reports_nyquist(self):
        flt = make_first(60.0, 1e-7)  # tau = 6 us: flat within band
        fc = filter_cutoff_frequencies(flt)[0]
        assert np.isclose(fc, 0.5 / flt.dt, rtol=0.01)
