"""Fabrication-fault injection."""

import numpy as np
import pytest

from repro.analysis import FAULT_KINDS, fault_sweep, inject_faults
from repro.core import AdaptPNC, Trainer, TrainingConfig
from repro.data import load_dataset


@pytest.fixture(scope="module")
def trained():
    ds = load_dataset("Slope", n_samples=60, seed=0)
    model = AdaptPNC(3, rng=np.random.default_rng(0))
    from dataclasses import replace

    Trainer(model, replace(TrainingConfig.ci(), max_epochs=30), variation_aware=True, seed=0).fit(
        ds.x_train, ds.y_train, ds.x_val, ds.y_val
    )
    return model, ds


class TestInjectFaults:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_accuracy_in_range(self, trained, kind):
        model, ds = trained
        result = inject_faults(model, ds.x_test, ds.y_test, kind, n_faults=1, trials=4)
        assert 0.0 <= result.mean_accuracy <= 1.0
        assert result.kind == kind

    def test_model_restored_afterwards(self, trained):
        model, ds = trained
        before = model.state_dict()
        inject_faults(model, ds.x_test, ds.y_test, "open_crossing", trials=3)
        after = model.state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key]), key

    def test_more_faults_no_better(self, trained):
        """Monotone-ish degradation: many defects can't beat few."""
        model, ds = trained
        few = inject_faults(
            model, ds.x_test, ds.y_test, "stuck_activation", n_faults=1, trials=8, seed=1
        )
        many = inject_faults(
            model, ds.x_test, ds.y_test, "stuck_activation", n_faults=6, trials=8, seed=1
        )
        assert many.mean_accuracy <= few.mean_accuracy + 0.1

    def test_deterministic_per_seed(self, trained):
        model, ds = trained
        a = inject_faults(model, ds.x_test, ds.y_test, "open_filter", trials=3, seed=5)
        b = inject_faults(model, ds.x_test, ds.y_test, "open_filter", trials=3, seed=5)
        assert a.mean_accuracy == b.mean_accuracy

    def test_unknown_kind_rejected(self, trained):
        model, ds = trained
        with pytest.raises(ValueError):
            inject_faults(model, ds.x_test, ds.y_test, "meteor_strike")

    def test_bad_counts_rejected(self, trained):
        model, ds = trained
        with pytest.raises(ValueError):
            inject_faults(model, ds.x_test, ds.y_test, "open_filter", n_faults=0)


class TestFaultSweep:
    def test_sweep_structure(self, trained):
        model, ds = trained
        sweep = fault_sweep(model, ds.x_test, ds.y_test, max_faults=2, trials=3)
        assert set(sweep) == set(FAULT_KINDS)
        for results in sweep.values():
            assert [r.n_faults for r in results] == [1, 2]

    def test_rejects_bad_max(self, trained):
        model, ds = trained
        with pytest.raises(ValueError):
            fault_sweep(model, ds.x_test, ds.y_test, max_faults=0)
