"""Process-corner analysis."""

import numpy as np
import pytest

from repro.analysis import CORNERS, ConstantVariation, corner_analysis
from repro.core import AdaptPNC, Trainer, TrainingConfig, accuracy
from repro.data import load_dataset


@pytest.fixture(scope="module")
def trained():
    ds = load_dataset("Slope", n_samples=60, seed=0)
    model = AdaptPNC(3, rng=np.random.default_rng(0))
    from dataclasses import replace

    Trainer(model, replace(TrainingConfig.ci(), max_epochs=30), variation_aware=True, seed=0).fit(
        ds.x_train, ds.y_train, ds.x_val, ds.y_val
    )
    return model, ds


class TestConstantVariation:
    def test_deterministic(self, rng):
        eps = ConstantVariation(0.9).sample((5, 5), rng)
        assert np.all(eps == 0.9)

    def test_spread(self):
        assert np.isclose(ConstantVariation(1.1).spread(), 0.1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantVariation(0.0)


class TestCornerAnalysis:
    def test_all_five_corners_reported(self, trained):
        model, ds = trained
        report = corner_analysis(model, ds.x_test, ds.y_test)
        assert set(report.accuracy) == set(CORNERS)

    def test_tt_matches_nominal_accuracy(self, trained):
        model, ds = trained
        report = corner_analysis(model, ds.x_test, ds.y_test)
        assert np.isclose(report.accuracy["TT"], accuracy(model, ds.x_test, ds.y_test))

    def test_deterministic_repeatable(self, trained):
        model, ds = trained
        a = corner_analysis(model, ds.x_test, ds.y_test)
        b = corner_analysis(model, ds.x_test, ds.y_test)
        assert a.accuracy == b.accuracy

    def test_worst_corner_and_spread(self, trained):
        model, ds = trained
        report = corner_analysis(model, ds.x_test, ds.y_test)
        worst = report.worst_corner()
        assert report.accuracy[worst] == min(report.accuracy.values())
        assert report.spread() >= 0.0

    def test_samplers_restored(self, trained):
        model, ds = trained
        before = [
            (b.filters.sampler, b.crossbar.sampler, b.activation.sampler)
            for b in model.blocks
        ]
        corner_analysis(model, ds.x_test, ds.y_test)
        after = [
            (b.filters.sampler, b.crossbar.sampler, b.activation.sampler)
            for b in model.blocks
        ]
        assert before == after

    def test_rejects_bad_delta(self, trained):
        model, ds = trained
        with pytest.raises(ValueError):
            corner_analysis(model, ds.x_test, ds.y_test, delta=0.0)

    def test_va_trained_model_survives_corners(self, trained):
        """The robustness claim at the corners: a VA-trained model keeps
        most of its nominal accuracy even at SS/FF extremes."""
        model, ds = trained
        report = corner_analysis(model, ds.x_test, ds.y_test, delta=0.10)
        assert min(report.accuracy.values()) > report.accuracy["TT"] - 0.35
