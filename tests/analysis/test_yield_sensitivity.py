"""Yield analysis and component-group sensitivity."""

import numpy as np
import pytest

from repro.analysis import (
    SensitivityReport,
    YieldResult,
    component_sensitivity,
    estimate_yield,
    yield_curve,
)
from repro.core import AdaptPNC, ElmanClassifier, Trainer, TrainingConfig
from repro.data import load_dataset


@pytest.fixture(scope="module")
def trained():
    ds = load_dataset("Slope", n_samples=60, seed=0)
    model = AdaptPNC(3, rng=np.random.default_rng(0))
    from dataclasses import replace

    cfg = replace(TrainingConfig.ci(), max_epochs=25)
    Trainer(model, cfg, variation_aware=True, seed=0).fit(
        ds.x_train, ds.y_train, ds.x_val, ds.y_val
    )
    return model, ds


class TestYield:
    def test_yield_in_unit_interval(self, trained):
        model, ds = trained
        result = estimate_yield(model, ds.x_test, ds.y_test, threshold=0.5, instances=10)
        assert 0.0 <= result.yield_fraction <= 1.0
        assert len(result.accuracies) == 10

    def test_yield_monotone_in_threshold(self, trained):
        model, ds = trained
        curve = yield_curve(
            model, ds.x_test, ds.y_test, thresholds=(0.3, 0.6, 0.9), instances=10
        )
        values = [curve[t] for t in sorted(curve)]
        assert values == sorted(values, reverse=True)

    def test_zero_threshold_full_yield(self, trained):
        model, ds = trained
        result = estimate_yield(model, ds.x_test, ds.y_test, threshold=0.0, instances=5)
        assert result.yield_fraction == 1.0

    def test_worst_case_below_mean(self, trained):
        model, ds = trained
        result = estimate_yield(model, ds.x_test, ds.y_test, instances=10)
        assert result.worst_case <= result.mean_accuracy

    def test_seed_reproducibility(self, trained):
        model, ds = trained
        a = estimate_yield(model, ds.x_test, ds.y_test, instances=5, seed=3)
        b = estimate_yield(model, ds.x_test, ds.y_test, instances=5, seed=3)
        assert np.array_equal(a.accuracies, b.accuracies)

    def test_sampler_restored(self, trained):
        model, ds = trained
        before = model.sampler
        estimate_yield(model, ds.x_test, ds.y_test, instances=3)
        assert model.sampler is before

    def test_rejects_hardware_agnostic(self, trained):
        _, ds = trained
        with pytest.raises(TypeError):
            estimate_yield(ElmanClassifier(3), ds.x_test, ds.y_test)

    @pytest.mark.parametrize("kwargs", [{"threshold": 1.5}, {"instances": 0}])
    def test_rejects_bad_arguments(self, trained, kwargs):
        model, ds = trained
        with pytest.raises(ValueError):
            estimate_yield(model, ds.x_test, ds.y_test, **kwargs)


class TestSensitivity:
    def test_report_structure(self, trained):
        model, ds = trained
        report = component_sensitivity(model, ds.x_test, ds.y_test, mc_samples=3)
        assert set(report.group_accuracy) == {"filters", "crossbar", "activation"}
        assert 0.0 <= report.nominal_accuracy <= 1.0
        assert report.most_sensitive() in report.group_accuracy

    def test_drops_relative_to_nominal(self, trained):
        model, ds = trained
        report = component_sensitivity(model, ds.x_test, ds.y_test, mc_samples=3)
        for group, drop in report.drops().items():
            assert np.isclose(
                drop, report.nominal_accuracy - report.group_accuracy[group]
            )

    def test_samplers_restored(self, trained):
        model, ds = trained
        before = [
            (b.filters.sampler, b.crossbar.sampler, b.activation.sampler)
            for b in model.blocks
        ]
        component_sensitivity(model, ds.x_test, ds.y_test, mc_samples=2)
        after = [
            (b.filters.sampler, b.crossbar.sampler, b.activation.sampler)
            for b in model.blocks
        ]
        assert before == after

    def test_rejects_zero_samples(self, trained):
        model, ds = trained
        with pytest.raises(ValueError):
            component_sensitivity(model, ds.x_test, ds.y_test, mc_samples=0)
