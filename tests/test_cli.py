"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize(
        "name", ["table1", "table2", "table3", "fig5", "fig6", "fig7", "mu"]
    )
    def test_artifact_commands_registered(self, name):
        args = build_parser().parse_args([name, "--scale", "smoke"])
        assert args.command == name
        assert args.scale == "smoke"

    def test_report_command(self):
        args = build_parser().parse_args(["report", "some.json", "--output", "out.md"])
        assert args.results == "some.json"

    def test_export_defaults(self):
        args = build_parser().parse_args(["export", "Slope"])
        assert args.output == "adapt_pnc.cir"
        assert not args.coupled

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.artefact == "table1"
        assert args.executor == "parallel"
        assert args.max_workers == 2
        assert args.cache_dir == "sweep_cache"
        assert not args.no_cache and not args.no_telemetry

    def test_stream_eval_defaults(self):
        args = build_parser().parse_args(["stream-eval"])
        assert args.dataset == "Slope"
        assert args.scenarios == ["drift", "dropout"]
        assert args.chunk_size == 16
        assert not args.no_telemetry

    def test_stream_eval_flags(self):
        args = build_parser().parse_args(
            [
                "stream-eval", "--scenarios", "stuck", "long-horizon",
                "--chunk-size", "1", "--output", "s.json", "--no-telemetry",
            ]
        )
        assert args.scenarios == ["stuck", "long-horizon"]
        assert args.chunk_size == 1
        assert args.output == "s.json" and args.no_telemetry

    def test_stream_eval_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream-eval", "--scenarios", "nope"])

    def test_sweep_flags(self):
        args = build_parser().parse_args(
            [
                "sweep", "--artefact", "fig7", "--executor", "serial",
                "--timeout", "30", "--retries", "2", "--no-cache",
            ]
        )
        assert args.artefact == "fig7"
        assert args.executor == "serial"
        assert args.timeout == 30.0 and args.retries == 2
        assert args.no_cache


class TestExecution:
    def test_mu_command_runs(self, capsys):
        assert main(["mu", "--samples", "3"]) == 0
        out = capsys.readouterr().out
        assert "mu_min" in out and "within_paper_band" in out

    def test_table3_smoke_runs(self, capsys):
        assert main(["table3", "--scale", "smoke"]) == 0
        assert "Average" in capsys.readouterr().out

    def test_fig6_runs(self, capsys):
        assert main(["fig6"]) == 0
        assert "jittering" in capsys.readouterr().out

    def test_report_renders_fixture(self, tmp_path, capsys):
        import json

        record = {"scale": "smoke", "datasets": [], "seeds": []}
        path = tmp_path / "r.json"
        path.write_text(json.dumps(record))
        assert main(["report", str(path)]) == 0
        assert "evaluation report" in capsys.readouterr().out

    @pytest.mark.slow
    def test_export_writes_netlist(self, tmp_path):
        out = tmp_path / "net.cir"
        code = main(
            ["export", "Slope", "--output", str(out), "--samples", "40"]
        )
        assert code == 0
        text = out.read_text()
        assert ".title adapt_pnc_Slope" in text
        assert "tanh(" in text
