"""Hyper-parameter search (the Ray Tune substitute)."""

import numpy as np
import pytest

from repro.tuning import (
    SearchSpace,
    choice,
    default_space,
    loguniform,
    random_search,
    successive_halving,
    uniform,
)


class TestDimensions:
    def test_uniform_bounds(self, rng):
        dim = uniform(2.0, 3.0)
        samples = [dim.sample(rng) for _ in range(200)]
        assert min(samples) >= 2.0 and max(samples) < 3.0

    def test_loguniform_bounds(self, rng):
        dim = loguniform(1e-3, 1.0)
        samples = np.array([dim.sample(rng) for _ in range(200)])
        assert samples.min() >= 1e-3 and samples.max() < 1.0

    def test_loguniform_covers_decades(self, rng):
        dim = loguniform(1e-3, 1.0)
        samples = np.array([dim.sample(rng) for _ in range(500)])
        # roughly a third of log-uniform draws per decade
        assert (samples < 1e-2).mean() > 0.15

    def test_choice(self, rng):
        dim = choice([1, 2, 3])
        assert all(dim.sample(rng) in (1, 2, 3) for _ in range(50))

    @pytest.mark.parametrize(
        "factory,args",
        [(uniform, (1.0, 1.0)), (loguniform, (0.0, 1.0)), (choice, ([],))],
    )
    def test_rejects_degenerate(self, factory, args):
        with pytest.raises(ValueError):
            factory(*args)


class TestSearchSpace:
    def test_sample_has_all_dimensions(self, rng):
        space = default_space()
        config = space.sample(rng)
        assert set(config) == {"jitter_sigma", "time_warp_strength", "crop_fraction"}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SearchSpace({})


class TestRandomSearch:
    def test_results_sorted_best_first(self, rng):
        space = SearchSpace({"x": uniform(0.0, 1.0)})
        results = random_search(lambda c: -((c["x"] - 0.5) ** 2), space, n_trials=20, seed=0)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_finds_near_optimum(self):
        space = SearchSpace({"x": uniform(0.0, 1.0)})
        best = random_search(lambda c: -((c["x"] - 0.5) ** 2), space, n_trials=50, seed=0)[0]
        assert abs(best.config["x"] - 0.5) < 0.1

    def test_deterministic_per_seed(self):
        space = SearchSpace({"x": uniform(0.0, 1.0)})
        a = random_search(lambda c: c["x"], space, n_trials=5, seed=3)
        b = random_search(lambda c: c["x"], space, n_trials=5, seed=3)
        assert [r.config["x"] for r in a] == [r.config["x"] for r in b]

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            random_search(lambda c: 0.0, default_space(), n_trials=0)


class TestSuccessiveHalving:
    def test_survivors_shrink(self):
        space = SearchSpace({"x": uniform(0.0, 1.0)})
        calls = []

        def objective(config, budget):
            calls.append(budget)
            return config["x"]

        results = successive_halving(
            objective, space, n_trials=8, budgets=(1, 2, 4), keep_fraction=0.5, seed=0
        )
        assert len(results) == 2  # 8 -> 4 -> 2
        assert calls.count(1) == 8 and calls.count(2) == 4 and calls.count(4) == 2

    def test_best_config_survives(self):
        space = SearchSpace({"x": uniform(0.0, 1.0)})
        all_round1 = []

        def objective(config, budget):
            if budget == 1:
                all_round1.append(config["x"])
            return config["x"]

        results = successive_halving(objective, space, n_trials=10, budgets=(1, 2), seed=1)
        assert np.isclose(results[0].config["x"], max(all_round1))

    @pytest.mark.parametrize("kwargs", [{"budgets": ()}, {"budgets": (0,)}, {"keep_fraction": 1.0}])
    def test_rejects_bad_schedule(self, kwargs):
        with pytest.raises(ValueError):
            successive_halving(lambda c, b: 0.0, default_space(), **kwargs)


class TestTuneAugmentation:
    def test_end_to_end_tiny(self):
        from repro.tuning import tune_augmentation

        best = tune_augmentation("Slope", n_trials=2, n_samples=40, max_epochs=3)
        assert 0.0 <= best.score <= 1.0
        assert 0.6 <= best.config["crop_fraction"] <= 1.0
