"""Fleet-scheduler regressions: backpressure, eviction races, telemetry.

``/predict_stream`` chunks ride a bounded queue into a per-model
:class:`~repro.core.MultiStreamSession` fleet.  This suite pins the
failure-path contracts the happy-path endpoint suite does not reach:

* a full stream queue maps to HTTP 503 with ``Retry-After`` (and a
  rejected *opening* chunk rolls its fleet row back — no leak);
* LRU eviction racing an in-flight chunk resolves cleanly — the chunk
  either completes bit-correct or fails with 404, never steps a
  re-assigned row, and bystander sessions stay on the oracle;
* coalesced fleet steps surface in ``stats`` and ``stream.batch.*``
  telemetry.
"""

import queue
import threading
import time

import numpy as np
import pytest

from repro.core import StreamingSession
from repro.serve import (
    MicroBatchService,
    QueueFullError,
    ServeHTTPServer,
    ServeOptions,
    UnknownSessionError,
)
from repro.telemetry import Run, read_events

from .test_service import call

pytestmark = pytest.mark.serve


def make_service(served_model, **overrides):
    options = ServeOptions(**{"window_s": 0.001, **overrides})
    svc = MicroBatchService(options)
    svc.register("demo", served_model)
    return svc


def _evict(svc, session_id):
    """What LRU pressure does to a session, made deterministic: detach
    the entry and park its fleet row (same code path ``_open_stream``
    takes when ``max_sessions`` overflows)."""
    with svc._sessions_lock:
        entry = svc._sessions.pop(session_id)
        entry.evicted = True
    svc._park_dead_row(session_id, entry)
    return entry


class TestQueueFullBackpressure:
    def test_http_503_with_retry_after(self, served_model, series):
        """QueueFullError from the stream path → 503 + Retry-After."""
        svc = make_service(served_model)
        original = svc.predict_stream

        def rejecting(*args, **kwargs):
            raise QueueFullError("stream queue full (128 pending)")

        svc.predict_stream = rejecting
        try:
            with ServeHTTPServer(svc, port=0).start_background() as srv:
                status, payload, headers = call(
                    srv,
                    "POST",
                    "/predict_stream",
                    {"model": "demo", "series": [float(v) for v in series]},
                )
            assert status == 503
            assert "queue full" in payload["error"]
            assert headers.get("Retry-After") == "1"
        finally:
            svc.predict_stream = original
            svc.close()

    def test_queue_full_raises_and_counts(self, served_model, series):
        svc = make_service(served_model)
        put = svc._stream_queue.put_nowait
        try:

            def full(item):
                raise queue.Full

            svc._stream_queue.put_nowait = full
            with pytest.raises(QueueFullError, match="stream queue full"):
                svc.predict_stream("demo", series[:4])
            assert svc.stats.snapshot()["by_status"].get("queue_full") == 1
        finally:
            svc._stream_queue.put_nowait = put
            svc.close()

    def test_rejected_open_rolls_back_the_fleet_row(self, served_model, series):
        """A 503'd *opening* chunk must not leak a session or a row."""
        svc = make_service(served_model, max_sessions=4)
        try:
            opened = svc.predict_stream("demo", series[:4])  # fleet exists now
            fleet = svc._fleets["demo"]

            def full(item):
                raise queue.Full

            put = svc._stream_queue.put_nowait
            try:
                svc._stream_queue.put_nowait = full
                with pytest.raises(QueueFullError):
                    svc.predict_stream("demo", series[:4])
            finally:
                svc._stream_queue.put_nowait = put
            assert set(svc._sessions) == {opened["session"]}
            # the parked row is reclaimed by the next fleet step
            svc.predict_stream(
                "demo", series[4:8], session_id=opened["session"]
            )
            assert fleet.engine.occupancy == 1
        finally:
            svc.close()


class TestEvictionRace:
    def test_evicted_before_dispatch_fails_clean_404(
        self, served_model, series, t
    ):
        """A chunk whose session is evicted while it waits for the fleet
        lock dies with UnknownSessionError — it never steps the row."""
        svc = make_service(served_model, max_sessions=4)
        try:
            victim = svc.predict_stream("demo", series[:4])["session"]
            fleet = svc._fleets["demo"]
            outcome = {}
            with fleet.lock:  # hold the fleet so the batch cannot start
                worker = threading.Thread(
                    target=lambda: outcome.update(
                        error=_expect_raises(
                            lambda: svc.predict_stream(
                                "demo", series[4:8], session_id=victim
                            )
                        )
                    )
                )
                worker.start()
                # wait until the chunk is enqueued (unfinished_tasks is
                # monotonic on put; the opening chunk already counted 1),
                # then evict while the batch is stalled on fleet.lock
                _spin_until(
                    lambda: svc._stream_queue.unfinished_tasks >= 2, t(5.0)
                )
                _evict(svc, victim)
            worker.join(timeout=t(5.0))
            assert not worker.is_alive()
            assert isinstance(outcome["error"], UnknownSessionError)
            # and over HTTP the next chunk is a plain 404
            with pytest.raises(UnknownSessionError):
                svc.predict_stream("demo", series[:4], session_id=victim)
        finally:
            svc.close()

    def test_evicted_during_processing_completes_then_404s(
        self, served_model, series, t
    ):
        """Eviction landing *mid-step* lets the in-flight chunk finish
        bit-correct; only the next chunk sees the 404."""
        svc = make_service(served_model, max_sessions=4)
        try:
            victim = svc.predict_stream("demo", series[:4])["session"]
            fleet = svc._fleets["demo"]
            started, release = threading.Event(), threading.Event()
            inner = fleet.engine.process_many

            def stalling(chunks):
                started.set()
                release.wait(timeout=30.0)
                return inner(chunks)

            fleet.engine.process_many = stalling
            outcome = {}
            worker = threading.Thread(
                target=lambda: outcome.update(
                    result=svc.predict_stream(
                        "demo", series[4:8], session_id=victim
                    )
                )
            )
            worker.start()
            assert started.wait(timeout=t(5.0))
            _evict(svc, victim)  # flips mid-step — too late to stop it
            release.set()
            worker.join(timeout=t(5.0))
            fleet.engine.process_many = inner
            assert not worker.is_alive()
            oracle = StreamingSession(served_model).process(series[:8])
            assert outcome["result"]["logits"] == [float(v) for v in oracle[-1]]
            assert outcome["result"]["steps_seen"] == 8
            with pytest.raises(UnknownSessionError, match=victim):
                svc.predict_stream("demo", series[8:12], session_id=victim)
        finally:
            release.set()
            svc.close()

    def test_bystander_sessions_survive_the_race_bit_equal(
        self, served_model, series
    ):
        """Evicting one session never perturbs another's filter state."""
        svc = make_service(served_model, max_sessions=4)
        try:
            keeper = svc.predict_stream("demo", series[:6])["session"]
            victim = svc.predict_stream("demo", series[:3])["session"]
            _evict(svc, victim)
            final = svc.predict_stream("demo", series[6:], session_id=keeper)
            oracle = StreamingSession(served_model).process(series)
            assert final["logits"] == [float(v) for v in oracle[-1]]
            assert final["steps_seen"] == series.size
            assert svc._fleets["demo"].engine.occupancy == 1
        finally:
            svc.close()

    def test_lru_eviction_emits_telemetry_and_counts(
        self, served_model, series, tmp_path
    ):
        with Run(dir=tmp_path / "run"):
            with make_service(served_model, max_sessions=2) as svc:
                first = svc.predict_stream("demo", series[:2])["session"]
                for _ in range(2):  # overflow the LRU
                    svc.predict_stream("demo", series[:2])
                with pytest.raises(UnknownSessionError):
                    svc.predict_stream("demo", series[:2], session_id=first)
                assert svc.stats.snapshot()["stream"]["evictions"] == 1
        events = read_events(tmp_path / "run" / "events.jsonl")
        (evict,) = [e for e in events if e["kind"] == "stream.batch.evict"]
        assert evict["session"] == first
        assert evict["reason"] == "lru"


class TestFleetCoalescing:
    def test_concurrent_chunks_step_as_one_batch(self, served_model, series, t):
        """Two sessions' chunks inside one window share a fleet step,
        and each still lands exactly on its single-stream oracle."""
        svc = make_service(served_model, stream_window_s=t(0.25))
        try:
            a = svc.predict_stream("demo", series[:4], timeout=t(10.0))
            b = svc.predict_stream("demo", series[:7], timeout=t(10.0))
            results = {}

            def feed(key, sid, chunk):
                results[key] = svc.predict_stream(
                    "demo", chunk, session_id=sid, timeout=t(10.0)
                )

            threads = [
                threading.Thread(
                    target=feed, args=("a", a["session"], series[4:10])
                ),
                threading.Thread(
                    target=feed, args=("b", b["session"], series[7:12])
                ),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=t(20.0))
            assert results["a"]["batch_rows"] == 2
            assert results["b"]["batch_rows"] == 2
            for key, hi in (("a", 10), ("b", 12)):
                oracle = StreamingSession(served_model).process(series[:hi])
                assert results[key]["logits"] == [float(v) for v in oracle[-1]]
        finally:
            svc.close()

    def test_stream_stats_and_step_telemetry(self, served_model, series, tmp_path):
        with Run(dir=tmp_path / "run"):
            with make_service(served_model) as svc:
                sid = svc.predict_stream("demo", series[:8])["session"]
                svc.predict_stream("demo", series[8:], session_id=sid)
                stream = svc.stats.snapshot()["stream"]
                assert stream["batches"] == 2
                assert stream["rows_stepped"] == 2
                assert stream["max_occupancy"] == 1
        events = read_events(tmp_path / "run" / "events.jsonl")
        kinds = [e["kind"] for e in events]
        assert "stream.batch.open" in kinds
        steps = [e for e in events if e["kind"] == "stream.batch.step"]
        assert len(steps) == 2
        assert all(e["rows"] == 1 and e["capacity"] == 64 for e in steps)
        assert steps[0]["steps"] == 8 and steps[1]["steps"] == series.size - 8

    def test_report_renders_fleet_stepping(self, served_model, series, tmp_path):
        from repro.report import render_run

        with Run(dir=tmp_path / "run"):
            with make_service(served_model) as svc:
                sid = svc.predict_stream("demo", series[:8])["session"]
                svc.predict_stream("demo", series[8:], session_id=sid)
        text = render_run(tmp_path / "run")
        assert "## Streaming" in text
        assert "Fleet stepping" in text


def _expect_raises(fn):
    try:
        fn()
    except Exception as exc:  # noqa: BLE001 — the exception IS the result
        return exc
    return None


def _spin_until(predicate, budget, interval=0.002):
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()
