"""Module-level fault-injection payloads for plan-worker tests.

These stand in for compiled plans inside a worker process (anything
callable can be ``load``-ed).  They live at module level so the pipe's
pickle-by-reference can resolve them in a forked child.
"""

import os
import time

import numpy as np


def hang_forever(x):
    """Simulates a wedged worker: never returns within any deadline."""
    time.sleep(3600)


def crash_hard(x):
    """Simulates a segfault-style death: the interpreter exits without
    sending anything back (the parent sees EOF on the pipe)."""
    os._exit(13)


def raise_app_error(x):
    """A healthy worker whose plan raises: must surface, not retry."""
    raise RuntimeError("injected plan failure")


def slow_identity_logits(x):
    """Slow but within deadline: returns zero logits after a beat."""
    time.sleep(0.2)
    return np.zeros((np.asarray(x).shape[0], 2))
