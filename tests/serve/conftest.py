"""Fixtures for the serving-tier concurrency/fault suite.

Flaky-timeout guard
-------------------
Every timing-sensitive wait in this suite goes through the ``t``
fixture, which scales budgets by ``REPRO_SERVE_TIMEOUT_SCALE``
(defaulting to 4 on CI, where schedulers stall threads for whole
seconds).  Tests assert *correctness after* a wait, never that
something completed *within* a tight bound — budgets are upper bounds
sized generously so a slow machine cannot produce a false failure.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.core import PTPNC

#: Multiplier for every timeout/window in this suite.
TIMEOUT_SCALE = float(
    os.environ.get("REPRO_SERVE_TIMEOUT_SCALE", "4" if os.environ.get("CI") else "1")
)

#: Fault-injection helpers pickle worker payloads by reference, which
#: the child can only resolve when it was forked from this process.
fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="fault-injection payloads require the fork start method",
)


@pytest.fixture
def t():
    """Scale a timeout budget: ``t(0.5)`` seconds, CI-multiplied."""

    def scale(seconds: float) -> float:
        return seconds * TIMEOUT_SCALE

    return scale


@pytest.fixture(scope="session")
def served_model():
    """One small trained-shape model shared by the whole suite."""
    return PTPNC(2, rng=np.random.default_rng(0))


@pytest.fixture
def series():
    return np.clip(np.cumsum(np.random.default_rng(1).normal(0, 0.2, 24)), -1, 1)
