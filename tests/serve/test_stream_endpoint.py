"""Stateful ``/predict_stream`` suite: session continuity over HTTP.

The serving tier's streaming path must honour the split-invariance
contract of :mod:`repro.core.streaming` end-to-end: a series delivered
chunk-by-chunk through a session id yields bit-identical logits to a
one-shot session, and session lifecycle (open / reset / close / LRU
eviction) maps onto the documented status codes.
"""

import numpy as np
import pytest

from repro.core import StreamingSession
from repro.serve import (
    MicroBatchService,
    ServeHTTPServer,
    ServeOptions,
    UnknownSessionError,
)

from .test_service import call

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def server(served_model):
    svc = MicroBatchService(ServeOptions(window_s=0.001, max_sessions=4))
    svc.register("demo", served_model)
    with ServeHTTPServer(svc, port=0).start_background() as srv:
        yield srv
    svc.close()


def chunk_body(series, **extra):
    body = {"model": "demo", "series": [float(v) for v in series]}
    body.update(extra)
    return body


class TestStreamEndpoint:
    def test_chunked_session_bit_equal_one_shot(self, server, series, served_model):
        """Three chunks through one HTTP session equal the one-shot
        in-process session bitwise (state carried server-side)."""
        status, first, _ = call(
            server, "POST", "/predict_stream", chunk_body(series[:8])
        )
        assert status == 200
        sid = first["session"]
        assert first["steps_seen"] == 8 and first["chunk_steps"] == 8
        for lo, hi in ((8, 9), (9, 24)):
            status, payload, _ = call(
                server, "POST", "/predict_stream", chunk_body(series[lo:hi], session=sid)
            )
            assert status == 200
            assert payload["session"] == sid
        assert payload["steps_seen"] == series.size
        oracle = StreamingSession(served_model).process(series)
        assert payload["logits"] == [float(v) for v in oracle[-1]]
        assert payload["prediction"] == int(np.argmax(oracle[-1]))

    def test_reset_discharges_state(self, server, series):
        _, first, _ = call(server, "POST", "/predict_stream", chunk_body(series))
        sid = first["session"]
        _, again, _ = call(
            server,
            "POST",
            "/predict_stream",
            chunk_body(series, session=sid, reset=True),
        )
        assert again["logits"] == first["logits"]
        assert again["steps_seen"] == series.size

    def test_close_discards_session(self, server, series):
        _, opened, _ = call(server, "POST", "/predict_stream", chunk_body(series[:4]))
        sid = opened["session"]
        status, closed, _ = call(
            server, "POST", "/predict_stream", {"model": "demo", "session": sid, "close": True}
        )
        assert status == 200
        assert closed == {
            "model": "demo",
            "session": sid,
            "closed": True,
            "steps_seen": 4,
        }
        status, payload, _ = call(
            server, "POST", "/predict_stream", chunk_body(series, session=sid)
        )
        assert status == 404
        assert sid in payload["error"]

    def test_unknown_session_is_404(self, server, series):
        status, payload, _ = call(
            server, "POST", "/predict_stream", chunk_body(series, session="nope")
        )
        assert status == 404
        assert "nope" in payload["error"]

    def test_missing_series_is_400_unless_closing(self, server):
        status, payload, _ = call(
            server, "POST", "/predict_stream", {"model": "demo"}
        )
        assert status == 400
        assert "series" in payload["error"]

    def test_close_without_session_is_400(self, server):
        status, payload, _ = call(
            server, "POST", "/predict_stream", {"model": "demo", "close": True}
        )
        assert status == 400

    def test_unknown_model_is_404(self, server, series):
        status, _, _ = call(
            server,
            "POST",
            "/predict_stream",
            dict(chunk_body(series), model="ghost"),
        )
        assert status == 404

    def test_lru_evicts_oldest_session(self, server, series):
        """Opening more sessions than ``max_sessions`` evicts the
        least-recently-used one, which then 404s."""
        _, oldest, _ = call(server, "POST", "/predict_stream", chunk_body(series[:2]))
        for _ in range(server.service.options.max_sessions):
            call(server, "POST", "/predict_stream", chunk_body(series[:2]))
        status, _, _ = call(
            server,
            "POST",
            "/predict_stream",
            chunk_body(series[:2], session=oldest["session"]),
        )
        assert status == 404


class TestServiceDirect:
    def test_session_mismatched_model_rejected(self, served_model, series):
        with MicroBatchService(ServeOptions(window_s=0.0)) as svc:
            svc.register("a", served_model)
            svc.register("b", served_model)
            opened = svc.predict_stream("a", series[:4])
            with pytest.raises(ValueError, match="belongs to model"):
                svc.predict_stream("b", series[:4], session_id=opened["session"])

    def test_close_unknown_session_raises(self, served_model):
        with MicroBatchService(ServeOptions(window_s=0.0)) as svc:
            svc.register("a", served_model)
            with pytest.raises(UnknownSessionError):
                svc.predict_stream("a", session_id="missing", close=True)

    def test_sessions_cleared_on_close(self, served_model, series):
        svc = MicroBatchService(ServeOptions(window_s=0.0))
        svc.register("a", served_model)
        opened = svc.predict_stream("a", series[:4])
        svc.close()
        assert not svc._sessions
        with pytest.raises(Exception):
            svc.predict_stream("a", series[:4], session_id=opened["session"])
