"""Concurrency suite for :class:`repro.serve.MicroBatchService`.

Covers the in-process (``workers=0``) configuration: coalescing,
determinism against batch companions, backpressure, timeouts, the plan
LRU, Monte-Carlo prediction and the ``serve.*`` telemetry stream.
Worker-process faults live in ``test_workers.py``; the HTTP transport
in ``test_service.py``.
"""

import threading

import numpy as np
import pytest

from repro.compile import PlanInputError
from repro.core import PTPNC
from repro.serve import (
    MicroBatchService,
    QueueFullError,
    RequestTimeoutError,
    ServeError,
    ServeOptions,
    ServeStats,
    UnknownModelError,
    percentile,
)
from repro.telemetry import Run, read_events

pytestmark = pytest.mark.serve


def make_service(model, name="demo", **kw):
    svc = MicroBatchService(ServeOptions(**kw))
    svc.register(name, model)
    return svc


@pytest.fixture
def stalled_service(monkeypatch, served_model):
    """A service whose dispatcher never drains the queue — the
    deterministic way to exercise backpressure and request timeouts."""
    monkeypatch.setattr(MicroBatchService, "_dispatch_loop", lambda self: None)
    svc = make_service(served_model, queue_size=2)
    yield svc
    svc.close()


class TestBatching:
    def test_single_request_matches_frozen_plan(self, served_model, series):
        with make_service(served_model) as svc:
            plan, _ = svc.registry.plan("demo")
            result = svc.predict("demo", series)
            oracle = plan.forward(plan.coerce_series(series)[None])[0]
            assert result["prediction"] == plan.predict(series)
            assert np.array_equal(np.asarray(result["logits"]), oracle)
            assert result["batch_size"] == 1
            assert result["latency_ms"] > 0

    def test_concurrent_requests_coalesce_into_one_batch(self, served_model, series, t):
        # Submit from one thread inside a generous window: the
        # dispatcher grabs the first request and must wait out the
        # window, during which the rest are already queued.
        with make_service(served_model, window_s=t(0.25), max_batch=8) as svc:
            futures = [svc.submit("demo", series) for _ in range(6)]
            results = [f.result(timeout=t(10.0)) for f in futures]
        sizes = {r["batch_size"] for r in results}
        assert sizes == {6}
        logits = [r["logits"] for r in results]
        assert all(np.array_equal(logits[0], other) for other in logits[1:])
        snap = svc.stats.snapshot()
        assert snap["batches"] == 1
        assert snap["batch_size_histogram"] == {"6": 1}

    def test_prediction_independent_of_batch_companions(self, served_model, series, t):
        """The determinism contract: same series, any companions ->
        same prediction, logits to accumulation tolerance."""
        with make_service(served_model, window_s=0.0, max_batch=1) as svc:
            baseline = svc.predict("demo", series)
        rng = np.random.default_rng(5)
        companions = [
            np.clip(np.cumsum(rng.normal(0, 0.3, series.shape[0])), -1, 1)
            for _ in range(5)
        ]
        with make_service(served_model, window_s=t(0.25), max_batch=8) as svc:
            futures = [svc.submit("demo", series)]
            futures += [svc.submit("demo", c) for c in companions]
            batched = futures[0].result(timeout=t(10.0))
        assert batched["batch_size"] > 1
        assert int(np.argmax(batched["logits"])) == baseline["prediction"]
        np.testing.assert_allclose(
            batched["logits"], baseline["logits"], rtol=0, atol=1e-9
        )

    def test_threaded_clients_all_get_correct_answers(self, served_model, t):
        rng = np.random.default_rng(11)
        inputs = [
            np.clip(np.cumsum(rng.normal(0, 0.3, 24)), -1, 1) for _ in range(12)
        ]
        with make_service(served_model, window_s=t(0.02), max_batch=4) as svc:
            plan, _ = svc.registry.plan("demo")
            expected = [plan.predict(s) for s in inputs]
            results = [None] * len(inputs)
            barrier = threading.Barrier(len(inputs))

            def client(i):
                barrier.wait()
                results[i] = svc.predict("demo", inputs[i], timeout=t(10.0))

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(inputs))
            ]
            for th in threads:
                th.start()
            for th in threads:
                th.join(timeout=t(30.0))
        assert [r["prediction"] for r in results] == expected
        assert svc.stats.snapshot()["by_status"] == {"ok": len(inputs)}

    def test_incompatible_shapes_split_batches(self, served_model, t):
        rng = np.random.default_rng(3)
        long = np.clip(np.cumsum(rng.normal(0, 0.3, 24)), -1, 1)
        short = np.clip(np.cumsum(rng.normal(0, 0.3, 16)), -1, 1)
        with make_service(served_model, window_s=t(0.25), max_batch=8) as svc:
            plan, _ = svc.registry.plan("demo")
            futures = [
                svc.submit("demo", s) for s in (long, short, long, short, long)
            ]
            results = [f.result(timeout=t(10.0)) for f in futures]
            expected = [plan.predict(s) for s in (long, short, long, short, long)]
        assert [int(np.argmax(r["logits"])) for r in results] == expected
        # A shape flip closes the current batch, so nothing coalesces
        # across the boundary.
        assert svc.stats.snapshot()["batches"] >= 2


class TestBackpressure:
    def test_queue_full_raises_and_counts(self, stalled_service, series):
        svc = stalled_service
        futures = [svc.submit("demo", series) for _ in range(2)]
        with pytest.raises(QueueFullError):
            svc.submit("demo", series)
        assert svc.stats.snapshot()["by_status"]["queue_full"] == 1
        svc.close()
        for future in futures:
            with pytest.raises(ServeError):
                future.result(timeout=0)

    def test_request_timeout(self, stalled_service, series, t):
        with pytest.raises(RequestTimeoutError):
            stalled_service.predict("demo", series, timeout=t(0.2))
        assert stalled_service.stats.snapshot()["by_status"]["timeout"] == 1


class TestValidationAndLifecycle:
    def test_unknown_model_rejected_synchronously(self, served_model, series):
        with make_service(served_model) as svc:
            with pytest.raises(UnknownModelError):
                svc.predict("nope", series)

    def test_malformed_series_rejected_synchronously(self, served_model):
        with make_service(served_model) as svc:
            for bad in ([[0.1, 0.2], [0.3]], "text", [0.1, np.nan, 0.2], []):
                with pytest.raises(PlanInputError):
                    svc.submit("demo", bad)

    def test_closed_service_rejects_new_requests(self, served_model, series):
        svc = make_service(served_model)
        svc.close()
        with pytest.raises(ServeError):
            svc.predict("demo", series)
        svc.close()  # idempotent

    def test_bad_options_rejected(self):
        with pytest.raises(ValueError):
            ServeOptions(window_s=-1)
        with pytest.raises(ValueError):
            ServeOptions(max_batch=0)
        with pytest.raises(ValueError):
            ServeOptions(request_timeout_s=0)
        with pytest.raises(ValueError):
            ServeOptions(workers=-1)

    def test_plan_lru_eviction(self, served_model, series):
        other = PTPNC(2, rng=np.random.default_rng(9))
        with MicroBatchService(ServeOptions(plan_capacity=1)) as svc:
            svc.register("a", served_model)
            svc.register("b", other)  # warm compile evicts "a"
            assert svc.registry.evictions >= 1
            first = svc.predict("a", series)  # recompiles on miss
            again = svc.predict("a", series)  # now a hit
            assert first["prediction"] == again["prediction"]
            assert svc.registry.misses >= 2
            assert svc.registry.hits >= 1


class TestPredictMC:
    def test_mc_prediction_is_seeded_and_bounded(self, served_model, series):
        with make_service(served_model) as svc:
            one = svc.predict_mc("demo", series, draws=16, seed=3)
            two = svc.predict_mc("demo", series, draws=16, seed=3)
        assert one["class_votes"] == two["class_votes"]
        assert one["prediction"] == two["prediction"]
        assert sum(one["class_votes"]) == 16
        assert 1 / 16 <= one["confidence"] <= 1.0
        assert one["confidence"] == one["class_votes"][one["prediction"]] / 16

    def test_mc_restores_the_model_sampler(self, served_model, series):
        original = served_model.sampler
        with make_service(served_model) as svc:
            svc.predict_mc("demo", series, draws=4)
        assert served_model.sampler is original

    def test_mc_parameter_validation(self, served_model, series):
        with make_service(served_model) as svc:
            with pytest.raises(ValueError):
                svc.predict_mc("demo", series, draws=0)
            with pytest.raises(ValueError):
                svc.predict_mc("demo", series, spread=1.5)


class TestTelemetry:
    def test_serve_events_stream_into_the_run(self, served_model, series, tmp_path, t):
        with Run(dir=tmp_path / "run"):
            with make_service(served_model, window_s=t(0.05)) as svc:
                svc.predict("demo", series)
                svc.predict_mc("demo", series, draws=4)
                svc.emit_stats()
        events = read_events(tmp_path / "run" / "events.jsonl")
        kinds = [e["kind"] for e in events]
        for expected in (
            "serve.start",
            "serve.plan_compile",
            "serve.batch",
            "serve.request",
            "serve.stats",
            "serve.end",
        ):
            assert expected in kinds, f"missing {expected} in {sorted(set(kinds))}"
        (end,) = [e for e in events if e["kind"] == "serve.end"]
        assert end["requests"] == 2
        assert end["by_status"] == {"ok": 2}
        batch = next(e for e in events if e["kind"] == "serve.batch")
        assert batch["model"] == "demo"
        assert batch["size"] == 1

    def test_report_renders_a_serving_section(self, served_model, series, tmp_path):
        from repro.report import render_run

        with Run(dir=tmp_path / "run"):
            with make_service(served_model) as svc:
                svc.predict("demo", series)
        text = render_run(tmp_path / "run")
        assert "## Serving" in text
        assert "micro-batching" in text
        assert "degradation: none" in text


class TestStatsUnit:
    def test_percentile_nearest_rank(self):
        assert percentile([], 99) == 0.0
        assert percentile([5.0], 50) == 5.0
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 50) == 51.0
        assert percentile(values, 100) == 100.0

    def test_snapshot_shape(self):
        stats = ServeStats()
        stats.record_request(0.010, status="ok")
        stats.record_request(0.020, status="ok")
        stats.record_request(0.0, status="queue_full")
        stats.record_batch(2, queue_depth=3)
        stats.record_worker_restart()
        stats.record_plan(hit=False)
        stats.record_plan(hit=True)
        snap = stats.snapshot()
        assert snap["requests"] == 3
        assert snap["by_status"] == {"ok": 2, "queue_full": 1}
        assert snap["latency_ms"]["p50"] == pytest.approx(10.0)
        assert snap["latency_ms"]["mean"] == pytest.approx(15.0)
        assert snap["mean_batch_size"] == 2.0
        assert snap["max_queue_depth"] == 3
        assert snap["worker_restarts"] == 1
        assert snap["plan_cache"] == {"hits": 1, "misses": 1, "evictions": 0}
