"""HTTP transport suite: status-code mapping and endpoint payloads.

Talks to a real :class:`repro.serve.ServeHTTPServer` on an ephemeral
port with stdlib ``http.client`` — no test double sits between the
suite and the request parsing being verified.
"""

import http.client
import json

import pytest

from repro.serve import (
    MAX_BODY_BYTES,
    MicroBatchService,
    ServeHTTPServer,
    ServeOptions,
)

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def server(served_model):
    svc = MicroBatchService(ServeOptions(window_s=0.001))
    svc.register("demo", served_model)
    with ServeHTTPServer(svc, port=0).start_background() as srv:
        yield srv
    svc.close()


def call(server, method, path, body=None, headers=None):
    """One HTTP round-trip; returns ``(status, parsed_json, headers)``."""
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        payload = json.dumps(body).encode() if isinstance(body, dict) else body
        conn.request(method, path, body=payload, headers=headers or {})
        response = conn.getresponse()
        raw = response.read()
        return response.status, json.loads(raw), dict(response.getheaders())
    finally:
        conn.close()


def predict_body(series):
    return {"model": "demo", "series": [float(v) for v in series]}


class TestEndpoints:
    def test_healthz(self, server):
        status, payload, _ = call(server, "GET", "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "models": ["demo"]}

    def test_models_lists_plan_signatures(self, server):
        status, payload, _ = call(server, "GET", "/models")
        assert status == 200
        assert payload["demo"]["n_classes"] == 2
        assert payload["demo"]["model_class"] == "PTPNC"

    def test_predict_roundtrip(self, server, series):
        status, payload, _ = call(server, "POST", "/predict", predict_body(series))
        assert status == 200
        assert payload["model"] == "demo"
        assert payload["prediction"] in (0, 1)
        assert len(payload["logits"]) == 2
        assert payload["batch_size"] >= 1
        # The transport must agree with the service called directly.
        direct = server.service.predict("demo", series)
        assert payload["prediction"] == direct["prediction"]

    def test_predict_mc_roundtrip(self, server, series):
        body = dict(predict_body(series), draws=8, seed=1)
        status, payload, _ = call(server, "POST", "/predict_mc", body)
        assert status == 200
        assert sum(payload["class_votes"]) == 8
        assert 0 < payload["confidence"] <= 1
        assert payload["draws"] == 8

    def test_stats_reflects_traffic(self, server, series):
        call(server, "POST", "/predict", predict_body(series))
        status, payload, _ = call(server, "GET", "/stats")
        assert status == 200
        assert payload["requests"] >= 1
        assert payload["by_status"].get("ok", 0) >= 1
        assert set(payload["latency_ms"]) == {"p50", "p99", "mean"}


class TestErrorMapping:
    def test_malformed_json_is_400(self, server):
        status, payload, _ = call(
            server, "POST", "/predict", b"{not json",
            headers={"Content-Type": "application/json"},
        )
        assert status == 400
        assert "JSON" in payload["error"]

    def test_non_object_body_is_400(self, server):
        status, payload, _ = call(server, "POST", "/predict", b"[1, 2, 3]")
        assert status == 400
        assert "object" in payload["error"]

    def test_empty_body_is_400(self, server):
        status, payload, _ = call(server, "POST", "/predict", b"")
        assert status == 400
        assert "empty" in payload["error"]

    def test_missing_model_field_is_400(self, server):
        status, payload, _ = call(server, "POST", "/predict", {"series": [0.1, 0.2]})
        assert status == 400
        assert "model" in payload["error"]

    def test_missing_series_field_is_400(self, server):
        status, payload, _ = call(server, "POST", "/predict", {"model": "demo"})
        assert status == 400
        assert "series" in payload["error"]

    def test_ragged_series_is_400(self, server):
        body = {"model": "demo", "series": [[0.1, 0.2], [0.3]]}
        status, payload, _ = call(server, "POST", "/predict", body)
        assert status == 400

    def test_non_finite_series_is_400(self, server):
        body = {"model": "demo", "series": [0.1, "nan", 0.3]}
        status, _, _ = call(server, "POST", "/predict", body)
        assert status == 400

    def test_unknown_model_is_404(self, server, series):
        body = {"model": "missing", "series": [float(v) for v in series]}
        status, payload, _ = call(server, "POST", "/predict", body)
        assert status == 404
        assert "missing" in payload["error"]

    def test_unknown_endpoint_is_404(self, server, series):
        for method, path in (("GET", "/nope"), ("POST", "/nope")):
            status, _, _ = call(server, method, path, predict_body(series))
            assert status == 404

    def test_oversize_body_is_413(self, server):
        status, payload, _ = call(
            server, "POST", "/predict", b"",
            headers={"Content-Length": str(MAX_BODY_BYTES + 1)},
        )
        assert status == 413
        assert "exceeds" in payload["error"]

    def test_bad_mc_parameters_are_400(self, server, series):
        for overrides in ({"draws": "many"}, {"draws": 0}, {"spread": 2.0}):
            body = dict(predict_body(series), **overrides)
            status, _, _ = call(server, "POST", "/predict_mc", body)
            assert status == 400


class TestBackpressureOverHTTP:
    def test_queue_full_maps_to_503_with_retry_after(
        self, monkeypatch, served_model, series
    ):
        monkeypatch.setattr(MicroBatchService, "_dispatch_loop", lambda self: None)
        svc = MicroBatchService(ServeOptions(queue_size=1))
        svc.register("demo", served_model)
        try:
            with ServeHTTPServer(svc, port=0).start_background() as srv:
                svc.submit("demo", series)  # fill the queue
                status, payload, headers = call(
                    srv, "POST", "/predict", predict_body(series)
                )
            assert status == 503
            assert "full" in payload["error"]
            assert headers.get("Retry-After") == "1"
        finally:
            svc.close()
