"""Fault-injection suite for :class:`repro.serve.PlanWorkerPool`.

Injected faults (hang, hard crash, application error) are module-level
callables in ``_faults.py`` — the worker pipe pickles payloads by
reference, which a forked child can only resolve for names that existed
before the fork.  Every test asserts *recovery*, not timing: after a
kill or hang the pool must answer the next batch correctly.
"""

import os
import signal

import numpy as np
import pytest

from repro.compile import compile_plan
from repro.serve import (
    MicroBatchService,
    PlanWorkerPool,
    PoolBrokenError,
    ServeOptions,
    WorkerCrashError,
)

from . import _faults
from .conftest import fork_only

pytestmark = [pytest.mark.serve, fork_only]


@pytest.fixture
def plan(served_model):
    return compile_plan(served_model)


@pytest.fixture
def batch(series):
    return np.stack([series, series[::-1].copy()])


class TestPoolExecution:
    def test_pool_matches_in_process_bitwise(self, plan, batch, t):
        pool = PlanWorkerPool(workers=2)
        try:
            pool.load("m", plan)
            logits = pool.execute("m", batch, timeout=t(30.0))
            assert np.array_equal(logits, plan(batch))
        finally:
            pool.close()

    def test_slow_worker_within_deadline_is_not_restarted(self, batch, t):
        pool = PlanWorkerPool(workers=1)
        try:
            pool.load("slow", _faults.slow_identity_logits)
            logits = pool.execute("slow", batch, timeout=t(30.0))
            assert logits.shape == (2, 2)
            assert pool.restarts == 0
        finally:
            pool.close()

    def test_unload_makes_plan_unavailable(self, plan, batch, t):
        pool = PlanWorkerPool(workers=1)
        try:
            pool.load("m", plan)
            pool.unload("m")
            with pytest.raises(WorkerCrashError, match="KeyError"):
                pool.execute("m", batch, timeout=t(30.0))
        finally:
            pool.close()


class TestFaultRecovery:
    def test_killed_worker_is_replaced_and_batch_retried(self, plan, batch, t):
        pool = PlanWorkerPool(workers=2)
        try:
            pool.load("m", plan)
            expected = plan(batch)
            os.kill(pool.pids()[0], signal.SIGKILL)
            for _ in range(5):
                assert np.array_equal(
                    pool.execute("m", batch, timeout=t(30.0)), expected
                )
            assert pool.restarts >= 1
            assert len(pool.pids()) == 2
        finally:
            pool.close()

    def test_hanging_worker_is_killed_and_pool_stays_healthy(self, plan, batch, t):
        pool = PlanWorkerPool(workers=1)
        try:
            pool.load("hang", _faults.hang_forever)
            with pytest.raises(WorkerCrashError):
                pool.execute("hang", batch, timeout=t(0.5))
            assert pool.restarts >= 1
            # The replacement worker (with plans replayed) still serves.
            pool.load("m", plan)
            assert np.array_equal(
                pool.execute("m", batch, timeout=t(30.0)), plan(batch)
            )
        finally:
            pool.close()

    def test_application_error_surfaces_without_restart(self, plan, batch, t):
        pool = PlanWorkerPool(workers=1)
        try:
            pool.load("boom", _faults.raise_app_error)
            with pytest.raises(WorkerCrashError, match="injected plan failure"):
                pool.execute("boom", batch, timeout=t(30.0))
            assert pool.restarts == 0  # the worker itself is healthy
            pool.load("m", plan)
            assert np.array_equal(
                pool.execute("m", batch, timeout=t(30.0)), plan(batch)
            )
        finally:
            pool.close()

    def test_restart_budget_exhaustion_breaks_the_pool(self, batch, t):
        pool = PlanWorkerPool(workers=1, restart_limit=1)
        try:
            pool.load("die", _faults.crash_hard)
            with pytest.raises((PoolBrokenError, WorkerCrashError)):
                pool.execute("die", batch, timeout=t(30.0))
            with pytest.raises(PoolBrokenError):
                pool.execute("die", batch, timeout=t(30.0))
        finally:
            pool.close()


class TestServiceWithWorkers:
    def test_worker_service_matches_in_process_service(self, served_model, series, t):
        with MicroBatchService(ServeOptions(workers=0)) as inproc:
            inproc.register("demo", served_model)
            oracle = inproc.predict("demo", series)
        with MicroBatchService(
            ServeOptions(workers=1, batch_timeout_s=t(30.0))
        ) as svc:
            svc.register("demo", served_model)
            result = svc.predict("demo", series, timeout=t(30.0))
        assert result["prediction"] == oracle["prediction"]
        assert np.array_equal(
            np.asarray(result["logits"]), np.asarray(oracle["logits"])
        )

    def test_service_survives_worker_kill(self, served_model, series, t):
        with MicroBatchService(
            ServeOptions(workers=1, batch_timeout_s=t(30.0))
        ) as svc:
            svc.register("demo", served_model)
            before = svc.predict("demo", series, timeout=t(30.0))
            os.kill(svc._pool.pids()[0], signal.SIGKILL)
            after = svc.predict("demo", series, timeout=t(30.0))
            assert after["prediction"] == before["prediction"]
            assert svc.stats.snapshot()["worker_restarts"] >= 1
