"""Frozen forward plan: parity with the live model and input validation."""

import pickle

import numpy as np
import pytest

from repro.autograd import no_grad, use_precision
from repro.autograd.precision import default_tolerances, resolve_policy
from repro.circuits import ideal_sampler
from repro.compile import ForwardPlan, PlanInputError, compile_plan
from repro.core import AdaptPNC, PTPNC, PrintedTemporalClassifier


def _batch(rng, batch=5, steps=24, channels=1):
    x = np.clip(np.cumsum(rng.normal(0, 0.25, (batch, steps, channels)), axis=1), -1, 1)
    return x[..., 0] if channels == 1 else x


def _live_logits(model, x):
    model.set_sampler(ideal_sampler())
    with no_grad():
        return model(x).data


class TestParity:
    """compile_plan(model)(x) must equal model(x) under no_grad."""

    @pytest.mark.parametrize("cls", [PTPNC, AdaptPNC])
    def test_bit_equal_float64(self, cls, rng):
        model = cls(3, rng=np.random.default_rng(0))
        x = _batch(rng)
        plan = compile_plan(model)
        assert np.array_equal(plan(x), _live_logits(model, x))

    def test_bit_equal_multivariate(self, rng):
        model = PrintedTemporalClassifier(
            4, hidden_size=5, in_channels=3, rng=np.random.default_rng(1)
        )
        x = _batch(rng, channels=3)
        plan = compile_plan(model)
        assert np.array_equal(plan(x), _live_logits(model, x))

    def test_bit_equal_deep_stack(self, rng):
        model = PrintedTemporalClassifier(
            2, hidden_sizes=(6, 4, 3), rng=np.random.default_rng(2)
        )
        x = _batch(rng, steps=40)
        plan = compile_plan(model)
        assert np.array_equal(plan(x), _live_logits(model, x))

    @pytest.mark.parametrize("policy", ["float32", "mixed"])
    def test_bit_equal_reduced_precision(self, policy, rng):
        """Model built and evaluated under the same policy: still bit-equal."""
        x = _batch(rng)
        with use_precision(policy):
            model = AdaptPNC(3, rng=np.random.default_rng(3))
            plan = compile_plan(model)
            live = _live_logits(model, x)
            assert plan.dtype == resolve_policy(policy).compute
            assert np.array_equal(plan(x), live)

    @pytest.mark.parametrize("policy", ["float32", "mixed"])
    def test_reduced_precision_tracks_float64_plan(self, policy, rng):
        """A low-precision plan agrees with the float64 oracle plan to
        the engine-wide per-dtype tolerances."""
        x = _batch(rng)
        model = AdaptPNC(3, rng=np.random.default_rng(4))
        oracle = compile_plan(model)(x)
        low = compile_plan(model, precision=policy)
        tol = default_tolerances(low.dtype)
        np.testing.assert_allclose(low(x), oracle, atol=tol["atol"], rtol=tol["rtol"])

    def test_batch_rows_match_single_series(self, rng):
        """Row extracted from a batched forward predicts the same class
        as the series alone (logits to accumulation tolerance: BLAS may
        pick a different kernel per batch shape)."""
        model = AdaptPNC(3, rng=np.random.default_rng(5))
        plan = compile_plan(model)
        x = _batch(rng, batch=6)
        batched = plan(x)
        for i in range(x.shape[0]):
            alone = plan(x[i : i + 1])[0]
            np.testing.assert_allclose(alone, batched[i], atol=1e-12)
            assert int(np.argmax(alone)) == int(np.argmax(batched[i]))

    def test_repeated_calls_are_deterministic(self, rng):
        """Arena buffer reuse must not leak state between calls."""
        plan = compile_plan(PTPNC(2, rng=np.random.default_rng(6)))
        x = _batch(rng, batch=3, steps=16)
        first = plan(x).copy()
        plan(_batch(np.random.default_rng(9), batch=7, steps=31))  # different shapes
        assert np.array_equal(plan(x), first)

    def test_pickle_round_trip(self, rng):
        plan = compile_plan(AdaptPNC(3, rng=np.random.default_rng(7)))
        x = _batch(rng)
        clone = pickle.loads(pickle.dumps(plan))
        assert np.array_equal(clone(x), plan(x))
        assert clone.signature() == plan.signature()


class TestValidation:
    @pytest.fixture
    def plan(self):
        return compile_plan(PTPNC(2, rng=np.random.default_rng(0)))

    def test_rejects_wrong_rank(self, plan):
        with pytest.raises(PlanInputError, match="batch, time"):
            plan(np.zeros(8))

    def test_rejects_empty_time_axis(self, plan):
        with pytest.raises(PlanInputError, match="at least one time step"):
            plan(np.zeros((2, 0)))

    def test_rejects_wrong_channel_count(self, plan):
        with pytest.raises(PlanInputError, match="got shape"):
            plan(np.zeros((2, 8, 3)))

    def test_rejects_non_finite(self, plan):
        x = np.zeros((2, 8))
        x[1, 3] = np.nan
        with pytest.raises(PlanInputError, match="non-finite"):
            plan(x)

    def test_series_coercion_errors(self, plan):
        with pytest.raises(PlanInputError, match="uniform row lengths|not numeric"):
            plan.coerce_series([[0.1, 0.2], [0.3]])
        with pytest.raises(PlanInputError, match="at least one time step"):
            plan.coerce_series([])
        with pytest.raises(PlanInputError):
            plan.coerce_series("not a series")

    def test_series_coercion_shapes(self, plan):
        assert plan.coerce_series([0.1, 0.2, 0.3]).shape == (3, 1)
        assert plan.predict(np.zeros(16)) in (0, 1)

    def test_compile_rejects_non_classifier(self):
        with pytest.raises(TypeError, match="PrintedTemporalClassifier"):
            compile_plan(object())

    def test_signature_fields(self, plan):
        sig = plan.signature()
        assert sig["n_classes"] == 2 and sig["model_class"] == "PTPNC"
        assert sig["dtype"] == "float64" and sig["nbytes"] > 0
