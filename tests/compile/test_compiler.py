"""Model-to-netlist compilation and circuit-level inference."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.compile import classify_series, compile_model, simulate_series
from repro.core import AdaptPNC, PTPNC


@pytest.fixture(scope="module")
def series():
    rng = np.random.default_rng(0)
    return np.clip(np.cumsum(rng.normal(0, 0.2, 24)), -1, 1)


class TestTopology:
    def test_baseline_component_budget(self, rng):
        model = PTPNC(2, rng=rng)
        compiled = compile_model(model)
        circuit = compiled.circuit
        # filters: 1 R + 1 C per channel over (1 + hidden) channels
        n_channels = 1 + model.hidden_size
        assert len(circuit.capacitors) == n_channels
        assert len(compiled.output_nodes) == 2

    def test_so_lf_doubles_capacitors(self, rng):
        model = AdaptPNC(2, rng=rng)
        compiled = compile_model(model)
        n_channels = 1 + model.hidden_size
        assert len(compiled.circuit.capacitors) == 2 * n_channels

    def test_pruned_crossings_not_printed(self, rng):
        model = PTPNC(2, rng=np.random.default_rng(3))
        n_before = len(compile_model(model).circuit.resistors)
        model.blocks[1].crossbar.theta.data[0, 0] = 1e-6  # prune one crossing
        n_after = len(compile_model(model).circuit.resistors)
        assert n_after == n_before - 1

    def test_negative_crossings_get_inverters(self, rng):
        model = PTPNC(2, rng=np.random.default_rng(0))
        model.blocks[0].crossbar.theta.data[:] = 0.5  # all positive
        model.blocks[1].crossbar.theta.data[:] = 0.5
        model.blocks[0].crossbar.theta_b.data[:] = 0.2
        model.blocks[1].crossbar.theta_b.data[:] = 0.2
        compiled = compile_model(model, decouple=False)
        inverters = [e for e in compiled.circuit.vcvs if "_einv" in e.name]
        assert not inverters
        model.blocks[0].crossbar.theta.data[0, 0] = -0.5
        compiled = compile_model(model, decouple=False)
        inverters = [e for e in compiled.circuit.vcvs if "_einv" in e.name]
        assert len(inverters) == 1


class TestEquivalence:
    @pytest.mark.parametrize("cls", [PTPNC, AdaptPNC])
    def test_circuit_matches_differentiable_model(self, cls, series):
        """The flagship check: netlist transient == model forward."""
        model = cls(2, rng=np.random.default_rng(0))
        compiled = compile_model(model)
        with no_grad():
            expected = model(series.reshape(1, -1)).data[0] / model.logit_scale
        outputs = simulate_series(compiled, series)
        assert np.allclose(outputs[-1], expected, atol=1e-6)

    def test_full_output_trajectory_matches(self, series):
        from repro.autograd import Tensor

        model = PTPNC(2, rng=np.random.default_rng(1))
        compiled = compile_model(model)
        with no_grad():
            seq = model.blocks[0](Tensor(series.reshape(1, -1, 1)))
            seq = model.blocks[1](seq).data[0]
        outputs = simulate_series(compiled, series)
        assert np.allclose(outputs, seq, atol=1e-6)

    def test_classification_agrees(self, series):
        model = AdaptPNC(3, rng=np.random.default_rng(2))
        compiled = compile_model(model)
        with no_grad():
            expected = int(np.argmax(model(series.reshape(1, -1)).data[0]))
        assert classify_series(compiled, series) == expected

    def test_coupled_netlist_deviates_boundedly(self, series):
        """Without buffers the physical coupling shows up — the effect
        the paper's μ factor approximates — but stays bounded."""
        model = AdaptPNC(2, rng=np.random.default_rng(0))
        with no_grad():
            expected = model(series.reshape(1, -1)).data[0] / model.logit_scale
        coupled = compile_model(model, decouple=False)
        outputs = simulate_series(coupled, series)
        deviation = np.max(np.abs(outputs[-1] - expected))
        assert 0.0 < deviation < 0.3


class TestValidation:
    def test_rejects_scalar_series(self, rng):
        compiled = compile_model(PTPNC(2, rng=rng))
        with pytest.raises(ValueError):
            simulate_series(compiled, np.array([1.0]))

    def test_rejects_0d_series_with_clear_error(self, rng):
        """A bare scalar used to shape-crash (IndexError); it must raise
        a ValueError naming the expected shape instead."""
        compiled = compile_model(PTPNC(2, rng=rng))
        with pytest.raises(ValueError, match="1-D.*or"):
            simulate_series(compiled, 0.5)

    def test_rejects_too_short_series(self, rng):
        compiled = compile_model(PTPNC(2, rng=rng))
        with pytest.raises(ValueError, match="at least 2 samples"):
            simulate_series(compiled, np.array([0.1]))

    def test_rejects_wrong_feature_count(self, rng):
        compiled = compile_model(PTPNC(2, rng=rng))
        with pytest.raises(ValueError, match=r"\(steps, 1\)"):
            simulate_series(compiled, np.zeros((8, 3)))

    def test_rejects_ragged_series(self, rng):
        compiled = compile_model(PTPNC(2, rng=rng))
        with pytest.raises(ValueError, match="numeric"):
            simulate_series(compiled, [[0.1, 0.2], [0.3]])

    def test_classify_series_propagates_clear_error(self, rng):
        compiled = compile_model(PTPNC(2, rng=rng))
        with pytest.raises(ValueError, match="at least 2 samples"):
            classify_series(compiled, np.array([0.1]))

    def test_dt_carried_from_model(self, rng):
        model = AdaptPNC(2, rng=rng)
        assert compile_model(model).dt == model.blocks[0].filters.dt

    def test_logit_scale_carried(self, rng):
        model = AdaptPNC(2, rng=rng)
        assert compile_model(model).logit_scale == model.logit_scale
