"""LR schedules and early stopping — the paper's training protocol."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import SGD, EarlyStopping, ReduceLROnPlateau, StepLR


def make_optimizer(lr=0.1):
    return SGD([Parameter(np.zeros(1))], lr=lr)


class TestReduceLROnPlateau:
    def test_halves_after_patience_exceeded(self):
        opt = make_optimizer(0.1)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=2)
        sched.step(1.0)  # best
        for _ in range(3):  # 3 bad epochs > patience 2
            sched.step(2.0)
        assert np.isclose(opt.lr, 0.05)

    def test_improvement_resets_counter(self):
        opt = make_optimizer(0.1)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=2)
        sched.step(1.0)
        sched.step(2.0)
        sched.step(0.5)  # improvement
        sched.step(2.0)
        sched.step(2.0)
        assert opt.lr == 0.1  # only 2 bad epochs since reset

    def test_paper_protocol_terminates(self):
        # lr 0.1 halved on every plateau must cross 1e-5 after 14 halvings.
        opt = make_optimizer(0.1)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=0, min_lr=1e-5)
        sched.step(1.0)
        epochs = 0
        while not sched.should_stop() and epochs < 100:
            sched.step(1.0)
            epochs += 1
        assert sched.should_stop()
        assert epochs == 14  # ceil(log2(0.1 / 1e-5)) halvings at patience 0

    def test_threshold_requires_relative_improvement(self):
        opt = make_optimizer(0.1)
        sched = ReduceLROnPlateau(opt, patience=0, threshold=0.01)
        sched.step(1.0)
        sched.step(0.999)  # below 1% improvement -> counts as bad
        assert opt.lr < 0.1

    @pytest.mark.parametrize("bad", [{"factor": 0.0}, {"factor": 1.0}, {"patience": -1}])
    def test_rejects_bad_hyperparameters(self, bad):
        with pytest.raises(ValueError):
            ReduceLROnPlateau(make_optimizer(), **bad)


class TestStepLR:
    def test_decays_at_boundaries(self):
        opt = make_optimizer(1.0)
        sched = StepLR(opt, step_size=3, gamma=0.1)
        for _ in range(3):
            sched.step()
        assert np.isclose(opt.lr, 0.1)
        for _ in range(3):
            sched.step()
        assert np.isclose(opt.lr, 0.01)

    def test_rejects_zero_step(self):
        with pytest.raises(ValueError):
            StepLR(make_optimizer(), step_size=0)


class TestEarlyStopping:
    def test_tracks_best_state(self):
        es = EarlyStopping(patience=3)
        es.update(1.0, {"w": np.array([1.0])})
        es.update(0.5, {"w": np.array([2.0])})
        es.update(0.9, {"w": np.array([3.0])})
        assert es.best_metric == 0.5
        assert np.array_equal(es.best_state["w"], [2.0])

    def test_best_state_is_copied(self):
        es = EarlyStopping(patience=3)
        state = {"w": np.array([1.0])}
        es.update(1.0, state)
        state["w"][0] = 99.0
        assert es.best_state["w"][0] == 1.0

    def test_stops_after_patience(self):
        es = EarlyStopping(patience=2)
        es.update(1.0, {})
        es.update(1.5, {})
        assert not es.should_stop()
        es.update(1.5, {})
        assert es.should_stop()

    def test_maximize_mode(self):
        es = EarlyStopping(patience=2, minimize=False)
        assert es.update(0.5, {})
        assert es.update(0.9, {})
        assert not es.update(0.7, {})

    def test_rejects_nonpositive_patience(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
