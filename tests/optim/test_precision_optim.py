"""Adam/AdamW under the precision policies.

Two contracts:

* the in-place moment updates (scratch-buffer reuse instead of fresh
  ``grad**2`` temporaries per step) are **bit-equal** to the historical
  rebinding implementation — elementwise the identical IEEE operation
  sequence;
* under the ``mixed`` policy the optimizer keeps float64 master
  weights: compute-side parameters stay float32, the update runs in
  float64, and the snapshot round-trips the master store bit-exactly.
"""

import numpy as np
import pytest

from repro.autograd import use_precision
from repro.nn.module import Parameter
from repro.optim import Adam, AdamW


def _reference_adam_steps(params0, grads, lr, betas, eps, weight_decay, decoupled, steps):
    """The historical rebinding Adam/AdamW update, replayed verbatim."""
    beta1, beta2 = betas
    p = [w.copy() for w in params0]
    m = [np.zeros_like(w) for w in p]
    v = [np.zeros_like(w) for w in p]
    for t in range(1, steps + 1):
        bias1 = 1.0 - beta1**t
        bias2 = 1.0 - beta2**t
        for i in range(len(p)):
            grad = grads[t - 1][i]
            if weight_decay and not decoupled:
                grad = grad + weight_decay * p[i]
            m[i] = beta1 * m[i] + (1.0 - beta1) * grad
            v[i] = beta2 * v[i] + (1.0 - beta2) * grad**2
            m_hat = m[i] / bias1
            v_hat = v[i] / bias2
            update = m_hat / (np.sqrt(v_hat) + eps)
            if weight_decay and decoupled:
                p[i] = p[i] - lr * weight_decay * p[i]
            p[i] = p[i] - lr * update
    return p, m, v


@pytest.mark.parametrize("cls,decoupled", [(Adam, False), (AdamW, True)])
def test_inplace_moments_bit_equal_to_rebinding(rng, cls, decoupled):
    """Scratch-buffer moment updates reproduce the historical update
    bit-for-bit over many steps (not merely approximately)."""
    shapes = [(4, 3), (7,), ()]
    params0 = [rng.normal(size=s) for s in shapes]
    steps = 25
    grads = [[rng.normal(size=s) for s in shapes] for _ in range(steps)]

    params = [Parameter(w.copy()) for w in params0]
    opt = cls(params, lr=3e-3, weight_decay=0.02)
    for t in range(steps):
        for p, g in zip(params, grads[t]):
            p.grad = g.copy()
        opt.step()

    expected, m_ref, v_ref = _reference_adam_steps(
        params0, grads, lr=3e-3, betas=(0.9, 0.999), eps=1e-8,
        weight_decay=0.02, decoupled=decoupled, steps=steps,
    )
    for p, w in zip(params, expected):
        np.testing.assert_array_equal(p.data, w)
    for m, v, mr, vr in zip(opt._m, opt._v, m_ref, v_ref):
        np.testing.assert_array_equal(m, mr)
        np.testing.assert_array_equal(v, vr)


def test_scratch_buffers_are_reused(rng):
    """After the first step no fresh per-step temporaries are bound."""
    params = [Parameter(rng.normal(size=(5, 5)))]
    opt = AdamW(params, lr=1e-3)
    params[0].grad = rng.normal(size=(5, 5))
    opt.step()
    scratch = opt._scratch[0]
    assert scratch is not None
    for _ in range(3):
        params[0].grad = rng.normal(size=(5, 5))
        opt.step()
        assert opt._scratch[0] is scratch


class TestMixedMasterWeights:
    def _param(self, rng, shape=(3, 2)):
        # Tensor coercion follows the *active* compute dtype, so build
        # the float32 parameter under a float32-compute policy.
        with use_precision("mixed"):
            return Parameter(rng.normal(size=shape))

    def test_master_built_lazily_under_mixed(self, rng):
        p = self._param(rng)
        opt = AdamW([p], lr=1e-2)
        assert opt._master is None  # construction does not decide
        with use_precision("mixed"):
            p.grad = rng.normal(size=p.shape).astype(np.float32)
            opt.step()
        assert opt._master is not None
        assert opt._master[0].dtype == np.float64
        assert opt._m[0].dtype == np.float64
        # Compute-side parameter stays in the compute dtype.
        assert p.data.dtype == np.float32

    def test_pure_policies_keep_no_master(self, rng):
        for policy in ("float64", "float32"):
            p = self._param(rng)
            opt = AdamW([p], lr=1e-2)
            with use_precision(policy):
                p.grad = rng.normal(size=p.shape).astype(p.data.dtype)
                opt.step()
            assert opt._master is None

    def test_compute_param_is_rounded_master(self, rng):
        p = self._param(rng)
        opt = AdamW([p], lr=1e-2)
        with use_precision("mixed"):
            for _ in range(5):
                p.grad = rng.normal(size=p.shape).astype(np.float32)
                opt.step()
        np.testing.assert_array_equal(p.data, opt._master[0].astype(np.float32))

    def test_master_accumulates_below_float32_resolution(self):
        """The AMP rationale: updates too small for float32 to resolve
        still accumulate in the float64 master and eventually surface
        in the compute weights."""
        with use_precision("mixed"):
            p = Parameter(np.array([1.0]))
            opt = Adam([p], lr=1e-9, betas=(0.0, 0.0), eps=1e-300)
            for _ in range(200):
                p.grad = np.array([1.0], dtype=np.float32)
                opt.step()
        drift = 1.0 - float(opt._master[0][0])
        assert 0 < drift < 1e-6  # resolved by the master...
        with use_precision("float32"):
            plain = Parameter(np.array([1.0]))
            plain_opt = Adam([plain], lr=1e-9, betas=(0.0, 0.0), eps=1e-300)
            for _ in range(200):
                plain.grad = np.array([1.0], dtype=np.float32)
                plain_opt.step()
        assert float(plain.data[0]) == 1.0  # ...but lost at pure float32

    def test_state_dict_round_trips_master(self, rng):
        p = self._param(rng)
        opt = AdamW([p], lr=1e-2)
        with use_precision("mixed"):
            p.grad = rng.normal(size=p.shape).astype(np.float32)
            opt.step()
            state = opt.state_dict()
            assert "master" in state

            q = Parameter(p.data.copy())
            clone = AdamW([q], lr=1e-2)
            clone.load_state_dict(state)
            grad = rng.normal(size=p.shape).astype(np.float32)
            p.grad = grad.copy()
            q.grad = grad.copy()
            opt.step()
            clone.step()
        np.testing.assert_array_equal(p.data, q.data)
        np.testing.assert_array_equal(opt._master[0], clone._master[0])

    def test_state_dict_without_master_restores_pure_path(self, rng):
        p = self._param(rng)
        opt = AdamW([p], lr=1e-2)
        with use_precision("float32"):
            p.grad = rng.normal(size=p.shape).astype(np.float32)
            opt.step()
        state = opt.state_dict()
        assert "master" not in state
        clone = AdamW([Parameter(p.data.copy())], lr=1e-2)
        clone.load_state_dict(state)
        assert clone._master is None
        assert clone._m[0].dtype == np.float32
