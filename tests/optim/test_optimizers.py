"""SGD / Adam / AdamW update rules and convergence."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Parameter
from repro.optim import SGD, Adam, AdamW


def quadratic_loss(p: Parameter) -> Tensor:
    target = Tensor(np.array([1.0, -2.0, 3.0]))
    diff = p - target
    return (diff * diff).sum()


def run_steps(optimizer, param, steps: int = 200):
    for _ in range(steps):
        optimizer.zero_grad()
        quadratic_loss(param).backward()
        optimizer.step()
    return param.data


class TestSGD:
    def test_single_step_rule(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        (p * 3.0).sum().backward()
        opt.step()
        assert np.allclose(p.data, [1.0 - 0.1 * 3.0])

    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3))
        run_steps(SGD([p], lr=0.1), p)
        assert np.allclose(p.data, [1.0, -2.0, 3.0], atol=1e-4)

    def test_momentum_accelerates(self):
        p1, p2 = Parameter(np.zeros(3)), Parameter(np.zeros(3))
        run_steps(SGD([p1], lr=0.01), p1, steps=50)
        run_steps(SGD([p2], lr=0.01, momentum=0.9), p2, steps=50)
        target = np.array([1.0, -2.0, 3.0])
        assert np.linalg.norm(p2.data - target) < np.linalg.norm(p1.data - target)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 10.0

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([5.0]))
        SGD([p], lr=0.1).step()
        assert p.data[0] == 5.0

    @pytest.mark.parametrize("bad", [{"lr": 0.0}, {"lr": -1.0}, {"momentum": 1.0}, {"weight_decay": -0.1}])
    def test_rejects_bad_hyperparameters(self, bad):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], **{"lr": 0.1, **bad})

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3))
        run_steps(Adam([p], lr=0.1), p, steps=300)
        assert np.allclose(p.data, [1.0, -2.0, 3.0], atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        # Adam's bias-corrected first step is ±lr for any gradient scale.
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.05)
        opt.zero_grad()
        (p * 1234.5).sum().backward()
        opt.step()
        assert np.isclose(abs(p.data[0]), 0.05, rtol=1e-6)

    @pytest.mark.parametrize("bad", [{"betas": (1.0, 0.999)}, {"betas": (0.9, -0.1)}, {"eps": 0.0}])
    def test_rejects_bad_hyperparameters(self, bad):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], **bad)


class TestAdamW:
    def test_decay_is_decoupled(self):
        # With zero gradient, AdamW still shrinks weights; Adam with
        # coupled decay routes decay through the moment estimates.
        p = Parameter(np.array([1.0]))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert np.isclose(p.data[0], 1.0 - 0.1 * 0.5 * 1.0)

    def test_default_weight_decay_is_001(self):
        opt = AdamW([Parameter(np.zeros(1))])
        assert opt.weight_decay == 0.01

    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3))
        run_steps(AdamW([p], lr=0.1), p, steps=300)
        assert np.allclose(p.data, [1.0, -2.0, 3.0], atol=0.05)

    def test_differs_from_adam_with_decay(self):
        pa, pw = Parameter(np.array([5.0])), Parameter(np.array([5.0]))
        adam = Adam([pa], lr=0.1, weight_decay=0.1)
        adamw = AdamW([pw], lr=0.1, weight_decay=0.1)
        for opt, p in ((adam, pa), (adamw, pw)):
            opt.zero_grad()
            (p * 2.0).sum().backward()
            opt.step()
        assert not np.isclose(pa.data[0], pw.data[0])
