"""Model checkpointing."""

import numpy as np
import pytest

from repro.core import AdaptPNC
from repro.utils import load_model, load_state_dict, save_model, save_state_dict


class TestStateDictIO:
    def test_roundtrip(self, tmp_path, rng):
        state = {"a.b": rng.normal(size=(3, 4)), "c": rng.normal(size=2)}
        path = tmp_path / "ckpt.npz"
        save_state_dict(state, path)
        loaded = load_state_dict(path)
        assert set(loaded) == set(state)
        for key in state:
            assert np.array_equal(loaded[key], state[key])

    def test_suffix_appended(self, tmp_path):
        save_state_dict({"x": np.zeros(1)}, tmp_path / "ckpt")
        assert (tmp_path / "ckpt.npz").exists()


class TestModelIO:
    def test_model_roundtrip(self, tmp_path):
        model = AdaptPNC(3, rng=np.random.default_rng(0))
        path = tmp_path / "model.npz"
        save_model(model, path)

        clone = AdaptPNC(3, rng=np.random.default_rng(99))  # different init
        load_model(clone, path)
        for (name_a, p_a), (name_b, p_b) in zip(
            model.named_parameters(), clone.named_parameters()
        ):
            assert name_a == name_b
            assert np.array_equal(p_a.data, p_b.data)

    def test_roundtrip_preserves_forward(self, tmp_path, rng):
        model = AdaptPNC(2, rng=np.random.default_rng(0))
        x = rng.uniform(-1, 1, (3, 16))
        expected = model(x).data
        save_model(model, tmp_path / "m.npz")
        clone = AdaptPNC(2, rng=np.random.default_rng(123))
        load_model(clone, tmp_path / "m.npz")
        assert np.allclose(clone(x).data, expected)

    def test_architecture_mismatch_raises(self, tmp_path):
        save_model(AdaptPNC(3, rng=np.random.default_rng(0)), tmp_path / "m.npz")
        with pytest.raises((KeyError, ValueError)):
            load_model(AdaptPNC(5, rng=np.random.default_rng(0)), tmp_path / "m.npz")
