"""Table rendering and timing helpers."""

import time

import pytest

from repro.utils import Stopwatch, format_mean_std, render_table, time_callable


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["A", "B"], [["1", "22"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert set(lines[1]) == {"-"}
        assert len(lines) == 4

    def test_column_widths_adapt(self):
        text = render_table(["X"], [["very-long-cell"]])
        assert "very-long-cell" in text

    def test_non_string_cells(self):
        text = render_table(["n"], [[42], [3.5]])
        assert "42" in text and "3.5" in text

    def test_rejects_empty_headers(self):
        with pytest.raises(ValueError):
            render_table([], [])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["A", "B"], [["only-one"]])


class TestFormatMeanStd:
    def test_paper_style(self):
        assert format_mean_std(0.7264, 0.0141) == "0.726 ± 0.014"

    def test_digits(self):
        assert format_mean_std(0.5, 0.25, digits=2) == "0.50 ± 0.25"


class TestTiming:
    def test_stopwatch_measures(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert 0.005 < sw.elapsed < 0.5

    def test_time_callable_average(self):
        calls = []
        t = time_callable(lambda: calls.append(1), repeats=3)
        assert len(calls) == 3
        assert t >= 0.0

    def test_time_callable_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)


class TestMCCounters:
    def _counters(self):
        from repro.utils.timing import MCCounters

        return MCCounters()

    def test_snapshot_namespaces_backend_keys(self):
        """Backend names live under sub-dicts, so arbitrary backend
        labels can never collide with the fixed top-level keys."""
        counters = self._counters()
        counters.record_forward(0.5, 4, backend="forward_seconds")  # worst case
        counters.record_scan(0.25, "draws")
        snap = counters.snapshot()
        assert snap["forward_seconds"] == 0.5  # fixed key untouched
        assert snap["draws"] == 4.0
        assert snap["by_backend"] == {"forward_seconds": 0.5}
        assert snap["scan"] == {"draws": {"seconds": 0.25, "calls": 1.0}}

    def test_scan_timings_accumulate_per_backend(self):
        counters = self._counters()
        counters.record_scan(0.1, "fused")
        counters.record_scan(0.2, "fused")
        counters.record_scan(0.4, "unfused")
        scan = counters.snapshot()["scan"]
        assert scan["fused"]["calls"] == 2.0
        assert abs(scan["fused"]["seconds"] - 0.3) < 1e-12
        assert scan["unfused"]["calls"] == 1.0

    def test_reset_clears_namespaced_dicts(self):
        counters = self._counters()
        counters.record_forward(1.0, 2, backend="batched")
        counters.record_scan(1.0, "fused")
        counters.reset()
        snap = counters.snapshot()
        assert snap["by_backend"] == {} and snap["scan"] == {}
        assert snap["draws"] == 0.0

    def test_snapshot_is_json_serialisable(self):
        import json

        counters = self._counters()
        counters.record_forward(0.1, 2, backend="batched")
        counters.record_backward(0.05)
        counters.record_scan(0.01, "fused")
        json.dumps(counters.snapshot())

    def test_draws_per_second(self):
        counters = self._counters()
        assert counters.draws_per_second() == 0.0
        counters.record_forward(2.0, 10)
        assert counters.draws_per_second() == 5.0
