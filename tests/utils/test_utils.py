"""Table rendering and timing helpers."""

import time

import pytest

from repro.utils import Stopwatch, format_mean_std, render_table, time_callable


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["A", "B"], [["1", "22"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert set(lines[1]) == {"-"}
        assert len(lines) == 4

    def test_column_widths_adapt(self):
        text = render_table(["X"], [["very-long-cell"]])
        assert "very-long-cell" in text

    def test_non_string_cells(self):
        text = render_table(["n"], [[42], [3.5]])
        assert "42" in text and "3.5" in text

    def test_rejects_empty_headers(self):
        with pytest.raises(ValueError):
            render_table([], [])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["A", "B"], [["only-one"]])


class TestFormatMeanStd:
    def test_paper_style(self):
        assert format_mean_std(0.7264, 0.0141) == "0.726 ± 0.014"

    def test_digits(self):
        assert format_mean_std(0.5, 0.25, digits=2) == "0.50 ± 0.25"


class TestTiming:
    def test_stopwatch_measures(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert 0.005 < sw.elapsed < 0.5

    def test_time_callable_average(self):
        calls = []
        t = time_callable(lambda: calls.append(1), repeats=3)
        assert len(calls) == 3
        assert t >= 0.0

    def test_time_callable_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)
