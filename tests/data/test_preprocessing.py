"""Preprocessing pipeline: resize, normalise, split (Sec. IV-A2)."""

import numpy as np
import pytest

from repro.data import normalize_series, resize_series, train_val_test_split


class TestResize:
    def test_target_length(self, rng):
        out = resize_series(rng.normal(size=(5, 100)), 64)
        assert out.shape == (5, 64)

    def test_preserves_endpoints(self, rng):
        x = rng.normal(size=(3, 100))
        out = resize_series(x, 64)
        assert np.allclose(out[:, 0], x[:, 0])
        assert np.allclose(out[:, -1], x[:, -1])

    def test_identity_when_length_matches(self, rng):
        x = rng.normal(size=(3, 64))
        out = resize_series(x, 64)
        assert np.array_equal(out, x)
        assert out is not x  # still a copy

    def test_linear_signal_resizes_exactly(self):
        x = np.linspace(0, 1, 100).reshape(1, -1)
        out = resize_series(x, 64)
        assert np.allclose(out[0], np.linspace(0, 1, 64), atol=1e-12)

    def test_upsampling(self, rng):
        out = resize_series(rng.normal(size=(2, 30)), 64)
        assert out.shape == (2, 64)

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            resize_series(rng.normal(size=100), 64)

    def test_rejects_bad_length(self, rng):
        with pytest.raises(ValueError):
            resize_series(rng.normal(size=(2, 30)), 1)


class TestNormalize:
    def test_range_is_minus_one_one(self, rng):
        out = normalize_series(rng.normal(size=(10, 64)) * 37 + 5)
        assert np.allclose(out.min(axis=1), -1.0)
        assert np.allclose(out.max(axis=1), 1.0)

    def test_constant_series_maps_to_zero(self):
        out = normalize_series(np.full((2, 10), 3.0))
        assert np.all(out == 0.0)

    def test_per_series_independence(self):
        x = np.stack([np.linspace(0, 1, 10), np.linspace(0, 100, 10)])
        out = normalize_series(x)
        assert np.allclose(out[0], out[1])

    def test_shape_preserved(self, rng):
        x = rng.normal(size=(7, 33))
        assert normalize_series(x).shape == (7, 33)

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            normalize_series(rng.normal(size=10))


class TestSplit:
    def test_60_20_20(self, rng):
        x, y = rng.normal(size=(100, 8)), rng.integers(0, 3, 100)
        xt, yt, xv, yv, xs, ys = train_val_test_split(x, y, seed=0)
        assert xt.shape[0] == 60 and xv.shape[0] == 20 and xs.shape[0] == 20

    def test_partitions_are_disjoint_and_complete(self, rng):
        x = np.arange(50, dtype=float).reshape(50, 1)
        y = np.zeros(50, dtype=int)
        xt, _, xv, _, xs, _ = train_val_test_split(x, y, seed=1)
        seen = np.concatenate([xt, xv, xs])[:, 0]
        assert sorted(seen.tolist()) == list(range(50))

    def test_labels_follow_samples(self, rng):
        x = np.arange(30, dtype=float).reshape(30, 1)
        y = np.arange(30)
        xt, yt, xv, yv, xs, ys = train_val_test_split(x, y, seed=2)
        assert np.array_equal(xt[:, 0].astype(int), yt)
        assert np.array_equal(xs[:, 0].astype(int), ys)

    def test_seed_controls_shuffle(self, rng):
        x, y = rng.normal(size=(40, 4)), rng.integers(0, 2, 40)
        a = train_val_test_split(x, y, seed=0)[0]
        b = train_val_test_split(x, y, seed=0)[0]
        c = train_val_test_split(x, y, seed=1)[0]
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_custom_fractions(self, rng):
        x, y = rng.normal(size=(10, 2)), np.zeros(10, dtype=int)
        xt, _, xv, _, xs, _ = train_val_test_split(x, y, fractions=(0.8, 0.1, 0.1))
        assert xt.shape[0] == 8

    def test_rejects_bad_fractions(self, rng):
        with pytest.raises(ValueError):
            train_val_test_split(np.zeros((10, 2)), np.zeros(10), fractions=(0.5, 0.2, 0.2))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            train_val_test_split(np.zeros((10, 2)), np.zeros(9))
