"""Synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import DATASET_INFO, GENERATORS, generate


class TestAllGenerators:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_shapes_and_labels(self, name):
        x, y = generate(name, 40, seed=0)
        assert x.shape[0] == 40 and y.shape == (40,)
        assert x.shape[1] >= 32
        info = DATASET_INFO[name]
        assert y.min() >= 0 and y.max() < info.n_classes

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_deterministic_per_seed(self, name):
        x1, y1 = generate(name, 20, seed=7)
        x2, y2 = generate(name, 20, seed=7)
        assert np.array_equal(x1, x2) and np.array_equal(y1, y2)

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_different_seeds_differ(self, name):
        x1, _ = generate(name, 20, seed=0)
        x2, _ = generate(name, 20, seed=1)
        assert not np.array_equal(x1, x2)

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_all_classes_represented(self, name):
        _, y = generate(name, 200, seed=0)
        assert len(np.unique(y)) == DATASET_INFO[name].n_classes

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_finite_values(self, name):
        x, _ = generate(name, 30, seed=3)
        assert np.all(np.isfinite(x))


class TestClassSeparability:
    """Class-conditional means must differ — the generators encode real
    class structure, not label noise."""

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_class_means_differ(self, name):
        x, y = generate(name, 300, seed=0)
        means = [x[y == k].mean(axis=0) for k in np.unique(y)]
        gaps = [
            np.abs(means[i] - means[j]).max()
            for i in range(len(means))
            for j in range(i + 1, len(means))
        ]
        assert max(gaps) > 0.05


class TestValidation:
    def test_unknown_name(self):
        with pytest.raises(KeyError):
            generate("NotADataset", 10)

    def test_nonpositive_samples(self):
        with pytest.raises(ValueError):
            generate("CBF", 0)

    def test_registry_has_15_datasets(self):
        assert len(GENERATORS) == 15
        assert len(DATASET_INFO) == 15


class TestCBFStructure:
    """CBF is the canonical construction — verify its class shapes."""

    def test_cylinder_has_plateau(self):
        x, y = generate("CBF", 300, seed=0)
        cylinders = x[y == 0]
        # plateau: interior of support flat at high amplitude -> high mean
        assert cylinders.mean() > x[y == 1].mean() * 0.5

    def test_bell_rises_funnel_falls(self):
        x, y = generate("CBF", 500, seed=1)
        bells, funnels = x[y == 1], x[y == 2]
        # within the support, bells weight late samples, funnels early ones
        half = x.shape[1] // 2
        assert bells[:, half:].mean() > bells[:, :half].mean()
        assert funnels[:, :half].mean() > funnels[:, half:].mean()
