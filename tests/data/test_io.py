"""Dataset import/export."""

import numpy as np
import pytest

from repro.data import (
    load_dataset,
    load_series_csv,
    load_splits,
    save_series_csv,
    save_splits,
)


class TestCSV:
    def test_roundtrip(self, tmp_path, rng):
        x = rng.normal(size=(6, 16))
        y = rng.integers(0, 3, 6)
        path = tmp_path / "series.csv"
        save_series_csv(path, x, y)
        x2, y2 = load_series_csv(path)
        assert np.allclose(x, x2)
        assert np.array_equal(y, y2)

    def test_ucr_style_format(self, tmp_path, rng):
        """Row layout must be label-first, one series per line."""
        x = np.array([[0.5, -0.25]])
        y = np.array([2])
        path = tmp_path / "one.csv"
        save_series_csv(path, x, y)
        line = path.read_text().strip()
        fields = [float(f) for f in line.split(",")]
        assert fields == [2.0, 0.5, -0.25]

    def test_rejects_shape_mismatch(self, tmp_path, rng):
        with pytest.raises(ValueError):
            save_series_csv(tmp_path / "x.csv", rng.normal(size=(3, 4)), np.zeros(2))

    def test_rejects_non_integer_labels(self, tmp_path):
        (tmp_path / "bad.csv").write_text("0.5,1.0,2.0\n")
        with pytest.raises(ValueError):
            load_series_csv(tmp_path / "bad.csv")

    def test_loads_external_csv(self, tmp_path):
        (tmp_path / "ext.csv").write_text("0,1.0,2.0,3.0\n1,-1.0,-2.0,-3.0\n")
        x, y = load_series_csv(tmp_path / "ext.csv")
        assert x.shape == (2, 3)
        assert np.array_equal(y, [0, 1])


class TestSplits:
    def test_roundtrip_preserves_everything(self, tmp_path):
        ds = load_dataset("Slope", n_samples=50, seed=0)
        path = tmp_path / "slope.npz"
        save_splits(path, ds)
        loaded = load_splits(path)
        assert loaded.info.name == "Slope"
        assert loaded.info.n_classes == 3
        assert np.array_equal(loaded.x_train, ds.x_train)
        assert np.array_equal(loaded.y_test, ds.y_test)
        assert loaded.sizes() == ds.sizes()

    def test_suffix_appended(self, tmp_path):
        ds = load_dataset("Slope", n_samples=50, seed=0)
        save_splits(tmp_path / "noext", ds)
        assert (tmp_path / "noext.npz").exists()
