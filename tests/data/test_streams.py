"""Determinism and invariants of the sensor-stream scenario generators.

Every scenario must be a pure function of ``(scenario, dataset, seed)``
— identical in-process on repeat calls AND across interpreter processes
(mirroring ``tests/core/test_mc_determinism.py``), because streaming
evaluations are replayed from their recorded parameters.
"""

import hashlib
import json
import subprocess
import sys

import numpy as np
import pytest

from repro.data import (
    BURST_KINDS,
    STREAM_SCENARIOS,
    SensorStream,
    drift_stream,
    inject_bursts,
    long_horizon_stream,
    make_stream,
    resampled_stream,
)

SCENARIOS = sorted(STREAM_SCENARIOS)


def _digest(stream: SensorStream) -> str:
    h = hashlib.sha256()
    h.update(stream.x.tobytes())
    h.update(stream.labels.tobytes())
    h.update(stream.burst_mask.tobytes())
    h.update(repr(stream.changepoints).encode())
    return h.hexdigest()


class TestDeterminism:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_same_seed_identical(self, scenario):
        a = make_stream(scenario, "Slope", seed=5)
        b = make_stream(scenario, "Slope", seed=5)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.labels, b.labels)
        assert a.changepoints == b.changepoints
        assert np.array_equal(a.burst_mask, b.burst_mask)

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_different_seed_differs(self, scenario):
        a = make_stream(scenario, "Slope", seed=5)
        b = make_stream(scenario, "Slope", seed=6)
        assert not np.array_equal(a.x, b.x)

    def test_cross_process_determinism(self):
        """Replaying in a fresh interpreter yields the same bytes —
        changepoints and burst masks reproduce across processes."""
        local = {s: _digest(make_stream(s, "Slope", seed=9)) for s in SCENARIOS}
        script = (
            "import json, hashlib, sys\n"
            "import numpy as np\n"
            "from repro.data import make_stream\n"
            "def digest(s):\n"
            "    h = hashlib.sha256()\n"
            "    h.update(s.x.tobytes()); h.update(s.labels.tobytes())\n"
            "    h.update(s.burst_mask.tobytes())\n"
            "    h.update(repr(s.changepoints).encode())\n"
            "    return h.hexdigest()\n"
            f"names = {SCENARIOS!r}\n"
            "print(json.dumps({n: digest(make_stream(n, 'Slope', seed=9))"
            " for n in names}))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            timeout=300,
        )
        remote = json.loads(out.stdout.strip().splitlines()[-1])
        assert remote == local


class TestInvariants:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_shapes_and_bounds(self, scenario):
        s = make_stream(scenario, "Slope", seed=0)
        assert s.x.ndim == 1 and s.x.size == s.steps
        assert s.labels.shape == s.x.shape
        assert s.burst_mask.shape == s.x.shape
        assert np.all(np.abs(s.x) <= 1.0)
        assert all(0 < cp < s.steps for cp in s.changepoints)
        assert list(s.changepoints) == sorted(s.changepoints)

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_labels_constant_within_segments(self, scenario):
        s = make_stream(scenario, "Slope", seed=0)
        for lo, hi, label in s.segments():
            assert np.all(s.labels[lo:hi] == label)

    def test_changepoints_change_the_label(self):
        s = drift_stream("Slope", segments=5, seed=2)
        for cp in s.changepoints:
            assert s.labels[cp - 1] != s.labels[cp]

    def test_burst_mask_only_under_burst_kinds(self):
        for scenario in SCENARIOS:
            s = make_stream(scenario, "Slope", seed=0)
            if scenario in BURST_KINDS:
                assert s.burst_mask.any()
            else:
                assert not s.burst_mask.any()

    def test_long_horizon_much_longer_than_window(self):
        s = long_horizon_stream("Slope", seed=0)
        assert s.steps >= 1024

    def test_resample_changes_segment_lengths(self):
        base = drift_stream("Slope", segments=4, seed=3)
        warped = resampled_stream("Slope", segments=4, seed=3)
        assert warped.steps != base.steps

    def test_unknown_scenario_and_dataset_raise(self):
        with pytest.raises(KeyError, match="scenario"):
            make_stream("nope")
        with pytest.raises(KeyError, match="dataset"):
            drift_stream("NoSuchDataset")


class TestBursts:
    def test_dropout_zeroes_masked_steps(self):
        base = drift_stream("Slope", segments=3, seed=4)
        s = inject_bursts(base, "dropout", rate=0.1, seed=4)
        assert np.all(s.x[s.burst_mask] == 0.0)
        assert np.array_equal(s.x[~s.burst_mask], base.x[~s.burst_mask])

    def test_saturation_clips_to_rails(self):
        base = drift_stream("Slope", segments=3, seed=4)
        s = inject_bursts(base, "saturation", rate=0.1, seed=4)
        assert set(np.unique(s.x[s.burst_mask])) <= {-1.0, 1.0}

    def test_stuck_holds_constant_plateaus(self):
        base = drift_stream("Slope", segments=3, seed=4)
        s = inject_bursts(base, "stuck", rate=0.05, length_range=(6, 6), seed=4)
        # The masked signal is piecewise constant: each burst contributes
        # one plateau, so (overlaps included) the number of distinct
        # plateaus is bounded by the burst budget rate·steps/mean_len.
        n_bursts = max(1, round(0.05 * s.steps / 6))
        masked = s.burst_mask
        runs = int(masked[0]) + int(np.sum(~masked[:-1] & masked[1:]))
        changes_within = int(
            np.sum(masked[1:] & masked[:-1] & (s.x[1:] != s.x[:-1]))
        )
        assert 1 <= runs + changes_within <= n_bursts
        # Unmasked steps are untouched.
        assert np.array_equal(s.x[~masked], base.x[~masked])

    def test_invalid_burst_parameters_raise(self):
        base = drift_stream("Slope", segments=2, seed=0)
        with pytest.raises(ValueError, match="kind"):
            inject_bursts(base, "flood")
        with pytest.raises(ValueError, match="rate"):
            inject_bursts(base, "dropout", rate=0.0)
        with pytest.raises(ValueError, match="length_range"):
            inject_bursts(base, "dropout", length_range=(0, 4))

    def test_labels_and_changepoints_survive_injection(self):
        base = drift_stream("Slope", segments=3, seed=4)
        s = inject_bursts(base, "dropout", rate=0.1, seed=4)
        assert np.array_equal(s.labels, base.labels)
        assert s.changepoints == base.changepoints
