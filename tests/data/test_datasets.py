"""Dataset registry and end-to-end loading."""

import numpy as np
import pytest

from repro.data import DATASET_INFO, TARGET_LENGTH, dataset_names, load_dataset


class TestRegistry:
    def test_fifteen_datasets_in_table_order(self):
        names = dataset_names()
        assert len(names) == 15
        assert names[0] == "CBF"
        assert names[-1] == "Symbols"

    def test_class_counts_match_ucr(self):
        """Class counts pin the topology used by the hardware table."""
        expected = {
            "CBF": 3, "DPTW": 6, "FRT": 2, "FST": 2, "GPAS": 2, "GPMVF": 2,
            "GPOVY": 2, "MPOAG": 3, "MSRT": 5, "PowerCons": 2, "PPOC": 2,
            "SRSCP2": 2, "Slope": 3, "SmoothS": 3, "Symbols": 6,
        }
        assert {k: v.n_classes for k, v in DATASET_INFO.items()} == expected


class TestLoadDataset:
    def test_default_pipeline(self):
        ds = load_dataset("CBF", n_samples=100, seed=0)
        assert ds.x_train.shape == (60, TARGET_LENGTH)
        assert ds.x_val.shape == (20, TARGET_LENGTH)
        assert ds.x_test.shape == (20, TARGET_LENGTH)
        assert ds.series_length == TARGET_LENGTH

    def test_values_normalised(self):
        ds = load_dataset("PowerCons", n_samples=80, seed=0)
        for split in (ds.x_train, ds.x_val, ds.x_test):
            assert split.min() >= -1.0 - 1e-12
            assert split.max() <= 1.0 + 1e-12

    def test_deterministic(self):
        a = load_dataset("Slope", n_samples=50, seed=3)
        b = load_dataset("Slope", n_samples=50, seed=3)
        assert np.array_equal(a.x_train, b.x_train)
        assert np.array_equal(a.y_test, b.y_test)

    def test_custom_length(self):
        ds = load_dataset("CBF", n_samples=50, length=32)
        assert ds.x_train.shape[1] == 32

    def test_sizes_helper(self):
        ds = load_dataset("CBF", n_samples=100)
        assert ds.sizes() == (60, 20, 20)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("Nope")

    @pytest.mark.parametrize("name", ["CBF", "DPTW", "MSRT", "Symbols"])
    def test_labels_in_range_all_splits(self, name):
        ds = load_dataset(name, n_samples=120, seed=0)
        k = ds.info.n_classes
        for labels in (ds.y_train, ds.y_val, ds.y_test):
            assert labels.min() >= 0 and labels.max() < k
