"""``scripts/check_docs.py``: generated doc blocks stay in sync with the code."""

import argparse
import importlib.util
import pathlib
import shutil

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TUTORIAL = REPO_ROOT / "docs" / "TUTORIAL.md"


@pytest.fixture(scope="module")
def check_docs():
    """The checker script, imported as a module."""
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "scripts" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestGenerators:
    def test_cli_help_pins_width(self, check_docs):
        # Importing the checker pins COLUMNS so argparse wraps
        # deterministically regardless of the invoking terminal.
        import os

        assert os.environ["COLUMNS"] == "80"
        text = check_docs.generate_cli_help()
        assert "usage: repro" in text
        assert text == check_docs.generate_cli_help()  # stable

    def test_cli_help_subcommand(self, check_docs):
        assert "list,show,tail" in check_docs.generate_cli_help("runs")

    def test_cli_help_unknown_subcommand(self, check_docs):
        with pytest.raises(KeyError, match="no such CLI subcommand"):
            check_docs.generate_cli_help("nope")

    def test_training_config_lists_every_field(self, check_docs):
        import dataclasses

        from repro.core import TrainingConfig

        text = check_docs.generate_training_config()
        for f in dataclasses.fields(TrainingConfig):
            assert f"{f.name}:" in text

    def test_event_kinds_lists_registry(self, check_docs):
        from repro.telemetry import EVENT_KINDS

        text = check_docs.generate_event_kinds()
        assert all(f"- {kind}" in text for kind in EVENT_KINDS)

    def test_unknown_block_kind_rejected(self, check_docs):
        with pytest.raises(KeyError, match="unknown generated-block kind"):
            check_docs.expected_body("no-such-kind")


class TestCheckMode:
    def test_repo_docs_are_consistent(self, check_docs, capsys):
        assert check_docs.main([]) == 0
        assert "match the code" in capsys.readouterr().out

    def test_tampered_doc_fails(self, check_docs, tmp_path, capsys):
        doc = tmp_path / "TUTORIAL.md"
        text = TUTORIAL.read_text()
        assert "mc_backend: str" in text
        doc.write_text(text.replace("mc_backend: str", "mc_kernel: str"))
        assert check_docs.main([str(doc)]) == 1
        out = capsys.readouterr().out
        assert "-mc_kernel" in out and "+mc_backend" in out

    def test_cli_flag_rename_fails(self, check_docs, monkeypatch, capsys):
        # The acceptance scenario: rename a CLI flag in the *code* and
        # leave the docs untouched — the consistency check must fail.
        import repro.cli

        real_build_parser = repro.cli.build_parser

        def renamed_build_parser():
            parser = real_build_parser()
            (sub,) = [
                a
                for a in parser._actions
                if isinstance(a, argparse._SubParsersAction)
            ]
            bench = sub.choices["mc-bench"]
            for action in bench._actions:
                if "--scan-backend" in action.option_strings:
                    action.option_strings = ["--scan-kernel"]
            return parser

        monkeypatch.setattr(repro.cli, "build_parser", renamed_build_parser)
        assert check_docs.main([str(TUTORIAL)]) == 1
        assert "--scan-kernel" in capsys.readouterr().out

    def test_missing_doc_fails(self, check_docs, tmp_path, capsys):
        assert check_docs.main([str(tmp_path / "nope.md")]) == 1
        assert "not found" in capsys.readouterr().out

    def test_doc_without_markers_fails(self, check_docs, tmp_path, capsys):
        doc = tmp_path / "plain.md"
        doc.write_text("# no generated blocks here\n")
        assert check_docs.main([str(doc)]) == 1
        assert "no generated blocks" in capsys.readouterr().out


class TestFixMode:
    def test_fix_rewrites_drifted_block(self, check_docs, tmp_path, capsys):
        doc = tmp_path / "TUTORIAL.md"
        shutil.copy(TUTORIAL, doc)
        doc.write_text(doc.read_text().replace("mc_backend: str", "mc_kernel: str"))
        assert check_docs.main(["--fix", str(doc)]) == 0
        capsys.readouterr()
        assert check_docs.main([str(doc)]) == 0
        assert doc.read_text() == TUTORIAL.read_text()

    def test_fix_is_idempotent(self, check_docs, tmp_path):
        doc = tmp_path / "TUTORIAL.md"
        shutil.copy(TUTORIAL, doc)
        assert check_docs.main(["--fix", str(doc)]) == 0
        assert doc.read_text() == TUTORIAL.read_text()
