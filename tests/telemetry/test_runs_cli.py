"""``python -m repro runs`` and :func:`repro.report.render_run`."""

from dataclasses import replace

import numpy as np
import pytest

from repro.cli import main
from repro.core import AdaptPNC, Trainer, TrainingConfig
from repro.data import load_dataset
from repro.report import render_run, sparkline
from repro.telemetry import Run, list_runs, load_epochs, summarize_run, tail_events


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """One real trained run shared by every test in this module."""
    root = tmp_path_factory.mktemp("runs")
    dataset = load_dataset("Slope", n_samples=40, seed=0)
    cfg = replace(TrainingConfig.ci(), max_epochs=3, lr_patience=2)
    with Run(root=root, name="cli-demo", seed=7, dataset="Slope") as run:
        model = AdaptPNC(3, rng=np.random.default_rng(7))
        Trainer(model, cfg, variation_aware=True, seed=7).fit(
            dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val
        )
        out = run.dir
    return out


class TestSparkline:
    def test_shape_and_extremes(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == "▁" and line[-1] == "█"

    def test_constant_series_is_flat(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_downsamples_to_width(self):
        assert len(sparkline(list(range(1000)), width=20)) == 20

    def test_nonfinite_values_render(self):
        line = sparkline([1.0, float("nan"), 2.0])
        assert len(line) == 3

    def test_empty(self):
        assert sparkline([]) == ""


class TestRunReaders:
    def test_summarize(self, run_dir):
        summary = summarize_run(run_dir)
        assert summary.status == "completed"
        assert summary.epochs == 3
        assert summary.last_val_loss is not None

    def test_list_runs_newest_first(self, run_dir):
        summaries = list_runs(run_dir.parent)
        assert [s.run_id for s in summaries] == [run_dir.name]

    def test_list_runs_accepts_run_dir_itself(self, run_dir):
        assert len(list_runs(run_dir)) == 1

    def test_list_runs_missing_root(self, tmp_path):
        assert list_runs(tmp_path / "nope") == []

    def test_load_epochs_sorted(self, run_dir):
        epochs = load_epochs(run_dir)
        assert [e["epoch"] for e in epochs] == [0, 1, 2]

    def test_tail_events(self, run_dir):
        tail = tail_events(run_dir, n=2)
        assert len(tail) == 2
        assert tail[-1]["kind"] == "run_end"


class TestRenderRun:
    def test_render_contains_sections(self, run_dir):
        text = render_run(run_dir)
        assert f"# Run `{run_dir.name}`" in text
        assert "status: **completed**" in text
        assert "train loss" in text and "val loss" in text
        assert "Span wall-clock" in text
        assert "`forward`" in text and "`scan.fused`" in text
        assert "Monte-Carlo counters" in text

    def test_render_has_sparklines(self, run_dir):
        text = render_run(run_dir)
        assert any(block in text for block in "▂▃▄▅▆▇█")


class TestRenderSweepRun:
    @pytest.fixture()
    def sweep_run_dir(self, tmp_path):
        """A run dir holding sweep.* events (one failed cell)."""
        with Run(root=tmp_path, name="sweep-demo") as run:
            run.emit(
                "sweep.start", executor="parallel", n_cells=3, n_cached=1,
                max_workers=2, timeout_s=5.0, retries=1,
                cache_dir="sweep_cache", cache_fingerprint="abc123",
            )
            run.emit(
                "sweep.cell_end", cell="table1/Slope/adapt/0", status="ok",
                attempts=1, cached=False, elapsed_s=0.5, values={}, error=None,
            )
            run.emit("sweep.retry", cell="t/1", attempt=1, error="boom", backoff_s=0.1)
            run.emit(
                "sweep.cell_end", cell="table1/Slope/adapt/1", status="failed",
                attempts=2, cached=False, elapsed_s=1.0, values=None,
                error="ValueError: boom\n  deep traceback",
            )
            run.emit(
                "sweep.end", n_cells=3, n_ok=2, n_failed=1, n_cached=1,
                elapsed_s=2.5,
            )
            out = run.dir
        return out

    def test_sweep_section_rendered(self, sweep_run_dir):
        text = render_run(sweep_run_dir)
        assert "## Sweep" in text
        assert "executor: **parallel**" in text
        assert "cells: 2/3 ok, 1 failed, 1 from cache" in text
        assert "`sweep_cache`" in text and "abc123" in text
        assert "retries: 1" in text
        # Failed-cell table: first line of the error only.
        assert "| `table1/Slope/adapt/1` | 2 | ValueError: boom |" in text
        assert "deep traceback" not in text

    def test_no_sweep_section_without_sweep_events(self, run_dir):
        assert "## Sweep" not in render_run(run_dir)


class TestRunsCli:
    def test_list(self, run_dir, capsys):
        assert main(["runs", "list", "--root", str(run_dir.parent)]) == 0
        out = capsys.readouterr().out
        assert run_dir.name in out and "completed" in out

    def test_list_empty_root(self, tmp_path, capsys):
        assert main(["runs", "list", "--root", str(tmp_path)]) == 0
        assert "no runs" in capsys.readouterr().out

    def test_show(self, run_dir, capsys):
        assert main(["runs", "show", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "## Training" in out

    def test_show_rejects_non_run_dir(self, tmp_path, capsys):
        assert main(["runs", "show", str(tmp_path)]) == 1
        assert "not a run directory" in capsys.readouterr().out

    def test_tail(self, run_dir, capsys):
        assert main(["runs", "tail", str(run_dir), "-n", "2"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == 2
        assert '"kind": "run_end"' in lines[-1]
