"""Telemetry core: event schema, gauges, Run lifecycle, off fast path."""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    Gauge,
    GaugeRegistry,
    Run,
    active_run,
    encode_event,
    iter_events,
    read_events,
    validate_event,
)


class TestEventSchema:
    def test_encode_round_trip(self):
        line = encode_event("epoch", t=1.5, wall=2.0, fields={"train_loss": 0.25})
        event = json.loads(line)
        assert event["v"] == SCHEMA_VERSION
        assert event["kind"] == "epoch"
        assert event["t"] == 1.5 and event["wall"] == 2.0
        assert event["train_loss"] == 0.25

    def test_envelope_wins_over_payload(self):
        line = encode_event("epoch", t=1.0, wall=2.0, fields={"kind": "spoofed", "v": 99})
        event = json.loads(line)
        assert event["kind"] == "epoch" and event["v"] == SCHEMA_VERSION

    def test_floats_round_trip_exactly(self):
        value = 0.1 + 0.2  # not representable prettily
        line = encode_event("epoch", t=0.0, wall=0.0, fields={"x": value})
        assert json.loads(line)["x"] == value

    def test_numpy_payloads_coerced(self):
        line = encode_event(
            "epoch",
            t=0.0,
            wall=0.0,
            fields={"a": np.float64(1.5), "b": np.int64(3), "c": np.arange(2)},
        )
        event = json.loads(line)
        assert event["a"] == 1.5 and event["b"] == 3 and event["c"] == [0, 1]

    def test_validate_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="required field"):
            validate_event({"kind": "epoch"})

    def test_validate_rejects_future_schema(self):
        with pytest.raises(ValueError, match="newer than supported"):
            validate_event({"v": SCHEMA_VERSION + 1, "kind": "x", "t": 0, "wall": 0})

    def test_known_kinds_listed(self):
        for kind in ("fit_start", "epoch", "checkpoint", "evaluation", "run_end"):
            assert kind in EVENT_KINDS

    def test_iter_events_tolerates_trailing_partial_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = encode_event("epoch", t=0.0, wall=0.0, fields={"epoch": 0})
        path.write_text(good + "\n" + '{"v": 1, "kind": "epo')  # killed mid-write
        events = read_events(path)
        assert len(events) == 1 and events[0]["epoch"] == 0

    def test_iter_events_rejects_mid_file_corruption(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = encode_event("epoch", t=0.0, wall=0.0, fields={})
        path.write_text("not json at all\n" + good + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            read_events(path)

    def test_iter_events_kind_filter(self, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = [
            encode_event("epoch", t=0.0, wall=0.0, fields={"epoch": 0}),
            encode_event("checkpoint", t=0.1, wall=0.1, fields={}),
            encode_event("epoch", t=0.2, wall=0.2, fields={"epoch": 1}),
        ]
        path.write_text("\n".join(lines) + "\n")
        assert [e["epoch"] for e in iter_events(path, kind="epoch")] == [0, 1]


class TestGauges:
    def test_gauge_accumulates(self):
        g = Gauge()
        g.add("fused", 0.5, quantity=4)
        g.add("fused", 0.25, quantity=4)
        g.add("unfused", 1.0)
        snap = g.snapshot()
        assert snap["fused"]["seconds"] == pytest.approx(0.75)
        assert snap["fused"]["calls"] == 2
        assert snap["fused"]["quantity"] == 8
        assert "quantity" not in snap["unfused"]

    def test_gauge_reset(self):
        g = Gauge()
        g.add("k", 1.0)
        g.reset()
        assert g.snapshot() == {}

    def test_registry_snapshot(self):
        reg = GaugeRegistry()
        g = Gauge()
        g.add("x", 2.0)
        reg.register("mine", g.snapshot)
        snap = reg.snapshot()
        assert snap["mine"]["x"]["seconds"] == 2.0
        assert snap["mine"]["x"]["calls"] == 1
        reg.unregister("mine")
        assert "mine" not in reg.snapshot()

    def test_mc_counters_registered_as_gauge(self):
        from repro.utils.timing import mc_counters

        snap = telemetry.gauges.snapshot()
        assert "mc" in snap
        assert snap["mc"].keys() == mc_counters.snapshot().keys()


class TestRunLifecycle:
    def test_manifest_written_and_finalised(self, tmp_path):
        with Run(root=tmp_path, name="t", seed=3, dataset="Slope") as run:
            run.emit("epoch", epoch=0, train_loss=1.0)
            manifest_path = run.manifest_path
        manifest = json.loads(manifest_path.read_text())
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["status"] == "completed"
        assert manifest["seed"] == 3 and manifest["dataset"] == "Slope"
        assert manifest["events"] == 2  # epoch + run_end
        assert "git_sha" in manifest and "pid" in manifest

    def test_failed_status_on_exception(self, tmp_path):
        with pytest.raises(RuntimeError, match="boom"):
            with Run(root=tmp_path, name="f") as run:
                raise RuntimeError("boom")
        manifest = json.loads(run.manifest_path.read_text())
        assert manifest["status"] == "failed"

    def test_refuses_existing_run_dir(self, tmp_path):
        with Run(dir=tmp_path / "r"):
            pass
        with pytest.raises(FileExistsError):
            Run(dir=tmp_path / "r")

    def test_emit_after_close_raises(self, tmp_path):
        with Run(root=tmp_path) as run:
            pass
        with pytest.raises(RuntimeError, match="closed"):
            run.emit("epoch")

    def test_span_totals_aggregate(self, tmp_path):
        with Run(root=tmp_path) as run:
            with run.span("work"):
                pass
            run.record_span("work", 0.5)
            totals = run.span_totals()
        assert totals["work"]["calls"] == 2
        assert totals["work"]["seconds"] >= 0.5

    def test_run_end_carries_spans_and_gauges(self, tmp_path):
        with Run(root=tmp_path) as run:
            run.record_span("step", 0.1)
        (end,) = read_events(run.events_path, kind="run_end")
        assert end["span_totals"]["step"]["seconds"] == pytest.approx(0.1)
        assert "mc" in end["gauges"]

    def test_nested_runs_shadow(self, tmp_path):
        with Run(root=tmp_path, name="outer") as outer:
            with Run(root=tmp_path, name="inner") as inner:
                assert active_run() is inner
            assert active_run() is outer
        assert active_run() is None


class TestTelemetryOffFastPath:
    def test_no_active_run_by_default(self):
        assert active_run() is None

    def test_module_hooks_are_noops(self):
        telemetry.emit("epoch", train_loss=1.0)  # must not raise
        telemetry.record_span("x", 1.0)
        with telemetry.span("x"):
            pass

    def test_span_returns_shared_null_context(self):
        # Zero-allocation guarantee: the same nullcontext every call.
        assert telemetry.span("a") is telemetry.span("b")

    def test_fit_without_run_writes_nothing(self, tmp_path, monkeypatch):
        from dataclasses import replace

        from repro.core import AdaptPNC, Trainer, TrainingConfig

        monkeypatch.chdir(tmp_path)
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(8, 8))
        y = rng.integers(0, 2, size=8)
        cfg = replace(TrainingConfig.ci(), max_epochs=2)
        model = AdaptPNC(2, rng=np.random.default_rng(0))
        trainer = Trainer(model, cfg, variation_aware=True, seed=0)
        trainer.fit(x[2:], y[2:], x[:2], y[:2])
        assert list(tmp_path.iterdir()) == []  # no runs/, no checkpoints
        assert trainer._last_draw_losses is None
