"""Linear, activations, containers and initialisers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Identity, Linear, ModuleList, ReLU, Sequential, Sigmoid, Tanh, init


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 3, rng=rng)
        assert layer(Tensor(np.ones((5, 4)))).shape == (5, 3)

    def test_matches_manual_affine(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(2, 4))
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert layer(Tensor(np.zeros((2, 4)))).data.sum() == 0.0

    def test_gradients_reach_parameters(self, rng):
        layer = Linear(4, 3, rng=rng)
        layer(Tensor(rng.normal(size=(2, 4)))).sum().backward()
        assert layer.weight.grad is not None and layer.bias.grad is not None

    def test_batched_3d_input(self, rng):
        layer = Linear(4, 3, rng=rng)
        assert layer(Tensor(np.ones((2, 5, 4)))).shape == (2, 5, 3)

    @pytest.mark.parametrize("bad", [(0, 3), (3, 0), (-1, 2)])
    def test_rejects_bad_dims(self, bad):
        with pytest.raises(ValueError):
            Linear(*bad)

    def test_seeded_init_reproducible(self):
        a = Linear(4, 3, rng=np.random.default_rng(7))
        b = Linear(4, 3, rng=np.random.default_rng(7))
        assert np.array_equal(a.weight.data, b.weight.data)


class TestActivations:
    @pytest.mark.parametrize(
        "module,fn",
        [
            (Tanh(), np.tanh),
            (Sigmoid(), lambda x: 1 / (1 + np.exp(-x))),
            (ReLU(), lambda x: np.maximum(x, 0)),
            (Identity(), lambda x: x),
        ],
    )
    def test_matches_numpy(self, module, fn, rng):
        x = rng.normal(size=(3, 4))
        assert np.allclose(module(Tensor(x)).data, fn(x))


class TestContainers:
    def test_sequential_chains(self, rng):
        net = Sequential(Linear(4, 8, rng=rng), Tanh(), Linear(8, 2, rng=rng))
        assert net(Tensor(np.ones((3, 4)))).shape == (3, 2)

    def test_sequential_parameters_collected(self, rng):
        net = Sequential(Linear(4, 8, rng=rng), Linear(8, 2, rng=rng))
        assert net.num_parameters() == (4 * 8 + 8) + (8 * 2 + 2)

    def test_sequential_indexing_iteration(self, rng):
        net = Sequential(Linear(4, 8, rng=rng), Tanh())
        assert len(net) == 2
        assert isinstance(net[1], Tanh)
        assert [type(m).__name__ for m in net] == ["Linear", "Tanh"]

    def test_modulelist_append_and_iterate(self, rng):
        ml = ModuleList([Linear(2, 2, rng=rng)])
        ml.append(Tanh())
        assert len(ml) == 2
        assert isinstance(ml[1], Tanh)

    def test_modulelist_parameters_registered(self, rng):
        ml = ModuleList([Linear(2, 3, rng=rng), Linear(3, 1, rng=rng)])
        assert ml.num_parameters() == (2 * 3 + 3) + (3 + 1)

    def test_modulelist_forward_raises(self):
        with pytest.raises(NotImplementedError):
            ModuleList([Tanh()])(1)


class TestInit:
    def test_xavier_uniform_bound(self, rng):
        w = init.xavier_uniform((100, 50), rng)
        bound = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= bound)

    def test_xavier_normal_std(self, rng):
        w = init.xavier_normal((400, 400), rng)
        assert abs(w.std() - np.sqrt(2.0 / 800)) < 0.005

    def test_kaiming_uniform_bound(self, rng):
        w = init.kaiming_uniform((10, 25), rng)
        assert np.all(np.abs(w) <= np.sqrt(6.0 / 25))

    def test_uniform_range(self, rng):
        w = init.uniform((1000,), rng, low=2.0, high=3.0)
        assert w.min() >= 2.0 and w.max() < 3.0

    def test_normal_moments(self, rng):
        w = init.normal((5000,), rng, mean=1.0, std=0.5)
        assert abs(w.mean() - 1.0) < 0.05
        assert abs(w.std() - 0.5) < 0.05

    def test_fans_reject_empty_shape(self, rng):
        with pytest.raises(ValueError):
            init.xavier_uniform((), rng)
