"""Loss functions."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import CrossEntropyLoss, MSELoss, NLLLoss, cross_entropy, mse_loss
from repro.autograd import log_softmax


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 1])
        logp = log_softmax(Tensor(logits), axis=-1).data
        expected = -logp[np.arange(4), labels].mean()
        assert np.isclose(cross_entropy(Tensor(logits), labels).item(), expected)

    def test_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = cross_entropy(logits, [0, 1])
        assert loss.item() < 1e-6

    def test_uniform_logits_log_k(self):
        k = 5
        loss = cross_entropy(Tensor(np.zeros((3, k))), [0, 1, 2])
        assert np.isclose(loss.item(), np.log(k))

    def test_gradients(self, rng):
        labels = np.array([0, 2, 1])
        check_gradients(
            lambda a: cross_entropy(a, labels), [rng.normal(size=(3, 4))]
        )

    def test_rejects_label_out_of_range(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(rng.normal(size=(2, 3))), [0, 3])

    def test_rejects_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(rng.normal(size=(2, 3))), [0, 1, 0])

    def test_rejects_1d_logits(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(rng.normal(size=3)), [0])

    def test_module_wrapper(self, rng):
        logits = Tensor(rng.normal(size=(2, 3)))
        assert np.isclose(
            CrossEntropyLoss()(logits, [0, 1]).item(),
            cross_entropy(logits, [0, 1]).item(),
        )


class TestNLL:
    def test_matches_cross_entropy_via_log_softmax(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)))
        labels = [0, 1, 2, 0]
        nll = NLLLoss()(log_softmax(logits, axis=-1), labels)
        assert np.isclose(nll.item(), cross_entropy(logits, labels).item())


class TestMSE:
    def test_zero_for_identical(self, rng):
        x = rng.normal(size=(3, 4))
        assert mse_loss(Tensor(x), x).item() == 0.0

    def test_matches_numpy(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        assert np.isclose(mse_loss(Tensor(a), b).item(), ((a - b) ** 2).mean())

    def test_gradients(self, rng):
        target = rng.normal(size=(3, 4))
        check_gradients(lambda a: mse_loss(a, target), [rng.normal(size=(3, 4))])

    def test_module_wrapper(self, rng):
        a, b = rng.normal(size=(2, 2)), rng.normal(size=(2, 2))
        assert np.isclose(MSELoss()(Tensor(a), b).item(), mse_loss(Tensor(a), b).item())
