"""Elman RNN reference model."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import ElmanCell, ElmanRNN


class TestElmanCell:
    def test_step_shape(self, rng):
        cell = ElmanCell(3, 5, rng=rng)
        h = cell(Tensor(np.ones((2, 3))), cell.initial_state(2))
        assert h.shape == (2, 5)

    def test_matches_manual_update(self, rng):
        cell = ElmanCell(3, 4, rng=rng)
        x = rng.normal(size=(2, 3))
        h = rng.normal(size=(2, 4))
        out = cell(Tensor(x), Tensor(h)).data
        expected = np.tanh(
            x @ cell.weight_ih.data.T
            + cell.bias_ih.data
            + h @ cell.weight_hh.data.T
            + cell.bias_hh.data
        )
        assert np.allclose(out, expected)

    def test_initial_state_zero(self, rng):
        cell = ElmanCell(3, 4, rng=rng)
        assert np.all(cell.initial_state(5).data == 0)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            ElmanCell(0, 4)
        with pytest.raises(ValueError):
            ElmanCell(3, -1)


class TestElmanRNN:
    def test_output_shapes(self, rng):
        rnn = ElmanRNN(1, 6, num_layers=2, rng=rng)
        out, states = rnn(Tensor(np.ones((4, 10, 1))))
        assert out.shape == (4, 10, 6)
        assert len(states) == 2
        assert all(s.shape == (4, 6) for s in states)

    def test_last_output_equals_final_state(self, rng):
        rnn = ElmanRNN(1, 6, num_layers=2, rng=rng)
        out, states = rnn(Tensor(rng.normal(size=(3, 7, 1))))
        assert np.allclose(out.data[:, -1, :], states[-1].data)

    def test_custom_initial_state_changes_output(self, rng):
        rnn = ElmanRNN(1, 4, num_layers=1, rng=rng)
        x = Tensor(rng.normal(size=(2, 5, 1)))
        out_zero, _ = rnn(x)
        h0 = [Tensor(np.ones((2, 4)))]
        out_ones, _ = rnn(x, h0=h0)
        assert not np.allclose(out_zero.data, out_ones.data)

    def test_wrong_h0_length_raises(self, rng):
        rnn = ElmanRNN(1, 4, num_layers=2, rng=rng)
        with pytest.raises(ValueError):
            rnn(Tensor(np.ones((2, 5, 1))), h0=[Tensor(np.zeros((2, 4)))])

    def test_rejects_2d_input(self, rng):
        rnn = ElmanRNN(1, 4, rng=rng)
        with pytest.raises(ValueError):
            rnn(Tensor(np.ones((2, 5))))

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            ElmanRNN(1, 4, num_layers=0)

    def test_gradients_flow_to_all_layers(self, rng):
        rnn = ElmanRNN(1, 4, num_layers=2, rng=rng)
        out, _ = rnn(Tensor(rng.normal(size=(2, 6, 1))))
        out.sum().backward()
        for _, p in rnn.named_parameters():
            assert p.grad is not None

    def test_deterministic_forward(self, rng):
        rnn = ElmanRNN(1, 4, rng=rng)
        x = Tensor(rng.normal(size=(2, 5, 1)))
        a, _ = rnn(x)
        b, _ = rnn(x)
        assert np.array_equal(a.data, b.data)

    def test_output_bounded_by_tanh(self, rng):
        rnn = ElmanRNN(1, 4, rng=rng)
        out, _ = rnn(Tensor(rng.normal(size=(2, 20, 1)) * 100))
        assert np.all(np.abs(out.data) <= 1.0)
