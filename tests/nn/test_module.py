"""Module system: registration, traversal, state dicts, modes."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, Sequential, Tanh


class Branch(Module):
    def __init__(self):
        super().__init__()
        self.w = Parameter(np.ones(3))
        self.child = Linear(3, 2, rng=np.random.default_rng(0))

    def forward(self, x):
        return self.child(x * self.w)


class TestRegistration:
    def test_parameter_auto_registered(self):
        m = Branch()
        names = [n for n, _ in m.named_parameters()]
        assert "w" in names

    def test_child_module_parameters_included(self):
        m = Branch()
        names = [n for n, _ in m.named_parameters()]
        assert "child.weight" in names and "child.bias" in names

    def test_parameters_count(self):
        m = Branch()
        assert m.num_parameters() == 3 + 3 * 2 + 2

    def test_modules_iterates_tree(self):
        m = Branch()
        kinds = [type(x).__name__ for x in m.modules()]
        assert kinds == ["Branch", "Linear"]

    def test_children_direct_only(self):
        outer = Sequential(Branch(), Tanh())
        assert len(list(outer.children())) == 2

    def test_register_module_explicit(self):
        m = Module()
        m.register_module("sub", Tanh())
        assert "sub" in [n for n, _ in m._modules.items()]

    def test_register_parameter_explicit(self):
        m = Module()
        m.register_parameter("p", Parameter(np.zeros(2)))
        assert m.num_parameters() == 2


class TestStateDict:
    def test_roundtrip(self):
        m = Branch()
        state = m.state_dict()
        m.w.data[:] = 99.0
        m.load_state_dict(state)
        assert np.allclose(m.w.data, 1.0)

    def test_state_dict_is_copy(self):
        m = Branch()
        state = m.state_dict()
        state["w"][:] = 42.0
        assert np.allclose(m.w.data, 1.0)

    def test_missing_key_raises(self):
        m = Branch()
        state = m.state_dict()
        del state["w"]
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_unexpected_key_raises(self):
        m = Branch()
        state = m.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        m = Branch()
        state = m.state_dict()
        state["w"] = np.zeros(5)
        with pytest.raises(ValueError):
            m.load_state_dict(state)


class TestModes:
    def test_train_eval_recursive(self):
        m = Sequential(Branch(), Tanh())
        m.eval()
        assert all(not mod.training for mod in m.modules())
        m.train()
        assert all(mod.training for mod in m.modules())

    def test_zero_grad_clears_everything(self):
        from repro.autograd import Tensor

        m = Branch()
        m(Tensor(np.ones((2, 3)))).sum().backward()
        assert m.w.grad is not None
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_repr_shows_children(self):
        assert "Linear" in repr(Branch())
