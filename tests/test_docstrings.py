"""Docstring presence on the observability surface.

Mirrors the CI ruff step (``ruff check --select D100,D101,D102,D103,D104``
scoped to ``repro.core.training``, ``repro.autograd.function``, the
``repro.telemetry`` package, and the campaign fabric's
``repro.parallel.pool`` / ``repro.parallel.store``) so the same
guarantee holds in environments without ruff installed: module
docstrings, and docstrings on every public class, function and method
*defined* in those modules.
"""

import importlib
import inspect
import pkgutil

import pytest


def _telemetry_modules():
    import repro.telemetry as pkg

    names = ["repro.telemetry"]
    names += [m.name for m in pkgutil.iter_modules(pkg.__path__, "repro.telemetry.")]
    return names


MODULES = sorted(
    [
        "repro.core.training",
        "repro.autograd.function",
        "repro.parallel.pool",
        "repro.parallel.store",
        *_telemetry_modules(),
    ]
)


def _public_members(module):
    """Yield ``(qualname, object)`` for the documented API of ``module``.

    Public classes and functions defined in the module, plus public
    methods and properties defined on those classes (inherited members
    are the defining class's responsibility).
    """
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export — documented at its definition site
        yield name, obj
        if inspect.isclass(obj):
            for attr, member in vars(obj).items():
                if attr.startswith("_"):
                    continue
                if isinstance(member, property):
                    yield f"{name}.{attr}", member.fget
                elif inspect.isfunction(member):
                    yield f"{name}.{attr}", member


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert inspect.getdoc(module), f"{module_name} has no module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_api_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = [
        qualname
        for qualname, obj in _public_members(module)
        if not inspect.getdoc(obj)
    ]
    assert not missing, f"{module_name}: missing docstrings on {missing}"


def test_surface_is_nontrivial():
    # Guard against the walker silently checking nothing.
    total = sum(
        len(list(_public_members(importlib.import_module(name))))
        for name in MODULES
    )
    assert total >= 20
