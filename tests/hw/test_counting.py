"""Device counting rules."""

import numpy as np
import pytest

from repro.circuits import PrintedCrossbar, PrintedTanh
from repro.circuits.filters import FirstOrderLearnableFilter, SecondOrderLearnableFilter
from repro.core import AdaptPNC, PTPNC, PrintedTemporalProcessingBlock
from repro.hw import DeviceCount, count_devices


class TestDeviceCount:
    def test_total(self):
        assert DeviceCount(2, 3, 4).total == 9

    def test_addition(self):
        a, b = DeviceCount(1, 2, 3), DeviceCount(10, 20, 30)
        assert (a + b).as_row() == (11, 22, 33, 66)


class TestPrimitiveCounts:
    def test_crossbar_all_positive_thetas(self, rng):
        xb = PrintedCrossbar(3, 2, rng=rng)
        xb.theta.data[:] = 0.5
        xb.theta_b.data[:] = 0.3
        count = count_devices(xb)
        # 6 input + 2 bias + 2 dummy resistors; no inverters
        assert count.resistors == 10
        assert count.transistors == 0
        assert count.capacitors == 0

    def test_crossbar_negative_thetas_add_inverters(self, rng):
        xb = PrintedCrossbar(3, 2, rng=rng)
        xb.theta.data[:] = 0.5
        xb.theta.data[0, 0] = -0.5
        xb.theta_b.data[:] = 0.3
        count = count_devices(xb)
        assert count.transistors == 2  # one inverter
        assert count.resistors == 11  # +1 inverter resistor

    def test_ptanh_counts(self, rng):
        act = PrintedTanh(4, rng=rng)
        count = count_devices(act)
        assert count.transistors == 8
        assert count.resistors == 8

    def test_first_order_filter_counts(self, rng):
        flt = FirstOrderLearnableFilter(3, rng=rng)
        count = count_devices(flt)
        assert count.as_row() == (0, 3, 3, 6)

    def test_second_order_filter_counts(self, rng):
        flt = SecondOrderLearnableFilter(3, rng=rng)
        count = count_devices(flt)
        assert count.as_row() == (6, 6, 6, 18)


class TestCompositeCounts:
    def test_tpb_is_sum_of_parts(self, rng):
        tpb = PrintedTemporalProcessingBlock(2, 3, rng=rng)
        total = count_devices(tpb)
        parts = (
            count_devices(tpb.filters)
            + count_devices(tpb.crossbar)
            + count_devices(tpb.activation)
        )
        assert total.as_row() == parts.as_row()

    def test_model_is_sum_of_blocks(self, rng):
        model = AdaptPNC(2, rng=rng)
        total = count_devices(model)
        parts = DeviceCount()
        for block in model.blocks:
            parts = parts + count_devices(block)
        assert total.as_row() == parts.as_row()

    def test_proposed_has_more_capacitors(self):
        base = PTPNC(3, rng=np.random.default_rng(0))
        prop = AdaptPNC(3, rng=np.random.default_rng(0))
        assert count_devices(prop).capacitors > count_devices(base).capacitors

    def test_capacitor_count_formula(self, rng):
        """Baseline: N_F per layer; proposed: 2 N_F per layer (SO-LF)."""
        base = PTPNC(2, hidden_size=3, rng=rng)
        assert count_devices(base).capacitors == 1 + 3  # layer inputs: 1, then 3
        prop = AdaptPNC(2, hidden_size=3, rng=rng)
        assert count_devices(prop).capacitors == 2 * (1 + 3)

    def test_device_ratio_matches_paper_band(self):
        """Table III: proposed uses ~1.9x the baseline's devices."""
        ratios = []
        for seed in range(5):
            base = count_devices(PTPNC(3, rng=np.random.default_rng(seed))).total
            prop = count_devices(AdaptPNC(3, rng=np.random.default_rng(seed))).total
            ratios.append(prop / base)
        assert 1.4 < np.mean(ratios) < 2.5

    def test_hardware_agnostic_model_counts_zero(self, rng):
        from repro.core import ElmanClassifier

        assert count_devices(ElmanClassifier(2, rng=rng)).total == 0
