"""Table III report generation."""

import numpy as np
import pytest

from repro.core import AdaptPNC, PTPNC
from repro.hw import format_hardware_table, hardware_report


class TestHardwareReport:
    def test_defaults_to_all_datasets(self):
        rows = hardware_report()
        assert len(rows) == 15

    def test_row_metrics(self):
        rows = hardware_report(datasets=["CBF", "Symbols"])
        for row in rows:
            assert row.device_ratio > 1.0
            assert 0.0 < row.power_reduction < 1.0

    def test_more_classes_more_devices(self):
        rows = {r.dataset: r for r in hardware_report(datasets=["FRT", "Symbols"])}
        assert rows["Symbols"].baseline.total > rows["FRT"].baseline.total
        assert rows["Symbols"].proposed.total > rows["FRT"].proposed.total

    def test_average_shape_matches_paper(self):
        """Device ratio ~1.9x, power reduction ~91% across the suite."""
        rows = hardware_report()
        ratio = np.mean([r.device_ratio for r in rows])
        reduction = np.mean([r.power_reduction for r in rows])
        assert 1.4 < ratio < 2.5
        assert reduction > 0.75

    def test_accepts_trained_models(self, rng):
        models = {
            "CBF": {
                "baseline": PTPNC(3, rng=rng),
                "proposed": AdaptPNC(3, rng=rng),
            }
        }
        rows = hardware_report(datasets=["CBF"], models=models)
        assert rows[0].dataset == "CBF"


class TestFormatting:
    def test_table_renders_all_rows_and_average(self):
        rows = hardware_report(datasets=["CBF", "Slope"])
        text = format_hardware_table(rows)
        assert "CBF" in text and "Slope" in text and "Average" in text
        assert "P base(mW)" in text

    def test_empty_rows_no_average(self):
        assert "Average" not in format_hardware_table([])
