"""Static power estimation."""

import numpy as np
import pytest

from repro.circuits import BASELINE_PDK, DEFAULT_PDK, PrintedCrossbar
from repro.core import AdaptPNC, PTPNC
from repro.hw import estimate_power


class TestBreakdown:
    def test_positive_components(self, rng):
        power = estimate_power(AdaptPNC(2, rng=rng))
        assert power.crossbar_resistors > 0
        assert power.transistor_stages > 0
        assert np.isclose(power.total, power.crossbar_resistors + power.transistor_stages)

    def test_total_mw_conversion(self, rng):
        power = estimate_power(PTPNC(2, rng=rng))
        assert np.isclose(power.total_mw, power.total * 1e3)


class TestDesignPointGap:
    def test_proposed_much_lower_power(self):
        """Table III: ~91% reduction despite ~1.9x devices."""
        reductions = []
        for seed in range(5):
            base = estimate_power(PTPNC(3, rng=np.random.default_rng(seed))).total
            prop = estimate_power(AdaptPNC(3, rng=np.random.default_rng(seed))).total
            reductions.append(1.0 - prop / base)
        assert np.mean(reductions) > 0.75

    def test_power_in_paper_magnitude(self, rng):
        """Baseline sub-mW to few-mW; proposed tens of µW (Table III)."""
        base = estimate_power(PTPNC(3, rng=rng)).total_mw
        assert 0.05 < base < 10.0
        prop = estimate_power(AdaptPNC(3, rng=rng)).total_mw
        assert 0.005 < prop < 1.0

    def test_crossbar_power_scales_with_conductance(self, rng):
        xb = PrintedCrossbar(3, 2, pdk=DEFAULT_PDK, rng=rng)
        xb.theta.data[:] = 0.2
        xb.theta_b.data[:] = 0.2
        xb.theta_d.data[:] = 0.2
        low = estimate_power(xb).crossbar_resistors
        xb.theta.data[:] = 0.8
        high = estimate_power(xb).crossbar_resistors
        assert high > low

    def test_same_topology_baseline_pdk_hungrier(self, rng):
        a = PrintedCrossbar(3, 2, pdk=DEFAULT_PDK, rng=np.random.default_rng(0))
        b = PrintedCrossbar(3, 2, pdk=BASELINE_PDK, rng=np.random.default_rng(0))
        assert estimate_power(b).total > estimate_power(a).total

    def test_hardware_agnostic_model_zero_power(self, rng):
        from repro.core import ElmanClassifier

        assert estimate_power(ElmanClassifier(2, rng=rng)).total == 0.0


class TestEnergyPerInference:
    def test_energy_formula(self, rng):
        from repro.hw import energy_per_inference

        model = AdaptPNC(2, rng=rng)
        power = estimate_power(model).total
        assert np.isclose(energy_per_inference(model, 64, 1e-3), power * 0.064)

    def test_proposed_cheaper_per_inference(self):
        from repro.hw import energy_per_inference

        base = PTPNC(3, rng=np.random.default_rng(0))
        prop = AdaptPNC(3, rng=np.random.default_rng(0))
        assert energy_per_inference(prop) < energy_per_inference(base)

    def test_microjoule_range(self, rng):
        from repro.hw import energy_per_inference

        energy = energy_per_inference(AdaptPNC(2, rng=rng))
        assert 1e-7 < energy < 1e-4  # single-digit microjoules

    def test_rejects_bad_arguments(self, rng):
        from repro.hw import energy_per_inference

        model = AdaptPNC(2, rng=rng)
        with pytest.raises(ValueError):
            energy_per_inference(model, 0)
        with pytest.raises(ValueError):
            energy_per_inference(model, 64, 0.0)
