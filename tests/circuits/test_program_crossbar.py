"""Crossbar programming: importing software weights (inverse of Eq. 1)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.circuits import PrintedCrossbar, program_crossbar


@pytest.fixture
def xb(rng):
    return PrintedCrossbar(3, 2, rng=rng)


class TestProgramming:
    def test_realises_requested_weights(self, xb, rng):
        weights = np.array([[0.3, -0.2, 0.1], [-0.25, 0.15, 0.2]])
        bias = np.array([0.1, -0.05])
        program_crossbar(xb, weights, bias)
        assert np.allclose(xb.weight_matrix(), weights, atol=1e-12)

    def test_forward_matches_affine_map(self, xb, rng):
        weights = np.array([[0.3, -0.2, 0.1], [-0.25, 0.15, 0.2]])
        bias = np.array([0.1, -0.05])
        program_crossbar(xb, weights, bias)
        x = rng.uniform(-1, 1, (4, 3))
        out = xb(Tensor(x)).data
        assert np.allclose(out, x @ weights.T + bias, atol=1e-12)

    def test_zero_bias_default(self, xb):
        weights = np.full((2, 3), 0.2)
        program_crossbar(xb, weights)
        x = np.zeros((1, 3))
        assert np.allclose(xb(Tensor(x)).data, 0.0, atol=1e-12)

    def test_zero_weight_prunes_crossing(self, xb):
        weights = np.array([[0.4, 0.0, 0.3], [0.2, 0.2, 0.2]])
        program_crossbar(xb, weights)
        assert xb.theta.data[0, 1] == 0.0
        assert xb.count_input_resistors() == 5

    def test_headroom_controls_conductance_ceiling(self, xb):
        weights = np.full((2, 3), 0.2)
        program_crossbar(xb, weights, headroom=0.5)
        from repro.circuits import THETA_MAX

        all_g = np.concatenate(
            [np.abs(xb.theta.data).reshape(-1), np.abs(xb.theta_d.data)]
        )
        assert np.isclose(all_g.max(), 0.5 * THETA_MAX)

    def test_rejects_row_sum_above_one(self, xb):
        weights = np.array([[0.5, 0.4, 0.3], [0.1, 0.1, 0.1]])
        with pytest.raises(ValueError):
            program_crossbar(xb, weights)

    def test_rejects_excessive_dynamic_range(self, xb):
        # 1e-4 relative to 0.5: the tiny weight would fall below THETA_MIN.
        weights = np.array([[0.5, 5e-5, 0.1], [0.1, 0.1, 0.1]])
        with pytest.raises(ValueError):
            program_crossbar(xb, weights)

    def test_rejects_shape_mismatch(self, xb):
        with pytest.raises(ValueError):
            program_crossbar(xb, np.zeros((2, 4)))
        with pytest.raises(ValueError):
            program_crossbar(xb, np.full((2, 3), 0.1), np.zeros(3))

    def test_rejects_bad_headroom(self, xb):
        with pytest.raises(ValueError):
            program_crossbar(xb, np.full((2, 3), 0.1), headroom=0.0)

    def test_roundtrip_with_compiled_netlist(self, rng):
        """Programmed weights survive compilation to a physical netlist."""
        from repro.compile.model_compiler import _compile_crossbar
        from repro.spice import NonlinearCircuit, newton_dc

        xb = PrintedCrossbar(2, 1, rng=rng)
        weights = np.array([[0.35, -0.25]])
        bias = np.array([0.1])
        program_crossbar(xb, weights, bias)

        circuit = NonlinearCircuit()
        circuit.add_voltage_source("vdd", "vdd", 0, 1.0)
        circuit.add_vcvs("evss", "vss", 0, "vdd", 0, -1.0)
        v_in = [0.6, -0.4]
        for i, v in enumerate(v_in):
            circuit.add_voltage_source(f"vin{i}", f"in{i}", 0, v)
        nodes = _compile_crossbar(circuit, xb, ["in0", "in1"], "b0", "vdd", "vss")
        op = newton_dc(circuit)
        expected = float(np.array(v_in) @ weights[0] + bias[0])
        assert np.isclose(op[nodes[0]], expected, atol=1e-9)
