"""Finite-difference gradient checks on the batched Monte-Carlo path.

Certifies the full printed pipeline — SO-LF filter bank → crossbar →
ptanh — differentiates correctly when every Monte-Carlo draw is
evaluated in one ``(draws, batch, time, features)`` forward, including
the coupling-factor edge cases μ = 1 (unloaded stage) and μ = 1.3
(paper's maximum load) and the Δt → 0 limit where the filter output
collapses onto its initial voltage.

Each check reseeds the shared sampler before every forward so the
finite-difference probes see identical ε/μ/V₀ draws.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.circuits import (
    PrintedCrossbar,
    PrintedTanh,
    SecondOrderLearnableFilter,
    UniformVariation,
    VariationSampler,
)

N_FILTERS = 2
BATCH = 2
TIME = 3
DRAWS = 2


def _sampler(mu_low: float = 1.0, mu_high: float = 1.3, seed: int = 0) -> VariationSampler:
    return VariationSampler(
        model=UniformVariation(0.1),
        mu_low=mu_low,
        mu_high=mu_high,
        rng=np.random.default_rng(seed),
    )


def _pipeline(sampler: VariationSampler, dt: float = 1e-3, seed: int = 0):
    rng = np.random.default_rng(seed)
    solf = SecondOrderLearnableFilter(N_FILTERS, dt=dt, sampler=sampler, rng=rng)
    xbar = PrintedCrossbar(N_FILTERS, N_FILTERS, sampler=sampler, rng=rng)
    act = PrintedTanh(N_FILTERS, sampler=sampler, rng=rng)

    def fn(x: Tensor) -> Tensor:
        # Re-derive the identical per-draw child streams on every call,
        # so finite-difference probes sample the same variations.
        sampler.reseed(123)
        with sampler.batched(DRAWS):
            seq = solf(x)           # (draws, batch, time, n)
            last = seq[..., -1, :]  # (draws, batch, n)
            return act(xbar(last))

    return fn


class TestBatchedPipelineGradients:
    def test_shared_input_broadcast_over_draws(self, rng):
        """(batch, time, n) input broadcast across the draws axis."""
        fn = _pipeline(_sampler())
        x = rng.uniform(-1, 1, (BATCH, TIME, N_FILTERS))
        assert check_gradients(fn, [x])

    def test_draw_stacked_input(self, rng):
        """Explicit (draws, batch, time, n) input."""
        fn = _pipeline(_sampler())
        x = rng.uniform(-1, 1, (DRAWS, BATCH, TIME, N_FILTERS))
        assert check_gradients(fn, [x])

    @pytest.mark.parametrize("mu", [1.0, 1.3], ids=["mu=1", "mu=1.3"])
    def test_coupling_factor_edges(self, rng, mu):
        """Degenerate μ bands (uniform(μ, μ) ≡ μ exactly)."""
        fn = _pipeline(_sampler(mu_low=mu, mu_high=mu))
        x = rng.uniform(-1, 1, (BATCH, TIME, N_FILTERS))
        assert check_gradients(fn, [x])

    def test_dt_to_zero_limit(self, rng):
        """Δt → 0: b = Δt/(RC + μΔt) → 0, the filter holds V₀ and the
        input gradient vanishes smoothly — backward must stay finite and
        match the (near-zero) numerical gradient."""
        fn = _pipeline(_sampler(), dt=1e-9)
        x = rng.uniform(-1, 1, (BATCH, TIME, N_FILTERS))
        assert check_gradients(fn, [x])

    def test_filter_only_gradients(self, rng):
        """SO-LF in isolation under the batched context."""
        sampler = _sampler()
        solf = SecondOrderLearnableFilter(
            N_FILTERS, sampler=sampler, rng=np.random.default_rng(1)
        )

        def fn(x: Tensor) -> Tensor:
            sampler.reseed(7)
            with sampler.batched(DRAWS):
                return solf(x)

        x = rng.uniform(-1, 1, (BATCH, TIME, N_FILTERS))
        assert check_gradients(fn, [x])


class TestBatchedPipelineProperties:
    def test_dt_to_zero_output_approaches_v0(self):
        """Property behind the Δt→0 edge case: the first-stage output
        stays within O(Δt) of the sampled initial voltage."""
        sampler = _sampler(seed=11)
        solf = SecondOrderLearnableFilter(
            N_FILTERS, dt=1e-12, sampler=sampler, rng=np.random.default_rng(2)
        )
        x = np.random.default_rng(3).uniform(-1, 1, (BATCH, TIME, N_FILTERS))
        sampler.reseed(99)
        with sampler.batched(DRAWS):
            out = solf(Tensor(x)).data  # (draws, batch, time, n)
        # Re-derive the V₀ draws consumed by stage 2 of each draw.
        oracle = _sampler(seed=11)
        oracle.reseed(99)
        for d, stream in enumerate(oracle.spawn_streams(DRAWS)):
            oracle.rng = stream
            for _ in range(2):  # stage-1 and stage-2 coefficient draws
                oracle.epsilon((N_FILTERS,))
                oracle.epsilon((N_FILTERS,))
                oracle.mu((N_FILTERS,))
            oracle.initial_voltage((BATCH, N_FILTERS))  # stage-1 V₀
            v0_2 = oracle.initial_voltage((BATCH, N_FILTERS))
            np.testing.assert_allclose(
                out[d], np.broadcast_to(v0_2[:, None, :], out[d].shape), atol=1e-6
            )

    def test_mu_one_matches_unloaded_recurrence(self):
        """μ = 1, no variation, V₀ = 0: the batched SO-LF reduces to the
        ideal two-stage backward-Euler recurrence for every draw."""
        from repro.circuits import NoVariation

        sampler = VariationSampler(
            model=NoVariation(), mu_low=1.0, mu_high=1.0, v0_max=0.0,
            rng=np.random.default_rng(0),
        )
        dt = 1e-3
        solf = SecondOrderLearnableFilter(
            N_FILTERS, dt=dt, sampler=sampler, rng=np.random.default_rng(4)
        )
        x = np.random.default_rng(5).uniform(-1, 1, (BATCH, TIME, N_FILTERS))
        with sampler.batched(DRAWS):
            out = solf(Tensor(x)).data

        def stage(xs: np.ndarray, log_r, log_c) -> np.ndarray:
            rc = np.exp(log_r.data) * np.exp(log_c.data)
            a, b = rc / (rc + dt), dt / (rc + dt)
            v = np.zeros((BATCH, N_FILTERS))
            vs = []
            for k in range(TIME):
                v = a * v + b * xs[:, k, :]
                vs.append(v)
            return np.stack(vs, axis=1)

        ref = stage(stage(x, solf.stage1.log_r, solf.stage1.log_c),
                    solf.stage2.log_r, solf.stage2.log_c)
        for d in range(DRAWS):
            np.testing.assert_allclose(out[d], ref, atol=1e-12)
