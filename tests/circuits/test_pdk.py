"""Printed PDK constants and derived quantities."""

import numpy as np
import pytest

from repro.circuits import BASELINE_PDK, DEFAULT_PDK, PrintedPDK


class TestShippedPDKs:
    def test_default_crossbar_window_matches_paper(self):
        """Sec. IV-A1: crossbar resistors in 100 kOhm - 10 MOhm."""
        assert DEFAULT_PDK.crossbar_r_min == 100e3
        assert DEFAULT_PDK.crossbar_r_max == 10e6

    def test_default_filter_resistors_below_1k(self):
        assert DEFAULT_PDK.filter_r_max <= 1e3

    def test_default_capacitance_window_matches_paper(self):
        """Sec. IV-A1: 100 nF - 100 uF."""
        assert DEFAULT_PDK.capacitance_min == 100e-9
        assert DEFAULT_PDK.capacitance_max == 100e-6

    def test_baseline_draws_more_transistor_power(self):
        """The Table III technology gap: baseline stages are far hungrier."""
        ratio = BASELINE_PDK.transistor_bias_power / DEFAULT_PDK.transistor_bias_power
        assert ratio > 10

    def test_nominal_variation_is_ten_percent(self):
        assert DEFAULT_PDK.nominal_variation == 0.10

    def test_supply_is_one_volt(self):
        assert DEFAULT_PDK.supply_voltage == 1.0


class TestDerived:
    def test_resistor_static_power(self):
        p = DEFAULT_PDK.resistor_static_power(1e6)
        assert np.isclose(p, 0.5 * 1.0 / 1e6)

    def test_resistor_power_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DEFAULT_PDK.resistor_static_power(0.0)

    def test_clipping_helpers(self):
        assert DEFAULT_PDK.clip_crossbar_resistance(1.0) == DEFAULT_PDK.crossbar_r_min
        assert DEFAULT_PDK.clip_crossbar_resistance(1e12) == DEFAULT_PDK.crossbar_r_max
        assert DEFAULT_PDK.clip_filter_resistance(1e9) == DEFAULT_PDK.filter_r_max
        assert DEFAULT_PDK.clip_capacitance(1.0) == DEFAULT_PDK.capacitance_max


class TestValidation:
    def base_kwargs(self):
        return dict(
            name="t",
            crossbar_r_min=1e5,
            crossbar_r_max=1e7,
            filter_r_min=50.0,
            filter_r_max=1e3,
            capacitance_min=1e-7,
            capacitance_max=1e-4,
        )

    @pytest.mark.parametrize(
        "override",
        [
            {"crossbar_r_min": 0.0},
            {"crossbar_r_min": 1e8},  # min > max
            {"filter_r_min": -1.0},
            {"capacitance_min": 1e-3},  # min > max
            {"supply_voltage": 0.0},
            {"nominal_variation": 1.5},
        ],
    )
    def test_rejects_inconsistent_windows(self, override):
        with pytest.raises(ValueError):
            PrintedPDK(**{**self.base_kwargs(), **override})
