"""Coupling-factor extraction via the MNA engine."""

import numpy as np
import pytest

from repro.circuits import build_so_filter_circuit, extract_mu_range, fit_mu
from repro.circuits.coupling import _model_step_response
from repro.spice import dc_operating_point


class TestNetlist:
    def test_circuit_topology(self):
        c = build_so_filter_circuit(500, 1e-5, 800, 1e-5, 1e5)
        assert len(c.resistors) == 3
        assert len(c.capacitors) == 2
        assert len(c.voltage_sources) == 1

    def test_dc_divider_through_load(self):
        r1, r2, rl = 400.0, 600.0, 9e3
        c = build_so_filter_circuit(r1, 1e-5, r2, 1e-5, rl)
        op = dc_operating_point(c, t=1.0)  # step already high at t=1
        assert np.isclose(op["out"], rl / (rl + r1 + r2), rtol=1e-6)

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ValueError):
            build_so_filter_circuit(0.0, 1e-5, 800, 1e-5, 1e5)


class TestModelResponse:
    def test_mu_one_matches_decoupled_cascade(self):
        out = _model_step_response(500, 2e-5, 800, 1e-5, np.array([1.0, 1.0]), 1e-3, 50)
        # DC limit with mu=1 is unity.
        assert out[-1] > 0.95
        assert np.all(np.diff(out) >= -1e-12)

    def test_larger_mu_lowers_response(self):
        low = _model_step_response(500, 2e-5, 800, 1e-5, np.array([1.0, 1.0]), 1e-3, 50)
        high = _model_step_response(500, 2e-5, 800, 1e-5, np.array([1.3, 1.3]), 1e-3, 50)
        assert np.all(high[1:] <= low[1:])


class TestFitting:
    def test_fit_recovers_response_from_model_generated_data(self):
        """Self-consistency: fitting model output reproduces the response.

        The two stages nearly commute, so (mu1, mu2) is only weakly
        identifiable as a pair — what must be recovered is the response.
        """
        from scipy.optimize import minimize

        r1, c1, r2, c2, dt, steps = 600.0, 2e-5, 900.0, 1e-5, 1e-3, 80
        true_mu = np.array([1.15, 1.05])
        target = _model_step_response(r1, c1, r2, c2, true_mu, dt, steps)

        def objective(mu):
            model = _model_step_response(r1, c1, r2, c2, np.clip(mu, 1.0, None), dt, steps)
            return float(np.mean((model - target) ** 2))

        best = minimize(objective, x0=np.array([1.01, 1.01]), method="Nelder-Mead",
                        options={"xatol": 1e-6, "fatol": 1e-14, "maxiter": 4000})
        fitted = _model_step_response(
            r1, c1, r2, c2, np.clip(best.x, 1.0, None), dt, steps
        )
        assert np.max(np.abs(fitted - target)) < 1e-4
        assert np.all(np.clip(best.x, 1.0, None) >= 1.0)

    def test_fit_mu_returns_sane_values(self):
        fit = fit_mu(900, 8e-5, 100, 1e-6, 5e5, dt=1e-3, steps=60)
        assert 1.0 <= fit.mu1 <= 1.5
        assert 1.0 <= fit.mu2 <= 1.5
        assert fit.residual < 0.1
        assert 0 < fit.dc_gain <= 1.0

    def test_unloaded_filter_fits_mu_one(self):
        # Enormous load: essentially no coupling; mu should stay ~1.
        fit = fit_mu(200, 1e-5, 900, 1e-5, 1e9, dt=1e-3, steps=60)
        assert fit.mu1 < 1.05 and fit.mu2 < 1.05

    def test_fit_rejects_bad_components(self):
        with pytest.raises(ValueError):
            fit_mu(-1.0, 1e-5, 800, 1e-5, 1e5)


class TestRangeStudy:
    def test_extracted_mu_within_paper_band(self):
        mu1, mu2 = extract_mu_range(samples=8, steps=50, rng=np.random.default_rng(0))
        both = np.concatenate([mu1, mu2])
        assert both.min() >= 1.0
        assert both.max() <= 1.3  # the paper's empirical band
