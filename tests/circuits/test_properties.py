"""Property-based invariants of the printed-circuit primitives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor
from repro.circuits import (
    PrintedCrossbar,
    THETA_MIN,
    program_crossbar,
    snap_to_grid,
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(seeds, st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_crossbar_weight_rows_always_below_one(seed, n_in, n_out):
    """Eq. (1): conductance-ratio weights satisfy Σ|w| < 1 for any init."""
    xb = PrintedCrossbar(n_in, n_out, rng=np.random.default_rng(seed))
    w = xb.weight_matrix()
    assert np.all(np.abs(w).sum(axis=1) < 1.0)


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_crossbar_output_bounded_by_inputs(seed):
    """A conductance divider cannot amplify: |out| ≤ max(|in|, V_b)."""
    rng = np.random.default_rng(seed)
    xb = PrintedCrossbar(4, 3, rng=rng)
    x = rng.uniform(-1, 1, (8, 4))
    out = xb(Tensor(x)).data
    bound = max(np.abs(x).max(), xb.pdk.supply_voltage)
    assert np.all(np.abs(out) <= bound + 1e-9)


@given(
    arrays(
        np.float64,
        (2, 3),
        elements=st.floats(min_value=-0.25, max_value=0.25, allow_nan=False),
    ),
    seeds,
)
@settings(max_examples=30, deadline=None)
def test_program_crossbar_roundtrip(weights, seed):
    """Programming then reading back recovers the weights exactly,
    whenever the request is printable."""
    xb = PrintedCrossbar(3, 2, rng=np.random.default_rng(seed))
    # keep rows inside the divider constraint and dynamic range
    magnitudes = np.abs(weights)
    ok_rows = (magnitudes.sum(axis=1) < 0.9) & np.all(
        (magnitudes == 0) | (magnitudes > magnitudes.max() * THETA_MIN * 2 + 1e-12),
        axis=1,
    )
    if not np.all(ok_rows):
        return
    try:
        program_crossbar(xb, weights)
    except ValueError:
        return  # dynamic range genuinely unprintable — allowed to refuse
    assert np.allclose(xb.weight_matrix(), weights, atol=1e-9)


@given(
    arrays(
        np.float64,
        (20,),
        elements=st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
    ),
    st.integers(min_value=1, max_value=24),
)
@settings(max_examples=40, deadline=None)
def test_snap_to_grid_idempotent_and_bounded(values, n):
    snapped = snap_to_grid(values, n)
    assert np.allclose(snap_to_grid(snapped, n), snapped, rtol=1e-9)
    ratio = np.maximum(snapped / values, values / snapped)
    assert np.all(ratio <= 10 ** (0.5 / n) * (1 + 1e-9))


@given(seeds, st.floats(min_value=0.0, max_value=0.3))
@settings(max_examples=25, deadline=None)
def test_filter_coefficients_stable_under_any_variation(seed, delta):
    """|a| < 1 for every draw: the printed filter can never go unstable."""
    from repro.circuits import SecondOrderLearnableFilter, UniformVariation, VariationSampler

    rng = np.random.default_rng(seed)
    sampler = VariationSampler(model=UniformVariation(delta), rng=rng)
    flt = SecondOrderLearnableFilter(2, sampler=sampler, rng=rng)
    for stage in (flt.stage1, flt.stage2):
        a, b = stage.coefficients(flt.dt, sampler)
        assert np.all(a.data >= 0) and np.all(a.data < 1.0)
        assert np.all(b.data > 0) and np.all(b.data <= 1.0)
        # backward-Euler consistency at mu=1: a + b <= 1 always
        assert np.all(a.data + b.data <= 1.0 + 1e-12)
