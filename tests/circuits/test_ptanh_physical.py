"""Physical η derivation from component values q^A."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.circuits import (
    PrintedTanh,
    build_ptanh_circuit,
    derive_eta,
    make_printed_tanh,
)
from repro.spice import EGTParameters


@pytest.fixture(scope="module")
def fit():
    return derive_eta(r1=20e3, r2=20e3)


class TestCircuit:
    def test_netlist_topology(self):
        c = build_ptanh_circuit(20e3, 20e3)
        assert len(c.resistors) == 2
        assert len(c.egts) == 2
        assert len(c.voltage_sources) == 2  # vdd + vin

    def test_rejects_nonpositive_loads(self):
        with pytest.raises(ValueError):
            build_ptanh_circuit(0.0, 20e3)


class TestTransferShape:
    def test_cascade_is_monotone_rising(self, fit):
        """Two inverting stages: overall non-inverting tanh shape."""
        assert np.all(np.diff(fit.v_out) >= -1e-9)

    def test_saturates_at_both_ends(self, fit):
        low_slope = (fit.v_out[2] - fit.v_out[0]) / (fit.v_in[2] - fit.v_in[0])
        mid = len(fit.v_in) // 2
        mid_slope = (fit.v_out[mid + 1] - fit.v_out[mid - 1]) / (
            fit.v_in[mid + 1] - fit.v_in[mid - 1]
        )
        high_slope = (fit.v_out[-1] - fit.v_out[-3]) / (fit.v_in[-1] - fit.v_in[-3])
        assert mid_slope > 5 * max(abs(low_slope), 1e-6)
        assert mid_slope > 5 * max(abs(high_slope), 1e-6)

    def test_output_within_supply(self, fit):
        assert fit.v_out.min() >= 0.0
        assert fit.v_out.max() <= 1.0 + 1e-9


class TestEtaFit:
    def test_fit_quality(self, fit):
        """Sec. II-B: the circuit's transfer is tanh-like — the fit must
        capture it within a few mV RMS."""
        assert fit.rms_error < 0.02

    def test_eta_are_physical(self, fit):
        assert 0.0 < fit.eta1 < 1.0  # mid-level inside the supply
        assert fit.eta2 > 0.0  # positive swing (non-inverting)
        assert 0.0 < fit.eta3 < 1.0  # threshold inside the sweep
        assert fit.eta4 > 1.0  # sharper than unit gain

    def test_evaluate_matches_simulation(self, fit):
        predicted = fit.evaluate(fit.v_in)
        assert np.sqrt(np.mean((predicted - fit.v_out) ** 2)) < 0.02

    def test_eta4_grows_with_load_resistance(self):
        """Larger loads -> higher stage gain -> steeper transfer."""
        soft = derive_eta(r1=5e3, r2=5e3, points=40)
        sharp = derive_eta(r1=100e3, r2=100e3, points=40)
        assert sharp.eta4 > soft.eta4

    def test_threshold_tracks_transistor_vt(self):
        lo = derive_eta(t1=EGTParameters(v_t=0.2), t2=EGTParameters(v_t=0.2), points=40)
        hi = derive_eta(t1=EGTParameters(v_t=0.45), t2=EGTParameters(v_t=0.45), points=40)
        assert hi.eta3 > lo.eta3


class TestMakePrintedTanh:
    def test_recentered_module(self, fit):
        act = make_printed_tanh(3, fit, rng=np.random.default_rng(0))
        assert isinstance(act, PrintedTanh)
        assert np.allclose(act.eta1.data, 0.0)
        assert np.allclose(act.eta2.data, fit.eta2)
        assert np.allclose(act.eta4.data, fit.eta4)

    def test_raw_module_keeps_offsets(self, fit):
        act = make_printed_tanh(2, fit, rng=np.random.default_rng(0), recenter=False)
        assert np.allclose(act.eta1.data, fit.eta1)
        assert np.allclose(act.eta3.data, fit.eta3)

    def test_module_forward_works(self, fit):
        act = make_printed_tanh(2, fit, rng=np.random.default_rng(0))
        out = act(Tensor(np.linspace(-1, 1, 10).reshape(5, 2)))
        assert out.shape == (5, 2)
        assert np.all(np.isfinite(out.data))
