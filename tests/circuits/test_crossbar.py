"""Printed crossbar layer: Eq. (1) semantics, variation, accounting."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.circuits import (
    BASELINE_PDK,
    DEFAULT_PDK,
    THETA_MIN,
    PrintedCrossbar,
    UniformVariation,
    VariationSampler,
    ideal_sampler,
)


@pytest.fixture
def xb(rng):
    return PrintedCrossbar(4, 3, rng=rng)


class TestForward:
    def test_output_shape(self, xb, rng):
        assert xb(Tensor(rng.uniform(-1, 1, (6, 4)))).shape == (6, 3)

    def test_rejects_wrong_width(self, xb):
        with pytest.raises(ValueError):
            xb(Tensor(np.ones((2, 5))))

    def test_rejects_1d(self, xb):
        with pytest.raises(ValueError):
            xb(Tensor(np.ones(4)))

    def test_ideal_forward_deterministic(self, xb, rng):
        x = Tensor(rng.uniform(-1, 1, (3, 4)))
        assert np.array_equal(xb(x).data, xb(x).data)

    def test_matches_manual_weighted_sum(self, rng):
        xb = PrintedCrossbar(3, 1, rng=rng)
        x = rng.uniform(-1, 1, (5, 3))
        out = xb(Tensor(x)).data
        w = xb.weight_matrix()
        g_b = np.abs(xb.theta_b.data).clip(0, 1.0)
        g = np.abs(xb.theta.data) * (np.abs(xb.theta.data) >= THETA_MIN)
        g_d = np.abs(xb.theta_d.data).clip(THETA_MIN, 1.0)
        denom = g.sum(axis=1) + g_b + g_d
        bias = np.sign(xb.theta_b.data) * g_b / denom
        assert np.allclose(out, x @ w.T + bias)

    def test_weight_rows_sum_below_one(self, rng):
        """Conductance-ratio weights are strictly < 1 in magnitude (Eq. 1)."""
        for seed in range(5):
            xb = PrintedCrossbar(6, 4, rng=np.random.default_rng(seed))
            w = xb.weight_matrix()
            assert np.all(np.abs(w).sum(axis=1) < 1.0)

    def test_negative_theta_inverts_contribution(self, rng):
        xb = PrintedCrossbar(1, 1, rng=rng)
        xb.theta.data = np.array([[0.5]])
        x = Tensor(np.array([[0.8]]))
        positive = xb(x).data[0, 0]
        xb.theta.data = np.array([[-0.5]])
        negative = xb(x).data[0, 0]
        # Flipping the crossing's sign flips the input contribution around
        # the (unchanged) bias term.
        g = 0.5
        denom = g + np.abs(xb.theta_b.data[0]) + np.abs(xb.theta_d.data[0]).clip(THETA_MIN, 1.0)
        contribution = (g / denom) * 0.8
        assert np.isclose(positive - negative, 2 * contribution)
        assert positive > negative


class TestVariation:
    def test_variation_changes_output(self, rng):
        xb = PrintedCrossbar(4, 3, rng=rng)
        xb.sampler = VariationSampler(
            model=UniformVariation(0.1), rng=np.random.default_rng(0)
        )
        x = Tensor(rng.uniform(-1, 1, (3, 4)))
        assert not np.allclose(xb(x).data, xb(x).data)

    def test_variation_output_stays_close(self, rng):
        xb = PrintedCrossbar(4, 3, rng=rng)
        x = Tensor(rng.uniform(-1, 1, (3, 4)))
        nominal = xb(x).data
        xb.sampler = VariationSampler(
            model=UniformVariation(0.1), rng=np.random.default_rng(0)
        )
        varied = xb(x).data
        assert np.max(np.abs(varied - nominal)) < 0.3


class TestGradients:
    def test_gradients_reach_all_parameters(self, xb, rng):
        xb(Tensor(rng.uniform(-1, 1, (3, 4)))).sum().backward()
        assert xb.theta.grad is not None
        assert xb.theta_b.grad is not None
        assert xb.theta_d.grad is not None

    def test_gradcheck_theta(self, rng):
        """Analytic theta gradient matches central finite differences."""
        xb = PrintedCrossbar(3, 2, rng=rng)
        x = rng.uniform(-1, 1, (2, 3))
        eps = 1e-6
        base = xb.theta.data.copy()
        xb.zero_grad()
        xb(Tensor(x)).sum().backward()
        analytic = xb.theta.grad.copy()
        numeric = np.zeros_like(base)
        for idx in np.ndindex(base.shape):
            xb.theta.data = base.copy()
            xb.theta.data[idx] += eps
            plus = xb(Tensor(x)).data.sum()
            xb.theta.data = base.copy()
            xb.theta.data[idx] -= eps
            minus = xb(Tensor(x)).data.sum()
            numeric[idx] = (plus - minus) / (2 * eps)
        xb.theta.data = base
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_pruned_crossing_gets_no_gradient(self, rng):
        xb = PrintedCrossbar(3, 1, rng=rng)
        xb.theta.data[0, 1] = THETA_MIN / 10  # below printable minimum
        xb.zero_grad()
        xb(Tensor(rng.uniform(-1, 1, (2, 3)))).sum().backward()
        assert xb.theta.grad[0, 1] == 0.0


class TestHardwareAccounting:
    def test_input_resistor_count_excludes_pruned(self, rng):
        xb = PrintedCrossbar(4, 2, rng=rng)
        xb.theta.data[:] = 0.5
        xb.theta.data[0, 0] = 0.001
        assert xb.count_input_resistors() == 7

    def test_inverter_count_tracks_negative_crossings(self, rng):
        xb = PrintedCrossbar(4, 2, rng=rng)
        xb.theta.data[:] = 0.5
        xb.theta.data[0, :2] = -0.5
        xb.theta_b.data[:] = 0.2
        assert xb.count_inverters() == 2

    def test_negative_bias_needs_inverter(self, rng):
        xb = PrintedCrossbar(2, 1, rng=rng)
        xb.theta.data[:] = 0.5
        xb.theta_b.data[:] = -0.3
        assert xb.count_inverters() == 1

    def test_resistances_within_pdk_window(self, rng):
        for pdk in (DEFAULT_PDK, BASELINE_PDK):
            xb = PrintedCrossbar(5, 3, pdk=pdk, rng=rng)
            r = xb.printable_resistances()
            assert r.min() >= pdk.crossbar_r_min * 0.999
            assert r.max() <= pdk.crossbar_r_min / THETA_MIN * 1.001

    def test_bias_resistors_include_dummy(self, rng):
        xb = PrintedCrossbar(2, 3, rng=rng)
        xb.theta_b.data[:] = 0.5
        assert xb.count_bias_resistors() == 6  # 3 bias + 3 dummy

    @pytest.mark.parametrize("bad", [(0, 2), (2, 0)])
    def test_rejects_bad_dims(self, bad):
        with pytest.raises(ValueError):
            PrintedCrossbar(*bad)
