"""Printed tanh activation circuit."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.circuits import PrintedTanh, UniformVariation, VariationSampler


class TestForward:
    def test_shape(self, rng):
        act = PrintedTanh(3, rng=rng)
        assert act(Tensor(np.zeros((5, 3)))).shape == (5, 3)

    def test_matches_formula(self, rng):
        act = PrintedTanh(2, rng=rng)
        x = rng.normal(size=(4, 2))
        out = act(Tensor(x)).data
        expected = act.eta1.data + act.eta2.data * np.tanh(
            (x - act.eta3.data) * act.eta4.data
        )
        assert np.allclose(out, expected)

    def test_output_bounded_by_eta(self, rng):
        act = PrintedTanh(3, rng=rng)
        out = act(Tensor(rng.normal(size=(100, 3)) * 100)).data
        bound = np.abs(act.eta1.data) + np.abs(act.eta2.data)
        assert np.all(np.abs(out) <= bound + 1e-9)

    def test_monotone_in_input(self, rng):
        act = PrintedTanh(1, rng=rng)
        xs = np.linspace(-2, 2, 50).reshape(-1, 1)
        out = act(Tensor(xs)).data[:, 0]
        assert np.all(np.diff(out) > 0)  # eta2, eta4 init positive

    def test_rejects_wrong_width(self, rng):
        act = PrintedTanh(3, rng=rng)
        with pytest.raises(ValueError):
            act(Tensor(np.zeros((2, 4))))

    def test_rejects_zero_neurons(self):
        with pytest.raises(ValueError):
            PrintedTanh(0)


class TestTraining:
    def test_gradients_reach_all_eta(self, rng):
        act = PrintedTanh(3, rng=rng)
        act(Tensor(rng.normal(size=(4, 3)))).sum().backward()
        for p in (act.eta1, act.eta2, act.eta3, act.eta4):
            assert p.grad is not None

    def test_eta_gradcheck(self, rng):
        act = PrintedTanh(2, rng=rng)
        x = rng.normal(size=(3, 2))
        act.zero_grad()
        act(Tensor(x)).sum().backward()
        eps = 1e-6
        for p in (act.eta1, act.eta2, act.eta3, act.eta4):
            base = p.data.copy()
            numeric = np.zeros_like(base)
            for i in range(base.size):
                p.data = base.copy()
                p.data[i] += eps
                plus = act(Tensor(x)).data.sum()
                p.data = base.copy()
                p.data[i] -= eps
                minus = act(Tensor(x)).data.sum()
                numeric[i] = (plus - minus) / (2 * eps)
            p.data = base
            assert np.allclose(p.grad, numeric, atol=1e-5)


class TestVariation:
    def test_variation_perturbs_transfer(self, rng):
        act = PrintedTanh(2, rng=rng)
        act.sampler = VariationSampler(
            model=UniformVariation(0.1), rng=np.random.default_rng(0)
        )
        x = Tensor(rng.normal(size=(3, 2)))
        assert not np.allclose(act(x).data, act(x).data)
