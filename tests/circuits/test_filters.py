"""Learnable printed filters — recurrence correctness and invariants."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.circuits import (
    FirstOrderLearnableFilter,
    NoVariation,
    SecondOrderLearnableFilter,
    UniformVariation,
    VariationSampler,
    ideal_sampler,
)


def manual_first_order(x, r, c, dt, mu=1.0, v0=0.0):
    """Reference recurrence: V_k = (RC V_{k-1} + dt x_k) / (mu RC + dt)."""
    a = r * c / (mu * r * c + dt)
    b = dt / (mu * r * c + dt)
    v = v0
    out = []
    for xk in x:
        v = a * v + b * xk
        out.append(v)
    return np.array(out)


class TestFirstOrder:
    def test_matches_manual_recurrence(self, rng):
        flt = FirstOrderLearnableFilter(1, dt=1e-3, sampler=ideal_sampler(), rng=rng)
        r = float(np.exp(flt.stage.log_r.data[0]))
        c = float(np.exp(flt.stage.log_c.data[0]))
        x = rng.uniform(-1, 1, 20)
        out = flt(Tensor(x.reshape(1, 20, 1))).data[0, :, 0]
        assert np.allclose(out, manual_first_order(x, r, c, 1e-3))

    def test_matches_spice_transient(self, rng):
        """The differentiable layer equals the MNA backward-Euler netlist."""
        from repro.spice import Circuit, PiecewiseLinear, transient

        flt = FirstOrderLearnableFilter(1, dt=1e-3, sampler=ideal_sampler(), rng=rng)
        flt.stage.log_r.data = np.log([500.0])
        flt.stage.log_c.data = np.log([10e-6])
        steps = 30
        x = rng.uniform(-1, 1, steps)
        layer = flt(Tensor(x.reshape(1, steps, 1))).data[0, :, 0]

        circ = Circuit()
        times = np.arange(steps + 1) * 1e-3
        circ.add_voltage_source("vin", "in", 0, PiecewiseLinear(times, np.concatenate([[x[0]], x])))
        circ.add_resistor("r", "in", "out", 500.0)
        circ.add_capacitor("c", "out", 0, 10e-6)
        sim = transient(circ, dt=1e-3, steps=steps, probes=["out"])["out"][1:]
        assert np.allclose(layer, sim, atol=1e-6)

    def test_constant_input_converges_to_dc_gain(self, rng):
        flt = FirstOrderLearnableFilter(1, dt=1e-3, sampler=ideal_sampler(), rng=rng)
        flt.stage.log_r.data = np.log([200.0])
        flt.stage.log_c.data = np.log([5e-6])  # tau = 1 ms
        x = np.full((1, 300, 1), 0.7)
        out = flt(Tensor(x)).data
        assert np.isclose(out[0, -1, 0], 0.7, atol=1e-3)  # mu=1: unity DC gain

    def test_smooths_high_frequency(self, rng):
        flt = FirstOrderLearnableFilter(1, dt=1e-3, sampler=ideal_sampler(), rng=rng)
        flt.stage.log_r.data = np.log([1000.0])
        flt.stage.log_c.data = np.log([50e-6])
        noise = rng.normal(0, 1, (1, 100, 1))
        out = flt(Tensor(noise)).data
        assert out.std() < noise.std() * 0.5

    def test_rejects_wrong_channel_count(self, rng):
        flt = FirstOrderLearnableFilter(2, rng=rng)
        with pytest.raises(ValueError):
            flt(Tensor(np.ones((1, 5, 3))))

    @pytest.mark.parametrize("kwargs", [{"num_filters": 0}, {"num_filters": 2, "dt": 0.0}])
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            FirstOrderLearnableFilter(**kwargs)

    def test_counts(self, rng):
        flt = FirstOrderLearnableFilter(5, rng=rng)
        assert flt.count_resistors() == 5
        assert flt.count_capacitors() == 5
        assert flt.count_transistors() == 0

    def test_component_values_printable(self, rng):
        flt = FirstOrderLearnableFilter(4, rng=rng)
        vals = flt.component_values()
        assert np.all(vals["R"] >= flt.pdk.filter_r_min)
        assert np.all(vals["R"] <= flt.pdk.filter_r_max)
        assert np.all(vals["C"] >= flt.pdk.capacitance_min)
        assert np.all(vals["C"] <= flt.pdk.capacitance_max)


class TestSecondOrder:
    def test_equals_two_cascaded_first_order(self, rng):
        so = SecondOrderLearnableFilter(1, dt=1e-3, sampler=ideal_sampler(), rng=rng)
        x = rng.uniform(-1, 1, 25)
        out = so(Tensor(x.reshape(1, 25, 1))).data[0, :, 0]
        r1 = float(np.exp(so.stage1.log_r.data[0]))
        c1 = float(np.exp(so.stage1.log_c.data[0]))
        r2 = float(np.exp(so.stage2.log_r.data[0]))
        c2 = float(np.exp(so.stage2.log_c.data[0]))
        inter = manual_first_order(x, r1, c1, 1e-3)
        expected = manual_first_order(inter, r2, c2, 1e-3)
        assert np.allclose(out, expected)

    def test_mu_above_one_attenuates(self, rng):
        """Coupling (mu > 1) lowers the DC gain: b/(1-a) = dt/(mu RC + dt - RC)."""
        so_ideal = SecondOrderLearnableFilter(1, dt=1e-3, sampler=ideal_sampler(), rng=np.random.default_rng(3))
        coupled_sampler = VariationSampler(model=NoVariation(), mu_low=1.3, mu_high=1.3, v0_max=0.0)
        so_coupled = SecondOrderLearnableFilter(1, dt=1e-3, sampler=coupled_sampler, rng=np.random.default_rng(3))
        x = Tensor(np.full((1, 400, 1), 1.0))
        ideal_out = so_ideal(x).data[0, -1, 0]
        coupled_out = so_coupled(x).data[0, -1, 0]
        assert coupled_out < ideal_out

    def test_initial_voltage_sampled_when_enabled(self, rng):
        sampler = VariationSampler(model=NoVariation(), v0_max=0.1, rng=np.random.default_rng(0))
        so = SecondOrderLearnableFilter(1, dt=1e-3, sampler=sampler, rng=rng)
        x = Tensor(np.zeros((1, 3, 1)))
        out = so(x).data
        assert np.any(out != 0.0)  # leaked initial state

    def test_counts_include_buffer(self, rng):
        so = SecondOrderLearnableFilter(3, rng=rng)
        assert so.count_resistors() == 6
        assert so.count_capacitors() == 6
        assert so.count_transistors() == 6  # 2 buffer transistors per channel

    def test_gradients_reach_all_stages(self, rng):
        so = SecondOrderLearnableFilter(2, rng=rng)
        so(Tensor(rng.uniform(-1, 1, (2, 10, 2)))).sum().backward()
        for p in (so.stage1.log_r, so.stage1.log_c, so.stage2.log_r, so.stage2.log_c):
            assert p.grad is not None and np.any(p.grad != 0)

    def test_filter_gradcheck(self, rng):
        """log_r gradient matches finite differences through the recurrence."""
        so = SecondOrderLearnableFilter(1, dt=1e-3, sampler=ideal_sampler(), rng=rng)
        x = rng.uniform(-1, 1, (1, 8, 1))
        eps = 1e-6
        so.zero_grad()
        so(Tensor(x)).sum().backward()
        analytic = so.stage1.log_r.grad[0]
        base = so.stage1.log_r.data.copy()
        so.stage1.log_r.data = base + eps
        plus = so(Tensor(x)).data.sum()
        so.stage1.log_r.data = base - eps
        minus = so(Tensor(x)).data.sum()
        so.stage1.log_r.data = base
        assert np.isclose(analytic, (plus - minus) / (2 * eps), atol=1e-5)

    def test_component_values_both_stages(self, rng):
        so = SecondOrderLearnableFilter(2, rng=rng)
        vals = so.component_values()
        assert set(vals) == {"R1", "C1", "R2", "C2"}


class TestCheckFilterInput:
    """Shape validation for the filter banks (draws-axis aware)."""

    def _sampler(self, batched_draws=None):
        sampler = VariationSampler(
            model=UniformVariation(0.1), rng=np.random.default_rng(0)
        )
        return sampler

    def test_sequential_3d_accepted(self):
        from repro.circuits.filters import _check_filter_input

        _check_filter_input(Tensor(np.zeros((2, 5, 3))), 3, self._sampler())

    def test_sequential_rejects_draws_axis(self):
        """4-D input outside a batched context is a shape error."""
        from repro.circuits.filters import _check_filter_input

        with pytest.raises(ValueError) as excinfo:
            _check_filter_input(Tensor(np.zeros((4, 2, 5, 3))), 3, self._sampler())
        # Error message names the expected and the observed shapes.
        assert "(batch, time, 3)" in str(excinfo.value)
        assert "(4, 2, 5, 3)" in str(excinfo.value)
        assert "draws" not in str(excinfo.value)

    def test_batched_accepts_matching_draws_axis(self):
        from repro.circuits.filters import _check_filter_input

        sampler = self._sampler()
        with sampler.batched(4):
            _check_filter_input(Tensor(np.zeros((4, 2, 5, 3))), 3, sampler)

    def test_batched_accepts_shared_3d_input(self):
        from repro.circuits.filters import _check_filter_input

        sampler = self._sampler()
        with sampler.batched(4):
            _check_filter_input(Tensor(np.zeros((2, 5, 3))), 3, sampler)

    def test_batched_rejects_draws_axis_mismatch(self):
        """A draws axis that disagrees with the active draw count is the
        one 4-D shape that must be rejected inside a batched context."""
        from repro.circuits.filters import _check_filter_input

        sampler = self._sampler()
        with sampler.batched(4):
            with pytest.raises(ValueError, match="draws axis 3 does not match"):
                _check_filter_input(Tensor(np.zeros((3, 2, 5, 3))), 3, sampler)

    def test_batched_error_mentions_draws_layout(self):
        from repro.circuits.filters import _check_filter_input

        sampler = self._sampler()
        with sampler.batched(4):
            with pytest.raises(ValueError) as excinfo:
                _check_filter_input(Tensor(np.zeros((2, 5, 7))), 3, sampler)
        assert "(draws, batch, time, n)" in str(excinfo.value)
        assert "(batch, time, 3)" in str(excinfo.value)

    def test_wrong_channel_count_rejected_in_both_modes(self):
        from repro.circuits.filters import _check_filter_input

        sampler = self._sampler()
        with pytest.raises(ValueError):
            _check_filter_input(Tensor(np.zeros((2, 5, 4))), 3, sampler)
        with sampler.batched(2):
            with pytest.raises(ValueError):
                _check_filter_input(Tensor(np.zeros((2, 2, 5, 4))), 3, sampler)


class TestCoefficients:
    """Regression: the one-reciprocal coefficient form is unchanged."""

    def _reference(self, stage, dt, eps_r, eps_c, mu):
        """Original two-divide formulation."""
        r = np.exp(stage.log_r.data) * eps_r
        c = np.exp(stage.log_c.data) * eps_c
        rc = r * c
        denom = rc + mu * dt
        return rc / denom, np.full(stage.num_filters, dt) / denom

    def test_matches_two_divide_form_ideal(self, rng):
        flt = FirstOrderLearnableFilter(4, sampler=ideal_sampler(), rng=rng)
        a, b = flt.stage.coefficients(flt.dt, flt.sampler)
        ones = np.ones(4)
        a_ref, b_ref = self._reference(flt.stage, flt.dt, ones, ones, ones)
        np.testing.assert_allclose(a.data, a_ref, rtol=1e-15)
        np.testing.assert_allclose(b.data, b_ref, rtol=1e-15)

    def test_matches_two_divide_form_under_variation(self, rng):
        flt = FirstOrderLearnableFilter(4, rng=rng)
        sampler = VariationSampler(
            model=UniformVariation(0.1), rng=np.random.default_rng(5)
        )
        a, b = flt.stage.coefficients(flt.dt, sampler)
        # Replay the identical draws for the reference formulation.
        replay = VariationSampler(
            model=UniformVariation(0.1), rng=np.random.default_rng(5)
        )
        eps_r = replay.epsilon((4,))
        eps_c = replay.epsilon((4,))
        mu = replay.mu((4,))
        a_ref, b_ref = self._reference(flt.stage, flt.dt, eps_r, eps_c, mu)
        np.testing.assert_allclose(a.data, a_ref, rtol=1e-14)
        np.testing.assert_allclose(b.data, b_ref, rtol=1e-14)

    def test_batched_shape(self, rng):
        flt = FirstOrderLearnableFilter(4, rng=rng)
        sampler = VariationSampler(
            model=UniformVariation(0.1), rng=np.random.default_rng(5)
        )
        with sampler.batched(6):
            a, b = flt.stage.coefficients(flt.dt, sampler)
        assert a.shape == (6, 4) and b.shape == (6, 4)

    def test_coefficients_stay_stable(self, rng):
        flt = FirstOrderLearnableFilter(8, rng=rng)
        a, _ = flt.stage.coefficients(flt.dt, ideal_sampler())
        assert np.all(a.data > 0) and np.all(a.data < 1)


class TestScanBackends:
    """The fused kernel is a pure optimisation of the unfused oracle."""

    def _pair(self, cls, seed=0):
        out = []
        for backend in ("fused", "unfused"):
            sampler = VariationSampler(
                model=UniformVariation(0.1), rng=np.random.default_rng(seed + 9)
            )
            flt = cls(3, sampler=sampler, rng=np.random.default_rng(seed),
                      scan_backend=backend)
            out.append(flt)
        return out

    @pytest.mark.parametrize(
        "cls", [FirstOrderLearnableFilter, SecondOrderLearnableFilter]
    )
    def test_outputs_bit_equal(self, cls, rng):
        fused, unfused = self._pair(cls)
        x = Tensor(rng.uniform(-1, 1, (2, 12, 3)))
        np.testing.assert_array_equal(fused(x).data, unfused(x).data)

    @pytest.mark.parametrize(
        "cls", [FirstOrderLearnableFilter, SecondOrderLearnableFilter]
    )
    def test_outputs_bit_equal_batched_draws(self, cls, rng):
        fused, unfused = self._pair(cls)
        x = Tensor(rng.uniform(-1, 1, (2, 12, 3)))
        outs = []
        for flt in (fused, unfused):
            flt.sampler.reseed(123)
            with flt.sampler.batched(4):
                outs.append(flt(x).data)
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_parameter_gradients_agree(self, rng):
        fused, unfused = self._pair(SecondOrderLearnableFilter)
        x = Tensor(rng.uniform(-1, 1, (2, 12, 3)))
        grads = []
        for flt in (fused, unfused):
            flt.zero_grad()
            flt.sampler.reseed(77)
            with flt.sampler.batched(4):
                (flt(x) ** 2).mean().backward()
            grads.append({n: p.grad for n, p in flt.named_parameters()})
        assert grads[0].keys() == grads[1].keys()
        for name in grads[0]:
            np.testing.assert_allclose(
                grads[0][name], grads[1][name], atol=1e-12,
                err_msg=f"gradient mismatch for {name}",
            )

    def test_set_scan_backend_switches_and_validates(self, rng):
        flt = SecondOrderLearnableFilter(2, rng=rng)
        assert flt.scan_backend == "fused"
        flt.set_scan_backend("unfused")
        assert flt.scan_backend == "unfused"
        with pytest.raises(ValueError):
            flt.set_scan_backend("magic")

    def test_ctor_rejects_unknown_backend(self, rng):
        with pytest.raises(ValueError):
            FirstOrderLearnableFilter(2, rng=rng, scan_backend="magic")

    def test_scan_wall_clock_recorded(self, rng):
        from repro.utils.timing import mc_counters

        mc_counters.reset()
        flt = FirstOrderLearnableFilter(2, sampler=ideal_sampler(), rng=rng)
        flt(Tensor(rng.uniform(-1, 1, (1, 5, 2))))
        flt.set_scan_backend("unfused")
        flt(Tensor(rng.uniform(-1, 1, (1, 5, 2))))
        scan = mc_counters.snapshot()["scan"]
        assert scan["fused"]["calls"] == 1
        assert scan["unfused"]["calls"] == 1
        mc_counters.reset()


class TestStabilityProperties:
    def test_bounded_input_bounded_output(self, rng):
        """BIBO stability: |a| < 1 always, so output stays within input range."""
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from hypothesis.extra.numpy import arrays

        @given(
            arrays(
                np.float64,
                (1, 30, 1),
                elements=st.floats(min_value=-1, max_value=1, allow_nan=False),
            ),
            st.integers(min_value=0, max_value=100),
        )
        @settings(max_examples=25, deadline=None)
        def check(x, seed):
            flt = SecondOrderLearnableFilter(
                1, dt=1e-3, sampler=ideal_sampler(), rng=np.random.default_rng(seed)
            )
            out = flt(Tensor(x)).data
            assert np.all(np.abs(out) <= 1.0 + 1e-9)

        check()

    def test_variation_preserves_stability(self, rng):
        sampler = VariationSampler(model=UniformVariation(0.3), rng=np.random.default_rng(1))
        flt = SecondOrderLearnableFilter(3, dt=1e-3, sampler=sampler, rng=rng)
        x = Tensor(rng.uniform(-1, 1, (2, 200, 3)))
        for _ in range(5):
            out = flt(x).data
            assert np.all(np.abs(out) <= 1.2)  # v0 leak bounded by v0_max
