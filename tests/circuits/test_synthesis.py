"""Bespoke ptanh synthesis (inverse design)."""

import numpy as np
import pytest

from repro.circuits import derive_eta, synthesize_ptanh
from repro.circuits.synthesis import _target_transfer


@pytest.mark.slow
class TestSynthesis:
    @pytest.fixture(scope="class")
    def roundtrip(self):
        """Characterise a known design, then synthesise its eta back."""
        known = derive_eta(r1=30e3, r2=30e3, points=20)
        result = synthesize_ptanh(known.eta, points=15, max_iterations=50, seed=0)
        return known, result

    def test_roundtrip_realises_target(self, roundtrip):
        _, result = roundtrip
        assert result.rms_error < 0.03  # within 30 mV of the target curve

    def test_roundtrip_recovers_design_neighbourhood(self, roundtrip):
        """The recovered loads should be the same order of magnitude as
        the design that produced the target (the mapping is not unique,
        but wildly different loads would give wrong gain)."""
        _, result = roundtrip
        assert 3e3 < result.r1 < 3e5
        assert 3e3 < result.r2 < 3e5

    def test_components_within_search_bounds(self, roundtrip):
        _, result = roundtrip
        assert 0.15 <= result.t1.v_t <= 0.50
        assert 2e-5 <= result.t1.k <= 5e-4

    def test_target_transfer_helper(self):
        eta = np.array([0.5, 0.3, 0.5, 8.0])
        v = np.linspace(0, 1, 5)
        expected = 0.5 + 0.3 * np.tanh((v - 0.5) * 8.0)
        assert np.allclose(_target_transfer(eta, v), expected)

    def test_rejects_bad_eta(self):
        with pytest.raises(ValueError):
            synthesize_ptanh([0.5, 0.3, 0.5])  # wrong length
        with pytest.raises(ValueError):
            synthesize_ptanh([0.5, -0.3, 0.5, 8.0])  # negative swing
        with pytest.raises(ValueError):
            synthesize_ptanh([0.5, 0.3, 0.5, 0.0])  # zero gain
