"""Variation models and the reparameterisation sampler."""

import numpy as np
import pytest

from repro.circuits import (
    GaussianVariation,
    GMMVariation,
    NoVariation,
    UniformVariation,
    VariationSampler,
    ideal_sampler,
)


class TestUniformVariation:
    def test_within_band(self, rng):
        eps = UniformVariation(0.1).sample((10000,), rng)
        assert eps.min() >= 0.9 and eps.max() <= 1.1

    def test_mean_near_one(self, rng):
        eps = UniformVariation(0.1).sample((20000,), rng)
        assert abs(eps.mean() - 1.0) < 0.01

    def test_spread(self):
        assert UniformVariation(0.1).spread() == 0.1

    @pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5])
    def test_rejects_bad_delta(self, bad):
        with pytest.raises(ValueError):
            UniformVariation(bad)


class TestGaussianVariation:
    def test_positive(self, rng):
        eps = GaussianVariation(0.5).sample((10000,), rng)
        assert np.all(eps > 0)

    def test_moments(self, rng):
        eps = GaussianVariation(0.05).sample((20000,), rng)
        assert abs(eps.mean() - 1.0) < 0.01
        assert abs(eps.std() - 0.05) < 0.01

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            GaussianVariation(-0.1)


class TestGMMVariation:
    def test_shape_and_positivity(self, rng):
        eps = GMMVariation().sample((100, 3), rng)
        assert eps.shape == (100, 3)
        assert np.all(eps > 0)

    def test_bimodal_mean(self, rng):
        gmm = GMMVariation(weights=(0.5, 0.5), means=(0.9, 1.1), sigmas=(0.01, 0.01))
        eps = gmm.sample((20000,), rng)
        assert abs(eps.mean() - 1.0) < 0.01

    def test_spread_formula(self):
        gmm = GMMVariation(weights=(1.0,), means=(1.0,), sigmas=(0.05,))
        assert np.isclose(gmm.spread(), 0.05)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"weights": (0.5, 0.6)},  # sum != 1
            {"weights": (1.0,), "means": (1.0, 1.1)},  # length mismatch
            {"weights": (1.5, -0.5)},  # negative weight
        ],
    )
    def test_rejects_bad_mixture(self, kwargs):
        base = dict(weights=(0.7, 0.3), means=(0.98, 1.05), sigmas=(0.04, 0.08))
        with pytest.raises(ValueError):
            GMMVariation(**{**base, **kwargs})


class TestNoVariation:
    def test_identity(self, rng):
        assert np.all(NoVariation().sample((5, 5), rng) == 1.0)
        assert NoVariation().spread() == 0.0


class TestVariationSampler:
    def test_mu_in_band(self):
        s = VariationSampler(mu_low=1.0, mu_high=1.3, rng=np.random.default_rng(0))
        mu = s.mu((1000,))
        assert mu.min() >= 1.0 and mu.max() <= 1.3

    def test_v0_in_band(self):
        s = VariationSampler(v0_max=0.1, rng=np.random.default_rng(0))
        v0 = s.initial_voltage((1000,))
        assert v0.min() >= 0.0 and v0.max() <= 0.1

    def test_v0_zero_when_disabled(self):
        s = VariationSampler(v0_max=0.0)
        assert np.all(s.initial_voltage((10,)) == 0.0)

    def test_reseed_reproduces(self):
        s = VariationSampler(rng=np.random.default_rng(0))
        s.reseed(42)
        a = s.epsilon((5,))
        s.reseed(42)
        b = s.epsilon((5,))
        assert np.array_equal(a, b)

    def test_ideal_sampler_is_deterministic(self):
        s = ideal_sampler()
        assert np.all(s.epsilon((4,)) == 1.0)
        assert np.all(s.mu((4,)) == 1.0)
        assert np.all(s.initial_voltage((4,)) == 0.0)

    @pytest.mark.parametrize("kwargs", [{"mu_low": 0.0}, {"mu_low": 1.4, "mu_high": 1.2}, {"v0_max": -0.1}])
    def test_rejects_bad_bounds(self, kwargs):
        with pytest.raises(ValueError):
            VariationSampler(**kwargs)


def _sampler(seed: int = 0) -> VariationSampler:
    return VariationSampler(model=UniformVariation(0.1), rng=np.random.default_rng(seed))


class TestBatchedDraws:
    """The batched-draws context (vectorized Monte-Carlo engine)."""

    def test_draws_property_tracks_context(self):
        s = _sampler()
        assert s.draws is None
        with s.batched(4):
            assert s.draws == 4
        assert s.draws is None

    def test_context_cleared_on_error(self):
        s = _sampler()
        with pytest.raises(RuntimeError, match="boom"):
            with s.batched(3):
                raise RuntimeError("boom")
        assert s.draws is None

    def test_nesting_rejected(self):
        s = _sampler()
        with s.batched(2):
            with pytest.raises(RuntimeError):
                with s.batched(2):
                    pass

    def test_rejects_nonpositive_draws(self):
        with pytest.raises(ValueError):
            _sampler().spawn_streams(0)

    @pytest.mark.parametrize("method,shape", [
        ("epsilon", (3, 2)), ("mu", (5,)), ("initial_voltage", (4, 3)),
    ])
    def test_leading_draws_axis(self, method, shape):
        s = _sampler()
        with s.batched(6):
            out = getattr(s, method)(shape)
        assert out.shape == (6,) + shape

    def test_v0_zero_stays_zero_batched(self):
        s = VariationSampler(v0_max=0.0, rng=np.random.default_rng(0))
        with s.batched(3):
            v0 = s.initial_voltage((4,))
        assert v0.shape == (3, 4) and np.all(v0 == 0.0)

    def test_batched_draws_equal_per_stream_sequential_draws(self):
        """Row d of the batched stack is exactly what draw d's own
        child stream yields sequentially — the bit-equivalence the MC
        backends rely on."""
        shapes = [(3, 2), (4,), (2, 2)]
        with _sampler(seed=5).batched(4) as s:
            batched = [s.epsilon(shape) for shape in shapes]
            mu = s.mu((3,))
            v0 = s.initial_voltage((2,))

        oracle = _sampler(seed=5)  # identically seeded → same children
        for d, stream in enumerate(oracle.spawn_streams(4)):
            oracle.rng = stream
            for got, shape in zip(batched, shapes):
                np.testing.assert_array_equal(got[d], oracle.epsilon(shape))
            np.testing.assert_array_equal(mu[d], oracle.mu((3,)))
            np.testing.assert_array_equal(v0[d], oracle.initial_voltage((2,)))

    def test_same_seed_same_batched_draws(self):
        with _sampler(seed=3).batched(3) as s:
            a = s.epsilon((4, 4))
        with _sampler(seed=3).batched(3) as s:
            b = s.epsilon((4, 4))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_distinct_draws(self):
        with _sampler(seed=0).batched(3) as s:
            a = s.epsilon((8, 8))
        with _sampler(seed=1).batched(3) as s:
            b = s.epsilon((8, 8))
        assert not np.array_equal(a, b)
        # Draws within one context are mutually independent too.
        assert not np.array_equal(a[0], a[1])
