"""Printable-grid quantisation."""

import numpy as np
import pytest

from repro.circuits import quantize_model, snap_to_grid
from repro.core import AdaptPNC, ElmanClassifier


class TestSnapToGrid:
    def test_grid_points_are_fixed(self):
        snapped = snap_to_grid(np.array([1.0, 10.0, 100.0]), 12)
        assert np.allclose(snapped, [1.0, 10.0, 100.0])

    def test_max_error_bounded_by_half_step(self):
        rng = np.random.default_rng(0)
        values = np.exp(rng.uniform(np.log(1e-7), np.log(1e7), 500))
        for n in (3, 6, 12, 24):
            snapped = snap_to_grid(values, n)
            half_step = 10 ** (0.5 / n)
            ratio = np.maximum(snapped / values, values / snapped)
            assert np.all(ratio <= half_step * (1 + 1e-12))

    def test_finer_grid_smaller_error(self):
        rng = np.random.default_rng(1)
        values = np.exp(rng.uniform(0, 3, 200))
        coarse = np.abs(snap_to_grid(values, 3) - values) / values
        fine = np.abs(snap_to_grid(values, 24) - values) / values
        assert fine.mean() < coarse.mean()

    def test_idempotent(self):
        rng = np.random.default_rng(2)
        values = np.exp(rng.uniform(0, 2, 50))
        once = snap_to_grid(values, 12)
        assert np.allclose(snap_to_grid(once, 12), once)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            snap_to_grid(np.array([0.0, 1.0]), 12)

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            snap_to_grid(np.array([1.0]), 0)


class TestQuantizeModel:
    def test_report_statistics(self, rng):
        model = AdaptPNC(3, rng=rng)
        report = quantize_model(model, values_per_decade=12)
        assert report.n_quantized > 0
        assert 0 <= report.mean_relative_error <= report.max_relative_error
        # E12-style grid: at most ~10% half-step error
        assert report.max_relative_error < 0.11

    def test_filter_values_on_grid_after(self, rng):
        model = AdaptPNC(2, rng=rng)
        quantize_model(model, values_per_decade=6)
        for block in model.blocks:
            r = np.exp(block.filters.stage1.log_r.data)
            assert np.allclose(snap_to_grid(r, 6), r, rtol=1e-9)

    def test_preserves_theta_signs(self, rng):
        model = AdaptPNC(2, rng=rng)
        signs_before = [np.sign(b.crossbar.theta.data.copy()) for b in model.blocks]
        quantize_model(model)
        for block, before in zip(model.blocks, signs_before):
            assert np.array_equal(np.sign(block.crossbar.theta.data), before)

    def test_forward_changes_only_slightly(self, rng):
        from repro.autograd import no_grad

        model = AdaptPNC(2, rng=np.random.default_rng(0))
        x = rng.uniform(-1, 1, (4, 16))
        with no_grad():
            before = model(x).data
        quantize_model(model, values_per_decade=24)
        with no_grad():
            after = model(x).data
        assert np.max(np.abs(after - before)) < 0.5

    def test_rejects_hardware_agnostic_model(self, rng):
        with pytest.raises(TypeError):
            quantize_model(ElmanClassifier(2, rng=rng))
