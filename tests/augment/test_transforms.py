"""The five augmentation techniques."""

import numpy as np
import pytest

from repro.augment import FrequencyNoise, Jitter, MagnitudeScale, RandomCrop, TimeWarp

ALL = [Jitter(0.1), TimeWarp(0.2), MagnitudeScale(0.1), RandomCrop(0.8), FrequencyNoise(0.1)]


class TestCommonContract:
    @pytest.mark.parametrize("aug", ALL, ids=lambda a: type(a).__name__)
    def test_shape_preserved(self, aug, rng):
        x = rng.normal(size=(7, 64))
        assert aug(x, rng).shape == (7, 64)

    @pytest.mark.parametrize("aug", ALL, ids=lambda a: type(a).__name__)
    def test_output_is_copy(self, aug, rng):
        x = rng.normal(size=(3, 64))
        out = aug(x, rng)
        assert out is not x

    @pytest.mark.parametrize("aug", ALL, ids=lambda a: type(a).__name__)
    def test_deterministic_given_rng_state(self, aug):
        x = np.random.default_rng(0).normal(size=(3, 64))
        a = aug(x, np.random.default_rng(5))
        b = aug(x, np.random.default_rng(5))
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("aug", ALL, ids=lambda a: type(a).__name__)
    def test_rejects_1d_input(self, aug, rng):
        with pytest.raises(ValueError):
            aug(rng.normal(size=64), rng)

    @pytest.mark.parametrize("aug", ALL, ids=lambda a: type(a).__name__)
    def test_finite_output(self, aug, rng):
        out = aug(rng.normal(size=(5, 64)), rng)
        assert np.all(np.isfinite(out))


class TestJitter:
    def test_zero_sigma_is_identity(self, rng):
        x = rng.normal(size=(3, 20))
        assert np.array_equal(Jitter(0.0)(x, rng), x)

    def test_noise_scale(self, rng):
        x = np.zeros((100, 64))
        out = Jitter(0.5)(x, rng)
        assert abs(out.std() - 0.5) < 0.02

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            Jitter(-0.1)


class TestTimeWarp:
    def test_preserves_endpoints_approximately(self, rng):
        x = np.tile(np.linspace(0, 1, 64), (4, 1))
        out = TimeWarp(0.3)(x, rng)
        assert np.allclose(out[:, 0], 0.0, atol=0.02)
        assert np.allclose(out[:, -1], 1.0, atol=0.02)

    def test_preserves_value_range_of_monotone_signal(self, rng):
        x = np.tile(np.linspace(-1, 1, 64), (4, 1))
        out = TimeWarp(0.3)(x, rng)
        assert out.min() >= -1.0 - 1e-9 and out.max() <= 1.0 + 1e-9

    def test_warped_monotone_stays_monotone(self, rng):
        """A monotone warp of a monotone signal must stay monotone."""
        x = np.tile(np.linspace(0, 1, 64), (8, 1))
        out = TimeWarp(0.3)(x, rng)
        assert np.all(np.diff(out, axis=1) >= -1e-9)

    @pytest.mark.parametrize("bad", [{"strength": 1.0}, {"strength": -0.1}, {"n_knots": 1}])
    def test_rejects_bad_config(self, bad):
        with pytest.raises(ValueError):
            TimeWarp(**bad)


class TestMagnitudeScale:
    def test_scales_each_series_by_constant(self, rng):
        x = rng.normal(size=(5, 30)) + 2.0
        out = MagnitudeScale(0.2)(x, rng)
        ratio = out / x
        assert np.allclose(ratio.std(axis=1), 0.0, atol=1e-12)

    def test_zero_sigma_identity(self, rng):
        x = rng.normal(size=(3, 30))
        assert np.allclose(MagnitudeScale(0.0)(x, rng), x)


class TestRandomCrop:
    def test_full_fraction_is_identity(self, rng):
        x = rng.normal(size=(3, 40))
        assert np.array_equal(RandomCrop(1.0)(x, rng), x)

    def test_cropped_values_come_from_original_range(self, rng):
        x = np.tile(np.linspace(0, 1, 64), (5, 1))
        out = RandomCrop(0.5)(x, rng)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_crop_window_span(self, rng):
        # A 50% crop of a ramp spans at most half the value range.
        x = np.tile(np.linspace(0, 1, 64), (20, 1))
        out = RandomCrop(0.5)(x, rng)
        spans = out.max(axis=1) - out.min(axis=1)
        assert np.all(spans <= 0.55)

    @pytest.mark.parametrize("bad", [0.05, 1.5])
    def test_rejects_bad_fraction(self, bad):
        with pytest.raises(ValueError):
            RandomCrop(bad)


class TestFrequencyNoise:
    def test_output_is_real(self, rng):
        out = FrequencyNoise(0.3)(rng.normal(size=(4, 64)), rng)
        assert out.dtype == np.float64

    def test_zero_sigma_identity(self, rng):
        x = rng.normal(size=(3, 64))
        assert np.allclose(FrequencyNoise(0.0)(x, rng), x, atol=1e-12)

    def test_high_bins_untouched(self, rng):
        x = rng.normal(size=(3, 64))
        out = FrequencyNoise(0.5, max_bin_fraction=0.25)(x, rng)
        spec_in = np.fft.rfft(x, axis=1)
        spec_out = np.fft.rfft(out, axis=1)
        cutoff = int(round(0.25 * spec_in.shape[1]))
        assert np.allclose(spec_in[:, cutoff:], spec_out[:, cutoff:], atol=1e-9)

    def test_rejects_bad_bin_fraction(self):
        with pytest.raises(ValueError):
            FrequencyNoise(0.1, max_bin_fraction=0.0)
