"""Drift / Pool / Dropout augmenters (the extended tsaug set)."""

import numpy as np
import pytest

from repro.augment import Drift, Dropout, Pool

EXTENDED = [Drift(0.2), Pool(3), Dropout(0.1)]


class TestCommonContract:
    @pytest.mark.parametrize("aug", EXTENDED, ids=lambda a: type(a).__name__)
    def test_shape_preserved(self, aug, rng):
        x = rng.normal(size=(5, 40))
        assert aug(x, rng).shape == (5, 40)

    @pytest.mark.parametrize("aug", EXTENDED, ids=lambda a: type(a).__name__)
    def test_deterministic_per_rng_state(self, aug):
        x = np.random.default_rng(0).normal(size=(3, 40))
        a = aug(x, np.random.default_rng(7))
        b = aug(x, np.random.default_rng(7))
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("aug", EXTENDED, ids=lambda a: type(a).__name__)
    def test_finite(self, aug, rng):
        assert np.all(np.isfinite(aug(rng.normal(size=(4, 40)), rng)))


class TestDrift:
    def test_bounded_excursion(self, rng):
        x = np.zeros((20, 64))
        out = Drift(max_drift=0.3)(x, rng)
        assert np.max(np.abs(out)) <= 0.3 + 1e-12

    def test_drift_is_smooth(self, rng):
        x = np.zeros((5, 64))
        out = Drift(max_drift=0.5, n_knots=3)(x, rng)
        # piecewise-linear through 3 knots: bounded slope between samples
        assert np.max(np.abs(np.diff(out, axis=1))) < 0.5

    def test_zero_drift_is_identity(self, rng):
        x = rng.normal(size=(3, 20))
        assert np.allclose(Drift(max_drift=0.0)(x, rng), x)

    @pytest.mark.parametrize("bad", [{"max_drift": -0.1}, {"n_knots": 1}])
    def test_rejects_bad_config(self, bad):
        with pytest.raises(ValueError):
            Drift(**bad)


class TestPool:
    def test_windows_are_constant(self, rng):
        x = rng.normal(size=(3, 12))
        out = Pool(4)(x, rng)
        for start in (0, 4, 8):
            window = out[:, start : start + 4]
            assert np.allclose(window, window[:, :1])

    def test_window_value_is_mean(self, rng):
        x = rng.normal(size=(2, 8))
        out = Pool(4)(x, rng)
        assert np.allclose(out[:, 0], x[:, :4].mean(axis=1))

    def test_size_one_identity(self, rng):
        x = rng.normal(size=(2, 10))
        assert np.array_equal(Pool(1)(x, rng), x)

    def test_ragged_tail_handled(self, rng):
        x = rng.normal(size=(2, 10))
        out = Pool(4)(x, rng)  # tail window of 2
        assert np.allclose(out[:, 8], x[:, 8:].mean(axis=1))

    def test_preserves_global_mean(self, rng):
        x = rng.normal(size=(4, 12))
        out = Pool(4)(x, rng)
        assert np.allclose(out.mean(axis=1), x.mean(axis=1))

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            Pool(0)


class TestDropout:
    def test_zero_p_identity(self, rng):
        x = rng.normal(size=(3, 20))
        assert np.array_equal(Dropout(0.0)(x, rng), x)

    def test_dropped_samples_hold_previous_value(self, rng):
        x = np.tile(np.arange(50, dtype=float), (4, 1))
        out = Dropout(0.3)(x, rng)
        changed = out != x
        # every changed sample equals its left neighbour in the output
        rows, cols = np.nonzero(changed)
        assert np.all(cols > 0)
        assert np.allclose(out[rows, cols], out[rows, cols - 1])

    def test_first_sample_never_dropped(self, rng):
        x = rng.normal(size=(10, 30))
        out = Dropout(0.9)(x, rng)
        assert np.array_equal(out[:, 0], x[:, 0])

    def test_drop_rate_statistics(self, rng):
        x = np.tile(np.arange(200, dtype=float), (20, 1))
        out = Dropout(0.2)(x, rng)
        rate = (out != x).mean()
        assert 0.1 < rate < 0.3

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)
