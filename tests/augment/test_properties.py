"""Property-based invariants of the augmentation library."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.augment import (
    FrequencyNoise,
    Jitter,
    MagnitudeScale,
    RandomCrop,
    TimeWarp,
)

series_batches = arrays(
    dtype=np.float64,
    shape=st.tuples(
        st.integers(min_value=1, max_value=6), st.integers(min_value=8, max_value=80)
    ),
    elements=st.floats(min_value=-5, max_value=5, allow_nan=False, allow_infinity=False),
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(series_batches, seeds)
@settings(max_examples=30, deadline=None)
def test_every_augmenter_preserves_shape(x, seed):
    rng = np.random.default_rng(seed)
    for aug in (Jitter(0.1), TimeWarp(0.2), MagnitudeScale(0.1), RandomCrop(0.8), FrequencyNoise(0.1)):
        assert aug(x, rng).shape == x.shape


@given(series_batches, seeds)
@settings(max_examples=30, deadline=None)
def test_time_warp_values_within_input_hull(x, seed):
    """Warping resamples the series: no new values can be created."""
    rng = np.random.default_rng(seed)
    out = TimeWarp(0.3)(x, rng)
    lo = x.min(axis=1) - 1e-9
    hi = x.max(axis=1) + 1e-9
    assert np.all(out >= lo[:, None])
    assert np.all(out <= hi[:, None])


@given(series_batches, seeds)
@settings(max_examples=30, deadline=None)
def test_crop_values_within_input_hull(x, seed):
    rng = np.random.default_rng(seed)
    out = RandomCrop(0.6)(x, rng)
    lo = x.min(axis=1) - 1e-9
    hi = x.max(axis=1) + 1e-9
    assert np.all(out >= lo[:, None])
    assert np.all(out <= hi[:, None])


@given(series_batches, seeds, st.floats(min_value=0.01, max_value=0.5))
@settings(max_examples=30, deadline=None)
def test_jitter_perturbation_statistics(x, seed, sigma):
    rng = np.random.default_rng(seed)
    diff = Jitter(sigma)(x, rng) - x
    # Perturbation is bounded in probability: 6-sigma guard.
    assert np.all(np.abs(diff) < 6.5 * sigma + 1e-9)


@given(series_batches, seeds)
@settings(max_examples=30, deadline=None)
def test_magnitude_scale_preserves_zero_crossings(x, seed):
    """Scaling by a per-series constant preserves signs when positive."""
    rng = np.random.default_rng(seed)
    out = MagnitudeScale(0.05)(x, rng)
    mask = np.abs(x) > 1e-9
    if mask.any():
        # with sigma = 0.05 the scale factor is positive in practice,
        # so signs are preserved elementwise
        assert np.all(np.sign(out[mask]) == np.sign(x[mask]))


@given(series_batches, seeds)
@settings(max_examples=30, deadline=None)
def test_frequency_noise_preserves_mean_roughly(x, seed):
    """Perturbing non-DC bins only mildly shifts the series mean."""
    rng = np.random.default_rng(seed)
    out = FrequencyNoise(0.1)(x, rng)
    scale = max(np.abs(x).max(), 1.0)
    assert np.all(np.abs(out.mean(axis=1) - x.mean(axis=1)) < 0.5 * scale)
