"""Compose, per-dataset configs and the combine-with-original policy."""

import numpy as np
import pytest

from repro.augment import (
    RECOMMENDED_CONFIGS,
    AugmentationConfig,
    Compose,
    Jitter,
    MagnitudeScale,
    augment_dataset,
    build_pipeline,
    default_config,
    perturb,
)
from repro.data import dataset_names


class TestCompose:
    def test_applies_in_sequence(self, rng):
        x = np.zeros((2, 20))
        out = Compose([Jitter(0.1), MagnitudeScale(0.1)])(x, rng)
        assert out.shape == (2, 20)
        assert not np.array_equal(out, x)

    def test_probability_zero_is_identity(self, rng):
        x = np.ones((2, 20))
        assert np.array_equal(Compose([Jitter(1.0)], p=0.0)(x, rng), x)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Compose([])

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            Compose([Jitter(0.1)], p=1.5)


class TestAugmentationConfig:
    def test_defaults_valid(self):
        AugmentationConfig()

    @pytest.mark.parametrize(
        "bad",
        [
            {"jitter_sigma": -0.1},
            {"time_warp_strength": 1.0},
            {"crop_fraction": 0.05},
            {"frequency_sigma": -1.0},
        ],
    )
    def test_rejects_bad_values(self, bad):
        with pytest.raises(ValueError):
            AugmentationConfig(**bad)

    def test_build_pipeline_skips_disabled(self):
        cfg = AugmentationConfig(
            jitter_sigma=0.1,
            time_warp_strength=0.0,
            magnitude_sigma=0.0,
            crop_fraction=1.0,
            frequency_sigma=0.0,
        )
        pipeline = build_pipeline(cfg)
        assert len(pipeline.augmenters) == 1

    def test_build_pipeline_rejects_all_disabled(self):
        cfg = AugmentationConfig(
            jitter_sigma=0.0,
            time_warp_strength=0.0,
            magnitude_sigma=0.0,
            crop_fraction=1.0,
            frequency_sigma=0.0,
        )
        with pytest.raises(ValueError):
            build_pipeline(cfg)


class TestAugmentDataset:
    def test_combines_original_and_copies(self, rng):
        x = rng.normal(size=(10, 32))
        y = rng.integers(0, 2, 10)
        xa, ya = augment_dataset(x, y, AugmentationConfig(), seed=0, copies=2)
        assert xa.shape == (30, 32)
        assert np.array_equal(xa[:10], x)  # originals kept verbatim
        assert np.array_equal(ya, np.tile(y, 3))

    def test_deterministic_per_seed(self, rng):
        x = rng.normal(size=(5, 32))
        y = np.zeros(5, dtype=int)
        a, _ = augment_dataset(x, y, AugmentationConfig(), seed=4)
        b, _ = augment_dataset(x, y, AugmentationConfig(), seed=4)
        assert np.array_equal(a, b)

    def test_rejects_zero_copies(self, rng):
        with pytest.raises(ValueError):
            augment_dataset(rng.normal(size=(5, 32)), np.zeros(5), AugmentationConfig(), copies=0)


class TestPerturb:
    def test_never_crops(self, rng):
        """Perturbed test sets stay aligned — crop must be disabled."""
        x = np.tile(np.linspace(0, 1, 64), (5, 1))
        cfg = AugmentationConfig(crop_fraction=0.5, jitter_sigma=0.0,
                                 time_warp_strength=0.0, magnitude_sigma=0.05,
                                 frequency_sigma=0.0)
        out = perturb(x, cfg, seed=0)
        # magnitude scaling only: still a scaled ramp, monotone
        assert np.all(np.diff(out, axis=1) >= -1e-9)

    def test_changes_data(self, rng):
        x = rng.normal(size=(5, 64))
        assert not np.allclose(perturb(x, seed=0), x)

    def test_default_config_used_when_none(self, rng):
        x = rng.normal(size=(3, 64))
        assert perturb(x).shape == x.shape


class TestRecommendedConfigs:
    def test_covers_all_datasets(self):
        assert set(RECOMMENDED_CONFIGS) == set(dataset_names())

    def test_paper_notes_respected(self):
        """Frequency noise for PowerCons/SmoothS; cropping for MSRT/Symbols."""
        assert RECOMMENDED_CONFIGS["PowerCons"].frequency_sigma > 0
        assert RECOMMENDED_CONFIGS["SmoothS"].frequency_sigma > 0
        assert RECOMMENDED_CONFIGS["MSRT"].crop_fraction < 1.0
        assert RECOMMENDED_CONFIGS["Symbols"].crop_fraction < 1.0

    def test_default_config_fallback(self):
        assert default_config("UnknownDataset") == AugmentationConfig()
        assert default_config("CBF") is RECOMMENDED_CONFIGS["CBF"]


class TestExtendedConfig:
    def test_extended_operators_in_pipeline(self, rng):
        from repro.augment import Drift, Dropout, Pool

        cfg = AugmentationConfig(
            jitter_sigma=0.0,
            time_warp_strength=0.0,
            magnitude_sigma=0.0,
            crop_fraction=1.0,
            frequency_sigma=0.0,
            drift_max=0.2,
            pool_size=2,
            dropout_p=0.05,
        )
        pipeline = build_pipeline(cfg)
        kinds = {type(a) for a in pipeline.augmenters}
        assert kinds == {Drift, Pool, Dropout}

    def test_extended_operators_off_by_default(self):
        pipeline = build_pipeline(AugmentationConfig())
        from repro.augment import Drift, Dropout, Pool

        kinds = {type(a) for a in pipeline.augmenters}
        assert not kinds & {Drift, Pool, Dropout}

    @pytest.mark.parametrize(
        "bad",
        [{"drift_max": -0.1}, {"pool_size": 0}, {"dropout_p": 1.0}],
    )
    def test_rejects_bad_extended_values(self, bad):
        with pytest.raises(ValueError):
            AugmentationConfig(**bad)

    def test_full_pipeline_executes(self, rng):
        cfg = AugmentationConfig(drift_max=0.1, pool_size=2, dropout_p=0.05)
        x = rng.normal(size=(4, 64))
        xa, ya = augment_dataset(x, np.zeros(4, dtype=int), cfg, seed=0)
        assert xa.shape == (8, 64)
