"""Top-level API surface and small remaining behaviours."""

import numpy as np
import pytest

import repro


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "autograd",
            "nn",
            "optim",
            "spice",
            "circuits",
            "data",
            "augment",
            "core",
            "analysis",
            "hw",
            "tuning",
            "compile",
            "utils",
            "report",
            "cli",
            "telemetry",
            "parallel",
            "serve",
        ],
    )
    def test_subpackages_importable(self, module):
        __import__(f"repro.{module}")

    @pytest.mark.parametrize(
        "module",
        ["autograd", "nn", "optim", "spice", "circuits", "data", "augment", "core", "analysis", "hw", "telemetry", "parallel", "serve"],
    )
    def test_all_exports_resolve(self, module):
        mod = __import__(f"repro.{module}", fromlist=["__all__"])
        for name in mod.__all__:
            assert hasattr(mod, name), f"repro.{module}.{name} missing"


class TestSmallBehaviours:
    def test_experiment_smoke_custom_datasets(self):
        from repro.core import ExperimentConfig

        cfg = ExperimentConfig.smoke(datasets=("CBF",))
        assert cfg.datasets == ("CBF",)

    def test_model_result_repr(self):
        from repro.core import ModelResult

        assert repr(ModelResult(mean=0.726, std=0.014)) == "0.726 ± 0.014"

    def test_training_history_defaults(self):
        from repro.core import TrainingHistory

        hist = TrainingHistory()
        assert hist.epochs_run == 0
        assert hist.best_epoch == -1
        assert hist.train_loss == []

    def test_evaluation_result_repr(self):
        from repro.core import EvaluationResult

        result = EvaluationResult(mean=0.5, std=0.1, samples=np.array([0.4, 0.6]))
        assert "0.500" in repr(result)

    def test_dataset_splits_series_length(self):
        from repro.data import load_dataset

        assert load_dataset("Slope", n_samples=40).series_length == 64

    def test_device_count_repr_fields(self):
        from repro.hw import DeviceCount

        count = DeviceCount(1, 2, 3)
        assert count.transistors == 1 and count.total == 6

    def test_power_breakdown_consistency(self, rng):
        from repro.core import AdaptPNC
        from repro.hw import estimate_power

        power = estimate_power(AdaptPNC(2, rng=rng))
        assert power.total_mw == pytest.approx(power.total * 1e3)

    def test_yield_result_repr(self):
        from repro.analysis import YieldResult

        result = YieldResult(
            yield_fraction=0.8, threshold=0.7, accuracies=np.array([0.6, 0.9])
        )
        assert "80" in repr(result) and "worst=0.600" in repr(result)

    def test_quantization_report_repr(self, rng):
        from repro.circuits import quantize_model
        from repro.core import AdaptPNC

        report = quantize_model(AdaptPNC(2, rng=rng))
        assert "12/decade" in repr(report)

    def test_fault_result_repr(self):
        from repro.analysis import FaultResult

        result = FaultResult("open_crossing", 2, 0.7, 0.05)
        assert "open_crossing" in repr(result)

    def test_synthesis_result_repr(self):
        from repro.circuits.synthesis import SynthesisResult
        from repro.spice import EGTParameters

        t = EGTParameters()
        result = SynthesisResult(1e4, 2e4, t, t, 0.005, np.zeros(4))
        assert "rms=5.0mV" in repr(result)

    def test_calibration_result_gain(self):
        from repro.core import CalibrationResult

        result = CalibrationResult(0, 0.6, 0.75)
        assert result.gain == pytest.approx(0.15)

    def test_corner_report_helpers(self):
        from repro.analysis import CornerReport

        report = CornerReport(accuracy={"TT": 0.9, "SS": 0.7, "FF": 0.8}, delta=0.1)
        assert report.worst_corner() == "SS"
        assert report.spread() == pytest.approx(0.2)

    def test_compiled_model_input_node_alias(self, rng):
        from repro.compile import compile_model
        from repro.core import PTPNC

        compiled = compile_model(PTPNC(2, rng=rng))
        assert compiled.input_node == compiled.input_nodes[0] == "in"
