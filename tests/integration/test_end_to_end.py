"""Cross-module integration: the paper's claims at miniature scale."""

import numpy as np
import pytest

pytestmark = pytest.mark.slow

from repro.augment import default_config
from repro.circuits import ideal_sampler
from repro.core import (
    AdaptPNC,
    PTPNC,
    Trainer,
    TrainingConfig,
    accuracy,
    evaluate_under_variation,
)
from repro.data import load_dataset


@pytest.fixture(scope="module")
def slope():
    return load_dataset("Slope", n_samples=90, seed=0)


@pytest.fixture(scope="module")
def trained_pair(slope):
    """Baseline (clean-trained) and proposed (VA+AT) models on Slope."""
    from dataclasses import replace

    cfg = replace(TrainingConfig.ci(), max_epochs=60)
    baseline = PTPNC(3, rng=np.random.default_rng(0))
    Trainer(baseline, cfg, variation_aware=False, seed=0).fit(
        slope.x_train, slope.y_train, slope.x_val, slope.y_val
    )
    proposed = AdaptPNC(3, rng=np.random.default_rng(0))
    Trainer(
        proposed, cfg, variation_aware=True, augmentation=default_config("Slope"), seed=0
    ).fit(slope.x_train, slope.y_train, slope.x_val, slope.y_val)
    return baseline, proposed


class TestHeadlineClaim:
    def test_both_models_learn_the_task(self, trained_pair, slope):
        baseline, proposed = trained_pair
        assert accuracy(baseline, slope.x_test, slope.y_test) > 0.6
        assert accuracy(proposed, slope.x_test, slope.y_test) > 0.6

    def test_adapt_more_robust_under_variation(self, trained_pair, slope):
        """The paper's core result: robustness-aware ADAPT-pNC holds
        accuracy under ±10% variation better than the baseline."""
        baseline, proposed = trained_pair
        base = evaluate_under_variation(
            baseline, slope.x_test, slope.y_test, delta=0.10, mc_samples=8, seed=0
        )
        prop = evaluate_under_variation(
            proposed, slope.x_test, slope.y_test, delta=0.10, mc_samples=8, seed=0
        )
        assert prop.mean >= base.mean - 0.02
        assert prop.std <= base.std + 0.02

    def test_adapt_stable_across_variation_levels(self, trained_pair, slope):
        _, proposed = trained_pair
        accs = [
            evaluate_under_variation(
                proposed, slope.x_test, slope.y_test, delta=d, mc_samples=5, seed=1
            ).mean
            for d in (0.05, 0.10, 0.20)
        ]
        assert max(accs) - min(accs) < 0.25


class TestHardwareClaim:
    def test_device_and_power_tradeoff(self, trained_pair):
        """Trained models: ~2x devices, large power reduction (Table III)."""
        from repro.hw import count_devices, estimate_power

        baseline, proposed = trained_pair
        dev_ratio = count_devices(proposed).total / count_devices(baseline).total
        power_ratio = estimate_power(proposed).total / estimate_power(baseline).total
        assert dev_ratio > 1.2
        assert power_ratio < 0.35


class TestFilterCircuitConsistency:
    def test_trained_filters_remain_printable(self, trained_pair):
        _, proposed = trained_pair
        for block in proposed.blocks:
            vals = block.filters.component_values()
            for key, arr in vals.items():
                assert np.all(arr > 0), f"{key} must stay positive after training"

    def test_trained_so_filter_matches_spice(self, trained_pair, slope):
        """After training, the learned SO-LF still matches the MNA netlist."""
        from repro.autograd import Tensor
        from repro.spice import Circuit, PiecewiseLinear, transient

        _, proposed = trained_pair
        flt = proposed.blocks[0].filters
        flt.sampler = ideal_sampler()
        r1 = float(np.exp(flt.stage1.log_r.data[0]))
        c1 = float(np.exp(flt.stage1.log_c.data[0]))
        r2 = float(np.exp(flt.stage2.log_r.data[0]))
        c2 = float(np.exp(flt.stage2.log_c.data[0]))

        steps = 20
        x = slope.x_test[0][:steps]
        layer = flt(Tensor(x.reshape(1, steps, 1))).data[0, :, 0]

        circ = Circuit()
        times = np.arange(steps + 1) * flt.dt
        circ.add_voltage_source(
            "vin", "in", 0, PiecewiseLinear(times, np.concatenate([[x[0]], x]))
        )
        circ.add_resistor("r1", "in", "m", r1)
        circ.add_capacitor("c1", "m", 0, c1)
        circ.add_resistor("r2", "m", "out", r2)
        circ.add_capacitor("c2", "out", 0, c2)
        sim = transient(circ, dt=flt.dt, steps=steps, probes=["out"])["out"][1:]
        # decoupled layer (mu=1) vs physically coupled netlist: the
        # difference is bounded by the coupling effect
        assert np.max(np.abs(layer - sim)) < 0.2


class TestReproducibility:
    def test_identical_seeds_identical_models(self, slope):
        from dataclasses import replace

        cfg = replace(TrainingConfig.ci(), max_epochs=25)
        states = []
        for _ in range(2):
            model = AdaptPNC(3, rng=np.random.default_rng(5))
            Trainer(model, cfg, variation_aware=True, seed=5).fit(
                slope.x_train, slope.y_train, slope.x_val, slope.y_val
            )
            states.append(model.state_dict())
        for key in states[0]:
            assert np.array_equal(states[0][key], states[1][key]), key
