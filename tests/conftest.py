"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng_factory():
    """Factory for generators with explicit seeds."""

    def make(seed: int = 0) -> np.random.Generator:
        return np.random.default_rng(seed)

    return make
