"""Trainer checkpoint/resume: bit-equal continuation and telemetry parity."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import AdaptPNC, CHECKPOINT_FILENAME, Trainer, TrainingConfig
from repro.core.training import TrainingHistory, _restore_rng, _rng_state
from repro.data import load_dataset
from repro.telemetry import Run, read_events


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("Slope", n_samples=40, seed=0)


def tiny_config(**overrides):
    merged = {"max_epochs": 6, "lr_patience": 2, **overrides}
    return replace(TrainingConfig.ci(), **merged)


def make_trainer(config, seed=7):
    model = AdaptPNC(3, rng=np.random.default_rng(seed))
    return Trainer(model, config, variation_aware=True, seed=seed)


class TestRngSnapshot:
    def test_round_trips_raw_stream(self):
        rng = np.random.default_rng(42)
        rng.normal(size=10)  # advance
        clone = _restore_rng(_rng_state(rng))
        assert np.array_equal(rng.normal(size=16), clone.normal(size=16))

    def test_round_trips_spawn_counter(self):
        # Generator.spawn advances the SeedSequence spawn counter, which
        # bit_generator.state does NOT capture — the regression this
        # snapshot format exists to prevent.
        rng = np.random.default_rng(42)
        rng.spawn(3)
        clone = _restore_rng(_rng_state(rng))
        a = [s.normal() for s in rng.spawn(2)]
        b = [s.normal() for s in clone.spawn(2)]
        assert a == b


class TestResumeBitEquality:
    def test_resume_reproduces_uninterrupted_history(self, dataset, tmp_path):
        cfg = tiny_config()
        uninterrupted = make_trainer(cfg)
        expected = uninterrupted.fit(
            dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val
        )

        # "Kill" after 3 epochs: same protocol, shorter horizon.
        partial = make_trainer(tiny_config(max_epochs=3))
        partial.fit(
            dataset.x_train,
            dataset.y_train,
            dataset.x_val,
            dataset.y_val,
            checkpoint_dir=tmp_path,
        )
        assert (tmp_path / CHECKPOINT_FILENAME).exists()

        resumed_trainer = make_trainer(cfg)
        resumed = resumed_trainer.fit(
            dataset.x_train,
            dataset.y_train,
            dataset.x_val,
            dataset.y_val,
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert resumed.train_loss == expected.train_loss
        assert resumed.val_loss == expected.val_loss
        assert resumed.learning_rate == expected.learning_rate
        assert resumed.best_val_loss == expected.best_val_loss
        assert resumed.best_epoch == expected.best_epoch
        final = uninterrupted.model.state_dict()
        restored = resumed_trainer.model.state_dict()
        assert all(np.array_equal(final[k], restored[k]) for k in final)

    def test_resume_of_finished_run_is_a_noop(self, dataset, tmp_path):
        cfg = tiny_config(max_epochs=3)
        first = make_trainer(cfg)
        expected = first.fit(
            dataset.x_train,
            dataset.y_train,
            dataset.x_val,
            dataset.y_val,
            checkpoint_dir=tmp_path,
        )
        again = make_trainer(cfg)
        resumed = again.fit(
            dataset.x_train,
            dataset.y_train,
            dataset.x_val,
            dataset.y_val,
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert resumed.train_loss == expected.train_loss
        assert resumed.epochs_run == expected.epochs_run

    def test_fingerprint_mismatch_refused(self, dataset, tmp_path):
        make_trainer(tiny_config(max_epochs=2)).fit(
            dataset.x_train,
            dataset.y_train,
            dataset.x_val,
            dataset.y_val,
            checkpoint_dir=tmp_path,
        )
        other = make_trainer(tiny_config(max_epochs=2, mc_samples=3))
        with pytest.raises(ValueError, match="fingerprint"):
            other.fit(
                dataset.x_train,
                dataset.y_train,
                dataset.x_val,
                dataset.y_val,
                checkpoint_dir=tmp_path,
                resume=True,
            )

    def test_extending_max_epochs_is_allowed(self, dataset, tmp_path):
        # max_epochs is a horizon, not part of the protocol identity.
        make_trainer(tiny_config(max_epochs=2)).fit(
            dataset.x_train,
            dataset.y_train,
            dataset.x_val,
            dataset.y_val,
            checkpoint_dir=tmp_path,
        )
        extended = make_trainer(tiny_config(max_epochs=4))
        history = extended.fit(
            dataset.x_train,
            dataset.y_train,
            dataset.x_val,
            dataset.y_val,
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert history.epochs_run == 4


class TestTelemetryParity:
    def test_epoch_events_reproduce_history_exactly(self, dataset, tmp_path):
        cfg = tiny_config(max_epochs=4)
        with Run(root=tmp_path, name="parity", seed=7, dataset="Slope") as run:
            history = make_trainer(cfg).fit(
                dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val
            )
            events_path = run.events_path
        rebuilt = TrainingHistory.from_epoch_events(
            read_events(events_path, kind="epoch")
        )
        assert rebuilt.train_loss == history.train_loss
        assert rebuilt.val_loss == history.val_loss
        assert rebuilt.learning_rate == history.learning_rate
        assert rebuilt.best_val_loss == history.best_val_loss
        assert rebuilt.best_epoch == history.best_epoch
        assert rebuilt.epochs_run == history.epochs_run

    def test_epoch_events_carry_mc_distribution(self, dataset, tmp_path):
        cfg = tiny_config(max_epochs=2)
        with Run(root=tmp_path, seed=7) as run:
            make_trainer(cfg).fit(
                dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val
            )
            events_path = run.events_path
        for event in read_events(events_path, kind="epoch"):
            assert event["mc_draws"] == cfg.mc_samples
            assert event["mc_loss_std"] >= 0.0

    def test_default_checkpoint_under_active_run(self, dataset, tmp_path):
        cfg = tiny_config(max_epochs=2)
        with Run(root=tmp_path, seed=7) as run:
            make_trainer(cfg).fit(
                dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val
            )
            run_dir = run.dir
        assert (run_dir / "checkpoints" / CHECKPOINT_FILENAME).exists()
        events = read_events(run_dir / "events.jsonl")
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "fit_start"
        assert "checkpoint" in kinds and kinds[-1] == "run_end"
        (fit_end,) = [e for e in events if e["kind"] == "fit_end"]
        assert fit_end["epochs_run"] == 2
