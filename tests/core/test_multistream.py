"""Fleet-invariance suite: the batched multi-stream engine vs its oracle.

Every row of a :class:`repro.core.MultiStreamSession` must be
**bit-equal** to a lone :class:`repro.core.StreamingSession` over the
same plan fed the same chunks in the same order — whatever the other
rows are doing, however ragged the chunk lengths, and across arbitrary
interleavings of ``process`` / ``reset`` / join (``open``) / leave
(``close``).  The hypothesis class drives exactly that action schedule;
the grid class pins deterministic coverage across topologies and
precisions (the CI tier-1 "Streaming conformance suite" runs this file
alongside the split-invariance suite).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd.precision import PRECISION_POLICIES
from repro.compile import compile_plan
from repro.core import (
    AdaptPNC,
    MultiStreamSession,
    PTPNC,
    PrintedTemporalClassifier,
    StreamingSession,
)


def _plan(model_cls=AdaptPNC, n_classes=3, seed=0, **kw):
    return compile_plan(model_cls(n_classes, rng=np.random.default_rng(seed), **kw))


def _assert_row_state_agrees(fleet, row, oracle):
    assert fleet.steps_seen(row) == oracle.steps_seen
    mine, theirs = fleet.last_logits(row), oracle.last_logits
    assert (mine is None) == (theirs is None)
    if mine is not None:
        assert np.array_equal(mine, theirs)


class TestFleetOracleGrid:
    """Deterministic bit-equality grid: topologies, precisions, raggedness."""

    @pytest.mark.parametrize("model_cls", [PTPNC, AdaptPNC])
    @pytest.mark.parametrize("capacity", [1, 3, 8])
    def test_ragged_rounds_bit_equal_oracle(self, model_cls, capacity):
        plan = _plan(model_cls)
        fleet = MultiStreamSession(plan, capacity=capacity)
        rng = np.random.default_rng(7)
        rows = [fleet.open() for _ in range(capacity)]
        oracles = {r: StreamingSession(plan) for r in rows}
        for _ in range(6):
            chunks = {
                r: rng.standard_normal(int(rng.integers(1, 13))) for r in rows
            }
            results = fleet.process_many(chunks)
            assert set(results) == set(rows)
            for r, chunk in chunks.items():
                assert np.array_equal(results[r], oracles[r].process(chunk))
        for r in rows:
            _assert_row_state_agrees(fleet, r, oracles[r])

    @pytest.mark.parametrize("precision", PRECISION_POLICIES)
    def test_precision_policies(self, precision):
        model = AdaptPNC(2, rng=np.random.default_rng(1))
        plan = compile_plan(model, precision=precision)
        fleet = MultiStreamSession(plan, capacity=4)
        rng = np.random.default_rng(2)
        rows = [fleet.open() for _ in range(4)]
        oracles = {r: StreamingSession(plan) for r in rows}
        for _ in range(4):
            chunks = {r: rng.standard_normal(5) for r in rows}
            results = fleet.process_many(chunks)
            for r in rows:
                assert np.array_equal(results[r], oracles[r].process(chunks[r]))
                assert results[r].dtype == plan.dtype

    def test_multivariate_channels(self):
        model = PrintedTemporalClassifier(
            2, hidden_size=4, in_channels=3, rng=np.random.default_rng(3)
        )
        plan = compile_plan(model)
        fleet = MultiStreamSession(plan, capacity=3)
        rng = np.random.default_rng(4)
        rows = [fleet.open() for _ in range(3)]
        oracles = {r: StreamingSession(plan) for r in rows}
        for _ in range(3):
            chunks = {
                r: rng.standard_normal((int(rng.integers(1, 7)), 3)) for r in rows
            }
            results = fleet.process_many(chunks)
            for r in rows:
                assert np.array_equal(results[r], oracles[r].process(chunks[r]))

    def test_subset_of_rows_per_call(self):
        """Rows sitting a round out keep their state bit-for-bit."""
        plan = _plan()
        fleet = MultiStreamSession(plan, capacity=4)
        rng = np.random.default_rng(5)
        rows = [fleet.open() for _ in range(4)]
        oracles = {r: StreamingSession(plan) for r in rows}
        for i in range(8):
            sub = [r for r in rows if (r + i) % 3 != 0] or rows[:1]
            chunks = {r: rng.standard_normal(int(rng.integers(1, 9))) for r in sub}
            results = fleet.process_many(chunks)
            for r in sub:
                assert np.array_equal(results[r], oracles[r].process(chunks[r]))
        for r in rows:
            _assert_row_state_agrees(fleet, r, oracles[r])

    def test_single_call_matches_chunked_fleet(self):
        """The split-invariance contract holds inside the fleet too."""
        plan = _plan()
        rng = np.random.default_rng(6)
        x = rng.standard_normal(48)
        one = MultiStreamSession(plan, capacity=2)
        r1 = one.open()
        whole = one.process(r1, x)
        many = MultiStreamSession(plan, capacity=2)
        r2 = many.open()
        pieces = [many.process(r2, x[lo : lo + 7]) for lo in range(0, 48, 7)]
        assert np.array_equal(np.concatenate(pieces, axis=0), whole)


class TestFleetLifecycle:
    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            MultiStreamSession(_plan(), capacity=0)

    def test_open_exhaustion_and_reuse(self):
        fleet = MultiStreamSession(_plan(), capacity=2)
        a, b = fleet.open(), fleet.open()
        assert {a, b} == {0, 1}
        assert fleet.occupancy == 2 and fleet.free_rows == 0
        with pytest.raises(RuntimeError, match="full"):
            fleet.open()
        fleet.close(a)
        assert fleet.free_rows == 1
        assert fleet.open() == a  # the freed row is reusable

    def test_unopened_row_rejected_everywhere(self):
        fleet = MultiStreamSession(_plan(), capacity=2)
        row = fleet.open()
        for bad in (row + 1, -1, 99):
            with pytest.raises(KeyError):
                fleet.process_many({bad: np.zeros(3)})
            with pytest.raises(KeyError):
                fleet.reset(bad)
            with pytest.raises(KeyError):
                fleet.close(bad)
            with pytest.raises(KeyError):
                fleet.steps_seen(bad)

    def test_close_then_reopen_is_discharged(self):
        """A reused row starts from zero state, like a fresh session."""
        plan = _plan()
        fleet = MultiStreamSession(plan, capacity=1)
        rng = np.random.default_rng(8)
        x = rng.standard_normal(20)
        row = fleet.open()
        fleet.process(row, rng.standard_normal(30))  # pollute the row
        fleet.close(row)
        row2 = fleet.open()
        assert row2 == row
        assert fleet.steps_seen(row2) == 0 and fleet.last_logits(row2) is None
        assert np.array_equal(
            fleet.process(row2, x), StreamingSession(plan).process(x)
        )

    def test_reset_matches_oracle_reset(self):
        plan = _plan()
        fleet = MultiStreamSession(plan, capacity=2)
        oracle = StreamingSession(plan)
        rng = np.random.default_rng(9)
        row = fleet.open()
        x1, x2 = rng.standard_normal(11), rng.standard_normal(13)
        fleet.process(row, x1)
        oracle.process(x1)
        fleet.reset(row)
        oracle.reset()
        assert fleet.steps_seen(row) == 0
        assert np.array_equal(fleet.process(row, x2), oracle.process(x2))

    def test_predict_and_empty_mapping(self):
        fleet = MultiStreamSession(_plan(), capacity=1)
        row = fleet.open()
        with pytest.raises(ValueError, match="no samples"):
            fleet.predict(row)
        assert fleet.process_many({}) == {}
        fleet.process(row, np.ones(4))
        assert fleet.predict(row) == int(np.argmax(fleet.last_logits(row)))


@st.composite
def action_schedule(draw):
    """A random interleaving of process/reset/join/leave actions."""
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["process", "reset", "join", "leave"]),
                st.integers(min_value=0, max_value=7),  # stream selector
                st.integers(min_value=1, max_value=10),  # chunk length
            ),
            min_size=1,
            max_size=24,
        )
    )


class TestFleetHypothesis:
    """Random process/reset/join/leave interleavings stay on the oracle."""

    @settings(max_examples=25, deadline=None)
    @given(schedule=action_schedule(), seed=st.integers(0, 2**31 - 1))
    def test_interleavings_bit_equal_oracle(self, schedule, seed, shared_plan):
        plan = shared_plan
        fleet = MultiStreamSession(plan, capacity=4)
        rng = np.random.default_rng(seed)
        rows = []
        oracles = {}
        for action, selector, length in schedule:
            if action == "join":
                if fleet.free_rows:
                    row = fleet.open()
                    rows.append(row)
                    oracles[row] = StreamingSession(plan)
                continue
            if not rows:
                continue
            row = rows[selector % len(rows)]
            if action == "leave":
                fleet.close(row)
                rows.remove(row)
                del oracles[row]
            elif action == "reset":
                fleet.reset(row)
                oracles[row].reset()
            else:  # process — a ragged batch around the selected row
                batch = {row}
                batch.update(
                    r for r in rows if rng.random() < 0.5 and len(batch) < 4
                )
                chunks = {
                    r: rng.standard_normal(
                        length if r == row else int(rng.integers(1, 11))
                    )
                    for r in batch
                }
                results = fleet.process_many(chunks)
                for r, chunk in chunks.items():
                    expected = oracles[r].process(chunk)
                    assert np.array_equal(results[r], expected)
        for r in rows:
            _assert_row_state_agrees(fleet, r, oracles[r])


@pytest.fixture(scope="module")
def shared_plan():
    """One compiled plan for the hypothesis class (compilation is the
    slow part; plans are stateless for streaming, so sharing is safe)."""
    return _plan(AdaptPNC, n_classes=2, seed=11)
