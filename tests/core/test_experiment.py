"""Experiment harness: every table/figure entry point at smoke scale."""

import numpy as np
import pytest

from repro.core import (
    ABLATION_CONFIGS,
    ExperimentConfig,
    format_fig7,
    format_table1,
    run_fig5,
    run_fig6,
    run_fig7_ablation,
    run_mu_extraction,
    run_table1,
    run_table2,
    run_table3,
)


@pytest.fixture(scope="module")
def smoke():
    from dataclasses import replace

    cfg = ExperimentConfig.smoke(datasets=("Slope",))
    return replace(
        cfg,
        n_samples=50,
        training=replace(cfg.training, max_epochs=10, lr_patience=3),
        eval_mc=2,
    )


class TestConfig:
    def test_paper_covers_everything(self):
        cfg = ExperimentConfig.paper()
        assert len(cfg.datasets) == 15
        assert len(cfg.seeds) == 10
        assert cfg.top_k == 3
        assert cfg.eval_delta == 0.10

    def test_ci_same_datasets_smaller_everything(self):
        cfg = ExperimentConfig.ci()
        assert len(cfg.datasets) == 15
        assert len(cfg.seeds) < 10
        assert cfg.training.max_epochs < ExperimentConfig.paper().training.max_epochs

    def test_rejects_unknown_dataset(self):
        with pytest.raises(ValueError):
            ExperimentConfig(datasets=("Nope",))

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError):
            ExperimentConfig(seeds=())


class TestTable1(object):
    def test_structure_and_ranges(self, smoke):
        table = run_table1(smoke)
        assert set(table) == {"Slope", "Average"}
        for entry in table.values():
            assert set(entry) == {"elman", "ptpnc", "adapt"}
            for result in entry.values():
                assert 0.0 <= result.mean <= 1.0
                assert result.std >= 0.0

    def test_format_renders(self, smoke):
        text = format_table1(run_table1(smoke))
        assert "Slope" in text and "Average" in text and "±" in text


class TestTable2:
    def test_timings_positive_and_ordered(self, smoke):
        timings = run_table2(smoke, dataset_name="Slope", repeats=1)
        assert set(timings) == {"elman", "ptpnc", "adapt"}
        assert all(t > 0 for t in timings.values())
        # ADAPT pays for MC sampling + augmentation: slowest printed model.
        assert timings["adapt"] > timings["ptpnc"]


class TestTable3:
    def test_rows_for_each_dataset(self, smoke):
        rows = run_table3(smoke)
        assert [r.dataset for r in rows] == list(smoke.datasets)
        for row in rows:
            assert row.proposed.total > 0 and row.baseline.total > 0


class TestFig5:
    def test_four_conditions(self, smoke):
        result = run_fig5(smoke, dataset_name="Slope")
        assert set(result) == {
            "clean_ideal",
            "clean_varied",
            "perturbed_ideal",
            "perturbed_varied",
        }
        assert all(0.0 <= v <= 1.0 for v in result.values())


class TestFig6:
    def test_five_series(self):
        series = run_fig6()
        assert set(series) == {
            "original",
            "jittering",
            "time_warping",
            "magnitude_scaling",
            "frequency_domain",
        }
        lengths = {len(v) for v in series.values()}
        assert lengths == {64}

    def test_augmentations_differ_from_original(self):
        series = run_fig6()
        for key, values in series.items():
            if key != "original":
                assert not np.allclose(values, series["original"])


class TestFig7:
    def test_all_five_configs(self, smoke):
        results = run_fig7_ablation(smoke)
        assert set(results) == set(ABLATION_CONFIGS)
        for modes in results.values():
            assert set(modes) == {"clean", "perturbed"}

    def test_format_renders(self, smoke):
        text = format_fig7(run_fig7_ablation(smoke))
        assert "va_so_at" in text

    def test_ablation_flags(self):
        assert ABLATION_CONFIGS["baseline"] == {"va": False, "at": False, "so": False}
        assert ABLATION_CONFIGS["va_so_at"] == {"va": True, "at": True, "so": True}


class TestMuExtraction:
    def test_band_and_stats(self):
        result = run_mu_extraction(samples=4)
        assert 1.0 <= result["mu_min"] <= result["mu_mean"] <= result["mu_max"]
        assert result["within_paper_band"] == 1.0
