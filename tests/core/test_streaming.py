"""Streaming inference equivalence, plan regression and online evaluation."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.circuits import filter_stages
from repro.compile import compile_plan
from repro.core import (
    AdaptPNC,
    PTPNC,
    StreamingClassifier,
    StreamingSession,
    evaluate_streaming,
)
from repro.data import drift_stream, inject_bursts


@pytest.fixture
def series(rng):
    return np.clip(np.cumsum(rng.normal(0, 0.2, 32)), -1, 1)


class TestEquivalence:
    @pytest.mark.parametrize("cls", [PTPNC, AdaptPNC])
    def test_streaming_matches_batched_forward(self, cls, series):
        """The stateful stream must equal the batched sequence forward."""
        model = cls(3, rng=np.random.default_rng(0))
        stream = StreamingClassifier(model)
        streamed = stream.run(series)
        with no_grad():
            batched = model(series.reshape(1, -1)).data[0]
        assert np.allclose(streamed[-1], batched, atol=1e-12)

    def test_full_trajectory_matches(self, series):
        from repro.autograd import Tensor

        model = PTPNC(2, rng=np.random.default_rng(1))
        stream = StreamingClassifier(model)
        streamed = stream.run(series)
        with no_grad():
            seq = model.blocks[0](Tensor(series.reshape(1, -1, 1)))
            seq = model.blocks[1](seq).data[0] * model.logit_scale
        assert np.allclose(streamed, seq, atol=1e-12)


class TestState:
    def test_push_counts_steps(self, series, rng):
        stream = StreamingClassifier(AdaptPNC(2, rng=rng))
        for sample in series[:5]:
            stream.push(float(sample))
        assert stream.steps_seen == 5

    def test_reset_restores_initial_behaviour(self, series, rng):
        stream = StreamingClassifier(AdaptPNC(2, rng=rng))
        first = stream.run(series)
        stream.reset()
        assert stream.steps_seen == 0
        second = stream.run(series)
        assert np.array_equal(first, second)

    def test_state_carries_between_pushes(self, rng):
        stream = StreamingClassifier(PTPNC(2, rng=rng))
        a = stream.push(0.5)
        b = stream.push(0.5)  # same input, different state
        assert not np.allclose(a, b)

    def test_push_rejects_arrays(self, rng):
        stream = StreamingClassifier(PTPNC(2, rng=rng))
        with pytest.raises(ValueError):
            stream.push(np.array([0.1, 0.2]))

    def test_run_rejects_2d(self, rng):
        stream = StreamingClassifier(PTPNC(2, rng=rng))
        with pytest.raises(ValueError):
            stream.run(np.zeros((2, 5)))


class TestPlanRegression:
    """Streaming and ``compile.plan`` share ONE coefficient-resolution
    path (``filter_stages`` + ``nominal_coefficients``) — these tests
    pin the two together so they can never drift apart again."""

    @pytest.mark.parametrize("cls", [PTPNC, AdaptPNC])
    def test_session_coefficients_bit_equal_nominal(self, cls):
        """Every frozen (a, b) pair in the session's plan is bitwise the
        live filter bank's nominal coefficients."""
        model = cls(3, rng=np.random.default_rng(5))
        session = StreamingSession(model)
        assert len(session.plan.layers) == len(model.blocks)
        for layer, block in zip(session.plan.layers, model.blocks):
            stages = filter_stages(block.filters)
            assert len(layer.stages) == len(stages)
            for (a, b), stage in zip(layer.stages, stages):
                na, nb = stage.nominal_coefficients(block.filters.dt)
                assert np.array_equal(a, na)
                assert np.array_equal(b, nb)

    def test_session_from_plan_equals_session_from_model(self, series):
        """Compiling inside the session vs handing it a pre-compiled
        plan is bitwise the same trajectory."""
        model = AdaptPNC(3, rng=np.random.default_rng(6))
        plan = compile_plan(model)
        from_model = StreamingSession(model).process(series)
        from_plan = StreamingSession(plan).process(series)
        assert np.array_equal(from_model, from_plan)

    def test_streaming_logits_agree_with_plan_forward(self, series):
        """Final streamed logits agree with the batched plan forward to
        accumulation tolerance (BLAS row-count kernels prevent bitwise)
        and always pick the same class."""
        model = AdaptPNC(3, rng=np.random.default_rng(6))
        plan = compile_plan(model)
        streamed = StreamingSession(plan).process(series)[-1]
        batched = plan.forward(series[None])[0]
        assert np.allclose(streamed, batched, atol=1e-12, rtol=0)
        assert int(np.argmax(streamed)) == int(np.argmax(batched))

    def test_session_rejects_non_model_source(self):
        with pytest.raises(TypeError):
            StreamingSession(object())

    def test_predict_before_processing_raises(self):
        session = StreamingSession(PTPNC(2, rng=np.random.default_rng(0)))
        with pytest.raises(ValueError):
            session.predict()


class TestEvaluateStreaming:
    @pytest.fixture(scope="class")
    def model(self):
        return AdaptPNC(3, rng=np.random.default_rng(2))

    @pytest.fixture(scope="class")
    def stream(self):
        return drift_stream("Slope", segments=3, windows_per_segment=2, seed=1)

    def test_result_shape_and_sanity(self, model, stream):
        result = evaluate_streaming(model, stream, chunk_size=32)
        assert result.steps == stream.steps
        assert result.scenario == stream.name
        assert 0.0 <= result.accuracy <= 1.0
        assert result.accuracy_curve.shape == (stream.steps,)
        assert np.all((result.accuracy_curve >= 0) & (result.accuracy_curve <= 1))
        assert len(result.segment_accuracy) == len(stream.changepoints) + 1
        assert result.changepoint_curve is not None
        assert result.changepoint_curve.shape == (sum(result.changepoint_halo),)
        assert result.pre_change_accuracy is not None
        assert result.burst_accuracy is None  # drift stream has no bursts

    def test_result_is_chunking_invariant(self, model, stream):
        fine = evaluate_streaming(model, stream, chunk_size=1)
        coarse = evaluate_streaming(model, stream, chunk_size=stream.steps)
        assert np.array_equal(fine.predictions, coarse.predictions)
        assert fine.accuracy == coarse.accuracy

    def test_burst_split_reported(self, model, stream):
        corrupted = inject_bursts(stream, "dropout", rate=0.1, seed=3)
        result = evaluate_streaming(model, corrupted, chunk_size=64)
        assert result.burst_accuracy is not None
        assert result.clean_accuracy is not None

    def test_to_record_is_json_serialisable(self, model, stream):
        import json

        record = evaluate_streaming(model, stream, chunk_size=64).to_record()
        loaded = json.loads(json.dumps(record))
        assert loaded["steps"] == stream.steps
        assert len(loaded["accuracy_curve"]) == stream.steps

    def test_emits_stream_telemetry(self, model, stream, tmp_path):
        from repro import telemetry
        from repro.telemetry import read_events

        with telemetry.Run(root=tmp_path, name="stream-test") as run:
            evaluate_streaming(model, stream, chunk_size=128)
        events = read_events(run.dir / "events.jsonl")
        kinds = [e["kind"] for e in events]
        assert kinds.count("stream.start") == 1
        assert kinds.count("stream.end") == 1
        n_chunks = -(-stream.steps // 128)  # ceil division
        assert kinds.count("stream.chunk") == n_chunks
        end = next(e for e in events if e["kind"] == "stream.end")
        assert end["scenario"] == stream.name
        assert 0.0 <= end["accuracy"] <= 1.0

    def test_rejects_bad_chunk_size(self, model, stream):
        with pytest.raises(ValueError):
            evaluate_streaming(model, stream, chunk_size=0)

    def test_rejects_label_mismatch(self, model, stream):
        class Broken:
            name = dataset = "broken"
            x = stream.x
            labels = stream.labels[:-3]
            changepoints = ()
            burst_mask = np.zeros(stream.steps, dtype=bool)

        with pytest.raises(ValueError, match="labels"):
            evaluate_streaming(model, Broken())


class TestLatency:
    def test_latency_within_bounds(self, series, rng):
        stream = StreamingClassifier(AdaptPNC(2, rng=rng))
        latency = stream.decision_latency(series)
        assert 0 <= latency < series.size

    def test_constant_strong_input_settles_quickly(self, rng):
        model = PTPNC(2, rng=np.random.default_rng(0))
        stream = StreamingClassifier(model)
        series = np.full(64, 0.9)
        latency = stream.decision_latency(series)
        assert latency < 32  # settles within the first half


class TestSnapshotRestore:
    """state_dict / save_state / load_state round-trips are bit-exact."""

    @pytest.fixture
    def plan(self):
        return compile_plan(AdaptPNC(3, rng=np.random.default_rng(0)))

    def test_dict_round_trip_resumes_bit_equal(self, plan, series):
        full = StreamingSession(plan)
        whole = full.process(series)

        first = StreamingSession(plan)
        head = first.process(series[:13])
        snap = first.state_dict()

        second = StreamingSession(plan)
        second.load_state(snap)
        tail = second.process(series[13:])
        assert np.array_equal(np.concatenate([head, tail], axis=0), whole)
        assert second.steps_seen == series.size
        assert np.array_equal(second.last_logits, full.last_logits)

    def test_npz_round_trip(self, plan, series, tmp_path):
        path = tmp_path / "stream.npz"
        first = StreamingSession(plan)
        head = first.process(series[:9])
        first.save_state(path)

        second = StreamingSession(plan)
        second.load_state(path)
        assert np.array_equal(second.process(series[9:]),
                              StreamingSession(plan).process(series)[9:])
        assert np.array_equal(second.last_logits,
                              StreamingSession(plan).process(series)[-1])
        assert head.shape == (9, plan.n_classes)

    def test_snapshot_is_a_copy(self, plan, series):
        session = StreamingSession(plan)
        session.process(series[:5])
        snap = session.state_dict()
        before = session.process(series[5:10])
        for key, value in snap.items():
            if key.startswith("state_"):
                value.fill(1e9)  # must not touch the live session
        session.reset()
        session.load_state({k: v for k, v in session.state_dict().items()})
        fresh = StreamingSession(plan)
        fresh.process(series[:5])
        assert np.array_equal(before, fresh.process(series[5:10]))

    def test_fresh_snapshot_has_no_logits(self, plan):
        snap = StreamingSession(plan).state_dict()
        assert "last_logits" not in snap
        assert int(snap["steps_seen"]) == 0

    @pytest.mark.parametrize(
        "corrupt, match",
        [
            (lambda d: d.update(format=np.array("bogus-v0")), "format"),
            (lambda d: d.update(model_class=np.array("Other")), "model"),
            (lambda d: d.update(dtype=np.array("float16")), "dtype"),
            (lambda d: d.pop("state_0_0"), "missing"),
            (
                lambda d: d.update(state_0_0=np.zeros((1, 99))),
                "shape",
            ),
        ],
    )
    def test_invalid_snapshots_rejected(self, plan, series, corrupt, match):
        session = StreamingSession(plan)
        session.process(series[:7])
        snap = session.state_dict()
        corrupt(snap)
        victim = StreamingSession(plan)
        victim.process(series[:3])
        expected_state = victim.state_dict()
        with pytest.raises(ValueError, match=match):
            victim.load_state(snap)
        # a failed load leaves the session untouched
        after = victim.state_dict()
        for key, value in expected_state.items():
            assert np.array_equal(after[key], value)

    def test_bad_source_type(self, plan):
        with pytest.raises(TypeError, match="state_dict mapping or an npz"):
            StreamingSession(plan).load_state(42)
