"""Streaming inference equivalence and state management."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.core import AdaptPNC, PTPNC, StreamingClassifier


@pytest.fixture
def series(rng):
    return np.clip(np.cumsum(rng.normal(0, 0.2, 32)), -1, 1)


class TestEquivalence:
    @pytest.mark.parametrize("cls", [PTPNC, AdaptPNC])
    def test_streaming_matches_batched_forward(self, cls, series):
        """The stateful stream must equal the batched sequence forward."""
        model = cls(3, rng=np.random.default_rng(0))
        stream = StreamingClassifier(model)
        streamed = stream.run(series)
        with no_grad():
            batched = model(series.reshape(1, -1)).data[0]
        assert np.allclose(streamed[-1], batched, atol=1e-12)

    def test_full_trajectory_matches(self, series):
        from repro.autograd import Tensor

        model = PTPNC(2, rng=np.random.default_rng(1))
        stream = StreamingClassifier(model)
        streamed = stream.run(series)
        with no_grad():
            seq = model.blocks[0](Tensor(series.reshape(1, -1, 1)))
            seq = model.blocks[1](seq).data[0] * model.logit_scale
        assert np.allclose(streamed, seq, atol=1e-12)


class TestState:
    def test_push_counts_steps(self, series, rng):
        stream = StreamingClassifier(AdaptPNC(2, rng=rng))
        for sample in series[:5]:
            stream.push(float(sample))
        assert stream.steps_seen == 5

    def test_reset_restores_initial_behaviour(self, series, rng):
        stream = StreamingClassifier(AdaptPNC(2, rng=rng))
        first = stream.run(series)
        stream.reset()
        assert stream.steps_seen == 0
        second = stream.run(series)
        assert np.array_equal(first, second)

    def test_state_carries_between_pushes(self, rng):
        stream = StreamingClassifier(PTPNC(2, rng=rng))
        a = stream.push(0.5)
        b = stream.push(0.5)  # same input, different state
        assert not np.allclose(a, b)

    def test_push_rejects_arrays(self, rng):
        stream = StreamingClassifier(PTPNC(2, rng=rng))
        with pytest.raises(ValueError):
            stream.push(np.array([0.1, 0.2]))

    def test_run_rejects_2d(self, rng):
        stream = StreamingClassifier(PTPNC(2, rng=rng))
        with pytest.raises(ValueError):
            stream.run(np.zeros((2, 5)))


class TestLatency:
    def test_latency_within_bounds(self, series, rng):
        stream = StreamingClassifier(AdaptPNC(2, rng=rng))
        latency = stream.decision_latency(series)
        assert 0 <= latency < series.size

    def test_constant_strong_input_settles_quickly(self, rng):
        model = PTPNC(2, rng=np.random.default_rng(0))
        stream = StreamingClassifier(model)
        series = np.full(64, 0.9)
        latency = stream.decision_latency(series)
        assert latency < 32  # settles within the first half
