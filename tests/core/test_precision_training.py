"""Precision policy through the training/evaluation/caching stack.

The float64 policy is the bit-equal oracle; float32 and mixed must
track it within the dtype tolerances while actually computing in
single precision.  Checkpoints record their precision (and refuse to
resume under a different one), and both the sweep cache and the
checkpoint fingerprint key on the policy so a precision change can
never silently reuse stale artefacts.
"""

import json
from dataclasses import asdict, replace

import numpy as np
import pytest

from repro.core import (
    AdaptPNC,
    DTYPE_LOSS_RTOL,
    ExperimentConfig,
    Trainer,
    TrainingConfig,
    evaluate_under_variation,
)
from repro.data import load_dataset
from repro.parallel import sweep_fingerprint
from repro.telemetry import Run


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("Slope", n_samples=40, seed=0)


def tiny_config(**overrides):
    merged = {"max_epochs": 4, **overrides}
    return replace(TrainingConfig.ci(), **merged)


def make_trainer(precision, seed=7, **overrides):
    model = AdaptPNC(3, rng=np.random.default_rng(seed))
    config = tiny_config(precision=precision, **overrides)
    return Trainer(model, config, variation_aware=True, seed=seed)


def fit(trainer, dataset, **kwargs):
    return trainer.fit(
        dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val, **kwargs
    )


class TestPolicyEquivalence:
    def test_float64_oracle_is_deterministic(self, dataset):
        """Two float64 runs are bit-identical — the oracle contract."""
        a, b = make_trainer("float64"), make_trainer("float64")
        ha, hb = fit(a, dataset), fit(b, dataset)
        assert ha.train_loss == hb.train_loss
        assert ha.val_loss == hb.val_loss
        for (na, pa), (nb, pb) in zip(
            a.model.named_parameters(), b.model.named_parameters()
        ):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)
            assert pa.data.dtype == np.float64

    @pytest.mark.parametrize("precision", ["float32", "mixed"])
    def test_reduced_precision_tracks_oracle(self, dataset, precision):
        oracle = make_trainer("float64")
        reduced = make_trainer(precision)
        h64 = fit(oracle, dataset)
        hr = fit(reduced, dataset)
        # Same stream of variation draws, rounded — first-epoch losses
        # agree to the dtype tolerance.
        rel = abs(hr.train_loss[0] - h64.train_loss[0]) / abs(h64.train_loss[0])
        assert rel <= DTYPE_LOSS_RTOL
        # The model really computed (and remains) in float32.
        for _, p in reduced.model.named_parameters():
            assert p.data.dtype == np.float32

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            tiny_config(precision="float16")

    def test_fit_records_precision_in_manifest(self, dataset, tmp_path):
        trainer = make_trainer("mixed")
        with Run(root=tmp_path, name="precision") as run:
            fit(trainer, dataset, checkpoint_every=0)
            run_dir = run.dir
        manifest = json.loads((run_dir / "run.json").read_text())
        assert manifest["precision"] == "mixed"


class TestCheckpointPrecision:
    @pytest.mark.parametrize("precision", ["float32", "mixed"])
    def test_resume_is_bit_equal(self, dataset, tmp_path, precision):
        uninterrupted = make_trainer(precision)
        expected = fit(uninterrupted, dataset)

        partial = make_trainer(precision, max_epochs=2)
        fit(partial, dataset, checkpoint_dir=tmp_path)

        resumed = make_trainer(precision)
        history = fit(resumed, dataset, checkpoint_dir=tmp_path, resume=True)
        assert history.train_loss == expected.train_loss
        assert history.val_loss == expected.val_loss
        for (_, pa), (_, pb) in zip(
            uninterrupted.model.named_parameters(),
            resumed.model.named_parameters(),
        ):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_resume_refuses_other_precision(self, dataset, tmp_path):
        writer = make_trainer("float32", max_epochs=2)
        fit(writer, dataset, checkpoint_dir=tmp_path)
        reader = make_trainer("float64")
        with pytest.raises(ValueError, match="mismatch"):
            fit(reader, dataset, checkpoint_dir=tmp_path, resume=True)

    def test_checkpoint_fingerprint_keys_on_precision(self):
        a = make_trainer("float64")._checkpoint_fingerprint()
        b = make_trainer("float32")._checkpoint_fingerprint()
        assert a != b
        assert a["config"]["precision"] == "float64"
        assert b["config"]["precision"] == "float32"


class TestSweepCachePrecision:
    def test_sweep_fingerprint_keys_on_precision(self):
        config = ExperimentConfig.smoke()
        recast = replace(
            config, training=replace(config.training, precision="float32")
        )
        a = sweep_fingerprint({"artefact": "table1", "config": asdict(config)})
        b = sweep_fingerprint({"artefact": "table1", "config": asdict(recast)})
        assert a != b  # same config, different dtype -> cache miss


class TestEvaluationPrecision:
    def test_precision_scope_restores_original_arrays(self, dataset):
        model = AdaptPNC(3, rng=np.random.default_rng(0))
        before = [p.data for p in model.parameters()]
        result = evaluate_under_variation(
            model,
            dataset.x_val,
            dataset.y_val,
            mc_samples=3,
            precision="float32",
        )
        assert result.samples.shape == (3,)
        after = [p.data for p in model.parameters()]
        # Restoration is by reference: the pre-evaluation float64
        # arrays themselves come back, bit-exactly.
        assert all(a is b for a, b in zip(before, after))
        assert all(p.data.dtype == np.float64 for p in model.parameters())

    def test_reduced_precision_accuracy_close_to_oracle(self, dataset):
        model = AdaptPNC(3, rng=np.random.default_rng(0))
        r64 = evaluate_under_variation(
            model, dataset.x_val, dataset.y_val, mc_samples=5
        )
        r32 = evaluate_under_variation(
            model, dataset.x_val, dataset.y_val, mc_samples=5, precision="float32"
        )
        # Identical (rounded) draws; a few borderline samples may flip.
        assert abs(r32.mean - r64.mean) <= 0.1
