"""Stacked (deeper than 2-layer) printed temporal networks."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.core import PrintedTemporalClassifier


class TestDeepStacks:
    def test_default_is_two_layers(self, rng):
        model = PrintedTemporalClassifier(3, hidden_size=4, rng=rng)
        assert model.num_layers == 2
        assert len(list(model.blocks)) == 2

    def test_three_layer_stack(self, rng):
        model = PrintedTemporalClassifier(2, hidden_sizes=(5, 3), rng=rng)
        assert model.num_layers == 3
        widths = [(b.in_features, b.out_features) for b in model.blocks]
        assert widths == [(1, 5), (5, 3), (3, 2)]

    def test_forward_shape(self, rng):
        model = PrintedTemporalClassifier(4, hidden_sizes=(6, 5, 4), rng=rng)
        out = model(rng.uniform(-1, 1, (3, 20)))
        assert out.shape == (3, 4)

    def test_deep_model_trains(self, rng):
        from repro.nn import cross_entropy
        from repro.optim import AdamW

        model = PrintedTemporalClassifier(2, hidden_sizes=(4, 3), rng=np.random.default_rng(0))
        x = rng.uniform(-1, 1, (8, 16))
        y = np.array([0, 1] * 4)
        opt = AdamW(model.parameters(), lr=0.05)
        first = None
        for _ in range(10):
            opt.zero_grad()
            loss = cross_entropy(model(x), y)
            first = first if first is not None else loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first

    def test_sampler_reaches_all_blocks(self, rng):
        from repro.circuits import VariationSampler

        model = PrintedTemporalClassifier(2, hidden_sizes=(4, 3), rng=rng)
        s = VariationSampler()
        model.set_sampler(s)
        assert all(b.sampler is s for b in model.blocks)

    def test_device_count_grows_with_depth(self):
        from repro.hw import count_devices

        shallow = PrintedTemporalClassifier(2, hidden_size=4, rng=np.random.default_rng(0))
        deep = PrintedTemporalClassifier(
            2, hidden_sizes=(4, 4), rng=np.random.default_rng(0)
        )
        assert count_devices(deep).total > count_devices(shallow).total

    def test_rejects_conflicting_width_args(self, rng):
        with pytest.raises(ValueError):
            PrintedTemporalClassifier(2, hidden_size=4, hidden_sizes=(4, 3), rng=rng)

    def test_rejects_empty_or_bad_widths(self, rng):
        with pytest.raises(ValueError):
            PrintedTemporalClassifier(2, hidden_sizes=(), rng=rng)
        with pytest.raises(ValueError):
            PrintedTemporalClassifier(2, hidden_sizes=(4, 0), rng=rng)

    def test_streaming_matches_deep_forward(self, rng):
        from repro.core import StreamingClassifier

        model = PrintedTemporalClassifier(2, hidden_sizes=(4, 3), rng=np.random.default_rng(1))
        series = rng.uniform(-1, 1, 24)
        stream = StreamingClassifier(model)
        streamed = stream.run(series)
        with no_grad():
            batched = model(series.reshape(1, -1)).data[0] * 1.0
        assert np.allclose(streamed[-1] / model.logit_scale, batched / model.logit_scale)
