"""Evaluation under variation and top-k selection."""

import numpy as np
import pytest

from repro.circuits import NoVariation
from repro.core import (
    AdaptPNC,
    ElmanClassifier,
    accuracy,
    evaluate_under_variation,
    select_top_k,
)


@pytest.fixture
def model(rng):
    return AdaptPNC(2, rng=rng)


@pytest.fixture
def data(rng):
    return rng.uniform(-1, 1, (12, 16)), rng.integers(0, 2, 12)


class TestAccuracy:
    def test_range(self, model, data):
        acc = accuracy(model, *data)
        assert 0.0 <= acc <= 1.0

    def test_perfect_on_constant_labels(self, model, data):
        x, _ = data
        logits = model(x).data
        y = np.argmax(logits, axis=1)
        assert accuracy(model, x, y) == 1.0


class TestEvaluateUnderVariation:
    def test_restores_original_sampler(self, model, data):
        before = model.sampler
        evaluate_under_variation(model, *data, delta=0.1, mc_samples=3, seed=0)
        assert model.sampler is before

    def test_zero_delta_is_deterministic(self, model, data):
        res = evaluate_under_variation(model, *data, delta=0.0)
        assert res.std == 0.0
        assert len(res.samples) == 1

    def test_mc_samples_recorded(self, model, data):
        res = evaluate_under_variation(model, *data, delta=0.1, mc_samples=5, seed=0)
        assert len(res.samples) == 5
        assert np.isclose(res.mean, res.samples.mean())
        assert np.isclose(res.std, res.samples.std())

    def test_seed_reproducibility(self, model, data):
        a = evaluate_under_variation(model, *data, delta=0.1, mc_samples=4, seed=9)
        b = evaluate_under_variation(model, *data, delta=0.1, mc_samples=4, seed=9)
        assert np.array_equal(a.samples, b.samples)

    def test_hardware_agnostic_model_evaluated_once(self, rng, data):
        elman = ElmanClassifier(2, rng=rng)
        res = evaluate_under_variation(elman, *data, delta=0.1, mc_samples=10)
        assert len(res.samples) == 1
        assert res.std == 0.0

    def test_rejects_negative_mc(self, model, data):
        with pytest.raises(ValueError):
            evaluate_under_variation(model, *data, delta=0.1, mc_samples=-1)

    def test_zero_mc_is_deterministic_fast_path(self, model, data):
        """mc_samples=0 means "no variation": one nominal forward."""
        res = evaluate_under_variation(model, *data, delta=0.1, mc_samples=0)
        assert len(res.samples) == 1
        assert res.std == 0.0
        x, y = data
        assert res.mean == accuracy(model, x, y)

    def test_deterministic_path_skips_variation_context(self, model, data, monkeypatch):
        """The fast path must not re-enter the batched-draws context."""
        from repro.circuits import VariationSampler

        def boom(self, draws):  # pragma: no cover - should never run
            raise AssertionError("variation context entered in deterministic mode")

        monkeypatch.setattr(VariationSampler, "batched", boom)
        monkeypatch.setattr(VariationSampler, "spawn_streams", boom)
        for kwargs in ({"delta": 0.0, "mc_samples": 5}, {"delta": 0.1, "mc_samples": 0}):
            res = evaluate_under_variation(model, *data, **kwargs)
            assert len(res.samples) == 1

    def test_vectorized_matches_sequential_oracle(self, model, data):
        fast = evaluate_under_variation(
            model, *data, delta=0.1, mc_samples=6, seed=3, vectorized=True
        )
        slow = evaluate_under_variation(
            model, *data, delta=0.1, mc_samples=6, seed=3, vectorized=False
        )
        assert np.array_equal(fast.samples, slow.samples)

    def test_restores_sampler_even_on_error(self, model):
        before = model.sampler
        with pytest.raises(Exception):
            evaluate_under_variation(model, np.ones((2, 3, 4, 5)), np.zeros(2), delta=0.1)
        assert model.sampler is before


class TestSelectTopK:
    def test_returns_best_indices_descending(self):
        assert select_top_k([0.1, 0.9, 0.5], k=2) == [1, 2]

    def test_k_larger_than_population(self):
        assert select_top_k([0.3, 0.1], k=5) == [0, 1]

    def test_paper_default_top3(self):
        scores = [0.2, 0.8, 0.5, 0.9, 0.1]
        assert select_top_k(scores) == [3, 1, 2]

    def test_rejects_zero_k(self):
        with pytest.raises(ValueError):
            select_top_k([0.5], k=0)
