"""Multivariate (multi-sensor) inputs — the Fig. 4 multi-input pTPB."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.core import PrintedTemporalClassifier, StreamingClassifier


@pytest.fixture
def model(rng):
    return PrintedTemporalClassifier(2, hidden_size=4, in_channels=3, rng=rng)


class TestMultivariateForward:
    def test_forward_shape(self, model, rng):
        out = model(rng.uniform(-1, 1, (5, 16, 3)))
        assert out.shape == (5, 2)

    def test_first_block_width(self, model):
        assert model.blocks[0].in_features == 3

    def test_rejects_wrong_channel_count(self, model, rng):
        with pytest.raises(ValueError):
            model(rng.uniform(-1, 1, (5, 16, 2)))

    def test_rejects_2d_for_multichannel(self, model, rng):
        with pytest.raises(ValueError):
            model(rng.uniform(-1, 1, (5, 16)))

    def test_univariate_still_accepts_2d(self, rng):
        uni = PrintedTemporalClassifier(2, hidden_size=3, rng=rng)
        assert uni(rng.uniform(-1, 1, (4, 10))).shape == (4, 2)

    def test_rejects_zero_channels(self, rng):
        with pytest.raises(ValueError):
            PrintedTemporalClassifier(2, hidden_size=3, in_channels=0, rng=rng)

    def test_channels_matter(self, model, rng):
        """Swapping channels must change the output (channels are not
        interchangeable once weights differ)."""
        x = rng.uniform(-1, 1, (1, 16, 3))
        with no_grad():
            a = model(x).data
            b = model(x[:, :, ::-1].copy()).data
        assert not np.allclose(a, b)

    def test_trains(self, rng):
        from repro.nn import cross_entropy
        from repro.optim import AdamW

        model = PrintedTemporalClassifier(
            2, hidden_size=4, in_channels=2, rng=np.random.default_rng(0)
        )
        x = rng.uniform(-1, 1, (8, 12, 2))
        y = np.array([0, 1] * 4)
        opt = AdamW(model.parameters(), lr=0.05)
        first = None
        for _ in range(8):
            opt.zero_grad()
            loss = cross_entropy(model(x), y)
            first = first if first is not None else loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first


class TestMultivariateStreaming:
    def test_push_vector_sample(self, model, rng):
        stream = StreamingClassifier(model)
        logits = stream.push(rng.uniform(-1, 1, 3))
        assert logits.shape == (2,)

    def test_push_rejects_wrong_width(self, model, rng):
        stream = StreamingClassifier(model)
        with pytest.raises(ValueError):
            stream.push(rng.uniform(-1, 1, 2))

    def test_stream_matches_batch(self, model, rng):
        series = rng.uniform(-1, 1, (14, 3))
        stream = StreamingClassifier(model)
        for row in series:
            logits = stream.push(row)
        with no_grad():
            expected = model(series.reshape(1, 14, 3)).data[0]
        assert np.allclose(logits, expected, atol=1e-12)


class TestMultivariateCompile:
    def test_compiled_netlist_matches(self, rng):
        from repro.compile import compile_model, simulate_series

        model = PrintedTemporalClassifier(
            2, hidden_size=3, in_channels=2, rng=np.random.default_rng(1)
        )
        series = rng.uniform(-1, 1, (12, 2))
        with no_grad():
            expected = model(series.reshape(1, 12, 2)).data[0] / model.logit_scale
        compiled = compile_model(model)
        assert len(compiled.input_nodes) == 2
        out = simulate_series(compiled, series)
        assert np.allclose(out[-1], expected, atol=1e-6)

    def test_simulate_rejects_wrong_width(self, rng):
        from repro.compile import compile_model, simulate_series

        model = PrintedTemporalClassifier(
            2, hidden_size=3, in_channels=2, rng=np.random.default_rng(1)
        )
        compiled = compile_model(model)
        with pytest.raises(ValueError):
            simulate_series(compiled, rng.uniform(-1, 1, (12, 3)))
