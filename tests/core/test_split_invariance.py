"""Streaming conformance suite: split invariance of every stateful path.

A stream processed in arbitrary chunks — carrying the filter state
``v_{k-1}`` across chunk boundaries — must be **bit-equal** to the
one-shot forward.  This is the correctness contract that lets the
serving tier chop incoming sensor streams wherever the transport does,
and that online evaluation (``evaluate_streaming``) builds on.

Covered surfaces (all hypothesis-driven over random chunkings,
including single-sample chunks and the degenerate one-giant-chunk
partition):

* the fused ``filter_scan`` kernel with explicit ``v0`` threading;
* ``forward_chunk`` on both filter-bank orders (FO and SO-LF);
* :class:`repro.core.StreamingSession` over compiled plans — FO vs SO
  models, every precision policy, multivariate channel sets;
* the :class:`repro.core.StreamingClassifier` façade (run / push).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, filter_scan, no_grad
from repro.autograd.precision import PRECISION_POLICIES
from repro.circuits import (
    FirstOrderLearnableFilter,
    SecondOrderLearnableFilter,
    ideal_sampler,
)
from repro.core import (
    AdaptPNC,
    PTPNC,
    PrintedTemporalClassifier,
    StreamingClassifier,
    StreamingSession,
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


@st.composite
def chunked_stream(draw, min_steps=4, max_steps=48):
    """A (seed, steps, sorted interior cut points) triple.

    ``min_size=0`` keeps the degenerate no-cut partition (one giant
    chunk) in the strategy — stateful one-call processing must also
    equal the one-shot path.
    """
    steps = draw(st.integers(min_value=min_steps, max_value=max_steps))
    cuts = draw(
        st.lists(
            st.integers(min_value=1, max_value=steps - 1),
            min_size=0,
            max_size=5,
            unique=True,
        )
    )
    seed = draw(seeds)
    return seed, steps, sorted(cuts)


def _bounds(steps, cuts):
    edges = [0] + list(cuts) + [steps]
    return list(zip(edges[:-1], edges[1:]))


def _series(seed, steps):
    return np.clip(
        np.cumsum(np.random.default_rng(seed).normal(0, 0.2, steps)), -1, 1
    )


# -- kernel level -----------------------------------------------------------


@given(chunked_stream())
@settings(max_examples=30, deadline=None)
def test_filter_scan_chunks_bit_equal_one_shot(case):
    """Chunked scans carrying ``v0 = out[..., -1, :]`` across the cut
    reproduce the one-shot scan bit-for-bit."""
    seed, steps, cuts = case
    rng = np.random.default_rng(seed)
    batch, n = 2, 3
    x = rng.uniform(-1, 1, (batch, steps, n))
    a = rng.uniform(0.5, 0.999, n)
    b = 1.0 - a
    v0 = rng.uniform(-0.1, 0.1, (batch, n))
    with no_grad():
        full = filter_scan(Tensor(x), Tensor(a), Tensor(b), Tensor(v0)).data
        state = v0
        pieces = []
        for lo, hi in _bounds(steps, cuts):
            out = filter_scan(
                Tensor(x[:, lo:hi, :]), Tensor(a), Tensor(b), Tensor(state)
            ).data
            pieces.append(out)
            state = out[..., -1, :]
    assert np.array_equal(np.concatenate(pieces, axis=1), full)


# -- filter-bank level ------------------------------------------------------


@pytest.mark.parametrize(
    "bank_cls", [FirstOrderLearnableFilter, SecondOrderLearnableFilter]
)
@given(case=chunked_stream(max_steps=32))
@settings(max_examples=15, deadline=None)
def test_forward_chunk_chains_bit_equal_one_shot(bank_cls, case):
    """``forward_chunk`` threading per-stage state across any partition
    equals the bank's one-shot ``forward`` exactly (FO and SO)."""
    seed, steps, cuts = case
    rng = np.random.default_rng(seed)
    n = 3
    bank = bank_cls(n, sampler=ideal_sampler(), rng=np.random.default_rng(11))
    x = rng.uniform(-1, 1, (2, steps, n))
    with no_grad():
        full = bank(Tensor(x)).data
        state = None
        pieces = []
        for lo, hi in _bounds(steps, cuts):
            out, state = bank.forward_chunk(Tensor(x[:, lo:hi, :]), state)
            pieces.append(out.data)
    assert np.array_equal(np.concatenate(pieces, axis=1), full)


def test_forward_chunk_rejects_batched_draws():
    bank = SecondOrderLearnableFilter(2, rng=np.random.default_rng(0))
    x = Tensor(np.zeros((1, 4, 2)))
    with bank.sampler.batched(3):
        with pytest.raises(ValueError, match="batched-draws"):
            bank.forward_chunk(x)


def test_forward_chunk_rejects_wrong_state_arity():
    bank = SecondOrderLearnableFilter(2, sampler=ideal_sampler(), rng=np.random.default_rng(0))
    x = Tensor(np.zeros((1, 4, 2)))
    with pytest.raises(ValueError, match="stage"):
        bank.forward_chunk(x, (np.zeros((1, 2)),))


# -- session level ----------------------------------------------------------

_FO_MODEL = PTPNC(2, rng=np.random.default_rng(7))
_SO_MODEL = AdaptPNC(3, rng=np.random.default_rng(7))
_MV_MODEL = PrintedTemporalClassifier(
    3, in_channels=3, rng=np.random.default_rng(9)
)


@pytest.mark.parametrize("model", [_FO_MODEL, _SO_MODEL], ids=["FO", "SO"])
@given(case=chunked_stream(max_steps=40))
@settings(max_examples=15, deadline=None)
def test_streaming_session_chunked_bit_equal_one_shot(model, case):
    """Session state carry is bit-equal to one-shot for any partition,
    on first-order (pTPNC) and second-order (ADAPT-pNC) filter models."""
    seed, steps, cuts = case
    series = _series(seed, steps)
    one_shot = StreamingSession(model).process(series)
    chunked = StreamingSession(model)
    pieces = [chunked.process(series[lo:hi]) for lo, hi in _bounds(steps, cuts)]
    assert np.array_equal(np.concatenate(pieces, axis=0), one_shot)
    assert chunked.steps_seen == steps
    assert chunked.predict() == int(np.argmax(one_shot[-1]))


@pytest.mark.parametrize("policy", PRECISION_POLICIES)
@given(seed=seeds)
@settings(max_examples=10, deadline=None)
def test_streaming_session_split_invariant_under_every_precision(policy, seed):
    """Chunking invariance is a structural property — it holds in every
    precision policy, not just the float64 oracle."""
    series = _series(seed, 24)
    one_shot = StreamingSession(_SO_MODEL, precision=policy).process(series)
    chunked = StreamingSession(_SO_MODEL, precision=policy)
    pieces = [
        chunked.process(series[lo:hi]) for lo, hi in _bounds(24, [5, 6, 17])
    ]
    assert np.array_equal(np.concatenate(pieces, axis=0), one_shot)


@given(case=chunked_stream(max_steps=32))
@settings(max_examples=10, deadline=None)
def test_streaming_session_multivariate_bit_equal(case):
    """Multivariate channel sets stream chunk-invariantly too."""
    seed, steps, cuts = case
    x = np.random.default_rng(seed).uniform(-1, 1, (steps, 3))
    one_shot = StreamingSession(_MV_MODEL).process(x)
    chunked = StreamingSession(_MV_MODEL)
    pieces = [chunked.process(x[lo:hi]) for lo, hi in _bounds(steps, cuts)]
    assert np.array_equal(np.concatenate(pieces, axis=0), one_shot)


@given(seed=seeds)
@settings(max_examples=10, deadline=None)
def test_streaming_session_single_sample_chunks_bit_equal(seed):
    """The extreme partition — every chunk one sample — is bit-equal."""
    series = _series(seed, 16)
    one_shot = StreamingSession(_SO_MODEL).process(series)
    chunked = StreamingSession(_SO_MODEL)
    pieces = [chunked.process(series[k : k + 1]) for k in range(16)]
    assert np.array_equal(np.concatenate(pieces, axis=0), one_shot)


# -- façade level -----------------------------------------------------------


@given(chunked_stream(max_steps=40))
@settings(max_examples=20, deadline=None)
def test_streaming_classifier_chunked_runs_bit_equal(case):
    """Consecutive ``run(chunk)`` calls (no reset) concatenate to the
    one-shot ``run(series)`` trajectory exactly."""
    seed, steps, cuts = case
    series = _series(seed, steps)
    one_shot = StreamingClassifier(_FO_MODEL).run(series)
    chunked = StreamingClassifier(_FO_MODEL)
    pieces = [chunked.run(series[lo:hi]) for lo, hi in _bounds(steps, cuts)]
    assert np.array_equal(np.concatenate(pieces, axis=0), one_shot)
    assert chunked.steps_seen == steps


@given(seeds)
@settings(max_examples=10, deadline=None)
def test_streaming_final_state_matches_push_by_push(seed):
    """run() is just push() in a loop: sample-level split invariance."""
    series = _series(seed, 12)
    trajectory = StreamingClassifier(_FO_MODEL).run(series)
    pushed = StreamingClassifier(_FO_MODEL)
    last = [pushed.push(float(s)) for s in series][-1]
    assert np.array_equal(last, trajectory[-1])
