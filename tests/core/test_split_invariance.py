"""Property-based split invariance of the stateful temporal paths.

A stream processed in arbitrary chunks — carrying the filter state
``v_{k-1}`` across chunk boundaries — must be **bit-equal** to the
one-shot forward.  This is the correctness contract that lets the
serving tier chop incoming sensor streams wherever the transport does,
and that incremental/online evaluation (ROADMAP item 3) builds on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, filter_scan, no_grad
from repro.core import PTPNC, StreamingClassifier

seeds = st.integers(min_value=0, max_value=2**31 - 1)


@st.composite
def chunked_stream(draw, min_steps=4, max_steps=48):
    """A (seed, steps, sorted interior cut points) triple."""
    steps = draw(st.integers(min_value=min_steps, max_value=max_steps))
    cuts = draw(
        st.lists(
            st.integers(min_value=1, max_value=steps - 1),
            min_size=1,
            max_size=5,
            unique=True,
        )
    )
    seed = draw(seeds)
    return seed, steps, sorted(cuts)


def _bounds(steps, cuts):
    edges = [0] + list(cuts) + [steps]
    return list(zip(edges[:-1], edges[1:]))


@given(chunked_stream())
@settings(max_examples=30, deadline=None)
def test_filter_scan_chunks_bit_equal_one_shot(case):
    """Chunked scans carrying ``v0 = out[..., -1, :]`` across the cut
    reproduce the one-shot scan bit-for-bit."""
    seed, steps, cuts = case
    rng = np.random.default_rng(seed)
    batch, n = 2, 3
    x = rng.uniform(-1, 1, (batch, steps, n))
    a = rng.uniform(0.5, 0.999, n)
    b = 1.0 - a
    v0 = rng.uniform(-0.1, 0.1, (batch, n))
    with no_grad():
        full = filter_scan(Tensor(x), Tensor(a), Tensor(b), Tensor(v0)).data
        state = v0
        pieces = []
        for lo, hi in _bounds(steps, cuts):
            out = filter_scan(
                Tensor(x[:, lo:hi, :]), Tensor(a), Tensor(b), Tensor(state)
            ).data
            pieces.append(out)
            state = out[..., -1, :]
    assert np.array_equal(np.concatenate(pieces, axis=1), full)


_MODEL = PTPNC(2, rng=np.random.default_rng(7))


@given(chunked_stream(max_steps=40))
@settings(max_examples=20, deadline=None)
def test_streaming_classifier_chunked_runs_bit_equal(case):
    """Consecutive ``run(chunk)`` calls (no reset) concatenate to the
    one-shot ``run(series)`` trajectory exactly."""
    seed, steps, cuts = case
    series = np.clip(
        np.cumsum(np.random.default_rng(seed).normal(0, 0.2, steps)), -1, 1
    )
    one_shot = StreamingClassifier(_MODEL).run(series)
    chunked = StreamingClassifier(_MODEL)
    pieces = [chunked.run(series[lo:hi]) for lo, hi in _bounds(steps, cuts)]
    assert np.array_equal(np.concatenate(pieces, axis=0), one_shot)
    assert chunked.steps_seen == steps


@given(seeds)
@settings(max_examples=10, deadline=None)
def test_streaming_final_state_matches_push_by_push(seed):
    """run() is just push() in a loop: sample-level split invariance."""
    series = np.clip(
        np.cumsum(np.random.default_rng(seed).normal(0, 0.2, 12)), -1, 1
    )
    trajectory = StreamingClassifier(_MODEL).run(series)
    pushed = StreamingClassifier(_MODEL)
    last = [pushed.push(float(s)) for s in series][-1]
    assert np.array_equal(last, trajectory[-1])
