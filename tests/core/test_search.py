"""Architecture search (the paper's future-work direction)."""

import numpy as np
import pytest

from repro.core import architecture_space, search_architecture
from repro.data import load_dataset


class TestSpace:
    def test_dimensions(self):
        space = architecture_space()
        assert set(space.names()) == {"hidden_size", "filter_order", "logit_scale"}

    def test_samples_valid(self, rng):
        space = architecture_space(hidden_sizes=(3, 5), filter_orders=(1, 2))
        for _ in range(20):
            cfg = space.sample(rng)
            assert cfg["hidden_size"] in (3, 5)
            assert cfg["filter_order"] in (1, 2)
            assert 2.0 <= cfg["logit_scale"] <= 8.0


class TestSearch:
    @pytest.fixture(scope="class")
    def results(self):
        return search_architecture(
            "Slope",
            n_trials=3,
            budgets=(1,),
            base_epochs=6,
            eval_mc=2,
            seed=0,
        )

    def test_returns_ranked_candidates(self, results):
        scores = [r.robust_accuracy for r in results]
        assert scores == sorted(scores, reverse=True)
        assert all(0.0 <= s <= 1.0 for s in scores)

    def test_candidate_fields_valid(self, results):
        for r in results:
            assert r.hidden_size >= 3
            assert r.filter_order in (1, 2)
            assert r.budget == 1

    def test_accepts_preloaded_dataset(self):
        ds = load_dataset("Slope", n_samples=50, seed=0)
        results = search_architecture(
            ds, n_trials=2, budgets=(1,), base_epochs=4, eval_mc=2, seed=1
        )
        assert len(results) == 2

    def test_halving_prunes(self):
        results = search_architecture(
            "Slope", n_trials=4, budgets=(1, 2), base_epochs=4, eval_mc=2, seed=2
        )
        assert len(results) == 2  # 4 -> 2 survivors
        assert all(r.budget == 2 for r in results)
