"""Evaluation under arbitrary variation distributions."""

import numpy as np
import pytest

from repro.circuits import GMMVariation, NoVariation, UniformVariation
from repro.core import AdaptPNC, ElmanClassifier, evaluate_under_model


@pytest.fixture
def model(rng):
    return AdaptPNC(2, rng=rng)


@pytest.fixture
def data(rng):
    return rng.uniform(-1, 1, (10, 16)), rng.integers(0, 2, 10)


class TestEvaluateUnderModel:
    def test_no_variation_matches_clean_accuracy(self, model, data):
        from repro.core import accuracy

        res = evaluate_under_model(model, *data, NoVariation(), mc_samples=3)
        assert np.isclose(res.mean, accuracy(model, *data))
        assert res.std == 0.0

    def test_gmm_model_accepted(self, model, data):
        res = evaluate_under_model(model, *data, GMMVariation(), mc_samples=4, seed=0)
        assert len(res.samples) == 4
        assert 0.0 <= res.mean <= 1.0

    def test_restores_sampler(self, model, data):
        before = model.sampler
        evaluate_under_model(model, *data, UniformVariation(0.1), mc_samples=2)
        assert model.sampler is before

    def test_matches_evaluate_under_variation(self, model, data):
        from repro.core import evaluate_under_variation

        a = evaluate_under_model(model, *data, UniformVariation(0.1), mc_samples=4, seed=7)
        b = evaluate_under_variation(model, *data, delta=0.1, mc_samples=4, seed=7)
        assert np.array_equal(a.samples, b.samples)

    def test_hardware_agnostic_single_shot(self, rng, data):
        res = evaluate_under_model(
            ElmanClassifier(2, rng=rng), *data, UniformVariation(0.1), mc_samples=5
        )
        assert len(res.samples) == 1

    def test_rejects_negative_samples(self, model, data):
        with pytest.raises(ValueError):
            evaluate_under_model(model, *data, UniformVariation(0.1), mc_samples=-2)

    def test_zero_samples_is_deterministic(self, model, data):
        from repro.core import accuracy

        res = evaluate_under_model(model, *data, UniformVariation(0.1), mc_samples=0)
        assert len(res.samples) == 1
        assert res.std == 0.0
        assert res.mean == accuracy(model, *data)

    def test_no_variation_skips_mc_context(self, model, data, monkeypatch):
        from repro.circuits import VariationSampler

        def boom(self, draws):  # pragma: no cover - should never run
            raise AssertionError("variation context entered for NoVariation")

        monkeypatch.setattr(VariationSampler, "batched", boom)
        res = evaluate_under_model(model, *data, NoVariation(), mc_samples=8)
        assert len(res.samples) == 1

    def test_vectorized_matches_sequential_oracle(self, model, data):
        fast = evaluate_under_model(
            model, *data, GMMVariation(), mc_samples=5, seed=11, vectorized=True
        )
        slow = evaluate_under_model(
            model, *data, GMMVariation(), mc_samples=5, seed=11, vectorized=False
        )
        assert np.array_equal(fast.samples, slow.samples)


class TestBackendRestoredOnException:
    """Regression: backend/sampler overrides must unwind on *any* exit.

    ``_scan_backend`` used to install the override before entering its
    try block, so a ``set_scan_backend`` that mutated state and then
    raised — or an evaluation body that raised — could leak a
    half-switched backend into every subsequent call on the model.
    """

    def test_scan_backend_restored_after_forward_raises(self, model, data):
        original = model.scan_backend

        x_bad = data[0].reshape(-1)  # 1-D: the forward rejects it
        from repro.core import evaluate_under_variation

        with pytest.raises(ValueError):
            evaluate_under_variation(
                model, x_bad, data[1], delta=0.1, mc_samples=2, scan_backend="unfused"
            )
        assert model.scan_backend == original

    def test_scan_backend_restored_when_install_raises(self, model, data):
        """A validating setter that raises mid-switch must be unwound."""
        original = model.scan_backend
        real_setter = type(model).set_scan_backend

        calls = []

        def flaky_setter(self, backend):
            calls.append(backend)
            if len(calls) == 1:
                # Simulate a setter that mutated state before rejecting
                # its argument (e.g. per-layer switch failing halfway).
                real_setter(self, backend)
                raise RuntimeError("backend rejected after partial switch")
            return real_setter(self, backend)

        from repro.core import evaluate_under_variation

        type(model).set_scan_backend = flaky_setter
        try:
            with pytest.raises(RuntimeError, match="partial switch"):
                evaluate_under_variation(
                    model,
                    *data,
                    delta=0.1,
                    mc_samples=2,
                    scan_backend="unfused",
                )
        finally:
            type(model).set_scan_backend = real_setter
        # The finally-restore ran: the original backend is back even
        # though installing the override blew up.
        assert calls == ["unfused", original]
        assert model.scan_backend == original

    def test_sampler_restored_after_forward_raises(self, model, data):
        before = model.sampler
        x_bad = np.full(10, 0.5)  # 1-D: the forward rejects it
        with pytest.raises(ValueError):
            evaluate_under_model(
                model, x_bad, data[1], UniformVariation(0.1), mc_samples=2
            )
        assert model.sampler is before

    def test_scan_backend_restored_on_success(self, model, data):
        from repro.core import evaluate_under_variation

        original = model.scan_backend
        evaluate_under_variation(
            model, *data, delta=0.1, mc_samples=2, scan_backend="unfused"
        )
        assert model.scan_backend == original
