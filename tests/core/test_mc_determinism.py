"""Training-trajectory determinism across Monte-Carlo backends.

Same seed ⇒ the batched engine and the sequential oracle sample
identical ε/μ/V₀ values and follow (numerically) the same optimisation
trajectory; different seeds ⇒ statistically distinct trajectories.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import AdaptPNC, PTPNC, Trainer, TrainingConfig

#: Losses differ only in floating-point accumulation order between the
#: two backends; over a handful of optimisation steps the divergence
#: stays at machine-epsilon scale (measured ~2e-16 per epoch).
TRAJECTORY_ATOL = 1e-9

MODELS = {"ptpnc": PTPNC, "adapt": AdaptPNC}


@pytest.fixture
def data(rng):
    x = rng.uniform(-1, 1, (12, 16))
    y = rng.integers(0, 3, 12)
    return x, y


def _fit(model_cls, backend: str, seed: int, data, epochs: int = 5):
    x, y = data
    model = model_cls(3, rng=np.random.default_rng(seed))
    config = replace(
        TrainingConfig.ci(), max_epochs=epochs, mc_samples=2, mc_backend=backend
    )
    trainer = Trainer(model, config, variation_aware=True, seed=seed)
    history = trainer.fit(x, y, x, y)
    return np.asarray(history.train_loss)


class TestTrajectoryDeterminism:
    @pytest.mark.parametrize("model_cls", MODELS.values(), ids=MODELS)
    def test_same_seed_same_backend_identical(self, model_cls, data):
        a = _fit(model_cls, "batched", seed=0, data=data)
        b = _fit(model_cls, "batched", seed=0, data=data)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("model_cls", MODELS.values(), ids=MODELS)
    def test_backends_follow_same_trajectory(self, model_cls, data):
        batched = _fit(model_cls, "batched", seed=0, data=data)
        sequential = _fit(model_cls, "sequential", seed=0, data=data)
        assert batched.shape == sequential.shape
        np.testing.assert_allclose(batched, sequential, atol=TRAJECTORY_ATOL, rtol=0)

    def test_different_seeds_distinct_trajectories(self, data):
        a = _fit(AdaptPNC, "batched", seed=0, data=data)
        b = _fit(AdaptPNC, "batched", seed=1, data=data)
        assert not np.allclose(a, b, atol=TRAJECTORY_ATOL)

    def test_sequential_oracle_reproducible(self, data):
        a = _fit(PTPNC, "sequential", seed=4, data=data)
        b = _fit(PTPNC, "sequential", seed=4, data=data)
        np.testing.assert_array_equal(a, b)
