"""Printed temporal processing block."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.circuits import UniformVariation, VariationSampler, ideal_sampler
from repro.core import PrintedTemporalProcessingBlock


class TestForward:
    @pytest.mark.parametrize("order", [1, 2])
    def test_output_shape(self, order, rng):
        tpb = PrintedTemporalProcessingBlock(2, 5, filter_order=order, rng=rng)
        out = tpb(Tensor(rng.uniform(-1, 1, (3, 12, 2))))
        assert out.shape == (3, 12, 5)

    def test_rejects_wrong_channels(self, rng):
        tpb = PrintedTemporalProcessingBlock(2, 5, rng=rng)
        with pytest.raises(ValueError):
            tpb(Tensor(np.ones((3, 12, 4))))

    def test_rejects_2d(self, rng):
        tpb = PrintedTemporalProcessingBlock(2, 5, rng=rng)
        with pytest.raises(ValueError):
            tpb(Tensor(np.ones((3, 12))))

    def test_rejects_bad_order(self, rng):
        with pytest.raises(ValueError):
            PrintedTemporalProcessingBlock(2, 5, filter_order=3, rng=rng)

    def test_output_bounded_by_ptanh(self, rng):
        tpb = PrintedTemporalProcessingBlock(1, 3, rng=rng)
        out = tpb(Tensor(rng.uniform(-1, 1, (2, 30, 1)))).data
        bound = np.abs(tpb.activation.eta1.data) + np.abs(tpb.activation.eta2.data)
        assert np.all(np.abs(out) <= bound + 1e-9)

    def test_deterministic_with_ideal_sampler(self, rng):
        tpb = PrintedTemporalProcessingBlock(1, 3, sampler=ideal_sampler(), rng=rng)
        x = Tensor(rng.uniform(-1, 1, (2, 10, 1)))
        assert np.array_equal(tpb(x).data, tpb(x).data)


class TestSamplerPlumbing:
    def test_set_sampler_reaches_every_subcircuit(self, rng):
        tpb = PrintedTemporalProcessingBlock(2, 3, rng=rng)
        s = VariationSampler(model=UniformVariation(0.1))
        tpb.set_sampler(s)
        assert tpb.filters.sampler is s
        assert tpb.crossbar.sampler is s
        assert tpb.activation.sampler is s
        assert tpb.sampler is s

    def test_variation_changes_forward(self, rng):
        tpb = PrintedTemporalProcessingBlock(1, 3, rng=rng)
        tpb.set_sampler(
            VariationSampler(model=UniformVariation(0.1), rng=np.random.default_rng(0))
        )
        x = Tensor(rng.uniform(-1, 1, (2, 10, 1)))
        assert not np.allclose(tpb(x).data, tpb(x).data)


class TestTraining:
    def test_gradients_reach_filters_crossbar_and_activation(self, rng):
        tpb = PrintedTemporalProcessingBlock(2, 3, filter_order=2, rng=rng)
        tpb(Tensor(rng.uniform(-1, 1, (2, 8, 2)))).sum().backward()
        grads = {name: p.grad for name, p in tpb.named_parameters()}
        assert all(g is not None for g in grads.values())
        assert any("log_r" in name for name in grads)
        assert any("theta" in name for name in grads)
        assert any("eta" in name for name in grads)

    def test_parameter_count_second_order_exceeds_first(self, rng):
        first = PrintedTemporalProcessingBlock(2, 3, filter_order=1, rng=np.random.default_rng(0))
        second = PrintedTemporalProcessingBlock(2, 3, filter_order=2, rng=np.random.default_rng(0))
        assert second.num_parameters() > first.num_parameters()
