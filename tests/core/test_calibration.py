"""Post-fabrication bias trimming."""

import numpy as np
import pytest

from repro.core import PTPNC, Trainer, TrainingConfig, calibrate_instance, calibration_study
from repro.data import load_dataset


@pytest.fixture(scope="module")
def trained():
    ds = load_dataset("CBF", n_samples=90, seed=0)
    model = PTPNC(3, rng=np.random.default_rng(0))
    from dataclasses import replace

    Trainer(model, replace(TrainingConfig.ci(), max_epochs=40), seed=0).fit(
        ds.x_train, ds.y_train, ds.x_val, ds.y_val
    )
    return model, ds


class TestCalibrateInstance:
    def test_returns_before_after(self, trained):
        model, ds = trained
        result = calibrate_instance(
            model, ds.x_val, ds.y_val, ds.x_test, ds.y_test,
            instance_seed=3, delta=0.15, epochs=10,
        )
        assert 0.0 <= result.accuracy_before <= 1.0
        assert 0.0 <= result.accuracy_after <= 1.0
        assert np.isclose(result.gain, result.accuracy_after - result.accuracy_before)

    def test_design_parameters_restored(self, trained):
        model, ds = trained
        before = model.state_dict()
        calibrate_instance(
            model, ds.x_val, ds.y_val, ds.x_test, ds.y_test, epochs=5
        )
        after = model.state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key]), key

    def test_sampler_restored(self, trained):
        model, ds = trained
        sampler_before = model.sampler
        calibrate_instance(model, ds.x_val, ds.y_val, ds.x_test, ds.y_test, epochs=3)
        assert model.sampler is sampler_before

    def test_deterministic_per_instance(self, trained):
        model, ds = trained
        a = calibrate_instance(
            model, ds.x_val, ds.y_val, ds.x_test, ds.y_test, instance_seed=7, epochs=8
        )
        b = calibrate_instance(
            model, ds.x_val, ds.y_val, ds.x_test, ds.y_test, instance_seed=7, epochs=8
        )
        assert a.accuracy_before == b.accuracy_before
        assert a.accuracy_after == b.accuracy_after

    def test_rejects_bad_epochs(self, trained):
        model, ds = trained
        with pytest.raises(ValueError):
            calibrate_instance(model, ds.x_val, ds.y_val, ds.x_test, ds.y_test, epochs=0)


class TestCalibrationStudy:
    def test_mean_gain_nonnegative_on_degraded_instances(self, trained):
        """Trimming should help (or at least not hurt) on average when
        variation has degraded the instances."""
        model, ds = trained
        results = calibration_study(
            model, ds.x_val, ds.y_val, ds.x_test, ds.y_test,
            instances=3, delta=0.15, epochs=25,
        )
        assert len(results) == 3
        mean_gain = float(np.mean([r.gain for r in results]))
        assert mean_gain > -0.05

    def test_rejects_zero_instances(self, trained):
        model, ds = trained
        with pytest.raises(ValueError):
            calibration_study(
                model, ds.x_val, ds.y_val, ds.x_test, ds.y_test, instances=0
            )
