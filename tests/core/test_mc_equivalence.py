"""Seeded batched-vs-sequential Monte-Carlo backend equivalence.

The vectorized MC engine must be a pure performance optimisation: both
backends derive one child random stream per draw from the same parent
generator, so ε/μ/V₀ draws are bit-identical and losses, gradients and
accuracy samples agree to floating-point accumulation error (the
benchmark's ``EQUIVALENCE_ATOL``).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import (
    AdaptPNC,
    ElmanClassifier,
    PTPNC,
    Trainer,
    TrainingConfig,
    evaluate_under_variation,
    mc_cross_entropy,
)
from repro.core.mcbench import EQUIVALENCE_ATOL

PRINTED_MODELS = {"ptpnc": PTPNC, "adapt": AdaptPNC}


@pytest.fixture
def data(rng):
    return rng.uniform(-1, 1, (10, 16)), rng.integers(0, 3, 10)


def _make_trainer(model_cls, backend: str, seed: int = 0, draws: int = 3) -> Trainer:
    model = model_cls(3, rng=np.random.default_rng(seed))
    config = replace(TrainingConfig.ci(), mc_samples=draws, mc_backend=backend)
    return Trainer(model, config, variation_aware=True, seed=seed)


class TestLossEquivalence:
    @pytest.mark.parametrize("model_cls", PRINTED_MODELS.values(), ids=PRINTED_MODELS)
    def test_losses_agree_under_shared_seed(self, model_cls, data):
        x, y = data
        losses = {
            backend: float(_make_trainer(model_cls, backend)._loss(x, y).item())
            for backend in ("batched", "sequential")
        }
        assert abs(losses["batched"] - losses["sequential"]) <= EQUIVALENCE_ATOL

    @pytest.mark.parametrize("model_cls", PRINTED_MODELS.values(), ids=PRINTED_MODELS)
    def test_parameter_gradients_agree(self, model_cls, data):
        """Backward through both objectives yields the same gradients."""
        x, y = data
        grads = {}
        for backend in ("batched", "sequential"):
            trainer = _make_trainer(model_cls, backend)
            trainer.model.zero_grad()
            trainer._loss(x, y).backward()
            grads[backend] = {
                name: p.grad for name, p in trainer.model.named_parameters()
            }
        assert grads["batched"].keys() == grads["sequential"].keys()
        for name, g_batched in grads["batched"].items():
            assert g_batched is not None and grads["sequential"][name] is not None
            np.testing.assert_allclose(
                g_batched, grads["sequential"][name], atol=1e-10, rtol=1e-8,
                err_msg=f"gradient mismatch for {name}",
            )

    def test_elman_reference_backend_independent(self, data):
        """Hardware-agnostic Elman takes the deterministic path: the
        backend flag must not change its objective at all."""
        x, y = data
        losses = {}
        for backend in ("batched", "sequential"):
            model = ElmanClassifier(3, rng=np.random.default_rng(0))
            config = replace(TrainingConfig.ci(), mc_backend=backend)
            losses[backend] = float(Trainer(model, config)._loss(x, y).item())
        assert losses["batched"] == losses["sequential"]

    def test_mc_cross_entropy_equals_per_draw_average(self, rng):
        """The flattened (draws·batch) CE equals the mean of per-draw CEs."""
        from repro.autograd import Tensor
        from repro.nn import cross_entropy

        logits = rng.normal(size=(4, 6, 3))
        labels = rng.integers(0, 3, 6)
        stacked = float(mc_cross_entropy(Tensor(logits), labels).item())
        per_draw = np.mean(
            [float(cross_entropy(Tensor(logits[d]), labels).item()) for d in range(4)]
        )
        assert abs(stacked - per_draw) <= EQUIVALENCE_ATOL

    def test_mc_cross_entropy_rejects_2d(self, rng):
        from repro.autograd import Tensor

        with pytest.raises(ValueError):
            mc_cross_entropy(Tensor(rng.normal(size=(6, 3))), rng.integers(0, 3, 6))


class TestAccuracyEquivalence:
    @pytest.mark.parametrize("model_cls", PRINTED_MODELS.values(), ids=PRINTED_MODELS)
    def test_accuracy_samples_bit_equal(self, model_cls, data):
        model = model_cls(3, rng=np.random.default_rng(1))
        kwargs = dict(delta=0.1, mc_samples=5, seed=42)
        fast = evaluate_under_variation(model, *data, vectorized=True, **kwargs)
        slow = evaluate_under_variation(model, *data, vectorized=False, **kwargs)
        assert np.array_equal(fast.samples, slow.samples)
        assert fast.mean == slow.mean and fast.std == slow.std

    def test_elman_vectorized_flag_is_inert(self, rng, data):
        model = ElmanClassifier(3, rng=rng)
        fast = evaluate_under_variation(model, *data, mc_samples=5, vectorized=True)
        slow = evaluate_under_variation(model, *data, mc_samples=5, vectorized=False)
        assert np.array_equal(fast.samples, slow.samples)
        assert len(fast.samples) == 1


class TestForwardEquivalence:
    @pytest.mark.parametrize("model_cls", PRINTED_MODELS.values(), ids=PRINTED_MODELS)
    def test_batched_forward_matches_per_draw_forwards(self, model_cls, data):
        """Draw d of the batched logit stack equals a sequential forward
        consuming draw d's own child stream."""
        from repro.autograd import no_grad
        from repro.circuits import UniformVariation, VariationSampler

        x, _ = data
        draws = 4
        model = model_cls(3, rng=np.random.default_rng(2))
        sampler = VariationSampler(
            model=UniformVariation(0.1), rng=np.random.default_rng(7)
        )
        model.set_sampler(sampler)
        with no_grad(), sampler.batched(draws):
            batched = model(x).data  # (draws, batch, classes)

        # Spawning mutates the parent's seed-sequence child counter, so
        # the sequential oracle restarts from an identically seeded
        # sampler (exactly what Trainer/evaluate do per invocation).
        oracle = VariationSampler(
            model=UniformVariation(0.1), rng=np.random.default_rng(7)
        )
        model.set_sampler(oracle)
        streams = oracle.spawn_streams(draws)
        parent = oracle.rng
        try:
            for d, stream in enumerate(streams):
                oracle.rng = stream
                with no_grad():
                    single = model(x).data
                np.testing.assert_array_equal(batched[d], single)
        finally:
            oracle.rng = parent
