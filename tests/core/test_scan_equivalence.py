"""Fused-vs-unfused scan equivalence across the full training stack.

The fused :func:`~repro.autograd.filter_scan` kernel must be a pure
performance optimisation: under identical seeds the training objective,
every parameter gradient (filter log_r/log_c *and* crossbar θ) and the
evaluation accuracies must agree with the node-per-step oracle across
the whole ``mc_backend × scan_backend`` grid, at the scan-benchmark
tolerances (losses ≤ 1e-10, per-parameter gradients ≤ 1e-8).
"""

from dataclasses import replace
from itertools import product

import numpy as np
import pytest

from repro.core import (
    SCAN_BACKENDS,
    AdaptPNC,
    PTPNC,
    Trainer,
    TrainingConfig,
    evaluate_under_variation,
)
from repro.core.scanbench import SCAN_EQUIVALENCE_ATOL, SCAN_GRAD_ATOL

PRINTED_MODELS = {"ptpnc": PTPNC, "adapt": AdaptPNC}
MC_BACKENDS = ("batched", "sequential")


@pytest.fixture
def data(rng):
    return rng.uniform(-1, 1, (10, 16)), rng.integers(0, 3, 10)


def _make_trainer(
    model_cls, mc_backend: str, scan_backend: str, seed: int = 0, draws: int = 3
) -> Trainer:
    model = model_cls(3, rng=np.random.default_rng(seed))
    config = replace(
        TrainingConfig.ci(),
        mc_samples=draws,
        mc_backend=mc_backend,
        scan_backend=scan_backend,
    )
    return Trainer(model, config, variation_aware=True, seed=seed)


class TestTrainerGridEquivalence:
    @pytest.mark.parametrize("model_cls", PRINTED_MODELS.values(), ids=PRINTED_MODELS)
    def test_losses_agree_across_grid(self, model_cls, data):
        """All four (mc, scan) corners share one objective value."""
        x, y = data
        losses = {
            (mc, scan): float(
                _make_trainer(model_cls, mc, scan)._loss(x, y).item()
            )
            for mc, scan in product(MC_BACKENDS, SCAN_BACKENDS)
        }
        reference = losses[("batched", "fused")]
        for corner, value in losses.items():
            assert abs(value - reference) <= SCAN_EQUIVALENCE_ATOL, (
                f"loss at {corner} diverged: |Δ| = {abs(value - reference):.2e}"
            )

    @pytest.mark.parametrize("model_cls", PRINTED_MODELS.values(), ids=PRINTED_MODELS)
    @pytest.mark.parametrize("mc_backend", MC_BACKENDS)
    def test_every_parameter_gradient_agrees(self, model_cls, mc_backend, data):
        """log_r, log_c and crossbar θ gradients match the oracle."""
        x, y = data
        grads = {}
        for scan in SCAN_BACKENDS:
            trainer = _make_trainer(model_cls, mc_backend, scan)
            trainer.model.zero_grad()
            trainer._loss(x, y).backward()
            grads[scan] = {
                name: p.grad for name, p in trainer.model.named_parameters()
            }
        assert grads["fused"].keys() == grads["unfused"].keys()
        names = list(grads["fused"])
        # The checked set really covers filters and crossbars.
        assert any("log_r" in n for n in names)
        assert any("log_c" in n for n in names)
        assert any("theta" in n or "crossbar" in n for n in names)
        for name in names:
            g_fused, g_unfused = grads["fused"][name], grads["unfused"][name]
            assert g_fused is not None and g_unfused is not None
            assert float(np.max(np.abs(g_fused - g_unfused))) <= SCAN_GRAD_ATOL, (
                f"gradient mismatch for {name} under mc_backend={mc_backend}"
            )

    def test_training_config_validates_scan_backend(self):
        with pytest.raises(ValueError):
            replace(TrainingConfig.ci(), scan_backend="magic")

    def test_trainer_applies_config_backend_to_model(self):
        trainer = _make_trainer(AdaptPNC, "batched", "unfused")
        assert trainer.model.scan_backend == "unfused"

    def test_fit_histories_identical(self, data):
        """A short fit is step-for-step identical across scan backends."""
        x, y = data
        histories = {}
        for scan in SCAN_BACKENDS:
            model = AdaptPNC(3, rng=np.random.default_rng(0))
            config = replace(
                TrainingConfig.ci(), max_epochs=2, mc_samples=2, scan_backend=scan
            )
            trainer = Trainer(model, config, variation_aware=True, seed=0)
            histories[scan] = trainer.fit(x, y, x, y)
        np.testing.assert_allclose(
            histories["fused"].train_loss,
            histories["unfused"].train_loss,
            atol=SCAN_EQUIVALENCE_ATOL,
        )


class TestEvaluationScanBackend:
    def test_accuracy_samples_bit_equal_across_backends(self, rng, data):
        x, y = data
        model = AdaptPNC(3, rng=np.random.default_rng(1))
        results = {
            scan: evaluate_under_variation(
                model, x, y, delta=0.1, mc_samples=5, seed=42, scan_backend=scan
            )
            for scan in SCAN_BACKENDS
        }
        np.testing.assert_array_equal(
            results["fused"].samples, results["unfused"].samples
        )

    def test_backend_restored_after_evaluation(self, rng, data):
        x, y = data
        model = AdaptPNC(3, rng=np.random.default_rng(1))
        assert model.scan_backend == "fused"
        evaluate_under_variation(
            model, x, y, mc_samples=2, seed=0, scan_backend="unfused"
        )
        assert model.scan_backend == "fused"

    def test_none_keeps_current_backend(self, rng, data):
        x, y = data
        model = AdaptPNC(3, rng=np.random.default_rng(1))
        model.set_scan_backend("unfused")
        evaluate_under_variation(model, x, y, mc_samples=2, seed=0)
        assert model.scan_backend == "unfused"

    def test_elman_ignores_scan_backend(self, rng, data):
        from repro.core import ElmanClassifier

        x, y = data
        model = ElmanClassifier(3, rng=rng)
        result = evaluate_under_variation(
            model, x, y, mc_samples=2, scan_backend="unfused"
        )
        assert len(result.samples) == 1
