"""Tape-vs-interpreted graph-backend equivalence.

The tape compiler is a pure performance optimisation: a tape-backed
``Trainer.fit`` must reproduce the interpreted loss trajectory exactly
— for every combination of MC backend, scan backend and precision
policy — with zero interpreter fallbacks.  The float64 path is the
engine's bit-equal oracle; the float32 trajectory is held to the same
bit-equality bar because the compiled closures replay the identical
numpy call sequence at either precision.  Parameter gradients are
tolerance-equal per the engine's contract
(:func:`repro.autograd.precision.default_tolerances`).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.autograd.precision import default_tolerances
from repro.autograd.tape import tape_counters
from repro.core import AdaptPNC, Trainer, TrainingConfig, evaluate_under_variation

N_CLASSES = 3


@pytest.fixture
def data(rng):
    x = rng.uniform(-1, 1, (10, 12))
    y = rng.integers(0, N_CLASSES, 10)
    return x[2:], y[2:], x[:2], y[:2]


def _fit(
    graph_backend: str,
    mc_backend: str = "batched",
    scan_backend: str = "fused",
    precision: str = "float64",
    variation_aware: bool = True,
    epochs: int = 4,
    data=None,
    seed: int = 0,
):
    x_train, y_train, x_val, y_val = data
    model = AdaptPNC(N_CLASSES, rng=np.random.default_rng(seed))
    config = replace(
        TrainingConfig.ci(),
        max_epochs=epochs,
        mc_samples=3,
        mc_backend=mc_backend,
        scan_backend=scan_backend,
        precision=precision,
        graph_backend=graph_backend,
    )
    trainer = Trainer(model, config, variation_aware=variation_aware, seed=seed)
    history = trainer.fit(x_train, y_train, x_val, y_val, checkpoint_every=0)
    return trainer, history


class TestFitTrajectoryEquivalence:
    @pytest.mark.parametrize("mc_backend", ["batched", "sequential"])
    @pytest.mark.parametrize("scan_backend", ["fused", "unfused"])
    @pytest.mark.parametrize("precision", ["float64", "float32"])
    def test_losses_bit_equal_across_grid(
        self, mc_backend, scan_backend, precision, data
    ):
        """Every (mc, scan, precision) cell trains bit-identically."""
        fallbacks_before = tape_counters.fallbacks
        histories = {}
        for backend in ("interpreted", "tape"):
            _, histories[backend] = _fit(
                backend, mc_backend, scan_backend, precision, data=data
            )
        ref, tape = histories["interpreted"], histories["tape"]
        assert ref.epochs_run == tape.epochs_run
        assert ref.train_loss == tape.train_loss
        assert ref.val_loss == tape.val_loss
        assert tape_counters.fallbacks == fallbacks_before

    def test_deterministic_fit_bit_equal(self, data):
        """The non-variation-aware (ideal-sampler) path is also exact."""
        histories = {
            backend: _fit(backend, variation_aware=False, data=data)[1]
            for backend in ("interpreted", "tape")
        }
        assert (
            histories["interpreted"].train_loss == histories["tape"].train_loss
        )
        assert histories["interpreted"].val_loss == histories["tape"].val_loss


class TestGradientEquivalence:
    @pytest.mark.parametrize("precision", ["float64", "float32"])
    def test_parameter_gradients_within_tolerance(self, precision, data):
        """A replayed backward matches the interpreted gradients.

        The first tape-backend evaluation traces (and runs backward
        interpreted), so the objective is evaluated twice: the second
        call replays the compiled tape, and its gradients are compared.
        """
        from repro.autograd.precision import use_precision

        x_train, y_train, _, _ = data
        grads = {}
        for backend in ("interpreted", "tape"):
            trainer, _ = _fit(backend, precision=precision, epochs=1, data=data)
            with use_precision(precision) as policy:
                xa = np.asarray(x_train, dtype=policy.compute)
                for _ in range(2):  # second tape call is a replay
                    trainer.model.zero_grad()
                    trainer._loss(xa, y_train).backward()
            grads[backend] = {
                name: p.grad for name, p in trainer.model.named_parameters()
            }
        tol = default_tolerances(np.float64 if precision == "float64" else np.float32)
        assert grads["interpreted"].keys() == grads["tape"].keys()
        for name, g_ref in grads["interpreted"].items():
            assert g_ref is not None and grads["tape"][name] is not None
            np.testing.assert_allclose(
                grads["tape"][name], g_ref, atol=tol["atol"], rtol=tol["rtol"],
                err_msg=f"gradient mismatch for {name}",
            )


class TestEvaluationEquivalence:
    def test_sequential_tape_accuracy_samples_bit_equal(self, rng, data):
        """``evaluate_under_variation(graph_backend="tape")`` replays the
        sequential accuracy loop bit-identically."""
        x_train, y_train, _, _ = data
        model = AdaptPNC(N_CLASSES, rng=np.random.default_rng(3))
        kwargs = dict(delta=0.1, mc_samples=4, seed=11, vectorized=False)
        ref = evaluate_under_variation(model, x_train, y_train, **kwargs)
        tape = evaluate_under_variation(
            model, x_train, y_train, graph_backend="tape", **kwargs
        )
        assert np.array_equal(ref.samples, tape.samples)
        assert ref.mean == tape.mean and ref.std == tape.std

    def test_unknown_graph_backend_rejected(self, data):
        x_train, y_train, _, _ = data
        model = AdaptPNC(N_CLASSES, rng=np.random.default_rng(3))
        with pytest.raises(ValueError, match="graph_backend"):
            evaluate_under_variation(
                model, x_train, y_train, graph_backend="jit"
            )


class TestCacheBehaviour:
    def test_signature_change_forces_clean_retrace(self, data):
        """A changed batch shape misses the cache and retraces; both
        shapes keep replaying bit-equally afterwards."""
        x_train, y_train, _, _ = data
        trainer, _ = _fit("tape", epochs=1, data=data)
        misses_before = tape_counters.cache_misses
        interp = Trainer(
            trainer.model,
            replace(trainer.config, graph_backend="interpreted"),
            variation_aware=True,
            seed=0,
        )
        # Both slices are shapes the preceding fit never traced.
        for xa, ya in ((x_train[:6], y_train[:6]), (x_train[:4], y_train[:4])):
            xa = np.asarray(xa, dtype=np.float64)
            trainer._loss(xa, ya)  # trace (miss)
            # Replays must reproduce the interpreted oracle bit-for-bit
            # (fresh trainer sharing the same model; identical seeds).
            interp.model.sampler.reseed(99)
            want = float(interp._loss(xa, ya).item())
            trainer.model.sampler.reseed(99)
            got = float(trainer._loss(xa, ya).item())
            assert got == want
        assert tape_counters.cache_misses - misses_before == 2
