"""The three evaluated model classes."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.circuits import BASELINE_PDK, DEFAULT_PDK
from repro.core import AdaptPNC, ElmanClassifier, PTPNC


class TestElmanClassifier:
    def test_logits_shape(self, rng):
        model = ElmanClassifier(4, rng=rng)
        assert model(rng.uniform(-1, 1, (5, 20))).shape == (5, 4)

    def test_accepts_tensor_or_array(self, rng):
        model = ElmanClassifier(2, rng=rng)
        x = rng.uniform(-1, 1, (3, 10))
        a = model(x).data
        b = model(Tensor(x)).data
        assert np.array_equal(a, b)

    def test_two_layers_by_default(self, rng):
        assert ElmanClassifier(2, rng=rng).rnn.num_layers == 2

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            ElmanClassifier(1)


class TestPrintedModels:
    @pytest.mark.parametrize("cls", [PTPNC, AdaptPNC])
    def test_logits_shape(self, cls, rng):
        model = cls(3, rng=rng)
        assert model(rng.uniform(-1, 1, (4, 16))).shape == (4, 3)

    def test_baseline_uses_first_order(self, rng):
        assert PTPNC(2, rng=rng).filter_order == 1

    def test_proposed_uses_second_order(self, rng):
        assert AdaptPNC(2, rng=rng).filter_order == 2

    def test_default_design_points(self, rng):
        assert PTPNC(2, rng=rng).pdk is BASELINE_PDK
        assert AdaptPNC(2, rng=rng).pdk is DEFAULT_PDK

    def test_proposed_wider_hidden(self, rng):
        assert AdaptPNC(2, rng=np.random.default_rng(0)).hidden_size > PTPNC(
            2, rng=np.random.default_rng(0)
        ).hidden_size

    def test_hidden_scales_with_classes(self, rng):
        assert PTPNC(6, rng=rng).hidden_size == 6
        assert PTPNC(2, rng=rng).hidden_size == 3

    def test_explicit_hidden_respected(self, rng):
        assert PTPNC(2, hidden_size=7, rng=rng).hidden_size == 7

    def test_logit_scale_applied(self, rng):
        model = AdaptPNC(2, rng=rng)
        x = rng.uniform(-1, 1, (2, 10))
        logits = model(x).data
        model.logit_scale = 8.0
        doubled = model(x).data
        assert np.allclose(doubled, logits * 2.0)

    def test_3d_input_accepted(self, rng):
        model = PTPNC(2, rng=rng)
        x = rng.uniform(-1, 1, (2, 10, 1))
        assert model(x).shape == (2, 2)

    def test_rejects_4d_input(self, rng):
        model = PTPNC(2, rng=rng)
        with pytest.raises(ValueError):
            model(np.ones((2, 3, 4, 5)))

    @pytest.mark.parametrize("cls", [PTPNC, AdaptPNC])
    def test_trainable_end_to_end(self, cls, rng):
        """One optimizer step must reduce the loss on a toy problem."""
        from repro.nn import cross_entropy
        from repro.optim import AdamW

        model = cls(2, rng=rng)
        x = rng.uniform(-1, 1, (8, 16))
        y = np.array([0, 1] * 4)
        opt = AdamW(model.parameters(), lr=0.05)
        first = None
        for _ in range(10):
            opt.zero_grad()
            loss = cross_entropy(model(x), y)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first

    def test_set_sampler_reaches_both_blocks(self, rng):
        from repro.circuits import VariationSampler

        model = AdaptPNC(2, rng=rng)
        s = VariationSampler()
        model.set_sampler(s)
        assert all(block.sampler is s for block in model.blocks)
