"""Variation-aware Trainer: protocol, MC objective, model management."""

import numpy as np
import pytest

from repro.augment import AugmentationConfig
from repro.circuits import NoVariation, UniformVariation
from repro.core import AdaptPNC, ElmanClassifier, PTPNC, Trainer, TrainingConfig
from repro.data import load_dataset


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("Slope", n_samples=60, seed=0)


def tiny_config(**overrides):
    from dataclasses import replace

    merged = {"max_epochs": 12, "lr_patience": 4, **overrides}
    return replace(TrainingConfig.ci(), **merged)


class TestTrainingConfig:
    def test_paper_protocol_values(self):
        cfg = TrainingConfig.paper()
        assert cfg.lr == 0.1
        assert cfg.lr_factor == 0.5
        assert cfg.lr_patience == 100
        assert cfg.min_lr == 1e-5
        assert cfg.variation_delta == 0.10

    @pytest.mark.parametrize(
        "bad",
        [
            {"lr": 0.0},
            {"max_epochs": 0},
            {"mc_samples": 0},
            {"variation_delta": 1.0},
        ],
    )
    def test_rejects_bad_values(self, bad):
        with pytest.raises(ValueError):
            TrainingConfig(**bad)


class TestFitting:
    def test_loss_decreases(self, dataset):
        model = PTPNC(3, rng=np.random.default_rng(0))
        hist = Trainer(model, tiny_config(), seed=0).fit(
            dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val
        )
        assert hist.train_loss[-1] < hist.train_loss[0]

    def test_history_records_every_epoch(self, dataset):
        model = PTPNC(3, rng=np.random.default_rng(0))
        hist = Trainer(model, tiny_config(), seed=0).fit(
            dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val
        )
        assert hist.epochs_run == len(hist.train_loss) == len(hist.val_loss)
        assert len(hist.learning_rate) == hist.epochs_run
        assert hist.best_epoch >= 0

    def test_best_state_restored(self, dataset):
        from repro.core import accuracy
        from repro.nn import cross_entropy
        from repro.autograd import no_grad

        model = PTPNC(3, rng=np.random.default_rng(0))
        trainer = Trainer(model, tiny_config(), seed=0)
        hist = trainer.fit(dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val)
        with no_grad():
            val_loss = cross_entropy(model(dataset.x_val), dataset.y_val).item()
        assert np.isclose(val_loss, hist.best_val_loss, atol=1e-9)

    def test_lr_termination_rule(self, dataset):
        cfg = tiny_config(max_epochs=500, lr_patience=0, min_lr=0.02, lr=0.04)
        model = PTPNC(3, rng=np.random.default_rng(0))
        hist = Trainer(model, cfg, seed=0).fit(
            dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val
        )
        assert hist.epochs_run < 500  # stopped by min_lr, not the epoch cap

    def test_ideal_sampler_installed_after_fit(self, dataset):
        model = AdaptPNC(3, rng=np.random.default_rng(0))
        Trainer(model, tiny_config(), variation_aware=True, seed=0).fit(
            dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val
        )
        assert isinstance(model.sampler.model, NoVariation)

    def test_elman_trains_through_same_path(self, dataset):
        model = ElmanClassifier(3, rng=np.random.default_rng(0))
        hist = Trainer(model, tiny_config(), seed=0).fit(
            dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val
        )
        assert hist.epochs_run > 0


class TestVariationAwareness:
    def test_va_installs_uniform_sampler(self, dataset):
        model = AdaptPNC(3, rng=np.random.default_rng(0))
        Trainer(model, tiny_config(), variation_aware=True, seed=0)
        assert isinstance(model.sampler.model, UniformVariation)
        assert model.sampler.model.delta == tiny_config().variation_delta

    def test_non_va_installs_ideal_sampler(self, dataset):
        model = AdaptPNC(3, rng=np.random.default_rng(0))
        Trainer(model, tiny_config(), variation_aware=False, seed=0)
        assert isinstance(model.sampler.model, NoVariation)

    def test_va_rejected_for_hardware_agnostic_model(self):
        with pytest.raises(ValueError):
            Trainer(ElmanClassifier(2), tiny_config(), variation_aware=True)

    def test_mc_sampling_only_when_variation_aware(self, dataset):
        model = AdaptPNC(3, rng=np.random.default_rng(0))
        va = Trainer(model, tiny_config(mc_samples=4), variation_aware=True)
        assert va._mc_samples() == 4
        model2 = AdaptPNC(3, rng=np.random.default_rng(0))
        plain = Trainer(model2, tiny_config(mc_samples=4), variation_aware=False)
        assert plain._mc_samples() == 1


class TestAugmentedTraining:
    def test_augmentation_expands_training_data(self, dataset):
        model = PTPNC(3, rng=np.random.default_rng(0))
        aug = AugmentationConfig(jitter_sigma=0.05)
        trainer = Trainer(model, tiny_config(max_epochs=2), augmentation=aug, seed=0)
        hist = trainer.fit(dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val)
        assert hist.epochs_run == 2  # ran without shape errors on 2x data

    def test_seed_reproducibility(self, dataset):
        results = []
        for _ in range(2):
            model = PTPNC(3, rng=np.random.default_rng(7))
            hist = Trainer(
                model,
                tiny_config(max_epochs=5),
                variation_aware=True,
                seed=11,
            ).fit(dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val)
            results.append(hist.train_loss)
        assert np.allclose(results[0], results[1])
