"""Pool-executor tests: bit-equality, work-stealing, kill+replace.

The pooled executor only decides *where* a cell runs; cells are pure
functions of their args, so its results must be bit-identical to the
serial oracle — asserted here over both the outcome table and the
order-normalised ``sweep.cell_end`` event payloads.  The fault-handling
tests exercise the pool-specific machinery: a SIGKILLed worker is
replaced (not merely lost), replacements are bounded by
``SweepOptions.pool_restarts``, and a broken pool still tears down its
global state (gauge registration, campaign store).
"""

import os
import pathlib
import signal
import time

import pytest

from repro import telemetry
from repro.parallel import (
    POOL_GAUGE,
    PoolBrokenError,
    SweepCell,
    SweepOptions,
    run_cells,
)
from repro.parallel.pool import shard_cells


# -- module-level cell functions (picklable) ---------------------------------


def cell_value(i: int):
    """Deterministic multi-field payload (exercises payload equality)."""
    return {"sq": i * i, "i": i, "acc": 0.5 + i / 100.0}


def cell_slow_low(i: int):
    """First shard slow, second fast — forces the stealing path."""
    if i < 3:
        time.sleep(0.25)
    return {"sq": i * i}


def cell_emit(i: int):
    """Emit one custom event so event-forwarding can be asserted."""
    telemetry.emit("custom.ping", i=i)
    return {"sq": i * i}


def cell_kill_self(i: int):
    os.kill(os.getpid(), signal.SIGKILL)
    return {"sq": i * i}  # pragma: no cover — never reached


def cell_kill_self_once(i: int, marker_dir: str):
    marker = pathlib.Path(marker_dir) / f"killed-{i}"
    if not marker.exists():
        marker.write_text("1")
        os.kill(os.getpid(), signal.SIGKILL)
    return {"sq": i * i}


def _cells(n, extra_args=()):
    return [SweepCell(key=("t", str(i)), args=(i, *extra_args)) for i in range(n)]


def _cell_end_payloads(events):
    """sweep.cell_end payloads normalised for scheduling-order comparison.

    Keeps only the scheduling-independent fields (cell identity, status
    and the cell's value dict), sorted by cell — wall-clock, pids and
    emission order legitimately differ between executors.
    """
    ends = [e for e in events if e["kind"] == "sweep.cell_end"]
    return sorted(
        (
            {"cell": e["cell"], "status": e["status"], "values": e["values"]}
            for e in ends
        ),
        key=lambda payload: payload["cell"],
    )


# -- sharding ----------------------------------------------------------------


def test_shard_cells_contiguous_blocks():
    shards = shard_cells(list(range(7)), 3)
    assert [list(s) for s in shards] == [[0, 1, 2], [3, 4], [5, 6]]


def test_shard_cells_more_shards_than_cells():
    shards = shard_cells([1, 2], 4)
    assert [list(s) for s in shards] == [[1], [2], [], []]
    assert sum(len(s) for s in shard_cells([], 3)) == 0


# -- bit-equality vs the serial oracle ---------------------------------------


def test_pool_bit_equal_to_serial(tmp_path):
    cells = _cells(8)
    with telemetry.Run(dir=tmp_path / "serial"):
        serial = run_cells(cell_value, cells, SweepOptions(executor="serial"))
    with telemetry.Run(dir=tmp_path / "pool"):
        pooled = run_cells(
            cell_value, cells, SweepOptions(executor="pool", max_workers=3)
        )

    # Result tables: same keys in submission order, identical values.
    assert list(serial) == list(pooled)
    for key in serial:
        assert serial[key].value == pooled[key].value
        assert serial[key].status == pooled[key].status

    # Event payloads, order-normalised: identical cell/status/values.
    serial_events = telemetry.read_events(tmp_path / "serial" / "events.jsonl")
    pool_events = telemetry.read_events(tmp_path / "pool" / "events.jsonl")
    assert _cell_end_payloads(serial_events) == _cell_end_payloads(pool_events)


def test_pool_work_stealing_stays_bit_equal(tmp_path):
    """Heterogeneous shard costs trigger steals without changing results."""
    cells = _cells(6)
    serial = run_cells(cell_slow_low, cells, SweepOptions(executor="serial"))
    with telemetry.Run(dir=tmp_path / "run"):
        pooled = run_cells(
            cell_slow_low, cells, SweepOptions(executor="pool", max_workers=2)
        )
    for key in serial:
        assert pooled[key].ok and pooled[key].value == serial[key].value

    events = telemetry.read_events(tmp_path / "run" / "events.jsonl")
    steals = [e for e in events if e["kind"] == "sweep.pool.steal"]
    # Worker 1's fast shard drains first; it must steal from shard 0.
    assert steals, "expected at least one sweep.pool.steal event"
    assert all(e["victim_slot"] != e["thief_slot"] for e in steals)


# -- pool lifecycle telemetry ------------------------------------------------


def test_pool_lifecycle_events(tmp_path):
    with telemetry.Run(dir=tmp_path / "run"):
        run_cells(cell_value, _cells(5), SweepOptions(executor="pool", max_workers=2))
    events = telemetry.read_events(tmp_path / "run" / "events.jsonl")
    starts = [e for e in events if e["kind"] == "sweep.pool.start"]
    ends = [e for e in events if e["kind"] == "sweep.pool.end"]
    assert len(starts) == 1 and len(ends) == 1
    assert starts[0]["n_workers"] == 2
    assert starts[0]["shard_sizes"] == [3, 2]
    assert len(starts[0]["pids"]) == 2
    assert ends[0]["restarts"] == 0
    assert sum(ends[0]["cells_per_slot"].values()) == 5
    start = next(e for e in events if e["kind"] == "sweep.start")
    assert start["executor"] == "pool" and start["max_workers"] == 2


def test_pool_forwards_worker_events(tmp_path):
    with telemetry.Run(dir=tmp_path / "run"):
        run_cells(cell_emit, _cells(3), SweepOptions(executor="pool", max_workers=2))
    events = telemetry.read_events(tmp_path / "run" / "events.jsonl")
    pings = [e for e in events if e["kind"] == "sweep.worker"
             and e.get("worker_kind") == "custom.ping"]
    assert {p["fields"]["i"] for p in pings} == {0, 1, 2}


def test_pool_gauge_unregistered_after_campaign():
    run_cells(cell_value, _cells(2), SweepOptions(executor="pool", max_workers=2))
    assert POOL_GAUGE not in telemetry.gauges.names()


# -- kill + replace ----------------------------------------------------------


def test_pool_survives_sigkilled_worker(tmp_path):
    options = SweepOptions(
        executor="pool", max_workers=2, retries=1, backoff_s=0.0, pool_restarts=4
    )
    with telemetry.Run(dir=tmp_path / "run"):
        out = run_cells(
            cell_kill_self_once, _cells(2, extra_args=(str(tmp_path),)), options
        )
    for i in range(2):
        outcome = out[("t", str(i))]
        assert outcome.ok and outcome.value == {"sq": i * i}
        assert outcome.attempts == 2
    events = telemetry.read_events(tmp_path / "run" / "events.jsonl")
    replaces = [e for e in events if e["kind"] == "sweep.pool.worker_replace"]
    assert replaces, "worker death must be answered with a replacement"
    assert all(e["new_pid"] != e["old_pid"] for e in replaces)
    ends = [e for e in events if e["kind"] == "sweep.pool.end"]
    assert ends[0]["restarts"] == len(replaces)


def test_pool_restart_budget_raises_broken():
    options = SweepOptions(
        executor="pool", max_workers=1, retries=0, backoff_s=0.0, pool_restarts=0
    )
    with pytest.raises(PoolBrokenError, match="restart budget"):
        run_cells(cell_kill_self, _cells(2), options)


def test_broken_pool_closes_store_and_gauge(tmp_path, monkeypatch):
    """Regression: PoolBrokenError mid-campaign leaves no global state.

    The storage handle is closed (the try/finally in ``run_cells``) and
    the pool gauge is unregistered even though the campaign aborted.
    """
    from repro.parallel import orchestrator as orch_module
    from repro.parallel import store as store_module

    captured = {}
    real_open = store_module.open_storage

    def capturing_open(root, protocol, backend="files"):
        storage = real_open(root, protocol, backend)
        captured["store"] = storage
        return storage

    monkeypatch.setattr(orch_module, "open_storage", capturing_open)
    options = SweepOptions(
        executor="pool",
        max_workers=1,
        retries=0,
        backoff_s=0.0,
        pool_restarts=0,
        cache_dir=str(tmp_path / "cache"),
        store="sqlite",
    )
    with pytest.raises(PoolBrokenError):
        run_cells(cell_kill_self, _cells(2), options, fingerprint={"v": 1})
    assert captured["store"].closed
    assert POOL_GAUGE not in telemetry.gauges.names()


# -- resume through the pool -------------------------------------------------


@pytest.mark.parametrize("store", ("files", "sqlite"))
def test_pool_resume_skips_cached_cells(tmp_path, store):
    options = SweepOptions(
        executor="pool",
        max_workers=2,
        cache_dir=str(tmp_path / "cache"),
        store=store,
        backoff_s=0.0,
    )
    cells = _cells(4)
    first = run_cells(cell_value, cells, options, fingerprint={"v": 1})
    assert all(o.ok and not o.cached for o in first.values())

    second = run_cells(cell_value, cells, options, fingerprint={"v": 1})
    assert all(o.ok and o.cached and o.attempts == 0 for o in second.values())
    for key in first:
        assert second[key].value == first[key].value
