"""Fault-injection tests of the sweep orchestrator.

Every cell function must live at module level so worker processes can
pickle it (the parallel executor forks/spawns one process per cell).
The misbehaviours exercised here are the ones the orchestrator promises
to survive: raising cells, hanging cells past their timeout, workers
killed mid-cell, and duplicate/invalid inputs.
"""

import os
import pathlib
import signal
import time

import pytest

from repro import telemetry
from repro.parallel import (
    CellOutcome,
    SweepCell,
    SweepOptions,
    run_cells,
    summarize_outcomes,
)


# -- module-level cell functions (picklable) ---------------------------------


def cell_square(i: int):
    return {"sq": i * i}


def cell_raise(i: int):
    raise RuntimeError(f"cell {i} always fails")


def cell_raise_odd(i: int):
    if i % 2:
        raise ValueError(f"odd cell {i}")
    return {"sq": i * i}


def cell_flaky(i: int, marker_dir: str):
    """Fail on the first attempt, succeed once the marker exists."""
    marker = pathlib.Path(marker_dir) / f"attempted-{i}"
    if not marker.exists():
        marker.write_text("1")
        raise RuntimeError("first attempt fails")
    return {"sq": i * i}


def cell_hang(i: int):
    time.sleep(60.0)
    return {"sq": i * i}


def cell_kill_self(i: int):
    """Simulate a worker dying mid-cell (OOM-killer, preemption)."""
    os.kill(os.getpid(), signal.SIGKILL)
    return {"sq": i * i}  # pragma: no cover — never reached


def cell_kill_self_once(i: int, marker_dir: str):
    marker = pathlib.Path(marker_dir) / f"killed-{i}"
    if not marker.exists():
        marker.write_text("1")
        os.kill(os.getpid(), signal.SIGKILL)
    return {"sq": i * i}


def cell_count_invocations(i: int, counter_dir: str):
    """Append one line per invocation so tests can count reruns."""
    with open(pathlib.Path(counter_dir) / "calls.log", "a") as fh:
        fh.write(f"{i}\n")
    return {"sq": i * i}


def cell_probe_persisted(i: int, cache_root: str):
    """Report how many cells were already on disk when this cell ran."""
    n = len(list(pathlib.Path(cache_root).glob("*/cells/*.json")))
    return {"sq": i * i, "persisted_before_me": n}


def _cells(n=3, extra_args=()):
    return [SweepCell(key=("t", str(i)), args=(i, *extra_args)) for i in range(n)]


def _invocations(counter_dir) -> int:
    path = pathlib.Path(counter_dir) / "calls.log"
    return len(path.read_text().splitlines()) if path.exists() else 0


EXECUTORS = ("serial", "parallel", "pool")


# -- happy path --------------------------------------------------------------


@pytest.mark.parametrize("executor", EXECUTORS)
def test_all_ok(executor):
    out = run_cells(cell_square, _cells(4), SweepOptions(executor=executor))
    assert list(out) == [("t", str(i)) for i in range(4)]
    for i in range(4):
        outcome = out[("t", str(i))]
        assert outcome.ok and outcome.value == {"sq": i * i}
        assert outcome.attempts == 1 and not outcome.cached
    summary = summarize_outcomes(out)
    assert summary["n_ok"] == 4 and summary["n_failed"] == 0


def test_duplicate_keys_rejected():
    cells = [SweepCell(key=("a",), args=(0,)), SweepCell(key=("a",), args=(1,))]
    with pytest.raises(ValueError, match="duplicate"):
        run_cells(cell_square, cells)


def test_options_validation():
    with pytest.raises(ValueError):
        SweepOptions(executor="magic")
    with pytest.raises(ValueError):
        SweepOptions(max_workers=0)
    with pytest.raises(ValueError):
        SweepOptions(retries=-1)
    with pytest.raises(ValueError):
        SweepOptions(timeout_s=0.0)


# -- raising cells -----------------------------------------------------------


@pytest.mark.parametrize("executor", EXECUTORS)
def test_always_raising_cell_degrades(executor):
    options = SweepOptions(executor=executor, retries=2, backoff_s=0.0)
    out = run_cells(cell_raise, _cells(2), options)
    for key, outcome in out.items():
        assert not outcome.ok
        assert outcome.status == "failed"
        assert outcome.attempts == 3  # 1 + retries
        assert "always fails" in outcome.error
    summary = summarize_outcomes(out)
    assert summary["n_failed"] == 2 and summary["attempts"] == 6


@pytest.mark.parametrize("executor", EXECUTORS)
def test_partial_failure_keeps_good_cells(executor):
    options = SweepOptions(executor=executor, retries=0, backoff_s=0.0)
    out = run_cells(cell_raise_odd, _cells(4), options)
    assert [out[("t", str(i))].ok for i in range(4)] == [True, False, True, False]
    assert out[("t", "0")].value == {"sq": 0}
    assert out[("t", "2")].value == {"sq": 4}


@pytest.mark.parametrize("executor", EXECUTORS)
def test_flaky_cell_recovers_on_retry(executor, tmp_path):
    options = SweepOptions(executor=executor, retries=1, backoff_s=0.0)
    out = run_cells(cell_flaky, _cells(2, extra_args=(str(tmp_path),)), options)
    for i in range(2):
        outcome = out[("t", str(i))]
        assert outcome.ok and outcome.value == {"sq": i * i}
        assert outcome.attempts == 2


def test_retry_events_emitted(tmp_path):
    with telemetry.Run(dir=tmp_path / "run") as run:
        run_cells(
            cell_raise,
            _cells(1),
            SweepOptions(executor="serial", retries=2, backoff_s=0.0),
        )
    events = telemetry.read_events(tmp_path / "run" / "events.jsonl")
    retries = [e for e in events if e["kind"] == "sweep.retry"]
    assert [e["attempt"] for e in retries] == [1, 2]
    ends = [e for e in events if e["kind"] == "sweep.cell_end"]
    assert len(ends) == 1 and ends[0]["status"] == "failed" and ends[0]["attempts"] == 3
    sweep_end = [e for e in events if e["kind"] == "sweep.end"]
    assert sweep_end and sweep_end[0]["n_failed"] == 1


# -- timeouts ----------------------------------------------------------------


def test_hanging_worker_times_out(tmp_path):
    options = SweepOptions(
        executor="parallel", max_workers=2, timeout_s=1.0, retries=0, backoff_s=0.0
    )
    t0 = time.perf_counter()
    with telemetry.Run(dir=tmp_path / "run"):
        out = run_cells(cell_hang, _cells(1), options)
    elapsed = time.perf_counter() - t0
    outcome = out[("t", "0")]
    assert not outcome.ok
    assert "timeout" in outcome.error
    # Far below the 60s the cell wanted to sleep: the kill was enforced.
    assert elapsed < 20.0
    events = telemetry.read_events(tmp_path / "run" / "events.jsonl")
    timeouts = [e for e in events if e["kind"] == "sweep.timeout"]
    assert len(timeouts) == 1 and timeouts[0]["timeout_s"] == 1.0


def test_timeout_then_retry_counts_attempts():
    options = SweepOptions(
        executor="parallel", max_workers=1, timeout_s=0.8, retries=1, backoff_s=0.0
    )
    out = run_cells(cell_hang, _cells(1), options)
    outcome = out[("t", "0")]
    assert not outcome.ok and outcome.attempts == 2


# -- killed workers ----------------------------------------------------------


def test_killed_worker_degrades():
    options = SweepOptions(executor="parallel", max_workers=2, retries=0, backoff_s=0.0)
    out = run_cells(cell_kill_self, _cells(2), options)
    for outcome in out.values():
        assert not outcome.ok
        assert "died without result" in outcome.error


def test_killed_worker_retries_to_success(tmp_path):
    options = SweepOptions(executor="parallel", max_workers=2, retries=1, backoff_s=0.0)
    out = run_cells(
        cell_kill_self_once, _cells(2, extra_args=(str(tmp_path),)), options
    )
    for i in range(2):
        outcome = out[("t", str(i))]
        assert outcome.ok and outcome.value == {"sq": i * i}
        assert outcome.attempts == 2


# -- cache / resume ----------------------------------------------------------


@pytest.mark.parametrize("executor", EXECUTORS)
def test_cache_skips_completed_cells(executor, tmp_path):
    counter = tmp_path / "counts"
    counter.mkdir()
    options = SweepOptions(
        executor=executor, cache_dir=str(tmp_path / "cache"), backoff_s=0.0
    )
    cells = _cells(3, extra_args=(str(counter),))

    first = run_cells(cell_count_invocations, cells, options, fingerprint={"v": 1})
    assert all(o.ok and not o.cached for o in first.values())
    assert _invocations(counter) == 3

    second = run_cells(cell_count_invocations, cells, options, fingerprint={"v": 1})
    assert all(o.ok and o.cached and o.attempts == 0 for o in second.values())
    assert _invocations(counter) == 3  # nothing recomputed
    assert {o.value["sq"] for o in second.values()} == {0, 1, 4}


def test_cells_persist_incrementally_not_at_sweep_end(tmp_path):
    """Each ok cell hits the disk cache *as it completes*.

    This is what makes SIGKILL-at-any-point resumable: if stores were
    batched after the executor returned, an interrupted campaign would
    lose every finished cell.  The serial oracle runs cells in
    submission order, so cell ``i`` must observe exactly ``i``
    already-persisted cells.
    """
    cache_root = tmp_path / "cache"
    options = SweepOptions(executor="serial", cache_dir=str(cache_root))
    cells = _cells(3, extra_args=(str(cache_root),))

    out = run_cells(cell_probe_persisted, cells, options, fingerprint={"v": 1})
    assert [out[c.key].value["persisted_before_me"] for c in cells] == [0, 1, 2]


def test_cache_respects_fingerprint(tmp_path):
    counter = tmp_path / "counts"
    counter.mkdir()
    options = SweepOptions(executor="serial", cache_dir=str(tmp_path / "cache"))
    cells = _cells(2, extra_args=(str(counter),))

    run_cells(cell_count_invocations, cells, options, fingerprint={"config": "A"})
    run_cells(cell_count_invocations, cells, options, fingerprint={"config": "B"})
    # Different protocol -> different cache directory -> full recompute.
    assert _invocations(counter) == 4


def test_partial_cache_resume(tmp_path):
    """Only the cells missing from the cache are recomputed on resume."""
    counter = tmp_path / "counts"
    counter.mkdir()
    options = SweepOptions(executor="serial", cache_dir=str(tmp_path / "cache"))
    cells = _cells(4, extra_args=(str(counter),))

    run_cells(cell_count_invocations, cells[:2], options, fingerprint={"v": 1})
    assert _invocations(counter) == 2

    out = run_cells(cell_count_invocations, cells, options, fingerprint={"v": 1})
    assert _invocations(counter) == 4  # two cached + two fresh
    assert [out[c.key].cached for c in cells] == [True, True, False, False]
    assert all(o.ok for o in out.values())


def test_failed_cells_not_cached(tmp_path):
    options = SweepOptions(
        executor="serial", cache_dir=str(tmp_path / "cache"), retries=0
    )
    out = run_cells(cell_raise, _cells(1), options, fingerprint={"v": 1})
    assert not out[("t", "0")].ok
    # The failure must be retried on the next campaign, not served stale.
    again = run_cells(cell_raise, _cells(1), options, fingerprint={"v": 1})
    assert not again[("t", "0")].cached and again[("t", "0")].attempts == 1


# -- telemetry ---------------------------------------------------------------


def test_sweep_events_cover_lifecycle(tmp_path):
    with telemetry.Run(dir=tmp_path / "run"):
        run_cells(
            cell_square,
            _cells(2),
            SweepOptions(executor="parallel", max_workers=2),
        )
    events = telemetry.read_events(tmp_path / "run" / "events.jsonl")
    kinds = [e["kind"] for e in events]
    assert kinds.count("sweep.start") == 1
    assert kinds.count("sweep.cell_start") == 2
    assert kinds.count("sweep.cell_end") == 2
    assert kinds.count("sweep.end") == 1
    start = next(e for e in events if e["kind"] == "sweep.start")
    assert start["executor"] == "parallel" and start["n_cells"] == 2
    ends = [e for e in events if e["kind"] == "sweep.cell_end"]
    assert {e["cell"] for e in ends} == {"t/0", "t/1"}
    assert all(e["values"]["sq"] in (0, 1) for e in ends)


def test_outcome_dataclass_basics():
    ok = CellOutcome(key=("a",), status="ok", value={"x": 1})
    bad = CellOutcome(key=("b",), status="failed", error="boom")
    assert ok.ok and not bad.ok
    summary = summarize_outcomes({("a",): ok, ("b",): bad})
    assert summary["failures"] == [{"cell": "b", "error": "boom", "attempts": 0}]
