"""Unit tests of the fingerprint-keyed on-disk sweep cell cache."""

import json

import pytest

from repro.parallel import CACHE_VERSION, SweepCache, sweep_fingerprint
from repro.parallel.cache import _cell_filename


def test_fingerprint_is_order_insensitive():
    a = sweep_fingerprint({"x": 1, "y": {"b": 2, "a": 3}})
    b = sweep_fingerprint({"y": {"a": 3, "b": 2}, "x": 1})
    assert a == b
    assert a != sweep_fingerprint({"x": 2, "y": {"a": 3, "b": 2}})


def test_round_trip(tmp_path):
    cache = SweepCache(tmp_path, {"fn": "f", "cfg": {"seeds": [0, 1]}})
    assert cache.load(("table1", "Slope", "adapt", "0")) is None
    cache.store(("table1", "Slope", "adapt", "0"), {"acc": 0.5})
    assert cache.load(("table1", "Slope", "adapt", "0")) == {"acc": 0.5}
    assert len(cache) == 1
    assert list(cache.keys()) == [("table1", "Slope", "adapt", "0")]


def test_distinct_protocols_do_not_alias(tmp_path):
    a = SweepCache(tmp_path, {"cfg": "A"})
    b = SweepCache(tmp_path, {"cfg": "B"})
    a.store(("k",), {"v": 1})
    assert b.load(("k",)) is None
    assert a.dir != b.dir
    # Protocol files record what each fingerprint covers.
    proto = json.loads((a.dir / "protocol.json").read_text())
    assert proto["cfg"] == "A" and proto["cache_version"] == CACHE_VERSION


def test_cache_version_in_fingerprint(tmp_path):
    cache = SweepCache(tmp_path, {"cfg": "A"})
    assert cache.fingerprint == sweep_fingerprint(
        {"cache_version": CACHE_VERSION, "cfg": "A"}
    )


def test_corrupt_cell_is_a_miss(tmp_path):
    cache = SweepCache(tmp_path, {"cfg": "A"})
    path = cache.store(("k",), {"v": 1})
    path.write_text("{ truncated", encoding="utf-8")
    assert cache.load(("k",)) is None  # miss, not an exception
    path.write_text(json.dumps({"no_value_field": 1}), encoding="utf-8")
    assert cache.load(("k",)) is None


def test_sanitisation_collisions_cannot_alias(tmp_path):
    # Both keys sanitise to the same visible stem but carry distinct
    # digests, so the cells land in different files.
    assert _cell_filename(("a/b",)) != _cell_filename(("a:b",))
    cache = SweepCache(tmp_path, {"cfg": "A"})
    cache.store(("a/b",), {"v": 1})
    cache.store(("a:b",), {"v": 2})
    assert cache.load(("a/b",)) == {"v": 1}
    assert cache.load(("a:b",)) == {"v": 2}


def test_atomic_store_leaves_no_tmp_files(tmp_path):
    cache = SweepCache(tmp_path, {"cfg": "A"})
    for i in range(5):
        cache.store((str(i),), {"v": i})
    assert not list(cache.cells_dir.glob("*.tmp"))
    assert len(cache) == 5


@pytest.mark.parametrize("key", [("x",), ("a", "b"), ("with space", "ünicode")])
def test_unusual_keys_round_trip(tmp_path, key):
    cache = SweepCache(tmp_path, {"cfg": "A"})
    cache.store(key, {"v": 42})
    assert cache.load(key) == {"v": 42}
