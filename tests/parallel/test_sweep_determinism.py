"""Cross-process determinism: parallel sweeps are bit-equal to serial.

The orchestrator's central promise is that sharding experiment cells
across worker processes changes *nothing* about the produced values:
every cell derives its randomness from its own coordinates, so the
2-worker parallel campaign must reproduce the in-process serial oracle
bit-for-bit — in the returned tables AND in the per-cell telemetry
payloads written to ``events.jsonl``.
"""

from dataclasses import replace

import pytest

from repro import telemetry
from repro.core import ExperimentConfig, run_table1
from repro.core.experiment import _table1_cell, _table1_cells
from repro.core.training import TrainingConfig
from repro.parallel import SweepOptions, run_cells


@pytest.fixture(scope="module")
def tiny():
    """2 seeds x 3 models on one dataset: 6 cells, < 1 min serial."""
    return ExperimentConfig(
        datasets=("Slope",),
        n_samples=50,
        seeds=(0, 1),
        training=replace(TrainingConfig.ci(), max_epochs=6, lr_patience=2),
        eval_mc=2,
        top_k=2,
    )


def _flatten(table):
    return {
        (dataset, kind): (entry.mean, entry.std, entry.n_failed)
        for dataset, row in table.items()
        for kind, entry in row.items()
    }


def _cell_end_payloads(run_dir):
    """Order-normalised {cell: (status, values)} from a run's events."""
    events = telemetry.read_events(run_dir / "events.jsonl", kind="sweep.cell_end")
    return {e["cell"]: (e["status"], e["values"]) for e in events}


@pytest.mark.slow
def test_table1_parallel_bit_equal_to_serial(tiny, tmp_path):
    with telemetry.Run(dir=tmp_path / "serial"):
        serial = run_table1(tiny, executor="serial")
    with telemetry.Run(dir=tmp_path / "parallel"):
        parallel = run_table1(
            tiny, sweep=SweepOptions(executor="parallel", max_workers=2)
        )

    # 1. The returned tables are bit-identical.
    assert _flatten(serial) == _flatten(parallel)

    # 2. The per-cell telemetry payloads are identical once order is
    # normalised (parallel completion order is scheduling-dependent).
    cells_serial = _cell_end_payloads(tmp_path / "serial")
    cells_parallel = _cell_end_payloads(tmp_path / "parallel")
    assert set(cells_serial) == set(cells_parallel)
    assert len(cells_serial) == len(tiny.datasets) * 3 * len(tiny.seeds)
    assert cells_serial == cells_parallel  # bit-equal float values

    # 3. Every cell succeeded in both campaigns.
    assert all(status == "ok" for status, _ in cells_serial.values())


@pytest.mark.slow
def test_table1_cells_independent_of_execution_order(tiny):
    """Running the same cell in isolation reproduces its sweep value."""
    cells = _table1_cells(tiny)
    sweep = run_cells(_table1_cell, cells, SweepOptions(executor="serial"))
    # Recompute two cells out of order, standalone.
    for cell in (cells[-1], cells[0]):
        assert _table1_cell(*cell.args) == sweep[cell.key].value


@pytest.mark.slow
def test_parallel_resume_after_interrupt_is_bit_equal(tiny, tmp_path):
    """A campaign killed mid-sweep resumes from cache to identical values."""
    cache_dir = str(tmp_path / "cache")
    cells = _table1_cells(tiny)

    # Oracle: one uninterrupted serial campaign (no cache).
    oracle = run_cells(_table1_cell, cells, SweepOptions(executor="serial"))

    # "Interrupted" campaign: only the first half of the grid ran
    # before the kill — simulated by submitting half the cells.
    half = SweepOptions(executor="serial", cache_dir=cache_dir)
    run_cells(
        _table1_cell, cells[: len(cells) // 2], half,
        fingerprint={"artefact": "table1", "config": "tiny"},
    )

    # Resume: full grid, parallel, same cache. Finished cells are
    # served from disk; the rest compute fresh — values bit-equal.
    resumed = run_cells(
        _table1_cell,
        cells,
        SweepOptions(executor="parallel", max_workers=2, cache_dir=cache_dir),
        fingerprint={"artefact": "table1", "config": "tiny"},
    )
    assert [resumed[c.key].cached for c in cells[: len(cells) // 2]] == [True] * (
        len(cells) // 2
    )
    assert {k: o.value for k, o in resumed.items()} == {
        k: o.value for k, o in oracle.items()
    }
