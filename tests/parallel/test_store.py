"""Campaign-store tests: schema, resume parity, corruption, queries.

The SQLite backend must honour the same storage contract as the
on-disk ``SweepCache`` — fingerprint-keyed cells, commit-per-cell
resume safety, corruption degrading to a clean miss — and additionally
make campaigns queryable (one SQL statement for cross-campaign
questions, shipped as ``EXAMPLE_QUERIES``).
"""

import json
import pathlib
import sqlite3

import pytest

from repro.parallel import SweepCell, SweepOptions, run_cells
from repro.parallel.cache import SweepCache
from repro.parallel.store import (
    DB_FILENAME,
    EXAMPLE_QUERIES,
    SCHEMA,
    CampaignStore,
    campaign_db_path,
    open_storage,
    run_query,
)


def cell_count_invocations(i: int, counter_dir: str):
    with open(pathlib.Path(counter_dir) / "calls.log", "a") as fh:
        fh.write(f"{i}\n")
    return {"sq": i * i}


def _invocations(counter_dir) -> int:
    path = pathlib.Path(counter_dir) / "calls.log"
    return len(path.read_text().splitlines()) if path.exists() else 0


def _cells(n, extra_args=()):
    return [SweepCell(key=("t", str(i)), args=(i, *extra_args)) for i in range(n)]


# -- interface roundtrip -----------------------------------------------------


def test_store_load_keys_roundtrip(tmp_path):
    with CampaignStore(tmp_path, {"v": 1}) as store:
        assert store.load(("a", "1")) is None  # miss before any store
        store.store(("a", "1"), {"x": 1}, meta={"attempts": 2, "elapsed_s": 0.5})
        store.store(("b", "2"), {"x": 2})
        assert store.load(("a", "1")) == {"x": 1}
        assert list(store.keys()) == [("a", "1"), ("b", "2")]
        assert len(store) == 2
    assert store.closed
    # Closed handles refuse access instead of failing obscurely.
    with pytest.raises(RuntimeError, match="closed"):
        store.load(("a", "1"))


def test_meta_lands_in_queryable_columns(tmp_path):
    with CampaignStore(tmp_path, {"v": 1}) as store:
        store.store(
            ("t", "0"), {"sq": 0},
            meta={"attempts": 3, "elapsed_s": 1.25, "worker_pid": 4242},
        )
    _, rows = run_query(
        campaign_db_path(tmp_path),
        "SELECT attempts, elapsed_s, worker_pid FROM cells",
    )
    assert rows == [(3, 1.25, 4242)]


def test_open_storage_backend_selection(tmp_path):
    files = open_storage(tmp_path / "a", {"v": 1}, "files")
    sqlite_store = open_storage(tmp_path / "b", {"v": 1}, "sqlite")
    try:
        assert isinstance(files, SweepCache)
        assert isinstance(sqlite_store, CampaignStore)
        with pytest.raises(ValueError, match="store must be one of"):
            open_storage(tmp_path, {"v": 1}, "magic")
    finally:
        files.close()
        sqlite_store.close()


# -- schema / reopen ---------------------------------------------------------


def test_reopen_is_schema_migration_noop(tmp_path):
    with CampaignStore(tmp_path, {"v": 1}) as store:
        store.store(("t", "0"), {"sq": 0})
        first_campaign = store.campaign_id

    def schema_sql():
        conn = sqlite3.connect(campaign_db_path(tmp_path))
        try:
            return sorted(
                row[0]
                for row in conn.execute(
                    "SELECT sql FROM sqlite_master WHERE type='table'"
                )
                if row[0]
            )
        finally:
            conn.close()

    before = schema_sql()
    with CampaignStore(tmp_path, {"v": 1}) as reopened:
        # Same protocol -> same campaign row, cells still present.
        assert reopened.campaign_id == first_campaign
        assert reopened.load(("t", "0")) == {"sq": 0}
        assert len(reopened) == 1
    assert schema_sql() == before  # CREATE TABLE IF NOT EXISTS: no DDL churn
    assert set(SCHEMA) == {"campaigns", "cells", "artifacts", "gauges"}


def test_campaigns_share_one_database(tmp_path):
    """Different protocols are separate campaigns in the same file."""
    with CampaignStore(tmp_path, {"config": "A"}) as a:
        a.store(("t", "0"), {"from": "A"})
        with CampaignStore(tmp_path, {"config": "B"}) as b:
            b.store(("t", "0"), {"from": "B"})
            assert a.campaign_id != b.campaign_id
            # No cross-talk: each campaign sees only its own cell.
            assert a.load(("t", "0")) == {"from": "A"}
            assert b.load(("t", "0")) == {"from": "B"}


# -- fingerprint parity / cross-backend bit-equality -------------------------


def test_backends_agree_on_fingerprints(tmp_path):
    protocol = {"fn": "m.f", "fingerprint": {"config": 1}}
    files = SweepCache(tmp_path / "files", protocol)
    with CampaignStore(tmp_path / "sqlite", protocol) as store:
        assert store.fingerprint == files.fingerprint


@pytest.mark.parametrize("store", ("files", "sqlite"))
def test_resume_without_recompute(tmp_path, store):
    counter = tmp_path / "counts"
    counter.mkdir()
    options = SweepOptions(
        executor="serial", cache_dir=str(tmp_path / "cache"), store=store
    )
    cells = _cells(3, extra_args=(str(counter),))

    first = run_cells(cell_count_invocations, cells, options, fingerprint={"v": 1})
    assert _invocations(counter) == 3
    second = run_cells(cell_count_invocations, cells, options, fingerprint={"v": 1})
    assert _invocations(counter) == 3  # nothing recomputed
    assert all(o.cached for o in second.values())
    for key in first:
        assert second[key].value == first[key].value


def test_backends_produce_bit_equal_values(tmp_path):
    counter = tmp_path / "counts"
    counter.mkdir()
    cells = _cells(3, extra_args=(str(counter),))
    by_backend = {}
    for store in ("files", "sqlite"):
        options = SweepOptions(
            executor="serial", cache_dir=str(tmp_path / f"cache-{store}"), store=store
        )
        out = run_cells(cell_count_invocations, cells, options, fingerprint={"v": 1})
        by_backend[store] = {key: o.value for key, o in out.items()}
    assert by_backend["files"] == by_backend["sqlite"]


# -- corruption --------------------------------------------------------------


def test_corrupt_database_quarantined_and_recreated(tmp_path):
    db = campaign_db_path(tmp_path)
    db.parent.mkdir(parents=True, exist_ok=True)
    db.write_bytes(b"this is not a sqlite file, not even close" * 40)

    with CampaignStore(tmp_path, {"v": 1}) as store:
        # The corrupt file became a clean miss, not an error...
        assert store.load(("t", "0")) is None
        store.store(("t", "0"), {"sq": 0})
        assert store.load(("t", "0")) == {"sq": 0}
    # ...and was kept aside for post-mortems.
    quarantined = list(tmp_path.glob(f"{DB_FILENAME}.corrupt-*"))
    assert len(quarantined) == 1
    assert db.exists() and db.stat().st_size > 0


def test_unreadable_cell_row_is_a_miss(tmp_path):
    with CampaignStore(tmp_path, {"v": 1}) as store:
        store.store(("t", "0"), {"sq": 0})
        store._conn.execute("UPDATE cells SET value = 'not json{'")
        store._conn.commit()
        assert store.load(("t", "0")) is None


# -- concurrency -------------------------------------------------------------


def test_readers_do_not_block_the_writer(tmp_path):
    """A read-only query succeeds while the writer's connection is open."""
    with CampaignStore(tmp_path, {"v": 1}) as store:
        store.store(("t", "0"), {"sq": 0})
        columns, rows = run_query(
            campaign_db_path(tmp_path), "SELECT COUNT(*) AS n FROM cells"
        )
        assert columns == ["n"] and rows == [(1,)]
        store.store(("t", "1"), {"sq": 1})  # writer still healthy afterwards
        assert len(store) == 2


def test_run_query_is_read_only(tmp_path):
    with CampaignStore(tmp_path, {"v": 1}) as store:
        store.store(("t", "0"), {"sq": 0})
    with pytest.raises(sqlite3.OperationalError):
        run_query(campaign_db_path(tmp_path), "DELETE FROM cells")
    _, rows = run_query(campaign_db_path(tmp_path), "SELECT COUNT(*) FROM cells")
    assert rows == [(1,)]


def test_run_query_missing_database(tmp_path):
    with pytest.raises(FileNotFoundError, match="no campaign database"):
        run_query(tmp_path / "nope.sqlite", "SELECT 1")


# -- cross-campaign queries --------------------------------------------------


def _seed_campaign(root, eval_mc, precision, robust_acc):
    protocol = {
        "fn": "m.cell",
        "fingerprint": {"config": {"eval_mc": eval_mc}, "precision": precision},
    }
    with CampaignStore(root, protocol) as store:
        for i in range(2):
            store.store(
                ("d", str(i)), {"clean_acc": 0.9, "robust_acc": robust_acc + i * 0.02}
            )


def test_example_query_answers_cross_campaign_question(tmp_path):
    """The flagship ROADMAP question is one SQL statement, no directory walk."""
    _seed_campaign(tmp_path, eval_mc=10, precision="float64", robust_acc=0.80)
    _seed_campaign(tmp_path, eval_mc=10, precision="float32", robust_acc=0.78)
    _seed_campaign(tmp_path, eval_mc=100, precision="float64", robust_acc=0.86)

    columns, rows = run_query(
        campaign_db_path(tmp_path), EXAMPLE_QUERIES["accuracy-by-mc-precision"]
    )
    assert columns == ["mc_samples", "precision", "n_cells", "robust_acc"]
    table = {(mc, prec): (n, round(acc, 6)) for mc, prec, n, acc in rows}
    assert table == {
        (10, "float32"): (2, 0.79),
        (10, "float64"): (2, 0.81),
        (100, "float64"): (2, 0.87),
    }


def test_every_example_query_executes(tmp_path):
    _seed_campaign(tmp_path, eval_mc=10, precision="float64", robust_acc=0.80)
    for name, sql in EXAMPLE_QUERIES.items():
        columns, _ = run_query(campaign_db_path(tmp_path), sql)
        assert columns, f"example query {name!r} returned no columns"


# -- artifacts / gauges ------------------------------------------------------


def test_artifacts_and_gauges_roundtrip(tmp_path):
    with CampaignStore(tmp_path, {"v": 1}) as store:
        store.store_artifact("table1.md", tmp_path / "table1.md", kind="report")
        store.record_gauges(
            {
                "mc": {
                    "by_backend": {
                        "batched": {"seconds": 1.5, "calls": 3.0},
                        "sequential": {"seconds": 4.0, "calls": 3.0},
                    }
                },
                "sweep.pool": {"slot0": {"seconds": 2.0, "calls": 5.0}},
                "junk": {"bad": {"note": "non-numeric leaves are skipped"}},
            }
        )
    db = campaign_db_path(tmp_path)
    _, artifacts = run_query(db, "SELECT name, kind FROM artifacts")
    assert artifacts == [("table1.md", "report")]
    _, gauges = run_query(
        db, "SELECT gauge, key, seconds, calls FROM gauges ORDER BY gauge, key"
    )
    assert gauges == [
        ("mc", "by_backend.batched", 1.5, 3.0),
        ("mc", "by_backend.sequential", 4.0, 3.0),
        ("sweep.pool", "slot0", 2.0, 5.0),
    ]


def test_protocol_stored_as_canonical_json(tmp_path):
    protocol = {"fn": "m.f", "fingerprint": {"b": 2, "a": 1}}
    with CampaignStore(tmp_path, protocol) as store:
        fingerprint = store.fingerprint
    _, rows = run_query(
        campaign_db_path(tmp_path),
        "SELECT protocol FROM campaigns WHERE fingerprint = ?",
        (fingerprint,),
    )
    stored = json.loads(rows[0][0])
    assert stored["fingerprint"] == {"a": 1, "b": 2}
    assert "cache_version" in stored  # CACHE_VERSION is part of identity
