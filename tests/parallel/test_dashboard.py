"""Dashboard tests: the pure event fold, rendering, ETA and watch().

``SweepDashboard`` is a pure fold — no clock, no TTY, no subprocess —
so every column is asserted from synthetic event sequences.  The
``watch()`` shell is exercised in its CI form (``once=True`` against a
finished run's ``events.jsonl``).
"""

import io
import json

from repro import telemetry
from repro.parallel import SweepCell, SweepOptions, run_cells
from repro.parallel.dashboard import SweepDashboard, _drain, watch


def cell_square(i: int):
    return {"sq": i * i}


def _start(n_cells=4, executor="pool", **extra):
    event = {
        "kind": "sweep.start",
        "executor": executor,
        "n_cells": n_cells,
        "n_cached": 0,
        "max_workers": 2,
        "store": "sqlite",
        "cache_fingerprint": "deadbeef00000000",
        "wall": 1000.0,
    }
    event.update(extra)
    return event


def _cell_end(cell, status="ok", cached=False, elapsed_s=2.0, wall=1010.0):
    return {
        "kind": "sweep.cell_end",
        "cell": cell,
        "status": status,
        "cached": cached,
        "elapsed_s": elapsed_s,
        "wall": wall,
    }


# -- event fold --------------------------------------------------------------


def test_fold_counts_outcomes():
    dash = SweepDashboard()
    dash.observe(_start(n_cells=4))
    dash.observe(_cell_end("t/0"))
    dash.observe(_cell_end("t/1", status="failed", cached=False))
    dash.observe(_cell_end("t/2", cached=True))
    assert (dash.ok, dash.failed, dash.cached_seen) == (1, 1, 1)
    assert dash.completed == 3 and not dash.done
    assert dash.failures == ["t/1"]
    dash.observe({"kind": "sweep.end", "n_ok": 3, "n_failed": 1, "elapsed_s": 9.5})
    assert dash.done and dash.ok == 3 and dash.elapsed_s == 9.5


def test_unknown_kinds_are_ignored():
    dash = SweepDashboard()
    dash.observe({"kind": "sweep.some_future_event", "x": 1})
    dash.observe({"no_kind": True})
    assert dash.completed == 0


def test_pool_slots_track_pids_and_replacements():
    dash = SweepDashboard()
    dash.observe(_start())
    dash.observe({"kind": "sweep.pool.start", "pids": [100, 200]})
    dash.observe(
        {"kind": "sweep.cell_start", "cell": "t/0", "attempt": 1,
         "worker_pid": 200, "wall": 1001.0}
    )
    frame = dash.render(now_wall=1003.0)
    assert "t/0 (attempt 1)" in frame and "200" in frame

    dash.observe({"kind": "sweep.pool.steal", "thief_slot": 0, "victim_slot": 1})
    dash.observe(
        {"kind": "sweep.pool.worker_replace", "slot": 1, "old_pid": 200,
         "new_pid": 300, "reason": "died", "restarts": 1}
    )
    assert dash.steals == 1 and dash.restarts == 1
    # The replaced slot maps its new pid; the old pid is forgotten.
    dash.observe(
        {"kind": "sweep.cell_start", "cell": "t/1", "attempt": 2,
         "worker_pid": 300, "wall": 1004.0}
    )
    dash.observe(_cell_end("t/1", wall=1006.0))
    frame = dash.render(now_wall=1006.0)
    assert "w1*" in frame  # replacement marker
    assert "steals 1" in frame and "replaced 1" in frame


def test_spawn_per_cell_pids_become_slots():
    """Without pool.start, each distinct worker pid gets its own row."""
    dash = SweepDashboard()
    dash.observe(_start(executor="parallel"))
    for pid, cell in ((111, "t/0"), (222, "t/1")):
        dash.observe(
            {"kind": "sweep.cell_start", "cell": cell, "attempt": 1,
             "worker_pid": pid, "wall": 1001.0}
        )
    frame = dash.render(now_wall=1002.0)
    assert "111" in frame and "222" in frame


# -- ETA ---------------------------------------------------------------------


def test_eta_needs_data_then_extrapolates():
    dash = SweepDashboard()
    dash.observe(_start(n_cells=4))
    assert dash.eta_s() is None  # no fresh cell yet — no rate
    dash.observe(_cell_end("t/0", elapsed_s=3.0))
    dash.observe(_cell_end("t/1", elapsed_s=5.0))
    # 2 remaining × mean 4s ÷ 2 workers = 4s.
    assert dash.eta_s() == 4.0
    dash.observe({"kind": "sweep.end", "n_ok": 4, "n_failed": 0})
    assert dash.eta_s() is None  # done — nothing to predict


# -- rendering ---------------------------------------------------------------


def test_render_progress_and_counters():
    dash = SweepDashboard()
    dash.observe(_start(n_cells=4))
    dash.observe(_cell_end("t/0"))
    dash.observe(_cell_end("t/1"))
    frame = dash.render(width=80)
    assert "executor=pool" in frame and "store=sqlite" in frame
    assert "campaign deadbeef00000000" in frame
    assert "2/4 ( 50%)" in frame
    assert "ok 2 · failed 0" in frame
    assert "█" in frame and "░" in frame


def test_render_lists_failures_with_overflow():
    dash = SweepDashboard()
    dash.observe(_start(n_cells=8))
    for i in range(6):
        dash.observe(_cell_end(f"t/{i}", status="failed"))
    frame = dash.render()
    assert "failed: t/0, t/1, t/2, t/3 (+2)" in frame


# -- tailing -----------------------------------------------------------------


def test_drain_waits_for_partial_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    dash = SweepDashboard()
    path.write_text(json.dumps(_start(n_cells=2)) + "\n" + '{"kind": "swe')
    with path.open() as handle:
        assert _drain(handle, dash) == 1  # partial trailing line not consumed
        # The writer finishes the line; the same handle picks it up.
        with path.open("a") as writer:
            writer.write('ep.cell_end", "cell": "t/0", "status": "ok"}\n')
        assert _drain(handle, dash) == 1
    assert dash.ok == 1


def test_watch_once_renders_real_campaign(tmp_path):
    cells = [SweepCell(key=("t", str(i)), args=(i,)) for i in range(3)]
    with telemetry.Run(dir=tmp_path / "run"):
        run_cells(cell_square, cells, SweepOptions(executor="serial"))
    out = io.StringIO()
    dash = watch(tmp_path / "run" / "events.jsonl", once=True, out=out)
    assert dash.done and dash.ok == 3 and dash.failed == 0
    frame = out.getvalue()
    assert "3/3 (100%)" in frame and "done in" in frame


def test_watch_follow_false_stops_at_eof(tmp_path):
    """A finished file without sweep.end still terminates (no tail loop)."""
    path = tmp_path / "events.jsonl"
    path.write_text(
        json.dumps(_start(n_cells=2)) + "\n" + json.dumps(_cell_end("t/0")) + "\n"
    )
    out = io.StringIO()
    dash = watch(path, once=False, follow=False, out=out)
    assert not dash.done and dash.ok == 1
    assert "1/2" in out.getvalue()
