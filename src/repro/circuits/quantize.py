"""Post-training quantisation of component values to a printable grid.

A trained model's continuous component values cannot all be printed:
inkjet and gravure processes realise a *discrete* set of values per
decade (droplet counts, layer repetitions).  This module snaps every
trained component — crossbar surrogates θ, filter R and C — to a
log-uniform E-series-style grid and reports the quantisation error, so
the accuracy cost of manufacturability can be measured (see
``benchmarks/bench_quantization.py``).

``values_per_decade = 6`` approximates the E6 series (20 % steps),
``12`` the E12 series (10 % steps) — the grids real resistor inks are
calibrated to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..nn.module import Module
from .crossbar import PrintedCrossbar
from .filters import FirstOrderLearnableFilter, SecondOrderLearnableFilter, _RCStage

__all__ = ["QuantizationReport", "snap_to_grid", "quantize_model"]


def snap_to_grid(values: np.ndarray, values_per_decade: int) -> np.ndarray:
    """Snap positive values to a log-uniform grid.

    The grid has ``values_per_decade`` points per factor-of-ten,
    anchored at 1.0 (…, 1.0, 10^(1/n), 10^(2/n), …).
    """
    values = np.asarray(values, dtype=np.float64)
    if np.any(values <= 0):
        raise ValueError("grid snapping requires positive values")
    if values_per_decade < 1:
        raise ValueError("values_per_decade must be >= 1")
    step = 1.0 / values_per_decade
    exponents = np.round(np.log10(values) / step) * step
    return 10.0**exponents


@dataclass
class QuantizationReport:
    """What changed when a model was snapped to the printable grid."""

    values_per_decade: int
    max_relative_error: float
    mean_relative_error: float
    n_quantized: int

    def __repr__(self) -> str:
        return (
            f"QuantizationReport(grid={self.values_per_decade}/decade, "
            f"max_err={self.max_relative_error:.1%}, "
            f"mean_err={self.mean_relative_error:.1%}, n={self.n_quantized})"
        )


def _snap_param(data: np.ndarray, values_per_decade: int, log_space: bool) -> tuple:
    """Snap one parameter array; returns (new_data, rel_errors)."""
    if log_space:
        raw = np.exp(data)
        snapped = snap_to_grid(raw, values_per_decade)
        rel = np.abs(snapped - raw) / raw
        return np.log(snapped), rel
    sign = np.sign(data)
    magnitude = np.abs(data)
    mask = magnitude > 0
    snapped = magnitude.copy()
    snapped[mask] = snap_to_grid(magnitude[mask], values_per_decade)
    rel = np.zeros_like(magnitude)
    rel[mask] = np.abs(snapped[mask] - magnitude[mask]) / magnitude[mask]
    return sign * snapped, rel


def quantize_model(model: Module, values_per_decade: int = 12) -> QuantizationReport:
    """Snap every printed component value of a model in place.

    Crossbar surrogates (θ, θ_b, θ_d — conductances) and filter R/C
    (trained in log space) are all quantised; ptanh η are left alone
    (they are realised by transistor geometry, not by value printing —
    synthesise them with :mod:`repro.circuits.ptanh_physical`).
    """
    errors = []
    count = 0
    for module in model.modules():
        if isinstance(module, PrintedCrossbar):
            for param in (module.theta, module.theta_b, module.theta_d):
                new, rel = _snap_param(param.data, values_per_decade, log_space=False)
                param.data = new
                errors.append(rel.reshape(-1))
                count += rel.size
        elif isinstance(module, _RCStage):
            for param in (module.log_r, module.log_c):
                new, rel = _snap_param(param.data, values_per_decade, log_space=True)
                param.data = new
                errors.append(rel.reshape(-1))
                count += rel.size
    if not count:
        raise TypeError("model contains no printable components to quantise")
    all_errors = np.concatenate(errors)
    return QuantizationReport(
        values_per_decade=values_per_decade,
        max_relative_error=float(all_errors.max()),
        mean_relative_error=float(all_errors.mean()),
        n_quantized=count,
    )
