"""Differentiable printed resistor crossbar (Fig. 3a, Eq. 1).

A crossbar column computes a voltage-domain weighted sum

    V_out = Σ_i (g_i / G) V_i + g_b / G,     G = Σ_i g_i + g_b + g_d,

where every g is a printed conductance.  Negative weights route the
input through a printed inverter (Fig. 3c).  Training follows the
surrogate-conductance formulation of the pNC literature [12, 15]: a
signed surrogate θ per crossing, with ``|θ|`` the conductance in
normalised units and ``sign(θ)`` selecting the inverter path.

Process variation enters as multiplicative factors ε on every
conductance and on the inverter gain, drawn from the module's
:class:`~repro.circuits.variation.VariationSampler` at each forward
call (fresh draw per Monte-Carlo sample, Eq. 13).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..autograd.tape import dynamic
from ..nn.module import Module, Parameter
from .pdk import DEFAULT_PDK, PrintedPDK
from .variation import VariationSampler, ideal_sampler

__all__ = ["PrintedCrossbar", "program_crossbar", "THETA_MIN", "THETA_MAX"]

#: Surrogate-conductance range in normalised units.  Conductances below
#: THETA_MIN are not printable and the crossing is left open (pruned).
THETA_MIN = 0.01
THETA_MAX = 1.0


class PrintedCrossbar(Module):
    """One layer of printed crossbar columns (``n_out`` weighted sums).

    Parameters
    ----------
    in_features, out_features:
        Number of input voltage rails and output columns.
    sampler:
        Source of variation draws; ideal (ε ≡ 1) when omitted.
    pdk:
        Technology used to map normalised conductances to printable
        resistances (power/device accounting).
    rng:
        Initialisation generator.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        sampler: Optional[VariationSampler] = None,
        pdk: PrintedPDK = DEFAULT_PDK,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("crossbar dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.sampler = sampler if sampler is not None else ideal_sampler()
        self.pdk = pdk

        # Signed surrogate conductances.  Init keeps |θ| comfortably
        # inside the printable window and mixes signs evenly.
        scale = 1.0 / np.sqrt(in_features + 2)
        magnitude = rng.uniform(0.1, 0.5, size=(out_features, in_features)) * scale * 3
        sign = rng.choice([-1.0, 1.0], size=(out_features, in_features))
        self.theta = Parameter(magnitude * sign)
        self.theta_b = Parameter(rng.uniform(-0.2, 0.2, size=out_features))
        self.theta_d = Parameter(rng.uniform(0.2, 0.6, size=out_features))

    # -- conductance views --------------------------------------------------

    def _magnitudes(self) -> tuple[Tensor, Tensor, Tensor, np.ndarray]:
        """Printable conductance magnitudes and the pruning mask.

        Crossings with ``|θ| < THETA_MIN`` are open circuits: they
        contribute no conductance and receive no gradient (they were
        pruned from the layout).  The remaining magnitudes are clamped
        at the printable maximum.
        """
        mag = self.theta.abs()
        # Dynamic tape leaf: the mask tracks the live θ, so replays
        # recompute it instead of baking in a stale constant.
        mask = dynamic(
            lambda: (np.abs(self.theta.data) >= THETA_MIN).astype(self.theta.data.dtype)
        )
        g = mag.clip(0.0, THETA_MAX) * mask
        g_b = self.theta_b.abs().clip(0.0, THETA_MAX)
        g_d = self.theta_d.abs().clip(THETA_MIN, THETA_MAX)
        return g, g_b, g_d, mask

    def forward(self, x: Tensor) -> Tensor:
        """Weighted sum of a batch of input voltages.

        Parameters
        ----------
        x:
            Input voltages, shape ``(batch, in_features)``.  Inside a
            batched-draws sampler context a leading Monte-Carlo axis is
            also accepted (``(draws, batch, in_features)``), or the 2-D
            input is broadcast across draws.

        Returns
        -------
        Output voltages, shape ``(batch, out_features)`` — with a
        leading ``draws`` axis in batched mode.
        """
        if x.ndim not in (2, 3) or x.shape[-1] != self.in_features:
            raise ValueError(f"expected (batch, {self.in_features}), got {x.shape}")
        if x.ndim == 3 and self.sampler.draws is None:
            raise ValueError(
                "3-D crossbar input requires an active batched-draws sampler context"
            )
        g, g_b, g_d, _ = self._magnitudes()

        # In batched mode every ε gains a leading draws axis.
        eps = Tensor(self.sampler.epsilon((self.out_features, self.in_features)))
        eps_b = Tensor(self.sampler.epsilon((self.out_features,)))
        eps_d = Tensor(self.sampler.epsilon((self.out_features,)))
        # Inverter non-ideality: gain = -(1 ⊙ ε_inv) on inverted rails.
        inv_gain = Tensor(self.sampler.epsilon((self.out_features, self.in_features)))

        g_eps = g * eps  # (out, in) or (draws, out, in)
        gb_eps = g_b * eps_b
        gd_eps = g_d * eps_d
        denom = g_eps.sum(axis=-1) + gb_eps + gd_eps  # (out,) / (draws, out)

        # Positive crossings pass the rail directly (gain +1); negative
        # ones pass the inverted rail, whose gain -ε_inv carries the
        # inverter's own process variation.
        # Sign masks are θ-dependent dynamic tape leaves (recomputed per
        # replay), coerced to the compute dtype up front so the wrapped
        # array is the marked object under every precision policy.
        dt = self.theta.data.dtype
        direct = Tensor(
            dynamic(lambda: np.where(np.sign(self.theta.data) >= 0, 1.0, 0.0).astype(dt))
        )
        inverted = Tensor(
            dynamic(lambda: np.where(np.sign(self.theta.data) >= 0, 0.0, -1.0).astype(dt))
        )
        path = direct + inv_gain * inverted

        weights = path * g_eps / denom.unsqueeze(-1)  # (..., out, in)
        bias_sign = Tensor(dynamic(lambda: np.sign(self.theta_b.data)))
        bias = bias_sign * gb_eps / denom * self.pdk.supply_voltage  # (..., out)
        # Batched matmul broadcasts (batch, in) @ (draws, in, out) to
        # (draws, batch, out) — one numpy GEMM per draw, no Python loop.
        return x @ weights.swapaxes(-1, -2) + bias.unsqueeze(-2)

    # -- hardware accounting ---------------------------------------------------

    def printable_resistances(self) -> np.ndarray:
        """Physical resistance (Ω) of every printable crossing.

        Normalised conductance 1.0 maps to the PDK's minimum crossbar
        resistance; THETA_MIN maps to its maximum.
        """
        g, g_b, g_d, mask = self._magnitudes()
        all_g = np.concatenate(
            [
                (g.data * mask).reshape(-1),
                np.abs(self.theta_b.data),
                g_d.data.reshape(-1),
            ]
        )
        all_g = all_g[all_g >= THETA_MIN]
        g_unit = 1.0 / (self.pdk.crossbar_r_min * THETA_MAX)
        return 1.0 / (all_g * g_unit)

    def count_input_resistors(self) -> int:
        """Printable input crossings (pruned ones excluded)."""
        return int((np.abs(self.theta.data) >= THETA_MIN).sum())

    def count_bias_resistors(self) -> int:
        """Bias + dummy resistors (one pair per output column)."""
        bias = int((np.abs(self.theta_b.data) >= THETA_MIN).sum())
        return bias + self.out_features  # dummy g_d always present

    def count_inverters(self) -> int:
        """Inverters needed: one per negative printable crossing, plus
        one per negative bias."""
        neg = (self.theta.data < -THETA_MIN).sum()
        neg_bias = (self.theta_b.data < -THETA_MIN).sum()
        return int(neg + neg_bias)

    def weight_matrix(self) -> np.ndarray:
        """Nominal effective signed weights (no variation) — analysis aid."""
        g, g_b, g_d, mask = self._magnitudes()
        denom = g.data.sum(axis=1) + g_b.data + g_d.data
        return np.sign(self.theta.data) * g.data / denom[:, None]

    def __repr__(self) -> str:
        return (
            f"PrintedCrossbar(in={self.in_features}, out={self.out_features}, "
            f"pdk={self.pdk.name!r})"
        )


def program_crossbar(
    crossbar: PrintedCrossbar,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    headroom: float = 0.9,
) -> None:
    """Program a crossbar to realise given signed weights and biases.

    Inverts Eq. (1): for each output row, conductances are chosen so
    that ``g_i / G = |w_i|`` and ``g_b / G = |b|``, with the dummy
    conductance absorbing the slack ``1 − Σ|w| − |b|``.  This imports a
    software-trained affine layer into the printed substrate (weights
    are then refined by variation-aware training, or used as-is).

    Parameters
    ----------
    crossbar:
        Layer to program in place.
    weights:
        Signed weight matrix ``(out_features, in_features)``; every row
        must satisfy ``Σ|w| + |b| < 1`` (the conductance-divider
        constraint of the printed crossbar).
    bias:
        Signed biases ``(out_features,)``; zero when omitted.
    headroom:
        Fraction of the printable conductance ceiling used by the
        largest conductance of each row.

    Raises
    ------
    ValueError
        If a row violates the divider constraint, or a non-zero weight
        is too small to print relative to the row's largest (it would
        fall below the printable minimum and be pruned).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (crossbar.out_features, crossbar.in_features):
        raise ValueError(
            f"weights must be {(crossbar.out_features, crossbar.in_features)}, "
            f"got {weights.shape}"
        )
    bias = (
        np.zeros(crossbar.out_features)
        if bias is None
        else np.asarray(bias, dtype=np.float64)
    )
    if bias.shape != (crossbar.out_features,):
        raise ValueError("bias must have one entry per output")
    if not 0 < headroom <= 1:
        raise ValueError("headroom must be in (0, 1]")

    for o in range(crossbar.out_features):
        row = np.abs(weights[o])
        total = row.sum() + abs(bias[o])
        if total >= 1.0:
            raise ValueError(
                f"row {o}: sum of |weights| + |bias| = {total:.3f} must be < 1 "
                "(conductance-ratio constraint of Eq. 1)"
            )
        slack = 1.0 - total  # dummy conductance share
        shares = np.concatenate([row, [abs(bias[o]), slack]])
        largest = shares.max()
        scale = THETA_MAX * headroom / largest
        g = shares * scale
        nonzero = shares[:-1] > 0
        if np.any(g[:-1][nonzero] < THETA_MIN):
            raise ValueError(
                f"row {o}: weight dynamic range exceeds the printable window "
                f"[{THETA_MIN}, {THETA_MAX}] — smallest share would be pruned"
            )
        crossbar.theta.data[o] = np.sign(weights[o]) * g[: crossbar.in_features]
        crossbar.theta_b.data[o] = np.sign(bias[o]) * g[crossbar.in_features] if bias[o] else 0.0
        crossbar.theta_d.data[o] = max(g[-1], THETA_MIN)
