"""Learnable printed low-pass filters — the paper's core contribution.

A first-order printed RC stage driven at step size Δt obeys the
backward-Euler recurrence (paper Eq. 3, with the left-hand index typo
corrected: the first right-hand term reads ``V_out,K−1``):

    V_out,k = a · V_out,k−1 + b · V_in,k
    a = R·C / (R·C + μ·Δt),    b = Δt / (R·C + μ·Δt)

where μ ≥ 1 is the coupling factor accounting for current shunted into
the following stage (Eqs. 6-11; μ = 1 for an unloaded stage).

Note the placement of μ: discretising the *loaded* stage equation
``C dV/dt = (V_in − V)/R − V/R_load`` gives
``V_k = (RC·V_{k−1} + Δt·V_in) / (RC + κ·Δt)`` with
``κ = 1 + R/R_load`` — the coupling factor scales the Δt term, so the
DC gain is 1/κ ∈ [0.77, 1] for κ ∈ [1, 1.3], *independent of RC*.
The paper's Eqs. (10)-(11) print μ against RC instead, which would make
the DC gain collapse as Δt/((μ−1)RC + Δt) for long time constants — an
artefact of the typo'd equations, not of the circuit (the physical DC
gain of a resistively loaded RC stage cannot depend on C).  See
DESIGN.md for the full derivation.

The second-order learnable filter (SO-LF) chains two such stages with
independently trained R₁, C₁, R₂, C₂ — "despite previous work, in our
approach the resistors and capacitors are trained separately"
(Sec. III-1).

R and C are trained in log-space so positivity (printability) is
guaranteed; during variation-aware training each draw multiplies them
by sampled ε factors, and μ and the initial voltage V₀ are themselves
sampled per forward pass (Sec. III-A).

Scan backends
-------------
The time-unrolled recurrence is evaluated by one of two backends:

* ``"fused"`` (default) — the whole scan runs as a single custom
  autograd node (:func:`repro.autograd.filter_scan`) with an analytic
  reverse-time adjoint backward;
* ``"unfused"`` — the original node-per-step graph, retained as the
  bit-equal reference oracle (mirroring the Monte-Carlo engine's
  ``mc_backend`` pattern).

Both perform identical per-element arithmetic, so forward values are
bit-equal and gradients agree to floating-point accumulation order.
Per-backend wall-clock is recorded in
:data:`repro.utils.timing.mc_counters` and, while a
:class:`repro.telemetry.Run` is active, aggregated as
``scan.<backend>`` spans in the run's telemetry.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, filter_scan, stack
from ..nn.module import Module, Parameter
from ..telemetry import record_span
from ..utils.timing import Stopwatch, mc_counters
from .pdk import DEFAULT_PDK, PrintedPDK
from .variation import VariationSampler, ideal_sampler

__all__ = [
    "FirstOrderLearnableFilter",
    "SecondOrderLearnableFilter",
    "SCAN_BACKENDS",
    "filter_stages",
]

#: Default temporal discretisation: 1 kHz sensor sampling.
DEFAULT_DT = 1e-3

#: Valid recurrence evaluation backends: the fused single-node scan
#: kernel and the node-per-step reference oracle.
SCAN_BACKENDS = ("fused", "unfused")


def _init_log_rc(
    num_filters: int, pdk: PrintedPDK, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Log-space initial R (Ω) and C (F) drawn log-uniformly inside the
    printable window.

    Capacitances start in the upper printable decade — "the
    capacitances are designed as high as the printing technology
    allows" (Sec. IV-A1) — giving time constants RC up to ~100 ms so a
    1 kHz-sampled length-64 sequence fits inside the filter's memory.
    Gradient descent shortens them per channel where the task wants
    faster dynamics.
    """
    log_r = rng.uniform(np.log(pdk.filter_r_min * 4), np.log(pdk.filter_r_max), num_filters)
    log_c = rng.uniform(np.log(10e-6), np.log(pdk.capacitance_max), num_filters)
    return log_r, log_c


def _check_filter_input(x: Tensor, num_filters: int, sampler: VariationSampler) -> None:
    """Validate filter-bank input shape (draws-axis aware).

    Sequential mode expects ``(batch, time, n)``; inside a batched
    sampler context a leading draws axis is also accepted (and, when
    present, must match the active draw count).
    """
    batched = sampler.draws is not None
    if x.ndim == 3 and x.shape[2] == num_filters:
        return
    if batched and x.ndim == 4 and x.shape[3] == num_filters:
        if x.shape[0] != sampler.draws:
            raise ValueError(
                f"draws axis {x.shape[0]} does not match active batch of "
                f"{sampler.draws} Monte-Carlo draws"
            )
        return
    expected = "(draws, batch, time, n) or " if batched else ""
    raise ValueError(f"expected {expected}(batch, time, {num_filters}), got {x.shape}")


class _RCStage(Module):
    """One learnable printed RC stage operating on ``(batch, n)`` steps."""

    def __init__(
        self,
        num_filters: int,
        pdk: PrintedPDK,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        log_r, log_c = _init_log_rc(num_filters, pdk, rng)
        self.log_r = Parameter(log_r)
        self.log_c = Parameter(log_c)
        self.num_filters = num_filters
        self.pdk = pdk

    def coefficients(
        self, dt: float, sampler: VariationSampler
    ) -> Tuple[Tensor, Tensor]:
        """Sampled recurrence coefficients ``(a, b)`` for one forward pass.

        ``(n,)`` in sequential mode; ``(draws, n)`` when the sampler is
        inside a :meth:`~repro.circuits.VariationSampler.batched`
        context (every Monte-Carlo draw evaluated in one pass).
        """
        n = self.num_filters
        eps_r = Tensor(sampler.epsilon((n,)))
        eps_c = Tensor(sampler.epsilon((n,)))
        mu = Tensor(sampler.mu((n,)))
        r = self.log_r.exp() * eps_r
        c = self.log_c.exp() * eps_c
        rc = r * c
        # One reciprocal instead of two divides (and no materialised
        # ``np.full(n, dt)`` constant node): a = rc·inv, b = dt·inv.
        inv = 1.0 / (rc + mu * dt)
        return rc * inv, inv * dt

    def nominal_coefficients(self, dt: float) -> Tuple[np.ndarray, np.ndarray]:
        """Ideal-instance recurrence coefficients ``(a, b)`` as plain arrays.

        Performs the exact arithmetic of :meth:`coefficients` under
        :func:`~repro.circuits.ideal_sampler` (ε ≡ 1, μ ≡ 1) — one
        reciprocal, then ``a = rc·inv``, ``b = inv·dt`` — so consumers
        that freeze the nominal instance (:class:`~repro.core.StreamingClassifier`,
        :func:`repro.compile.compile_plan`) are bit-equal to the live
        forward pass.  No autograd graph is built.
        """
        rc = np.exp(self.log_r.data) * np.exp(self.log_c.data)
        inv = 1.0 / (rc + dt)
        return rc * inv, inv * dt

    def nominal_values(self) -> Tuple[np.ndarray, np.ndarray]:
        """Nominal (R, C) values in Ω and F, clipped to the printable window."""
        r = np.exp(self.log_r.data)
        c = np.exp(self.log_c.data)
        r = np.clip(r, self.pdk.filter_r_min, self.pdk.filter_r_max)
        c = np.clip(c, self.pdk.capacitance_min, self.pdk.capacitance_max)
        return r, c


def _unfused_recurrence(x: Tensor, a: Tensor, b: Tensor, v0: Tensor) -> Tensor:
    """Node-per-step oracle: one autograd node per primitive per step."""
    steps = x.shape[-2]
    if a.ndim == 2:
        # (draws, n) -> (draws, 1, n): broadcast over the batch axis.
        a = a.unsqueeze(1)
        b = b.unsqueeze(1)
    v = v0
    outputs: List[Tensor] = []
    for k in range(steps):
        v = a * v + b * x[..., k, :]
        outputs.append(v)
    return stack(outputs, axis=-2)


def filter_stages(filters) -> "List[_RCStage]":
    """The ordered :class:`_RCStage` list of a learnable filter bank.

    The **single** dispatch point shared by every consumer that freezes
    or streams a filter bank — :func:`repro.compile.compile_plan`,
    :class:`~repro.core.StreamingSession` and the SPICE exporter all
    resolve stages through here, so their recurrence coefficients can
    never drift apart.
    """
    if isinstance(filters, FirstOrderLearnableFilter):
        return [filters.stage]
    if isinstance(filters, SecondOrderLearnableFilter):
        return [filters.stage1, filters.stage2]
    raise TypeError(f"unsupported filter bank {type(filters).__name__}")


def _run_recurrence(
    x: Tensor, a: Tensor, b: Tensor, v0: Tensor, backend: str = "fused"
) -> Tensor:
    """Apply ``v_k = a v_{k-1} + b x_k`` along the time axis.

    Shape-polymorphic over the Monte-Carlo ``draws`` axis:

    * sequential — ``x`` is ``(batch, time, n)``; ``a``/``b`` are
      ``(n,)``; ``v0`` is ``(batch, n)`` or ``(n,)``;
    * batched — ``a``/``b`` carry a leading draws axis ``(draws, n)``
      and ``v0`` is ``(draws, batch, n)``; ``x`` may be the shared
      input ``(batch, time, n)`` (broadcast over draws) or an already
      draw-dependent ``(draws, batch, time, n)`` stack.

    Returns ``(batch, time, n)`` or ``(draws, batch, time, n)``.

    ``backend`` selects the evaluation strategy: ``"fused"`` runs the
    whole scan as one custom autograd node with an analytic adjoint
    backward (:func:`repro.autograd.filter_scan`); ``"unfused"`` is the
    original node-per-step graph, kept as the bit-equal reference
    oracle.  Forward wall-clock per backend is recorded in
    :data:`repro.utils.timing.mc_counters`.
    """
    if backend not in SCAN_BACKENDS:
        raise ValueError(f"scan_backend must be one of {SCAN_BACKENDS}, got {backend!r}")
    with Stopwatch() as sw:
        if backend == "fused":
            out = filter_scan(x, a, b, v0)
        else:
            out = _unfused_recurrence(x, a, b, v0)
    mc_counters.record_scan(sw.elapsed, backend)
    record_span(f"scan.{backend}", sw.elapsed)
    return out


def _chunk_forward(
    filters, x: Tensor, state: Optional[Tuple[np.ndarray, ...]]
) -> Tuple[Tensor, Tuple[np.ndarray, ...]]:
    """Shared FO/SO implementation of ``forward_chunk`` (see below).

    Runs each RC stage from a carried ``v_{k-1}`` and returns the new
    per-stage state (the last output step of each stage).  Because the
    recurrence is pure element-wise arithmetic, chaining chunks through
    the returned state is **bit-equal** to the one-shot scan for any
    partition of the time axis — provided the sampler draws are
    deterministic (the ideal sampler; a stochastic sampler redraws
    ε/μ/V₀ per call, which breaks cross-chunk equivalence by design).
    """
    _check_filter_input(x, filters.num_filters, filters.sampler)
    if filters.sampler.draws is not None:
        raise ValueError(
            "forward_chunk streams a single instance; it cannot run inside "
            "a batched-draws sampler context"
        )
    stages = filter_stages(filters)
    if state is not None and len(state) != len(stages):
        raise ValueError(
            f"carried state has {len(state)} stage(s), filter bank has "
            f"{len(stages)}"
        )
    batch, n = x.shape[-3], filters.num_filters
    out = x
    new_state = []
    for i, stage in enumerate(stages):
        a, b = stage.coefficients(filters.dt, filters.sampler)
        if state is None:
            v0 = np.asarray(filters.sampler.initial_voltage((batch, n)))
        else:
            v0 = np.asarray(state[i])
            if v0.shape != (batch, n):
                raise ValueError(
                    f"stage {i} state must have shape {(batch, n)}, "
                    f"got {v0.shape}"
                )
        out = _run_recurrence(out, a, b, Tensor(v0), backend=filters.scan_backend)
        new_state.append(np.array(out.data[..., -1, :], copy=True))
    return out, tuple(new_state)


class FirstOrderLearnableFilter(Module):
    """Bank of first-order learnable printed low-pass filters.

    The baseline pTPNC's temporal element [8].  Each of ``num_filters``
    channels applies its own RC recurrence along the time axis of a
    ``(batch, time, num_filters)`` input.
    """

    def __init__(
        self,
        num_filters: int,
        dt: float = DEFAULT_DT,
        sampler: Optional[VariationSampler] = None,
        pdk: PrintedPDK = DEFAULT_PDK,
        rng: Optional[np.random.Generator] = None,
        scan_backend: str = "fused",
    ) -> None:
        super().__init__()
        if num_filters <= 0:
            raise ValueError("num_filters must be positive")
        if dt <= 0:
            raise ValueError("dt must be positive")
        if scan_backend not in SCAN_BACKENDS:
            raise ValueError(f"scan_backend must be one of {SCAN_BACKENDS}")
        rng = rng if rng is not None else np.random.default_rng()
        self.num_filters = num_filters
        self.dt = dt
        self.sampler = sampler if sampler is not None else ideal_sampler()
        self.pdk = pdk
        self.scan_backend = scan_backend
        self.stage = _RCStage(num_filters, pdk, rng)

    def set_scan_backend(self, backend: str) -> None:
        """Select the recurrence evaluation backend (``fused``/``unfused``)."""
        if backend not in SCAN_BACKENDS:
            raise ValueError(f"scan_backend must be one of {SCAN_BACKENDS}")
        self.scan_backend = backend

    def forward(self, x: Tensor) -> Tensor:
        """Filter a batch of sequences ``(batch, time, num_filters)``.

        Inside a batched-draws sampler context the output (and,
        optionally, the input) carries a leading ``draws`` axis.
        """
        _check_filter_input(x, self.num_filters, self.sampler)
        a, b = self.stage.coefficients(self.dt, self.sampler)
        v0 = Tensor(self.sampler.initial_voltage((x.shape[-3], self.num_filters)))
        return _run_recurrence(x, a, b, v0, backend=self.scan_backend)

    def forward_chunk(
        self, x: Tensor, state: Optional[Tuple[np.ndarray, ...]] = None
    ) -> Tuple[Tensor, Tuple[np.ndarray, ...]]:
        """Stateful chunked filtering: resume from carried ``v_{k-1}``.

        ``state`` is the tuple returned by the previous call (``None``
        starts a fresh stream from the sampler's initial voltage).
        Returns ``(filtered_chunk, new_state)``; chaining chunks is
        bit-equal to one-shot :meth:`forward` under the ideal sampler.
        """
        return _chunk_forward(self, x, state)

    # -- hardware accounting ----------------------------------------------

    def count_resistors(self) -> int:
        """One printed resistor per channel."""
        return self.num_filters

    def count_capacitors(self) -> int:
        """One printed capacitor per channel."""
        return self.num_filters

    def count_transistors(self) -> int:
        """Passive stage: no transistors."""
        return 0

    def component_values(self) -> dict:
        """Nominal printable component values."""
        r, c = self.stage.nominal_values()
        return {"R": r, "C": c}

    def __repr__(self) -> str:
        return f"FirstOrderLearnableFilter(num_filters={self.num_filters}, dt={self.dt})"


class SecondOrderLearnableFilter(Module):
    """Bank of second-order learnable filters (SO-LF) — Sec. III.

    Two back-to-back RC stages per channel, each with independently
    trained R and C and its own sampled coupling factor μ.  The sharper
    roll-off and richer dynamic response are what give ADAPT-pNC its
    robustness to noisy temporal inputs.

    A decoupling buffer (2 printed transistors per channel) isolates the
    cascade from the following crossbar — reflected in the transistor
    count of the proposed design (Table III).
    """

    #: transistors per channel for the inter-stage decoupling buffer
    BUFFER_TRANSISTORS = 2

    def __init__(
        self,
        num_filters: int,
        dt: float = DEFAULT_DT,
        sampler: Optional[VariationSampler] = None,
        pdk: PrintedPDK = DEFAULT_PDK,
        rng: Optional[np.random.Generator] = None,
        scan_backend: str = "fused",
    ) -> None:
        super().__init__()
        if num_filters <= 0:
            raise ValueError("num_filters must be positive")
        if dt <= 0:
            raise ValueError("dt must be positive")
        if scan_backend not in SCAN_BACKENDS:
            raise ValueError(f"scan_backend must be one of {SCAN_BACKENDS}")
        rng = rng if rng is not None else np.random.default_rng()
        self.num_filters = num_filters
        self.dt = dt
        self.sampler = sampler if sampler is not None else ideal_sampler()
        self.pdk = pdk
        self.scan_backend = scan_backend
        self.stage1 = _RCStage(num_filters, pdk, rng)
        self.stage2 = _RCStage(num_filters, pdk, rng)

    def set_scan_backend(self, backend: str) -> None:
        """Select the recurrence evaluation backend (``fused``/``unfused``)."""
        if backend not in SCAN_BACKENDS:
            raise ValueError(f"scan_backend must be one of {SCAN_BACKENDS}")
        self.scan_backend = backend

    def forward(self, x: Tensor) -> Tensor:
        """Filter a batch of sequences ``(batch, time, num_filters)``.

        Implements Eqs. (10)-(11): the intermediate voltage of stage 1
        feeds stage 2; both recurrences carry their own μ draw.  Inside
        a batched-draws sampler context the output carries a leading
        ``draws`` axis.
        """
        _check_filter_input(x, self.num_filters, self.sampler)
        a1, b1 = self.stage1.coefficients(self.dt, self.sampler)
        a2, b2 = self.stage2.coefficients(self.dt, self.sampler)
        batch = x.shape[-3]
        v0_1 = Tensor(self.sampler.initial_voltage((batch, self.num_filters)))
        v0_2 = Tensor(self.sampler.initial_voltage((batch, self.num_filters)))
        intermediate = _run_recurrence(x, a1, b1, v0_1, backend=self.scan_backend)
        return _run_recurrence(intermediate, a2, b2, v0_2, backend=self.scan_backend)

    def forward_chunk(
        self, x: Tensor, state: Optional[Tuple[np.ndarray, ...]] = None
    ) -> Tuple[Tensor, Tuple[np.ndarray, ...]]:
        """Stateful chunked filtering: resume both stages from carried state.

        ``state`` is the 2-tuple ``(v_stage1, v_stage2)`` returned by the
        previous call (``None`` starts a fresh stream).  Returns
        ``(filtered_chunk, new_state)``; chaining chunks is bit-equal to
        one-shot :meth:`forward` under the ideal sampler.
        """
        return _chunk_forward(self, x, state)

    # -- hardware accounting ----------------------------------------------

    def count_resistors(self) -> int:
        """Two printed resistors per channel."""
        return 2 * self.num_filters

    def count_capacitors(self) -> int:
        """Two printed capacitors per channel."""
        return 2 * self.num_filters

    def count_transistors(self) -> int:
        """Decoupling buffer transistors per channel."""
        return self.BUFFER_TRANSISTORS * self.num_filters

    def component_values(self) -> dict:
        """Nominal printable component values for both stages."""
        r1, c1 = self.stage1.nominal_values()
        r2, c2 = self.stage2.nominal_values()
        return {"R1": r1, "C1": c1, "R2": r2, "C2": c2}

    def __repr__(self) -> str:
        return f"SecondOrderLearnableFilter(num_filters={self.num_filters}, dt={self.dt})"
