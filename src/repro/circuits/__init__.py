"""Printed neuromorphic circuit primitives (crossbar, ptanh, filters, PDK)."""

from .coupling import CouplingFit, build_so_filter_circuit, extract_mu_range, fit_mu
from .crossbar import THETA_MAX, THETA_MIN, PrintedCrossbar, program_crossbar
from .filters import (
    DEFAULT_DT,
    SCAN_BACKENDS,
    FirstOrderLearnableFilter,
    SecondOrderLearnableFilter,
    filter_stages,
)
from .pdk import BASELINE_PDK, DEFAULT_PDK, PrintedPDK
from .ptanh import PrintedTanh
from .quantize import QuantizationReport, quantize_model, snap_to_grid
from .synthesis import SynthesisResult, synthesize_ptanh
from .ptanh_physical import (
    PhysicalTanhFit,
    build_ptanh_circuit,
    derive_eta,
    make_printed_tanh,
)
from .variation import (
    GaussianVariation,
    GMMVariation,
    NoVariation,
    UniformVariation,
    VariationModel,
    VariationSampler,
    ideal_sampler,
)

__all__ = [
    "PrintedCrossbar",
    "program_crossbar",
    "THETA_MIN",
    "THETA_MAX",
    "PrintedTanh",
    "FirstOrderLearnableFilter",
    "SecondOrderLearnableFilter",
    "DEFAULT_DT",
    "SCAN_BACKENDS",
    "filter_stages",
    "PrintedPDK",
    "DEFAULT_PDK",
    "BASELINE_PDK",
    "VariationModel",
    "NoVariation",
    "UniformVariation",
    "GaussianVariation",
    "GMMVariation",
    "VariationSampler",
    "ideal_sampler",
    "fit_mu",
    "extract_mu_range",
    "build_so_filter_circuit",
    "CouplingFit",
    "PhysicalTanhFit",
    "build_ptanh_circuit",
    "derive_eta",
    "make_printed_tanh",
    "snap_to_grid",
    "quantize_model",
    "QuantizationReport",
    "synthesize_ptanh",
    "SynthesisResult",
]
