"""Printed process design kit (pPDK) facts used across the reproduction.

Encodes the circuit-design setup of Sec. IV-A1 of the paper and the
device/power primitives of the n-EGT printed PDK [27, 28]:

* crossbar resistors are printed in ``[100 kΩ, 10 MΩ]``;
* filter resistors are designed below 1 kΩ;
* printed capacitors span ``[100 nF, 100 µF]``;
* the supply / crossbar bias voltage is 1 V;
* per-device static power is calibrated from the published hardware
  table of the baseline pTPNC [8] and of the proposed redesigned
  primitives (Table III) — we cannot simulate EGT ink physics, but the
  *counts* are computed structurally from our trained architectures and
  the per-device coefficients below carry the published technology gap.

Device-count primitives (per pPDK schematics, Fig. 3 of the paper):

* one crossbar column with ``n`` signed inputs: ``n + 2`` resistors
  (inputs + bias + dummy-to-ground);
* one printed inverter (negative weight): 2 transistors + 1 resistor;
* one ptanh activation: 2 transistors + 2 resistors;
* a first-order learnable filter: 1 resistor + 1 capacitor;
* a second-order learnable filter (SO-LF): 2 resistors + 2 capacitors.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PrintedPDK", "DEFAULT_PDK", "BASELINE_PDK"]


@dataclass(frozen=True)
class PrintedPDK:
    """Technology constants for one printed circuit design style.

    Two instances ship with the library: :data:`BASELINE_PDK` models the
    NANOARCH'23 pTPNC design point [8]; :data:`DEFAULT_PDK` models the
    redesigned high-impedance primitives of ADAPT-pNC (Sec. IV-A1).
    """

    name: str

    # Printable value ranges ------------------------------------------------
    crossbar_r_min: float  # ohms
    crossbar_r_max: float  # ohms
    filter_r_min: float  # ohms
    filter_r_max: float  # ohms
    capacitance_min: float  # farads
    capacitance_max: float  # farads

    # Electrical environment -----------------------------------------------
    supply_voltage: float = 1.0  # volts (crossbar bias V_b = 1 V, Eq. 1)

    # Static power per device class (watts), calibrated per design style ----
    transistor_bias_power: float = 1e-6
    resistor_utilisation: float = 0.5  # fraction of V_dd^2/R dissipated on avg

    # Process variation ------------------------------------------------------
    nominal_variation: float = 0.10  # ±10 %, the paper's headline setting

    def __post_init__(self) -> None:
        if not 0 < self.crossbar_r_min < self.crossbar_r_max:
            raise ValueError("invalid crossbar resistance range")
        if not 0 < self.filter_r_min <= self.filter_r_max:
            raise ValueError("invalid filter resistance range")
        if not 0 < self.capacitance_min < self.capacitance_max:
            raise ValueError("invalid capacitance range")
        if self.supply_voltage <= 0:
            raise ValueError("supply voltage must be positive")
        if not 0 <= self.nominal_variation < 1:
            raise ValueError("variation must be in [0, 1)")

    # -- derived quantities ---------------------------------------------------

    def resistor_static_power(self, resistance: float) -> float:
        """Average static power of one printed resistor at this node.

        ``P = utilisation * V_dd^2 / R`` — the utilisation factor folds
        in the average operating-point voltage across the element.
        """
        if resistance <= 0:
            raise ValueError("resistance must be positive")
        return self.resistor_utilisation * self.supply_voltage**2 / resistance

    def clip_crossbar_resistance(self, resistance: float) -> float:
        """Clamp a resistance into the printable crossbar range."""
        return min(max(resistance, self.crossbar_r_min), self.crossbar_r_max)

    def clip_filter_resistance(self, resistance: float) -> float:
        """Clamp a resistance into the printable filter range."""
        return min(max(resistance, self.filter_r_min), self.filter_r_max)

    def clip_capacitance(self, capacitance: float) -> float:
        """Clamp a capacitance into the printable range."""
        return min(max(capacitance, self.capacitance_min), self.capacitance_max)


#: ADAPT-pNC design point: high-impedance crossbars (100 kΩ–10 MΩ),
#: sub-kΩ filter resistors, large printed capacitors; redesigned
#: low-bias-current transistor stages.
DEFAULT_PDK = PrintedPDK(
    name="adapt-pnc",
    crossbar_r_min=100e3,
    crossbar_r_max=10e6,
    filter_r_min=50.0,
    filter_r_max=1e3,
    capacitance_min=100e-9,
    capacitance_max=100e-6,
    transistor_bias_power=0.8e-6,
    resistor_utilisation=0.5,
)

#: Baseline pTPNC design point [8]: lower-impedance crossbars
#: (10 kΩ–1 MΩ) and the original transistor stages with roughly 30×
#: higher static bias power — the published Table III power gap.
BASELINE_PDK = PrintedPDK(
    name="ptpnc-nanoarch23",
    crossbar_r_min=10e3,
    crossbar_r_max=1e6,
    filter_r_min=50.0,
    filter_r_max=1e3,
    capacitance_min=100e-9,
    capacitance_max=100e-6,
    transistor_bias_power=25e-6,
    resistor_utilisation=0.5,
)
