"""Physical derivation of the ptanh η parameters from q^A = [R₁, R₂, T₁, T₂].

Sec. II-B of the paper: "Parameters η_i adjust the tanh function and
are determined by component values q^A = [R₁^A, R₂^A, T₁^A, T₂^A]".
The authors characterise the circuit in Cadence; here the same study
runs on the in-repo nonlinear MNA engine:

1. build the two-stage printed activation circuit — two resistor-loaded
   n-EGT common-source stages in cascade (each stage inverts, so the
   cascade is a monotone rising, doubly-saturating "tanh-like" curve);
2. sweep the input voltage and record the DC transfer curve;
3. least-squares fit ``V_out = η₁ + η₂·tanh((V_in − η₃)·η₄)``.

:func:`derive_eta` returns the fitted η and the fit error, and
:func:`make_printed_tanh` builds a trained-initialisation
:class:`~repro.circuits.ptanh.PrintedTanh` whose per-neuron η start at
the physically derived values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.optimize import curve_fit

from ..spice.nonlinear import EGTParameters, NonlinearCircuit, dc_transfer_sweep
from .ptanh import PrintedTanh

__all__ = ["PhysicalTanhFit", "build_ptanh_circuit", "derive_eta", "make_printed_tanh"]

SUPPLY = 1.0  # printed n-EGT circuits run from a 1 V rail


def build_ptanh_circuit(
    r1: float,
    r2: float,
    t1: Optional[EGTParameters] = None,
    t2: Optional[EGTParameters] = None,
    supply: float = SUPPLY,
) -> NonlinearCircuit:
    """The printed tanh-like activation netlist (Fig. 3b).

    ``vin — [T1 gate]``; stage 1: R₁ from VDD to ``s1``, T1 pulls ``s1``
    down; stage 2: ``s1`` drives T2's gate, R₂ loads node ``out``.
    """
    if r1 <= 0 or r2 <= 0:
        raise ValueError("load resistances must be positive")
    t1 = t1 if t1 is not None else EGTParameters()
    t2 = t2 if t2 is not None else EGTParameters()
    circuit = NonlinearCircuit("ptanh")
    circuit.add_voltage_source("vdd", "vdd", 0, supply)
    circuit.add_voltage_source("vin", "in", 0, 0.0)
    circuit.add_resistor("r1", "vdd", "s1", r1)
    circuit.add_egt("t1", "s1", "in", 0, t1)
    circuit.add_resistor("r2", "vdd", "out", r2)
    circuit.add_egt("t2", "out", "s1", 0, t2)
    return circuit


@dataclass
class PhysicalTanhFit:
    """η parameters fitted to a simulated transfer curve."""

    eta1: float
    eta2: float
    eta3: float
    eta4: float
    rms_error: float
    v_in: np.ndarray
    v_out: np.ndarray

    @property
    def eta(self) -> np.ndarray:
        """The four η as an array."""
        return np.array([self.eta1, self.eta2, self.eta3, self.eta4])

    def evaluate(self, v_in: np.ndarray) -> np.ndarray:
        """The fitted analytic transfer at the given inputs."""
        return self.eta1 + self.eta2 * np.tanh((np.asarray(v_in) - self.eta3) * self.eta4)


def _ptanh_form(v, eta1, eta2, eta3, eta4):
    return eta1 + eta2 * np.tanh((v - eta3) * eta4)


def derive_eta(
    r1: float = 20e3,
    r2: float = 20e3,
    t1: Optional[EGTParameters] = None,
    t2: Optional[EGTParameters] = None,
    v_min: float = 0.0,
    v_max: float = SUPPLY,
    points: int = 60,
) -> PhysicalTanhFit:
    """Characterise the activation circuit and fit η (Sec. II-B).

    Sweeps the physically meaningful input window (printed circuits run
    rail-to-rail on a 1 V supply) and returns the η fit together with
    the RMS error, which quantifies how "tanh-like" the chosen
    component values are.
    """
    circuit = build_ptanh_circuit(r1, r2, t1, t2)
    v_in = np.linspace(v_min, v_max, points)
    v_out = dc_transfer_sweep(circuit, "vin", "out", v_in)

    mid = 0.5 * (v_out.max() + v_out.min())
    swing = max(0.5 * (v_out.max() - v_out.min()), 1e-3)
    centre_guess = float(v_in[np.argmin(np.abs(v_out - mid))])
    p0 = [mid, swing, centre_guess, 8.0]
    bounds = ([-2.0, 1e-4, -1.0, 0.1], [2.0, 2.0, 2.0, 100.0])
    params, _ = curve_fit(_ptanh_form, v_in, v_out, p0=p0, bounds=bounds, maxfev=20000)
    fitted = _ptanh_form(v_in, *params)
    rms = float(np.sqrt(np.mean((fitted - v_out) ** 2)))
    return PhysicalTanhFit(
        eta1=float(params[0]),
        eta2=float(params[1]),
        eta3=float(params[2]),
        eta4=float(params[3]),
        rms_error=rms,
        v_in=v_in,
        v_out=v_out,
    )


def make_printed_tanh(
    num_neurons: int,
    fit: PhysicalTanhFit,
    sampler=None,
    rng: Optional[np.random.Generator] = None,
    recenter: bool = True,
) -> PrintedTanh:
    """Build a :class:`PrintedTanh` initialised at the physical η.

    With ``recenter=True`` the offsets η₁/η₃ are shifted so the circuit
    operates on the normalised signal range of the datasets ([-1, 1]
    around 0) rather than the raw supply-referenced window — the level
    shift a printed bias network provides.
    """
    rng = rng if rng is not None else np.random.default_rng()
    act = PrintedTanh(num_neurons, sampler=sampler, rng=rng)
    act.eta1.data = np.full(num_neurons, 0.0 if recenter else fit.eta1)
    act.eta2.data = np.full(num_neurons, fit.eta2)
    act.eta3.data = np.full(num_neurons, 0.0 if recenter else fit.eta3)
    act.eta4.data = np.full(num_neurons, fit.eta4)
    return act
