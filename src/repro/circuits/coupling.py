"""Coupling-factor (μ) extraction via circuit simulation.

The discrete filter model multiplies each stage's time constant by a
coupling factor μ (Eqs. 8-11) because part of the current through the
stage resistor is shunted into the next stage / the crossbar instead of
charging the stage capacitor.  The paper bounds μ ∈ [1, 1.3] "through
SPICE simulations using the printed PDK"; this module reproduces that
study with the in-repo MNA engine:

1. build the loaded SO-LF netlist (two RC stages + crossbar input
   resistance),
2. simulate its step response,
3. fit (μ₁, μ₂) of the decoupled discrete model to the simulated
   response by least squares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.optimize import minimize

from ..spice import Circuit, Step, transient
from .pdk import DEFAULT_PDK, PrintedPDK

__all__ = ["CouplingFit", "build_so_filter_circuit", "fit_mu", "extract_mu_range"]


def build_so_filter_circuit(
    r1: float,
    c1: float,
    r2: float,
    c2: float,
    r_load: float,
) -> Circuit:
    """Netlist of a second-order RC filter loaded by a crossbar input.

    ``vin -- R1 -- m (C1 to gnd) -- R2 -- out (C2 to gnd, R_load to gnd)``
    """
    if min(r1, c1, r2, c2, r_load) <= 0:
        raise ValueError("all component values must be positive")
    circuit = Circuit("so_lf_loaded")
    circuit.add_voltage_source("vin", "in", 0, Step(0.0, 1.0, 0.0))
    circuit.add_resistor("r1", "in", "m", r1)
    circuit.add_capacitor("c1", "m", 0, c1)
    circuit.add_resistor("r2", "m", "out", r2)
    circuit.add_capacitor("c2", "out", 0, c2)
    circuit.add_resistor("rload", "out", 0, r_load)
    return circuit


def _model_step_response(
    r1: float, c1: float, r2: float, c2: float, mu: np.ndarray, dt: float, steps: int
) -> np.ndarray:
    """Step response of the discrete model with coupling μ.

    Uses the physically-consistent placement of μ (see
    ``repro.circuits.filters``): the coupling factor scales the Δt
    term, so each stage's DC gain is 1/μ.
    """
    mu1, mu2 = mu
    a1 = r1 * c1 / (r1 * c1 + mu1 * dt)
    b1 = dt / (r1 * c1 + mu1 * dt)
    a2 = r2 * c2 / (r2 * c2 + mu2 * dt)
    b2 = dt / (r2 * c2 + mu2 * dt)
    v1 = 0.0
    v2 = 0.0
    out = np.zeros(steps + 1)
    for k in range(1, steps + 1):
        v1 = a1 * v1 + b1 * 1.0
        v2 = a2 * v2 + b2 * v1
        out[k] = v2
    return out


@dataclass
class CouplingFit:
    """Result of one μ-extraction fit."""

    mu1: float
    mu2: float
    residual: float  # RMS error between simulated and modelled response
    dc_gain: float  # steady-state gain of the loaded filter


def fit_mu(
    r1: float,
    c1: float,
    r2: float,
    c2: float,
    r_load: float,
    dt: float = 1e-3,
    steps: int = 100,
) -> CouplingFit:
    """Fit (μ₁, μ₂) of the discrete model to the simulated loaded filter.

    The model's per-stage DC gain is 1/μ, so the fitted product μ₁·μ₂
    absorbs the load's resistive divider — for R_load ≫ R₁, R₂ it
    approaches ``1 + (R₁ + R₂)/R_load``, consistent with the coupling
    definition κ = 1 + R/R_load of each stage.
    """
    circuit = build_so_filter_circuit(r1, c1, r2, c2, r_load)
    result = transient(circuit, dt=dt, steps=steps, probes=["out"])
    simulated = result["out"]
    dc_gain = r_load / (r_load + r1 + r2)

    def objective(mu: np.ndarray) -> float:
        model = _model_step_response(r1, c1, r2, c2, np.clip(mu, 1.0, None), dt, steps)
        return float(np.mean((model - simulated) ** 2))

    best = minimize(
        objective,
        x0=np.array([1.05, 1.05]),
        method="Nelder-Mead",
        options={"xatol": 1e-4, "fatol": 1e-12, "maxiter": 2000},
    )
    mu1, mu2 = np.clip(best.x, 1.0, None)
    return CouplingFit(
        mu1=float(mu1),
        mu2=float(mu2),
        residual=float(np.sqrt(best.fun)),
        dc_gain=float(dc_gain),
    )


def extract_mu_range(
    pdk: PrintedPDK = DEFAULT_PDK,
    samples: int = 20,
    dt: float = 1e-3,
    steps: int = 80,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Monte-Carlo μ study over printable component draws.

    Draws filter designs from the PDK windows (respecting the design
    rule R_filter ≪ R_crossbar of Sec. IV-A1) and fits μ for each.
    Returns ``(mu1_samples, mu2_samples)``; across the printable space
    these land in the paper's reported μ ∈ [1, 1.3].
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    mu1 = np.zeros(samples)
    mu2 = np.zeros(samples)
    for i in range(samples):
        r1 = float(np.exp(rng.uniform(np.log(pdk.filter_r_min), np.log(pdk.filter_r_max))))
        r2 = float(np.exp(rng.uniform(np.log(max(r1, pdk.filter_r_min)), np.log(pdk.filter_r_max))))
        c1 = float(np.exp(rng.uniform(np.log(1e-6), np.log(50e-6))))
        c2 = float(np.exp(rng.uniform(np.log(1e-6), np.log(50e-6))))
        r_load = float(
            np.exp(rng.uniform(np.log(pdk.crossbar_r_min), np.log(pdk.crossbar_r_max)))
        )
        fit = fit_mu(r1, c1, r2, c2, r_load, dt=dt, steps=steps)
        mu1[i] = fit.mu1
        mu2[i] = fit.mu2
    return mu1, mu2
