"""Process-variation models and the reparameterisation sampler.

The paper (Sec. III-A) treats every printed component value as a random
variable ``v = v₀ ⊙ ε`` with multiplicative variation ε drawn from a
distribution describing the printing process: a uniform model for
electrical characteristics [20, 23] and a Gaussian-mixture model at the
device level [24].  :class:`VariationSampler` draws the ε tensors used
by the Monte-Carlo training objective (Eq. 13/14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "VariationModel",
    "NoVariation",
    "UniformVariation",
    "GaussianVariation",
    "GMMVariation",
    "VariationSampler",
]


class VariationModel:
    """Distribution over multiplicative component-value factors ε."""

    def sample(self, shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        """Draw an ε array of the given shape (all entries > 0)."""
        raise NotImplementedError

    def spread(self) -> float:
        """A scalar summary of the dispersion (used in reports)."""
        raise NotImplementedError


@dataclass(frozen=True)
class NoVariation(VariationModel):
    """Ideal process: ε ≡ 1 (used by the no-variation-aware baseline)."""

    def sample(self, shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return np.ones(shape)

    def spread(self) -> float:
        return 0.0


@dataclass(frozen=True)
class UniformVariation(VariationModel):
    """ε ~ U(1 - δ, 1 + δ) — the paper's headline ±10 % printing variation."""

    delta: float = 0.10

    def __post_init__(self) -> None:
        if not 0 <= self.delta < 1:
            raise ValueError("delta must be in [0, 1)")

    def sample(self, shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(1.0 - self.delta, 1.0 + self.delta, size=shape)

    def spread(self) -> float:
        return self.delta


@dataclass(frozen=True)
class GaussianVariation(VariationModel):
    """ε ~ N(1, σ²), truncated to stay positive."""

    sigma: float = 0.05

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def sample(self, shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        eps = rng.normal(1.0, self.sigma, size=shape)
        return np.clip(eps, 1e-3, None)

    def spread(self) -> float:
        return self.sigma


@dataclass(frozen=True)
class GMMVariation(VariationModel):
    """Gaussian-mixture device-level variation per Rasheed et al. [24].

    Components are ``(weight, mean, sigma)`` triples over the
    multiplicative factor; weights must sum to 1.
    """

    weights: Tuple[float, ...] = (0.7, 0.3)
    means: Tuple[float, ...] = (0.98, 1.05)
    sigmas: Tuple[float, ...] = (0.04, 0.08)

    def __post_init__(self) -> None:
        if not (len(self.weights) == len(self.means) == len(self.sigmas)):
            raise ValueError("mixture component lists must have equal length")
        if abs(sum(self.weights) - 1.0) > 1e-9:
            raise ValueError("mixture weights must sum to 1")
        if any(w < 0 for w in self.weights) or any(s < 0 for s in self.sigmas):
            raise ValueError("weights and sigmas must be non-negative")

    def sample(self, shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        flat = int(np.prod(shape)) if shape else 1
        component = rng.choice(len(self.weights), size=flat, p=np.asarray(self.weights))
        means = np.asarray(self.means)[component]
        sigmas = np.asarray(self.sigmas)[component]
        eps = rng.normal(means, sigmas)
        return np.clip(eps, 1e-3, None).reshape(shape)

    def spread(self) -> float:
        means = np.asarray(self.means)
        weights = np.asarray(self.weights)
        sigmas = np.asarray(self.sigmas)
        mean = float(weights @ means)
        second = float(weights @ (sigmas**2 + means**2))
        return float(np.sqrt(max(second - mean**2, 0.0)))


@dataclass
class VariationSampler:
    """Sampler bundling the component-variation model with the
    non-trainable randomness of Sec. III-A: the coupling factor
    μ ~ U[mu_low, mu_high] and the filter initial voltage
    V₀ ~ U[0, v0_max].

    One :class:`VariationSampler` is shared across a model so a single
    seed controls the whole Monte-Carlo draw.
    """

    model: VariationModel = field(default_factory=lambda: UniformVariation(0.10))
    mu_low: float = 1.0
    mu_high: float = 1.3
    v0_max: float = 0.1
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    def __post_init__(self) -> None:
        if not 0 < self.mu_low <= self.mu_high:
            raise ValueError("need 0 < mu_low <= mu_high")
        if self.v0_max < 0:
            raise ValueError("v0_max must be non-negative")

    def epsilon(self, shape: Sequence[int]) -> np.ndarray:
        """Draw component-variation factors ε of the given shape."""
        return self.model.sample(tuple(shape), self.rng)

    def mu(self, shape: Sequence[int]) -> np.ndarray:
        """Draw coupling factors μ ∈ [mu_low, mu_high]."""
        return self.rng.uniform(self.mu_low, self.mu_high, size=tuple(shape))

    def initial_voltage(self, shape: Sequence[int]) -> np.ndarray:
        """Draw filter initial voltages V₀ ∈ [0, v0_max]."""
        if self.v0_max == 0:
            return np.zeros(tuple(shape))
        return self.rng.uniform(0.0, self.v0_max, size=tuple(shape))

    def reseed(self, seed: int) -> None:
        """Reset the internal generator (per-experiment reproducibility)."""
        self.rng = np.random.default_rng(seed)


def ideal_sampler() -> VariationSampler:
    """Sampler with no component variation, μ = 1 and V₀ = 0.

    Used at clean-evaluation time and by the no-variation-aware
    baseline's training loop.
    """
    return VariationSampler(model=NoVariation(), mu_low=1.0, mu_high=1.0, v0_max=0.0)


__all__.append("ideal_sampler")
