"""Process-variation models and the reparameterisation sampler.

The paper (Sec. III-A) treats every printed component value as a random
variable ``v = v₀ ⊙ ε`` with multiplicative variation ε drawn from a
distribution describing the printing process: a uniform model for
electrical characteristics [20, 23] and a Gaussian-mixture model at the
device level [24].  :class:`VariationSampler` draws the ε tensors used
by the Monte-Carlo training objective (Eq. 13/14).

Batched Monte-Carlo draws
-------------------------
Inside a :meth:`VariationSampler.batched` context every draw method
(``epsilon`` / ``mu`` / ``initial_voltage``) returns arrays with a
leading ``draws`` axis, so a single forward pass through the printed
modules evaluates *all* Monte-Carlo hardware instances at once as a
``(draws, batch, ...)`` numpy computation.

Equivalence with the sequential oracle is guaranteed by construction:
both paths derive one independent child generator per draw from the
sampler's parent generator (:meth:`spawn_streams`).  Draw ``d`` then
consumes *its own* stream in module-call order, which is exactly the
stream a sequential forward pass for draw ``d`` would consume — so the
sampled ε/μ/V₀ values are bit-identical between the two paths.

Precision policy
----------------
Random draws are always *generated* in float64 — numpy's Generator
produces float64 streams, and keeping the generation dtype fixed means
every precision policy consumes the identical random sequence — and
then cast once to the active policy's compute dtype at the draw-method
boundary (a no-op under the default float64 policy).  A float32 run
therefore sees exactly ``float64_draw.astype(float32)`` of what the
float64 oracle sees.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd.precision import compute_dtype
from ..autograd.tape import mark_dynamic
from ..telemetry import record_span

__all__ = [
    "VariationModel",
    "NoVariation",
    "UniformVariation",
    "GaussianVariation",
    "GMMVariation",
    "VariationSampler",
]


class VariationModel:
    """Distribution over multiplicative component-value factors ε."""

    def sample(self, shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        """Draw an ε array of the given shape (all entries > 0)."""
        raise NotImplementedError

    def spread(self) -> float:
        """A scalar summary of the dispersion (used in reports)."""
        raise NotImplementedError


@dataclass(frozen=True)
class NoVariation(VariationModel):
    """Ideal process: ε ≡ 1 (used by the no-variation-aware baseline)."""

    def sample(self, shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return np.ones(shape)

    def spread(self) -> float:
        return 0.0


@dataclass(frozen=True)
class UniformVariation(VariationModel):
    """ε ~ U(1 - δ, 1 + δ) — the paper's headline ±10 % printing variation."""

    delta: float = 0.10

    def __post_init__(self) -> None:
        if not 0 <= self.delta < 1:
            raise ValueError("delta must be in [0, 1)")

    def sample(self, shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(1.0 - self.delta, 1.0 + self.delta, size=shape)

    def spread(self) -> float:
        return self.delta


@dataclass(frozen=True)
class GaussianVariation(VariationModel):
    """ε ~ N(1, σ²), truncated to stay positive."""

    sigma: float = 0.05

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def sample(self, shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        eps = rng.normal(1.0, self.sigma, size=shape)
        return np.clip(eps, 1e-3, None)

    def spread(self) -> float:
        return self.sigma


@dataclass(frozen=True)
class GMMVariation(VariationModel):
    """Gaussian-mixture device-level variation per Rasheed et al. [24].

    Components are ``(weight, mean, sigma)`` triples over the
    multiplicative factor; weights must sum to 1.
    """

    weights: Tuple[float, ...] = (0.7, 0.3)
    means: Tuple[float, ...] = (0.98, 1.05)
    sigmas: Tuple[float, ...] = (0.04, 0.08)

    def __post_init__(self) -> None:
        if not (len(self.weights) == len(self.means) == len(self.sigmas)):
            raise ValueError("mixture component lists must have equal length")
        if abs(sum(self.weights) - 1.0) > 1e-9:
            raise ValueError("mixture weights must sum to 1")
        if any(w < 0 for w in self.weights) or any(s < 0 for s in self.sigmas):
            raise ValueError("weights and sigmas must be non-negative")

    def sample(self, shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        flat = int(np.prod(shape)) if shape else 1
        component = rng.choice(len(self.weights), size=flat, p=np.asarray(self.weights))
        means = np.asarray(self.means)[component]
        sigmas = np.asarray(self.sigmas)[component]
        eps = rng.normal(means, sigmas)
        return np.clip(eps, 1e-3, None).reshape(shape)

    def spread(self) -> float:
        means = np.asarray(self.means)
        weights = np.asarray(self.weights)
        sigmas = np.asarray(self.sigmas)
        mean = float(weights @ means)
        second = float(weights @ (sigmas**2 + means**2))
        return float(np.sqrt(max(second - mean**2, 0.0)))


@dataclass
class VariationSampler:
    """Sampler bundling the component-variation model with the
    non-trainable randomness of Sec. III-A: the coupling factor
    μ ~ U[mu_low, mu_high] and the filter initial voltage
    V₀ ~ U[0, v0_max].

    One :class:`VariationSampler` is shared across a model so a single
    seed controls the whole Monte-Carlo draw.
    """

    model: VariationModel = field(default_factory=lambda: UniformVariation(0.10))
    mu_low: float = 1.0
    mu_high: float = 1.3
    v0_max: float = 0.1
    rng: np.random.Generator = field(default_factory=np.random.default_rng)
    #: Active per-draw child generators; ``None`` outside a
    #: :meth:`batched` context (runtime state, not configuration).
    _draw_streams: Optional[List[np.random.Generator]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not 0 < self.mu_low <= self.mu_high:
            raise ValueError("need 0 < mu_low <= mu_high")
        if self.v0_max < 0:
            raise ValueError("v0_max must be non-negative")

    # -- batched Monte-Carlo draws ------------------------------------------

    @property
    def is_deterministic(self) -> bool:
        """True when every draw method returns a value independent of
        the generator state (the ideal sampler: ε ≡ 1, μ fixed, V₀ ≡ 0).

        Used by the tape compiler: deterministic draws are recorded as
        static constants instead of per-replay providers, skipping the
        redundant re-draws.  Values are unaffected — only the (unused)
        generator consumption differs from the interpreted path.
        """
        return (
            isinstance(self.model, NoVariation)
            and self.mu_low == self.mu_high
            and self.v0_max == 0
        )

    @property
    def draws(self) -> Optional[int]:
        """Active batched draw count, or ``None`` in sequential mode."""
        return None if self._draw_streams is None else len(self._draw_streams)

    def spawn_streams(self, draws: int) -> List[np.random.Generator]:
        """Derive ``draws`` independent child generators from the parent.

        Deterministic given the parent generator's state; used by both
        the batched path and the sequential oracle so their per-draw
        random streams are identical.
        """
        if draws < 1:
            raise ValueError("draws must be >= 1")
        start = time.perf_counter()
        try:
            streams = list(self.rng.spawn(draws))
        except AttributeError:  # numpy < 1.25 fallback
            seeds = self.rng.integers(0, 2**63 - 1, size=draws)
            streams = [np.random.default_rng(int(s)) for s in seeds]
        record_span("sampler.spawn", time.perf_counter() - start)
        return streams

    @contextmanager
    def batched(self, draws: int) -> Iterator["VariationSampler"]:
        """Context in which all draw methods gain a leading ``draws`` axis."""
        if self._draw_streams is not None:
            raise RuntimeError("batched() contexts cannot be nested")
        self._draw_streams = self.spawn_streams(draws)
        try:
            yield self
        finally:
            self._draw_streams = None

    def _per_draw(self, fn) -> np.ndarray:
        """Stack ``fn(stream)`` over the active draw streams."""
        assert self._draw_streams is not None
        return np.stack([fn(stream) for stream in self._draw_streams])

    # -- draw methods --------------------------------------------------------

    def epsilon(self, shape: Sequence[int]) -> np.ndarray:
        """Draw component-variation factors ε of the given shape.

        Returns ``shape`` in sequential mode, ``(draws,) + shape``
        inside a :meth:`batched` context.
        """
        shape = tuple(shape)
        start = time.perf_counter()
        if self._draw_streams is not None:
            out = self._per_draw(lambda rng: self.model.sample(shape, rng))
        else:
            out = self.model.sample(shape, self.rng)
        out = np.asarray(out, dtype=compute_dtype())
        record_span("sampler.draw", time.perf_counter() - start)
        if self.is_deterministic:
            # Value is ε ≡ 1 regardless of generator state: a static
            # tape constant, no per-replay re-draw needed.
            return out
        # Dynamic tape leaf: replays re-draw with the same shape, so the
        # recorded RNG-consumption order is reproduced bit-for-bit.
        return mark_dynamic(out, lambda: self.epsilon(shape))

    def mu(self, shape: Sequence[int]) -> np.ndarray:
        """Draw coupling factors μ ∈ [mu_low, mu_high] (batched-aware)."""
        shape = tuple(shape)
        if self._draw_streams is not None:
            out = self._per_draw(
                lambda rng: rng.uniform(self.mu_low, self.mu_high, size=shape)
            )
        else:
            out = self.rng.uniform(self.mu_low, self.mu_high, size=shape)
        out = np.asarray(out, dtype=compute_dtype())
        if self.is_deterministic:
            return out
        return mark_dynamic(out, lambda: self.mu(shape))

    def initial_voltage(self, shape: Sequence[int]) -> np.ndarray:
        """Draw filter initial voltages V₀ ∈ [0, v0_max] (batched-aware)."""
        shape = tuple(shape)
        if self.v0_max == 0:
            if self._draw_streams is not None:
                return np.zeros((len(self._draw_streams),) + shape, dtype=compute_dtype())
            return np.zeros(shape, dtype=compute_dtype())
        if self._draw_streams is not None:
            out = self._per_draw(
                lambda rng: rng.uniform(0.0, self.v0_max, size=shape)
            )
        else:
            out = self.rng.uniform(0.0, self.v0_max, size=shape)
        out = np.asarray(out, dtype=compute_dtype())
        return mark_dynamic(out, lambda: self.initial_voltage(shape))

    def reseed(self, seed: int) -> None:
        """Reset the internal generator (per-experiment reproducibility)."""
        self.rng = np.random.default_rng(seed)


def ideal_sampler() -> VariationSampler:
    """Sampler with no component variation, μ = 1 and V₀ = 0.

    Used at clean-evaluation time and by the no-variation-aware
    baseline's training loop.
    """
    return VariationSampler(model=NoVariation(), mu_low=1.0, mu_high=1.0, v0_max=0.0)


__all__.append("ideal_sampler")
