"""Printed tanh-like activation circuit (Fig. 3b).

Transfer characteristic (Sec. II-B):

    V_out = ptanh(V_in) = η₁ + η₂ · tanh((V_in − η₃) · η₄)

The η parameters are determined by the component values
``q^A = [R₁, R₂, T₁, T₂]`` of the printed circuit; following the
learnable-nonlinear-circuit formulation of the pNC literature [12] we
train the η directly (with physically-plausible initialisation) and
subject each to multiplicative process variation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..nn.module import Module, Parameter
from .variation import VariationSampler, ideal_sampler

__all__ = ["PrintedTanh"]


class PrintedTanh(Module):
    """Per-neuron learnable printed tanh activation with variation.

    Parameters
    ----------
    num_neurons:
        Independent activation circuits (one per crossbar column).
    sampler:
        Variation source; ideal when omitted.
    rng:
        Initialisation generator; η₂ (output swing) and η₄ (input gain)
        start near the printed circuit's measured characteristic,
        η₁/η₃ (offsets) near zero.
    """

    def __init__(
        self,
        num_neurons: int,
        sampler: Optional[VariationSampler] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_neurons <= 0:
            raise ValueError("num_neurons must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.num_neurons = num_neurons
        self.sampler = sampler if sampler is not None else ideal_sampler()
        self.eta1 = Parameter(rng.normal(0.0, 0.02, size=num_neurons))
        self.eta2 = Parameter(rng.uniform(0.8, 1.2, size=num_neurons))
        self.eta3 = Parameter(rng.normal(0.0, 0.02, size=num_neurons))
        self.eta4 = Parameter(rng.uniform(1.5, 2.5, size=num_neurons))

    def forward(self, x: Tensor) -> Tensor:
        """Apply the per-neuron nonlinearity.

        ``x`` has shape ``(batch, num_neurons)``; each column uses its
        own η set with a fresh variation draw.  Inside a batched-draws
        sampler context a leading Monte-Carlo axis is also accepted
        (``(draws, batch, num_neurons)``), with one η draw per
        Monte-Carlo instance.
        """
        if x.ndim not in (2, 3) or x.shape[-1] != self.num_neurons:
            raise ValueError(f"expected (batch, {self.num_neurons}), got {x.shape}")
        if x.ndim == 3 and self.sampler.draws is None:
            raise ValueError(
                "3-D ptanh input requires an active batched-draws sampler context"
            )
        n = self.num_neurons
        e1 = Tensor(self.sampler.epsilon((n,)))
        e2 = Tensor(self.sampler.epsilon((n,)))
        e3 = Tensor(self.sampler.epsilon((n,)))
        e4 = Tensor(self.sampler.epsilon((n,)))
        if e1.ndim == 2:
            # (draws, n) -> (draws, 1, n): broadcast over the batch axis.
            e1, e2, e3, e4 = (e.unsqueeze(1) for e in (e1, e2, e3, e4))
        eta1 = self.eta1 * e1
        eta2 = self.eta2 * e2
        eta3 = self.eta3 * e3
        eta4 = self.eta4 * e4
        return eta1 + eta2 * ((x - eta3) * eta4).tanh()

    def __repr__(self) -> str:
        return f"PrintedTanh(num_neurons={self.num_neurons})"
