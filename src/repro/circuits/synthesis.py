"""Bespoke synthesis: from target η to printable component values q^A.

:mod:`repro.circuits.ptanh_physical` answers "what η does this printed
circuit realise?"; this module answers the designer's inverse question:
*given* a desired tanh-like transfer (e.g. from a trained model, after
level-shifting into the supply window), which resistor loads and
transistor parameters should be printed?

The search runs Nelder-Mead over (log R₁, log R₂, V_T, log k) with the
circuit evaluated by the Newton DC sweep — the same
characterise-then-fit loop a designer would run in SPICE, automated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.optimize import minimize

from ..spice.nonlinear import EGTParameters
from .ptanh_physical import PhysicalTanhFit, build_ptanh_circuit

__all__ = ["SynthesisResult", "synthesize_ptanh"]


@dataclass
class SynthesisResult:
    """Printable realisation of a target transfer."""

    r1: float
    r2: float
    t1: EGTParameters
    t2: EGTParameters
    rms_error: float  # RMS (V) between realised and target transfer
    target_eta: np.ndarray

    def __repr__(self) -> str:
        return (
            f"SynthesisResult(R1={self.r1:.3g}Ω, R2={self.r2:.3g}Ω, "
            f"V_T={self.t1.v_t:.2f}V, k={self.t1.k:.2g}, "
            f"rms={self.rms_error*1e3:.1f}mV)"
        )


def _target_transfer(eta: np.ndarray, v_in: np.ndarray) -> np.ndarray:
    e1, e2, e3, e4 = eta
    return e1 + e2 * np.tanh((v_in - e3) * e4)


def _simulate(params: np.ndarray, v_in: np.ndarray) -> Optional[np.ndarray]:
    from ..spice.nonlinear import dc_transfer_sweep

    log_r1, log_r2, v_t, log_k = params
    try:
        circuit = build_ptanh_circuit(
            float(np.exp(log_r1)),
            float(np.exp(log_r2)),
            EGTParameters(k=float(np.exp(log_k)), v_t=float(v_t)),
            EGTParameters(k=float(np.exp(log_k)), v_t=float(v_t)),
        )
        return dc_transfer_sweep(circuit, "vin", "out", v_in)
    except (RuntimeError, ValueError):
        return None  # non-convergent corner of the search space


def synthesize_ptanh(
    target_eta,
    points: int = 25,
    max_iterations: int = 120,
    seed: int = 0,
) -> SynthesisResult:
    """Find printable q^A realising a target η transfer.

    Parameters
    ----------
    target_eta:
        ``[η₁, η₂, η₃, η₄]`` in the circuit's native coordinates
        (supply window [0, 1] V): η₁ the mid level, η₂ the half swing,
        η₃ the threshold, η₄ the gain.
    points:
        Input-sweep resolution used by the objective.
    max_iterations:
        Nelder-Mead iterations per start (three starts are tried).

    Returns the best realisation found; ``rms_error`` quantifies how
    well the two-stage EGT topology can express the request.
    """
    target_eta = np.asarray(target_eta, dtype=np.float64)
    if target_eta.shape != (4,):
        raise ValueError("target_eta must be [eta1, eta2, eta3, eta4]")
    if target_eta[1] <= 0 or target_eta[3] <= 0:
        raise ValueError("target swing eta2 and gain eta4 must be positive")
    v_in = np.linspace(0.0, 1.0, points)
    target = _target_transfer(target_eta, v_in)

    bounds_lo = np.array([np.log(2e3), np.log(2e3), 0.15, np.log(2e-5)])
    bounds_hi = np.array([np.log(3e5), np.log(3e5), 0.50, np.log(5e-4)])

    def objective(params: np.ndarray) -> float:
        params = np.clip(params, bounds_lo, bounds_hi)
        realised = _simulate(params, v_in)
        if realised is None:
            return 10.0
        return float(np.sqrt(np.mean((realised - target) ** 2)))

    rng = np.random.default_rng(seed)
    starts = [
        np.array([np.log(20e3), np.log(20e3), 0.3, np.log(1e-4)]),
        np.array([np.log(80e3), np.log(80e3), 0.25, np.log(2e-4)]),
        rng.uniform(bounds_lo, bounds_hi),
    ]
    best_params, best_value = None, np.inf
    for start in starts:
        result = minimize(
            objective,
            x0=start,
            method="Nelder-Mead",
            options={"maxiter": max_iterations, "xatol": 1e-3, "fatol": 1e-6},
        )
        if result.fun < best_value:
            best_value = float(result.fun)
            best_params = np.clip(result.x, bounds_lo, bounds_hi)

    assert best_params is not None
    log_r1, log_r2, v_t, log_k = best_params
    t = EGTParameters(k=float(np.exp(log_k)), v_t=float(v_t))
    return SynthesisResult(
        r1=float(np.exp(log_r1)),
        r2=float(np.exp(log_r2)),
        t1=t,
        t2=t,
        rms_error=best_value,
        target_eta=target_eta,
    )
