"""Markdown report generation from saved experiment results.

``examples/run_full_evaluation.py`` saves a ``results.json`` per run;
this module renders it as a self-contained markdown report (the format
of EXPERIMENTS.md), so paper-vs-measured summaries regenerate from the
recorded numbers rather than being hand-maintained.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Union

__all__ = ["render_report", "render_report_file"]

PathLike = Union[str, pathlib.Path]

#: Published averages for the headline comparisons (Table I / III).
PAPER_TABLE1_AVG = {"elman": (0.501, 0.025), "ptpnc": (0.582, 0.031), "adapt": (0.726, 0.014)}
PAPER_TABLE3_AVG = {"devices": (118, 228), "power_mw": (0.634, 0.058)}

MODEL_LABELS = {
    "elman": "Elman RNN (reference)",
    "ptpnc": "pTPNC (baseline)",
    "adapt": "ADAPT-pNC (proposed)",
}


def _mean_std(entry: Dict) -> str:
    return f"{entry['mean']:.3f} ± {entry['std']:.3f}"


def _table1_section(record: Dict) -> List[str]:
    table1 = record.get("table1")
    if not table1:
        return []
    lines = [
        "## Table I — accuracy under variation + perturbed inputs",
        "",
        "| Dataset | " + " | ".join(MODEL_LABELS[k] for k in MODEL_LABELS) + " |",
        "|---|---|---|---|",
    ]
    for dataset, entry in table1.items():
        cells = " | ".join(_mean_std(entry[k]) for k in MODEL_LABELS)
        marker = "**" if dataset == "Average" else ""
        lines.append(f"| {marker}{dataset}{marker} | {cells} |")
    avg = table1.get("Average")
    if avg:
        lines.append("")
        paper = ", ".join(
            f"{MODEL_LABELS[k]}: {m:.3f} ± {s:.3f}" for k, (m, s) in PAPER_TABLE1_AVG.items()
        )
        lines.append(f"Paper averages for comparison — {paper}.")
        ordering_ok = avg["adapt"]["mean"] >= avg["ptpnc"]["mean"]
        lines.append(
            "Shape check: proposed ≥ baseline on average — "
            + ("**reproduced**." if ordering_ok else "**NOT reproduced**.")
        )
    lines.append("")
    return lines


def _table2_section(record: Dict) -> List[str]:
    timings = record.get("table2_seconds_per_step")
    if not timings:
        return []
    lines = [
        "## Table II — runtime per training step",
        "",
        "| Model | Seconds / step |",
        "|---|---|",
    ]
    for kind, label in MODEL_LABELS.items():
        if kind in timings:
            lines.append(f"| {label} | {timings[kind]*1e3:.1f} ms |")
    lines.append("")
    return lines


def _table3_section(record: Dict) -> List[str]:
    rows = record.get("table3")
    if not rows:
        return []
    lines = [
        "## Table III — hardware costs",
        "",
        "| Dataset | Devices (base → prop) | Power mW (base → prop) |",
        "|---|---|---|",
    ]
    total_base = total_prop = power_base = power_prop = 0.0
    for row in rows:
        base_total = row["baseline"][3]
        prop_total = row["proposed"][3]
        total_base += base_total
        total_prop += prop_total
        power_base += row["baseline_power_mw"]
        power_prop += row["proposed_power_mw"]
        lines.append(
            f"| {row['dataset']} | {base_total} → {prop_total} | "
            f"{row['baseline_power_mw']:.3f} → {row['proposed_power_mw']:.3f} |"
        )
    n = len(rows)
    ratio = total_prop / max(total_base, 1)
    reduction = 1.0 - power_prop / max(power_base, 1e-12)
    lines += [
        "",
        f"Average device ratio {ratio:.2f}× (paper ≈1.9×); "
        f"power reduction {reduction:.0%} (paper ≈91 %) over {n} datasets.",
        "",
    ]
    return lines


def _mc_section(record: Dict) -> List[str]:
    """Render the Monte-Carlo vectorization record (``mc-bench``)."""
    mc = record.get("mc_vectorization")
    if not mc:
        return []
    lines = [
        "## Monte-Carlo vectorization — batched vs sequential",
        "",
        "| MC draws | Sequential / step | Batched / step | Speedup | Draws/s (batched) |",
        "|---|---|---|---|---|",
    ]
    for row in mc.get("rows", []):
        lines.append(
            f"| {row['draws']} | {row['sequential_s']*1e3:.1f} ms | "
            f"{row['batched_s']*1e3:.1f} ms | {row['speedup']:.2f}× | "
            f"{row['batched_draws_per_sec']:.1f} |"
        )
    lines.append("")
    verdict = "**equivalent**" if mc.get("equivalent") else "**NOT equivalent**"
    lines.append(
        f"Loss agreement between backends: max |Δ| = "
        f"{mc.get('max_abs_loss_delta', float('nan')):.2e} "
        f"(tolerance {mc.get('equivalence_atol', 1e-8):.0e}) — {verdict}."
    )
    counters = mc.get("counters")
    if counters:
        lines.append(
            f"Recorded {counters.get('draws', 0):.0f} draws over "
            f"{counters.get('forward_calls', 0):.0f} forwards "
            f"({counters.get('draws_per_second', 0.0):.1f} draws/s; "
            f"forward {counters.get('forward_seconds', 0.0):.2f} s, "
            f"backward {counters.get('backward_seconds', 0.0):.2f} s)."
        )
        by_backend = counters.get("by_backend") or {}
        if by_backend:
            split = ", ".join(
                f"{backend} {seconds:.2f} s"
                for backend, seconds in sorted(by_backend.items())
            )
            lines.append(f"Forward wall-clock by MC backend: {split}.")
        scan = counters.get("scan") or {}
        if scan:
            split = ", ".join(
                f"{backend} {entry['seconds']*1e3:.1f} ms / {entry['calls']:.0f} scans"
                for backend, entry in sorted(scan.items())
            )
            lines.append(f"Filter-scan wall-clock by kernel: {split}.")
    lines.append("")
    return lines


def _filter_scan_section(record: Dict) -> List[str]:
    """Render the fused filter-scan record (``scan-bench``)."""
    fs = record.get("filter_scan")
    if not fs:
        return []
    solf = fs.get("solf") or {}
    lines = [
        "## Fused filter scan — custom-Function kernel vs node-per-step oracle",
        "",
        f"SO-LF bank at T={solf.get('seq_len', '?')}, "
        f"batch={solf.get('batch', '?')}, draws={solf.get('draws', '?')}, "
        f"n={solf.get('num_filters', '?')}:",
        "",
        "| Scan backend | Forward | Backward | Fwd+bwd |",
        "|---|---|---|---|",
    ]
    for backend in ("unfused", "fused"):
        lines.append(
            f"| {backend} | {solf.get(f'{backend}_forward_s', 0.0)*1e3:.2f} ms | "
            f"{solf.get(f'{backend}_backward_s', 0.0)*1e3:.2f} ms | "
            f"{solf.get(f'{backend}_s', 0.0)*1e3:.2f} ms |"
        )
    verdict = "**equivalent**" if fs.get("equivalent") else "**NOT equivalent**"
    lines += [
        "",
        f"Speedup (fused over unfused): {solf.get('speedup', 0.0):.2f}×.",
        f"Equivalence: |Δloss| = {solf.get('loss_delta', float('nan')):.2e} "
        f"(tolerance {fs.get('equivalence_atol', 1e-10):.0e}), "
        f"max |Δgrad| = {solf.get('max_abs_grad_delta', float('nan')):.2e} "
        f"(tolerance {fs.get('grad_atol', 1e-8):.0e}) — {verdict}.",
    ]
    training = fs.get("training")
    if training:
        lines.append(
            f"End-to-end `Trainer.fit` epoch wall-clock: "
            f"unfused {training.get('unfused_epoch_s', 0.0)*1e3:.1f} ms → "
            f"fused {training.get('fused_epoch_s', 0.0)*1e3:.1f} ms "
            f"({training.get('epoch_speedup', 0.0):.2f}×)."
        )
    lines.append("")
    return lines


def _fig_sections(record: Dict) -> List[str]:
    lines: List[str] = []
    fig5 = record.get("fig5")
    if fig5:
        lines += ["## Fig. 5 — baseline under stress", ""]
        for key, value in fig5.items():
            lines.append(f"* {key.replace('_', ' ')}: {value:.3f}")
        lines.append("")
    fig7 = record.get("fig7")
    if fig7:
        lines += [
            "## Fig. 7 — ablation",
            "",
            "| Config | Clean | Perturbed |",
            "|---|---|---|",
        ]
        for config, modes in fig7.items():
            lines.append(
                f"| {config} | {_mean_std(modes['clean'])} | {_mean_std(modes['perturbed'])} |"
            )
        lines.append("")
    mu = record.get("mu_extraction")
    if mu:
        lines += [
            "## µ extraction",
            "",
            f"µ ∈ [{mu['mu_min']:.2f}, {mu['mu_max']:.2f}], mean {mu['mu_mean']:.3f}; "
            f"{mu['within_paper_band']:.0%} of fits inside the paper's [1, 1.3] band.",
            "",
        ]
    return lines


def render_report(record: Dict) -> str:
    """Render one ``results.json`` record as a markdown report."""
    lines = [
        f"# ADAPT-pNC evaluation report — scale `{record.get('scale', '?')}`",
        "",
        f"Datasets: {len(record.get('datasets', []))}; "
        f"seeds: {record.get('seeds', [])}.",
        "",
    ]
    lines += _table1_section(record)
    lines += _table2_section(record)
    lines += _table3_section(record)
    lines += _mc_section(record)
    lines += _filter_scan_section(record)
    lines += _fig_sections(record)
    return "\n".join(lines)


def render_report_file(results_json: PathLike, output_md: PathLike | None = None) -> str:
    """Render a saved ``results.json``; optionally write ``output_md``."""
    record = json.loads(pathlib.Path(results_json).read_text())
    text = render_report(record)
    if output_md is not None:
        pathlib.Path(output_md).write_text(text)
    return text
