"""Markdown report generation from saved experiment results.

``examples/run_full_evaluation.py`` saves a ``results.json`` per run;
this module renders it as a self-contained markdown report (the format
of EXPERIMENTS.md), so paper-vs-measured summaries regenerate from the
recorded numbers rather than being hand-maintained.

:func:`render_run` does the same for telemetry run directories
(:class:`repro.telemetry.Run`): it reads ``run.json`` + ``events.jsonl``
and renders the per-epoch loss/LR trajectory as sparkline tables, the
span wall-clock breakdown and the final gauge snapshot — the backend of
``python -m repro runs show``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Sequence, Union

__all__ = ["render_report", "render_report_file", "render_run", "sparkline"]

PathLike = Union[str, pathlib.Path]

#: Published averages for the headline comparisons (Table I / III).
PAPER_TABLE1_AVG = {"elman": (0.501, 0.025), "ptpnc": (0.582, 0.031), "adapt": (0.726, 0.014)}
PAPER_TABLE3_AVG = {"devices": (118, 228), "power_mw": (0.634, 0.058)}

MODEL_LABELS = {
    "elman": "Elman RNN (reference)",
    "ptpnc": "pTPNC (baseline)",
    "adapt": "ADAPT-pNC (proposed)",
}


def _mean_std(entry: Dict) -> str:
    return f"{entry['mean']:.3f} ± {entry['std']:.3f}"


def _table1_section(record: Dict) -> List[str]:
    table1 = record.get("table1")
    if not table1:
        return []
    lines = [
        "## Table I — accuracy under variation + perturbed inputs",
        "",
        "| Dataset | " + " | ".join(MODEL_LABELS[k] for k in MODEL_LABELS) + " |",
        "|---|---|---|---|",
    ]
    for dataset, entry in table1.items():
        cells = " | ".join(_mean_std(entry[k]) for k in MODEL_LABELS)
        marker = "**" if dataset == "Average" else ""
        lines.append(f"| {marker}{dataset}{marker} | {cells} |")
    avg = table1.get("Average")
    if avg:
        lines.append("")
        paper = ", ".join(
            f"{MODEL_LABELS[k]}: {m:.3f} ± {s:.3f}" for k, (m, s) in PAPER_TABLE1_AVG.items()
        )
        lines.append(f"Paper averages for comparison — {paper}.")
        ordering_ok = avg["adapt"]["mean"] >= avg["ptpnc"]["mean"]
        lines.append(
            "Shape check: proposed ≥ baseline on average — "
            + ("**reproduced**." if ordering_ok else "**NOT reproduced**.")
        )
    lines.append("")
    return lines


def _table2_section(record: Dict) -> List[str]:
    timings = record.get("table2_seconds_per_step")
    if not timings:
        return []
    lines = [
        "## Table II — runtime per training step",
        "",
        "| Model | Seconds / step |",
        "|---|---|",
    ]
    for kind, label in MODEL_LABELS.items():
        if kind in timings:
            lines.append(f"| {label} | {timings[kind]*1e3:.1f} ms |")
    lines.append("")
    return lines


def _table3_section(record: Dict) -> List[str]:
    rows = record.get("table3")
    if not rows:
        return []
    lines = [
        "## Table III — hardware costs",
        "",
        "| Dataset | Devices (base → prop) | Power mW (base → prop) |",
        "|---|---|---|",
    ]
    total_base = total_prop = power_base = power_prop = 0.0
    for row in rows:
        base_total = row["baseline"][3]
        prop_total = row["proposed"][3]
        total_base += base_total
        total_prop += prop_total
        power_base += row["baseline_power_mw"]
        power_prop += row["proposed_power_mw"]
        lines.append(
            f"| {row['dataset']} | {base_total} → {prop_total} | "
            f"{row['baseline_power_mw']:.3f} → {row['proposed_power_mw']:.3f} |"
        )
    n = len(rows)
    ratio = total_prop / max(total_base, 1)
    reduction = 1.0 - power_prop / max(power_base, 1e-12)
    lines += [
        "",
        f"Average device ratio {ratio:.2f}× (paper ≈1.9×); "
        f"power reduction {reduction:.0%} (paper ≈91 %) over {n} datasets.",
        "",
    ]
    return lines


def _mc_section(record: Dict) -> List[str]:
    """Render the Monte-Carlo vectorization record (``mc-bench``)."""
    mc = record.get("mc_vectorization")
    if not mc:
        return []
    lines = [
        "## Monte-Carlo vectorization — batched vs sequential",
        "",
        "| MC draws | Sequential / step | Batched / step | Speedup | Draws/s (batched) |",
        "|---|---|---|---|---|",
    ]
    for row in mc.get("rows", []):
        lines.append(
            f"| {row['draws']} | {row['sequential_s']*1e3:.1f} ms | "
            f"{row['batched_s']*1e3:.1f} ms | {row['speedup']:.2f}× | "
            f"{row['batched_draws_per_sec']:.1f} |"
        )
    lines.append("")
    verdict = "**equivalent**" if mc.get("equivalent") else "**NOT equivalent**"
    lines.append(
        f"Loss agreement between backends: max |Δ| = "
        f"{mc.get('max_abs_loss_delta', float('nan')):.2e} "
        f"(tolerance {mc.get('equivalence_atol', 1e-8):.0e}) — {verdict}."
    )
    counters = mc.get("counters")
    if counters:
        lines.append(
            f"Recorded {counters.get('draws', 0):.0f} draws over "
            f"{counters.get('forward_calls', 0):.0f} forwards "
            f"({counters.get('draws_per_second', 0.0):.1f} draws/s; "
            f"forward {counters.get('forward_seconds', 0.0):.2f} s, "
            f"backward {counters.get('backward_seconds', 0.0):.2f} s)."
        )
        by_backend = counters.get("by_backend") or {}
        if by_backend:
            split = ", ".join(
                f"{backend} {seconds:.2f} s"
                for backend, seconds in sorted(by_backend.items())
            )
            lines.append(f"Forward wall-clock by MC backend: {split}.")
        scan = counters.get("scan") or {}
        if scan:
            split = ", ".join(
                f"{backend} {entry['seconds']*1e3:.1f} ms / {entry['calls']:.0f} scans"
                for backend, entry in sorted(scan.items())
            )
            lines.append(f"Filter-scan wall-clock by kernel: {split}.")
    lines.append("")
    return lines


def _filter_scan_section(record: Dict) -> List[str]:
    """Render the fused filter-scan record (``scan-bench``)."""
    fs = record.get("filter_scan")
    if not fs:
        return []
    solf = fs.get("solf") or {}
    lines = [
        "## Fused filter scan — custom-Function kernel vs node-per-step oracle",
        "",
        f"SO-LF bank at T={solf.get('seq_len', '?')}, "
        f"batch={solf.get('batch', '?')}, draws={solf.get('draws', '?')}, "
        f"n={solf.get('num_filters', '?')}:",
        "",
        "| Scan backend | Forward | Backward | Fwd+bwd |",
        "|---|---|---|---|",
    ]
    for backend in ("unfused", "fused"):
        lines.append(
            f"| {backend} | {solf.get(f'{backend}_forward_s', 0.0)*1e3:.2f} ms | "
            f"{solf.get(f'{backend}_backward_s', 0.0)*1e3:.2f} ms | "
            f"{solf.get(f'{backend}_s', 0.0)*1e3:.2f} ms |"
        )
    verdict = "**equivalent**" if fs.get("equivalent") else "**NOT equivalent**"
    lines += [
        "",
        f"Speedup (fused over unfused): {solf.get('speedup', 0.0):.2f}×.",
        f"Equivalence: |Δloss| = {solf.get('loss_delta', float('nan')):.2e} "
        f"(tolerance {fs.get('equivalence_atol', 1e-10):.0e}), "
        f"max |Δgrad| = {solf.get('max_abs_grad_delta', float('nan')):.2e} "
        f"(tolerance {fs.get('grad_atol', 1e-8):.0e}) — {verdict}.",
    ]
    training = fs.get("training")
    if training:
        lines.append(
            f"End-to-end `Trainer.fit` epoch wall-clock: "
            f"unfused {training.get('unfused_epoch_s', 0.0)*1e3:.1f} ms → "
            f"fused {training.get('fused_epoch_s', 0.0)*1e3:.1f} ms "
            f"({training.get('epoch_speedup', 0.0):.2f}×)."
        )
    lines.append("")
    return lines


def _tape_section(record: Dict) -> List[str]:
    """Render the tape-compiler record (``tape-bench``)."""
    tape = record.get("tape_compiler")
    if not tape:
        return []
    lines = [
        "## Tape compiler — compiled replay vs interpreted oracle",
        "",
        f"Workload: {tape.get('model', '?')} at batch={tape.get('batch', '?')}, "
        f"seq_len={tape.get('seq_len', '?')}, epochs={tape.get('epochs', '?')} "
        f"(scan={tape.get('scan_backend', '?')}, "
        f"precision={tape.get('precision', '?')}).",
        "",
        "| Graph backend | Epoch wall-clock |",
        "|---|---|",
    ]
    for backend in ("interpreted", "tape"):
        seconds = tape.get(f"{backend}_epoch_s")
        if seconds is not None:
            lines.append(f"| {backend} | {seconds*1e3:.2f} ms |")
    verdict = "**equivalent**" if tape.get("equivalent") else "**NOT equivalent**"
    lines += [
        "",
        f"Speedup (tape over interpreted): {tape.get('speedup', 0.0):.2f}×.",
        f"float64 oracle: max |Δloss| = "
        f"{tape.get('max_abs_loss_delta', float('nan')):.2e} over "
        f"{tape.get('oracle_epochs', '?')} training epochs (bit-equality "
        f"required) — {verdict}.",
    ]
    counters = tape.get("counters")
    if counters:
        lines.append(
            f"Compiler: {counters.get('traces', 0):.0f} traces "
            f"({counters.get('traced_ops', 0):.0f} ops, "
            f"{counters.get('fused_ops', 0):.0f} fused, "
            f"{counters.get('dead_grad_skips', 0):.0f} dead-grad skips, "
            f"build {counters.get('build_seconds', 0.0)*1e3:.1f} ms); "
            f"cache {counters.get('cache_hits', 0):.0f} hits / "
            f"{counters.get('cache_misses', 0):.0f} misses, "
            f"{counters.get('fallbacks', 0):.0f} fallbacks."
        )
        lines.append(
            f"Replay: {counters.get('replays', 0):.0f} replays "
            f"(forward {counters.get('replay_seconds', 0.0):.2f} s, "
            f"backward {counters.get('replay_backward_seconds', 0.0):.2f} s)."
        )
    lines.append("")
    return lines


def _streaming_section(record: Dict) -> List[str]:
    """Render the streaming-evaluation record (``stream-eval``).

    Expects ``record["streaming"]`` as written by the ``stream-eval``
    CLI: ``{"model", "chunk_size", "scenarios": [result.to_record()]}``
    with one entry per :class:`repro.core.StreamingEvalResult`.
    """
    streaming = record.get("streaming")
    if not streaming:
        return []
    scenarios = streaming.get("scenarios") or []
    lines = [
        "## Streaming — stateful online inference over drifting streams",
        "",
        f"Model: {streaming.get('model', '?')}; "
        f"chunk size {streaming.get('chunk_size', '?')} "
        f"(chunking-invariant by construction).",
        "",
        "| Scenario | Steps | Accuracy | Accuracy over time |",
        "|---|---|---|---|",
    ]
    for s in scenarios:
        lines.append(
            f"| {s.get('scenario', '?')} | {s.get('steps', '?')} | "
            f"{s.get('accuracy', float('nan')):.3f} | "
            f"`{sparkline(s.get('accuracy_curve') or [])}` |"
        )
    lines.append("")
    for s in scenarios:
        details = []
        if s.get("pre_change_accuracy") is not None:
            pre, post = s.get("changepoint_halo", ["?", "?"])
            details.append(
                f"around changepoints (±{pre}/{post} steps): "
                f"{s['pre_change_accuracy']:.3f} before → "
                f"{s['post_change_accuracy']:.3f} after, recovery "
                f"`{sparkline(s.get('changepoint_curve') or [], width=24)}`"
            )
        if s.get("burst_accuracy") is not None:
            details.append(
                f"burst-corrupted steps {s['burst_accuracy']:.3f} vs "
                f"clean {s['clean_accuracy']:.3f}"
            )
        if details:
            lines.append(f"* **{s.get('scenario', '?')}** — " + "; ".join(details))
    if any(
        s.get("pre_change_accuracy") is not None or s.get("burst_accuracy") is not None
        for s in scenarios
    ):
        lines.append("")
    return lines


def _fig_sections(record: Dict) -> List[str]:
    lines: List[str] = []
    fig5 = record.get("fig5")
    if fig5:
        lines += ["## Fig. 5 — baseline under stress", ""]
        for key, value in fig5.items():
            lines.append(f"* {key.replace('_', ' ')}: {value:.3f}")
        lines.append("")
    fig7 = record.get("fig7")
    if fig7:
        lines += [
            "## Fig. 7 — ablation",
            "",
            "| Config | Clean | Perturbed |",
            "|---|---|---|",
        ]
        for config, modes in fig7.items():
            lines.append(
                f"| {config} | {_mean_std(modes['clean'])} | {_mean_std(modes['perturbed'])} |"
            )
        lines.append("")
    mu = record.get("mu_extraction")
    if mu:
        lines += [
            "## µ extraction",
            "",
            f"µ ∈ [{mu['mu_min']:.2f}, {mu['mu_max']:.2f}], mean {mu['mu_mean']:.3f}; "
            f"{mu['within_paper_band']:.0%} of fits inside the paper's [1, 1.3] band.",
            "",
        ]
    return lines


def render_report(record: Dict) -> str:
    """Render one ``results.json`` record as a markdown report."""
    lines = [
        f"# ADAPT-pNC evaluation report — scale `{record.get('scale', '?')}`",
        "",
        f"Datasets: {len(record.get('datasets', []))}; "
        f"seeds: {record.get('seeds', [])}.",
        "",
    ]
    lines += _table1_section(record)
    lines += _table2_section(record)
    lines += _table3_section(record)
    lines += _mc_section(record)
    lines += _filter_scan_section(record)
    lines += _tape_section(record)
    lines += _streaming_section(record)
    lines += _fig_sections(record)
    return "\n".join(lines)


def render_report_file(results_json: PathLike, output_md: PathLike | None = None) -> str:
    """Render a saved ``results.json``; optionally write ``output_md``."""
    record = json.loads(pathlib.Path(results_json).read_text())
    text = render_report(record)
    if output_md is not None:
        pathlib.Path(output_md).write_text(text)
    return text


# -- telemetry run rendering ------------------------------------------------

#: Eight-level unicode block ramp used by :func:`sparkline`.
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Render ``values`` as a fixed-``width`` unicode sparkline.

    Longer series are downsampled by striding; constant (or single
    -point) series render as a flat baseline.  Non-finite values map to
    the baseline block so a diverging run stays renderable.
    """
    import math

    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        stride = len(vals) / width
        vals = [vals[int(i * stride)] for i in range(width)]
    finite = [v for v in vals if math.isfinite(v)]
    if not finite:
        return SPARK_BLOCKS[0] * len(vals)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    if span <= 0:
        return SPARK_BLOCKS[0] * len(vals)
    out = []
    for v in vals:
        if not math.isfinite(v):
            out.append(SPARK_BLOCKS[0])
            continue
        idx = int((v - lo) / span * (len(SPARK_BLOCKS) - 1))
        out.append(SPARK_BLOCKS[idx])
    return "".join(out)


def _epoch_series_section(epochs: List[Dict]) -> List[str]:
    """Sparkline table over the per-epoch telemetry records."""
    if not epochs:
        return ["*(no epoch events recorded)*", ""]
    series = {
        "train loss": [e["train_loss"] for e in epochs],
        "val loss": [e["val_loss"] for e in epochs],
        "learning rate": [e["lr"] for e in epochs],
    }
    if any("mc_loss_std" in e for e in epochs):
        series["MC loss σ"] = [e.get("mc_loss_std", 0.0) for e in epochs]
    lines = [
        "| Series | First | Last | Min | Trajectory |",
        "|---|---|---|---|---|",
    ]
    for label, vals in series.items():
        lines.append(
            f"| {label} | {vals[0]:.4g} | {vals[-1]:.4g} | "
            f"{min(vals):.4g} | `{sparkline(vals)}` |"
        )
    last = epochs[-1]
    lines += [
        "",
        f"{len(epochs)} epochs recorded; best val loss "
        f"{last.get('best_val_loss', float('nan')):.4g} at epoch "
        f"{last.get('best_epoch', '?')}; mean epoch wall-clock "
        f"{sum(e.get('epoch_s', 0.0) for e in epochs) / len(epochs) * 1e3:.1f} ms.",
        "",
    ]
    return lines


def _span_section(run_end: Optional[Dict]) -> List[str]:
    """Span wall-clock and gauge tables from the ``run_end`` event."""
    if not run_end:
        return []
    lines: List[str] = []
    spans = run_end.get("span_totals") or {}
    if spans:
        lines += [
            "## Span wall-clock",
            "",
            "| Span | Total | Calls |",
            "|---|---|---|",
        ]
        for name, entry in sorted(spans.items()):
            lines.append(
                f"| `{name}` | {entry['seconds']*1e3:.1f} ms | {entry['calls']:.0f} |"
            )
        lines.append("")
    gauges = run_end.get("gauges") or {}
    mc = gauges.get("mc")
    if mc:
        lines += [
            "## Monte-Carlo counters",
            "",
            f"* forwards: {mc.get('forward_calls', 0):.0f} "
            f"({mc.get('forward_seconds', 0.0):.2f} s, "
            f"{mc.get('draws', 0):.0f} draws, "
            f"{mc.get('draws_per_second', 0.0):.1f} draws/s)",
            f"* backwards: {mc.get('backward_calls', 0):.0f} "
            f"({mc.get('backward_seconds', 0.0):.2f} s)",
            "",
        ]
    tape = gauges.get("tape")
    if tape and tape.get("replays"):
        lines += [
            "## Tape",
            "",
            f"* traces: {tape.get('traces', 0):.0f} "
            f"({tape.get('traced_ops', 0):.0f} ops recorded, "
            f"{tape.get('fused_ops', 0):.0f} fused, "
            f"{tape.get('dead_grad_skips', 0):.0f} dead-grad skips; "
            f"build {tape.get('build_seconds', 0.0)*1e3:.1f} ms)",
            f"* cache: {tape.get('cache_hits', 0):.0f} hits, "
            f"{tape.get('cache_misses', 0):.0f} misses, "
            f"{tape.get('fallbacks', 0):.0f} fallbacks to interpreted",
            f"* replays: {tape.get('replays', 0):.0f} "
            f"(forward {tape.get('replay_seconds', 0.0):.2f} s, "
            f"backward {tape.get('replay_backward_seconds', 0.0):.2f} s)",
            "",
        ]
    return lines


def _sweep_section(events: List[Dict]) -> List[str]:
    """Sweep-campaign summary from ``sweep.*`` events, if any were emitted.

    Renders the campaign totals from ``sweep.end``, the execution policy
    from ``sweep.start``, and — because failed cells are the thing an
    operator needs to act on — one line per non-``ok`` ``sweep.cell_end``
    with its error, attempt count and any recorded timeouts/retries.
    """
    start = next((e for e in events if e["kind"] == "sweep.start"), None)
    end = next((e for e in events if e["kind"] == "sweep.end"), None)
    if start is None and end is None:
        return []
    lines = ["## Sweep", ""]
    if start:
        lines.append(
            f"* executor: **{start.get('executor', '?')}** "
            f"(max_workers={start.get('max_workers', '?')}, "
            f"timeout_s={start.get('timeout_s')}, "
            f"retries={start.get('retries', '?')})"
        )
        if start.get("cache_dir"):
            lines.append(
                f"* storage: `{start['cache_dir']}` "
                f"({start.get('store', 'files')} backend, "
                f"fingerprint `{start.get('cache_fingerprint', '?')}`, "
                f"{start.get('n_cached', 0)} cells resumed)"
            )
    pool_end = next(
        (e for e in reversed(events) if e["kind"] == "sweep.pool.end"), None
    )
    if pool_end:
        occupancy = pool_end.get("occupancy") or {}
        busy = ", ".join(
            f"{slot} {seconds:.1f}s" for slot, seconds in sorted(occupancy.items())
        )
        lines.append(
            f"* pool: {pool_end.get('n_workers', '?')} workers, "
            f"{pool_end.get('steals', 0)} steals, "
            f"{pool_end.get('restarts', 0)} replaced"
            + (f"; busy: {busy}" if busy else "")
        )
    if end:
        lines.append(
            f"* cells: {end.get('n_ok', '?')}/{end.get('n_cells', '?')} ok, "
            f"{end.get('n_failed', 0)} failed, "
            f"{end.get('n_cached', 0)} from cache "
            f"({end.get('elapsed_s', 0.0):.1f} s)"
        )
    n_retries = sum(1 for e in events if e["kind"] == "sweep.retry")
    n_timeouts = sum(1 for e in events if e["kind"] == "sweep.timeout")
    if n_retries or n_timeouts:
        lines.append(f"* retries: {n_retries}; timeouts: {n_timeouts}")
    failed = [
        e for e in events if e["kind"] == "sweep.cell_end" and e.get("status") != "ok"
    ]
    if failed:
        lines += ["", "| Failed cell | Attempts | Error |", "|---|---|---|"]
        for e in failed:
            error = (e.get("error") or "?").splitlines()[0]
            lines.append(
                f"| `{e.get('cell', '?')}` | {e.get('attempts', '?')} | {error} |"
            )
    lines.append("")
    return lines


def _serve_section(events: List[Dict]) -> List[str]:
    """Serving-tier summary from ``serve.*`` events, if any were emitted.

    Renders the service configuration from ``serve.start``, the final
    traffic totals (preferring ``serve.end``, falling back to the last
    ``serve.stats`` snapshot), the achieved batch-size histogram, and
    the degradation counters an operator acts on: queue-full
    rejections, request timeouts and worker restarts.
    """
    start = next((e for e in events if e["kind"] == "serve.start"), None)
    final = next(
        (
            e
            for e in reversed(events)
            if e["kind"] in ("serve.end", "serve.stats")
        ),
        None,
    )
    if start is None and final is None:
        return []
    lines = ["## Serving", ""]
    if start:
        lines.append(
            f"* micro-batching: window {start.get('window_s', 0.0)*1e3:.1f} ms, "
            f"max batch {start.get('max_batch', '?')}, "
            f"queue {start.get('queue_size', '?')}, "
            f"workers {start.get('workers', 0)}, "
            f"precision {start.get('precision', 'inherit')}"
        )
    if final:
        by_status = final.get("by_status") or {}
        latency = final.get("latency_ms") or {}
        lines += [
            f"* requests: {final.get('requests', 0)} "
            f"({by_status.get('ok', 0)} ok) at {final.get('qps', 0.0):.1f} qps",
            f"* latency: p50 {latency.get('p50', 0.0):.2f} ms, "
            f"p99 {latency.get('p99', 0.0):.2f} ms, "
            f"mean {latency.get('mean', 0.0):.2f} ms",
            f"* batches: {final.get('batches', 0)} "
            f"(mean size {final.get('mean_batch_size', 0.0):.1f}, "
            f"max queue depth {final.get('max_queue_depth', 0)})",
        ]
        plan_cache = final.get("plan_cache") or {}
        if plan_cache:
            lines.append(
                f"* plan cache: {plan_cache.get('hits', 0)} hits, "
                f"{plan_cache.get('misses', 0)} misses, "
                f"{plan_cache.get('evictions', 0)} evictions"
            )
        degraded = []
        if by_status.get("queue_full"):
            degraded.append(f"{by_status['queue_full']} queue-full rejections")
        if by_status.get("timeout"):
            degraded.append(f"{by_status['timeout']} request timeouts")
        if final.get("worker_restarts"):
            degraded.append(f"{final['worker_restarts']} worker restarts")
        if by_status.get("error"):
            degraded.append(f"{by_status['error']} errors")
        lines.append(
            "* degradation: " + ("; ".join(degraded) if degraded else "none")
        )
        histogram = final.get("batch_size_histogram") or {}
        if histogram:
            lines += ["", "| Batch size | Batches |", "|---|---|"]
            for size, count in sorted(histogram.items(), key=lambda kv: int(kv[0])):
                lines.append(f"| {size} | {count} |")
    lines.append("")
    return lines


def _stream_run_section(events: List[Dict]) -> List[str]:
    """Streaming summary from ``stream.*`` events, if any.

    One line per completed scenario (``stream.end``) plus the per-chunk
    accuracy trajectory reconstructed from the ``stream.chunk`` events,
    and — when the run hosted a serving fleet — the batched
    fleet-stepping summary from the ``stream.batch.*`` events (rows
    coalesced per step, fleet occupancy, evictions).
    """
    ends = [e for e in events if e["kind"] == "stream.end"]
    steps = [e for e in events if e["kind"] == "stream.batch.step"]
    opens = [e for e in events if e["kind"] == "stream.batch.open"]
    evicts = [e for e in events if e["kind"] == "stream.batch.evict"]
    if not ends and not (steps or opens):
        return []
    lines = ["## Streaming", ""]
    if ends:
        lines += [
            "| Scenario | Dataset | Steps | Accuracy | Chunk accuracy |",
            "|---|---|---|---|---|",
        ]
        for end in ends:
            chunk_accs = [
                c.get("accuracy", 0.0)
                for c in events
                if c["kind"] == "stream.chunk"
                and c.get("scenario") == end.get("scenario")
            ]
            lines.append(
                f"| {end.get('scenario', '?')} | {end.get('dataset', '?')} | "
                f"{end.get('steps', '?')} | {end.get('accuracy', float('nan')):.3f} | "
                f"`{sparkline(chunk_accs)}` |"
            )
        lines.append("")
    if steps or opens:
        ok_steps = [e for e in steps if e.get("status") != "error"]
        rows = [int(e.get("rows", 0)) for e in ok_steps]
        total_rows = sum(rows)
        occupancies = [int(e.get("occupancy", 0)) for e in ok_steps + opens]
        capacity = next(
            (int(e["capacity"]) for e in ok_steps + opens if "capacity" in e), 0
        )
        lines.append("**Fleet stepping** (batched `/predict_stream`):")
        lines.append("")
        lines.append(
            f"* {len(ok_steps)} fleet steps advanced {total_rows} stream-chunks"
            + (
                f" ({total_rows / len(ok_steps):.2f} rows/step, "
                f"max {max(rows)})"
                if ok_steps
                else ""
            )
        )
        lines.append(
            f"* {len(opens)} sessions opened; peak occupancy "
            f"{max(occupancies) if occupancies else 0}"
            + (f"/{capacity}" if capacity else "")
            + f"; {len(evicts)} LRU evictions"
        )
        if ok_steps:
            lines.append(
                "* rows per step: `"
                + sparkline([float(r) for r in rows])
                + "`"
            )
        lines.append("")
    return lines


def render_run(run_dir: PathLike) -> str:
    """Render one telemetry run directory as a markdown report.

    Reads the manifest (``run.json``) and event stream
    (``events.jsonl``) written by :class:`repro.telemetry.Run` and
    produces the per-epoch sparkline table, evaluation summaries, sweep
    campaign summary (when the run wraps a ``repro.parallel`` sweep),
    serving summary (when the run wraps a ``repro.serve`` service),
    span wall-clock breakdown and Monte-Carlo counters.
    """
    from .telemetry import iter_events, load_manifest

    run_dir = pathlib.Path(run_dir)
    manifest = load_manifest(run_dir)
    events = list(iter_events(run_dir / "events.jsonl"))
    epochs = sorted(
        (e for e in events if e["kind"] == "epoch"), key=lambda e: e["epoch"]
    )
    evaluations = [e for e in events if e["kind"] == "evaluation"]
    run_end = next((e for e in events if e["kind"] == "run_end"), None)
    sweep_lines = _sweep_section(events)
    serve_lines = _serve_section(events)
    stream_lines = _stream_run_section(events)

    lines = [
        f"# Run `{manifest.get('run_id', run_dir.name)}`",
        "",
        f"* status: **{manifest.get('status', '?')}**",
        f"* created: {manifest.get('created_iso', '?')}",
        f"* git: `{manifest.get('git_sha') or 'unknown'}`",
        f"* seed: {manifest.get('seed')}; dataset: {manifest.get('dataset')}",
    ]
    model = manifest.get("model")
    if model:
        backends = manifest.get("backends") or {}
        lines.append(
            f"* model: {model} (variation_aware={manifest.get('variation_aware')}, "
            f"mc={backends.get('mc_backend', '?')}, "
            f"scan={backends.get('scan_backend', '?')}, "
            f"graph={backends.get('graph_backend', 'interpreted')})"
        )
    if manifest.get("checkpoint"):
        lines.append(f"* checkpoint: `{manifest['checkpoint']}`")
    lines += ["", "## Training", ""]
    lines += _epoch_series_section(epochs)
    if evaluations:
        lines += [
            "## Evaluations",
            "",
            "| Model | Variation | Draws | Accuracy | Wall-clock |",
            "|---|---|---|---|---|",
        ]
        for ev in evaluations:
            lines.append(
                f"| {ev.get('model', '?')} | {ev.get('variation', '?')} | "
                f"{ev.get('mc_samples', 0)} | "
                f"{ev.get('accuracy_mean', float('nan')):.3f} ± "
                f"{ev.get('accuracy_std', float('nan')):.3f} | "
                f"{ev.get('elapsed_s', 0.0)*1e3:.1f} ms |"
            )
        lines.append("")
    lines += sweep_lines
    lines += serve_lines
    lines += stream_lines
    lines += _span_section(run_end)
    return "\n".join(lines)
