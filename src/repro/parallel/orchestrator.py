"""Process-pool sweep orchestrator with a bit-equal serial oracle.

Experiment campaigns (Table I, Fig. 7) are grids of *independent*
cells — one ``(dataset, model, seed)`` training+evaluation unit each.
:func:`run_cells` executes such a grid under one of three executors:

* ``"serial"`` — every cell in deterministic submission order, in this
  process.  This is the **oracle**: both process executors must
  produce bit-identical values.
* ``"parallel"`` — cells sharded across up to ``max_workers`` worker
  *processes* (one short-lived process per cell, so a wedged or killed
  cell never poisons a pool), with per-task timeouts, bounded
  retry-with-backoff and graceful degradation: a cell that still fails
  after its retries yields a ``failed`` :class:`CellOutcome` instead of
  aborting the sweep.
* ``"pool"`` — persistent workers with a task queue and work-stealing
  (:mod:`repro.parallel.pool`): interpreter/import startup is paid
  once per worker instead of once per cell, dead workers are replaced
  against a bounded restart budget, and the same timeout/retry
  semantics apply.

Bit-equality holds because every cell is a pure function of its
arguments: all randomness inside a cell derives from the cell's own
seeds via per-draw ``SeedSequence`` child streams (the Monte-Carlo
engine's pattern), never from shared mutable state, so values are
independent of scheduling, interleaving and process boundaries.

Caching and resume
------------------
With ``cache_dir`` set, completed cells are persisted through one of
two storage backends behind a common interface (see
:func:`repro.parallel.store.open_storage`): the fingerprinted on-disk
:class:`~repro.parallel.cache.SweepCache` (``store="files"``, one JSON
file per cell) or the SQLite :class:`~repro.parallel.store.CampaignStore`
(``store="sqlite"``, queryable via ``python -m repro query``).  Both
are keyed by the same protocol fingerprint (config + cell function
identity), so a sweep killed mid-run — including SIGKILL — resumes by
rerunning the same command: cached cells short-circuit as
``cached=True`` outcomes and only unfinished cells recompute, on
either backend.  The storage handle is closed in ``finally`` even when
an executor fails to start or breaks mid-campaign (mirroring the
scan-backend override restore in ``core/evaluation.py``).

Telemetry
---------
When a :class:`repro.telemetry.Run` is active the orchestrator emits
``sweep.*`` events (see ``docs/OBSERVABILITY.md``): ``sweep.start`` /
``sweep.end`` around the campaign, per-cell ``sweep.cell_start`` /
``sweep.cell_end``, ``sweep.retry`` / ``sweep.timeout`` for fault
handling, and ``sweep.worker`` wrappers around events the workers
stream back (epoch losses, evaluations), so ``python -m repro runs
tail`` watches a live sweep.  Per-cell wall-clock lands in the
``sweep.cell`` span; worker span totals merge in under
``sweep.worker.<name>``.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from .store import STORE_BACKENDS, open_storage

__all__ = [
    "EXECUTORS",
    "SweepOptions",
    "SweepCell",
    "CellOutcome",
    "run_cells",
    "summarize_outcomes",
]

#: Valid sweep executors ("serial" is the bit-equal oracle).
EXECUTORS = ("serial", "parallel", "pool")


@dataclass(frozen=True)
class SweepOptions:
    """Execution policy of one sweep campaign.

    Parameters
    ----------
    executor:
        ``"serial"`` (in-process oracle), ``"parallel"`` (one
        short-lived process per cell) or ``"pool"`` (persistent
        work-stealing workers).
    max_workers:
        Maximum simultaneously live worker processes (process
        executors only).
    timeout_s:
        Per-attempt wall-clock budget of one cell; a worker exceeding
        it is terminated and the attempt counts as failed.  ``None``
        disables the limit.  Enforced by the parallel executor only —
        the serial oracle cannot preempt its own process.
    retries:
        Extra attempts after the first failure (crash, exception or
        timeout); ``retries=2`` means up to 3 attempts total.
    backoff_s:
        Base of the linear retry backoff: attempt *n* (1-based failure
        count) waits ``backoff_s * n`` before relaunching.
    cache_dir:
        Root of the campaign storage; ``None`` disables caching.
    store:
        Storage backend under ``cache_dir``: ``"files"`` (one JSON file
        per cell) or ``"sqlite"`` (the queryable campaign store).  Both
        resume each other's fingerprints bit-equally.
    pool_restarts:
        Worker replacements the ``"pool"`` executor tolerates per
        campaign before raising
        :class:`~repro.parallel.pool.PoolBrokenError`.
    forward_worker_events:
        Stream telemetry events from workers back into the parent run
        (wrapped as ``sweep.worker``); disable to keep only the
        orchestrator's own ``sweep.*`` events.
    """

    executor: str = "serial"
    max_workers: int = 2
    timeout_s: Optional[float] = None
    retries: int = 1
    backoff_s: float = 0.1
    cache_dir: Optional[str] = None
    store: str = "files"
    pool_restarts: int = 2
    forward_worker_events: bool = True

    def __post_init__(self) -> None:
        """Validate executor name, store backend and numeric ranges."""
        if self.executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {self.executor!r}")
        if self.store not in STORE_BACKENDS:
            raise ValueError(f"store must be one of {STORE_BACKENDS}, got {self.store!r}")
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.pool_restarts < 0:
            raise ValueError("pool_restarts must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: a stable key plus picklable call args."""

    key: Tuple[str, ...]
    args: Tuple = ()

    def __post_init__(self) -> None:
        """Normalise the key to a tuple of strings."""
        object.__setattr__(self, "key", tuple(str(part) for part in self.key))

    @property
    def label(self) -> str:
        """Human-readable ``"/"``-joined key used in telemetry events."""
        return "/".join(self.key)


@dataclass
class CellOutcome:
    """Terminal state of one cell after caching, retries and fallback."""

    key: Tuple[str, ...]
    status: str  # "ok" | "failed"
    value: Optional[Dict] = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    attempts: int = 0
    elapsed_s: float = 0.0
    cached: bool = False
    worker_pid: Optional[int] = None
    span_totals: Dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the cell produced a value (fresh or cached)."""
        return self.status == "ok"


class _SweepTelemetry:
    """Event/span emission helper shared by both executors."""

    def __init__(self, options: SweepOptions, forward: bool) -> None:
        self.options = options
        self.forward = forward

    def cell_start(self, cell: SweepCell, attempt: int, pid: Optional[int]) -> None:
        telemetry.emit(
            "sweep.cell_start", cell=cell.label, attempt=attempt, worker_pid=pid
        )

    def retry(self, cell: SweepCell, attempt: int, error: str, backoff_s: float) -> None:
        telemetry.emit(
            "sweep.retry", cell=cell.label, attempt=attempt, error=error,
            backoff_s=backoff_s,
        )

    def timeout(self, cell: SweepCell, attempt: int) -> None:
        telemetry.emit(
            "sweep.timeout",
            cell=cell.label,
            attempt=attempt,
            timeout_s=self.options.timeout_s,
        )

    def worker_event(self, cell: SweepCell, pid: Optional[int], payload: Dict) -> None:
        if self.forward:
            telemetry.emit(
                "sweep.worker",
                cell=cell.label,
                worker_pid=pid,
                worker_kind=payload.get("kind"),
                fields=payload.get("fields", {}),
            )

    def cell_end(self, outcome: CellOutcome) -> None:
        telemetry.emit(
            "sweep.cell_end",
            cell="/".join(outcome.key),
            status=outcome.status,
            attempts=outcome.attempts,
            cached=outcome.cached,
            elapsed_s=outcome.elapsed_s,
            values=outcome.value,
            error=outcome.error,
        )
        if not outcome.cached:
            telemetry.record_span("sweep.cell", outcome.elapsed_s)
        for name, entry in (outcome.span_totals or {}).items():
            telemetry.record_span(f"sweep.worker.{name}", entry.get("seconds", 0.0))


def _check_cells(cells: Sequence[SweepCell]) -> None:
    seen = set()
    for cell in cells:
        if cell.key in seen:
            raise ValueError(f"duplicate sweep cell key: {cell.key}")
        seen.add(cell.key)


def run_cells(
    fn: Callable[..., Dict],
    cells: Sequence[SweepCell],
    options: Optional[SweepOptions] = None,
    fingerprint: Optional[Dict] = None,
) -> Dict[Tuple[str, ...], CellOutcome]:
    """Execute every cell under ``options``; never raises per-cell errors.

    Parameters
    ----------
    fn:
        Module-level (picklable) cell function; ``fn(*cell.args)`` must
        return a JSON-serialisable dict.  Exceptions become ``failed``
        outcomes after the retry budget is spent.
    cells:
        The grid; keys must be unique.
    options:
        Execution policy (defaults to the serial oracle).
    fingerprint:
        Extra JSON-serialisable protocol identity mixed into the cache
        fingerprint (e.g. the experiment config); the cell function's
        module/qualname is always included.

    Returns
    -------
    dict
        ``{cell.key: CellOutcome}`` for every submitted cell, in
        submission order.
    """
    options = options or SweepOptions()
    cells = list(cells)
    _check_cells(cells)

    cache = None
    if options.cache_dir is not None:
        protocol = {
            "fn": f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}",
            "fingerprint": fingerprint or {},
        }
        cache = open_storage(options.cache_dir, protocol, options.store)

    events = _SweepTelemetry(options, options.forward_worker_events)
    t0 = time.perf_counter()
    outcomes: Dict[Tuple[str, ...], CellOutcome] = {}

    # The storage handle must be released however the campaign ends —
    # normal completion, a broken pool, or an executor that failed to
    # start (same try/finally discipline as the scan-backend override
    # in core/evaluation.py).
    try:
        # Cache hits short-circuit identically under every executor.
        to_run: List[SweepCell] = []
        for cell in cells:
            hit = cache.load(cell.key) if cache is not None else None
            if hit is not None:
                outcomes[cell.key] = CellOutcome(
                    key=cell.key, status="ok", value=hit, attempts=0, cached=True
                )
            else:
                to_run.append(cell)

        telemetry.emit(
            "sweep.start",
            executor=options.executor,
            n_cells=len(cells),
            n_cached=len(cells) - len(to_run),
            max_workers=(
                options.max_workers if options.executor in ("parallel", "pool") else 1
            ),
            timeout_s=options.timeout_s,
            retries=options.retries,
            cache_dir=options.cache_dir,
            store=options.store,
            cache_fingerprint=cache.fingerprint if cache is not None else None,
        )
        for cell in cells:
            if cell.key in outcomes:
                events.cell_end(outcomes[cell.key])

        def persist(outcome: CellOutcome) -> None:
            """Store an ok cell the moment it completes.

            Called by every executor as each outcome lands (not batched
            at the end of the sweep), so a campaign killed at any point
            — including SIGKILL of the orchestrator itself — resumes
            with every finished cell already on disk.
            """
            if cache is not None and outcome.ok and not outcome.cached:
                cache.store(
                    outcome.key,
                    outcome.value,
                    meta={
                        "attempts": outcome.attempts,
                        "elapsed_s": outcome.elapsed_s,
                        "worker_pid": outcome.worker_pid,
                    },
                )

        if options.executor == "serial":
            computed = _run_serial(fn, to_run, options, events, persist)
        elif options.executor == "pool":
            from .pool import run_pool

            computed = run_pool(fn, to_run, options, events, persist)
        else:
            computed = _run_parallel(fn, to_run, options, events, persist)

        outcomes.update(computed)
    finally:
        if cache is not None:
            cache.close()

    ordered = {cell.key: outcomes[cell.key] for cell in cells}
    n_ok = sum(1 for o in ordered.values() if o.ok)
    telemetry.emit(
        "sweep.end",
        n_cells=len(cells),
        n_ok=n_ok,
        n_failed=len(cells) - n_ok,
        n_cached=sum(1 for o in ordered.values() if o.cached),
        elapsed_s=time.perf_counter() - t0,
    )
    return ordered


# -- serial oracle -----------------------------------------------------------


def _run_serial(
    fn: Callable[..., Dict],
    cells: Sequence[SweepCell],
    options: SweepOptions,
    events: _SweepTelemetry,
    persist: Callable[[CellOutcome], None],
) -> Dict[Tuple[str, ...], CellOutcome]:
    """In-process executor: deterministic order, same retry semantics."""
    outcomes: Dict[Tuple[str, ...], CellOutcome] = {}
    for cell in cells:
        start = time.perf_counter()
        attempt = 0
        outcome: Optional[CellOutcome] = None
        while attempt <= options.retries:
            attempt += 1
            events.cell_start(cell, attempt, pid=None)
            try:
                value = fn(*cell.args)
            except Exception as exc:  # noqa: BLE001 — degrade, don't abort
                error = f"{type(exc).__name__}: {exc}"
                if attempt <= options.retries:
                    backoff = options.backoff_s * attempt
                    events.retry(cell, attempt, error, backoff)
                    if backoff:
                        time.sleep(backoff)
                    continue
                import traceback as _tb

                outcome = CellOutcome(
                    key=cell.key,
                    status="failed",
                    error=error,
                    traceback=_tb.format_exc(limit=30),
                    attempts=attempt,
                    elapsed_s=time.perf_counter() - start,
                )
                break
            outcome = CellOutcome(
                key=cell.key,
                status="ok",
                value=value,
                attempts=attempt,
                elapsed_s=time.perf_counter() - start,
            )
            break
        assert outcome is not None
        outcomes[cell.key] = outcome
        persist(outcome)
        events.cell_end(outcome)
    return outcomes


# -- parallel executor -------------------------------------------------------


class _Task:
    """One live worker process computing one cell attempt."""

    __slots__ = ("cell", "attempt", "proc", "conn", "started", "deadline", "pid")

    def __init__(self, cell: SweepCell, attempt: int, proc, conn, timeout_s) -> None:
        self.cell = cell
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        self.started = time.perf_counter()
        self.deadline = None if timeout_s is None else self.started + timeout_s
        self.pid = proc.pid


def _terminate(task: _Task) -> None:
    """Forcefully stop a task's worker process and release its pipe."""
    try:
        if task.proc.is_alive():
            task.proc.terminate()
            task.proc.join(timeout=1.0)
            if task.proc.is_alive():
                task.proc.kill()
                task.proc.join(timeout=1.0)
    finally:
        try:
            task.conn.close()
        except OSError:
            pass


def _run_parallel(
    fn: Callable[..., Dict],
    cells: Sequence[SweepCell],
    options: SweepOptions,
    events: _SweepTelemetry,
    persist: Callable[[CellOutcome], None],
) -> Dict[Tuple[str, ...], CellOutcome]:
    """Shard cells across worker processes with timeouts and retries."""
    from .worker import worker_main

    ctx = multiprocessing.get_context()
    outcomes: Dict[Tuple[str, ...], CellOutcome] = {}
    #: (ready_at, submission_index, cell, next_attempt, first_started)
    pending: List[Tuple[float, int, SweepCell, int]] = [
        (0.0, i, cell, 1) for i, cell in enumerate(cells)
    ]
    seq = len(cells)  # monotonically increasing sort tiebreaker
    live: Dict[object, _Task] = {}
    first_start: Dict[Tuple[str, ...], float] = {}

    def launch(cell: SweepCell, attempt: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=worker_main,
            args=(child_conn, fn, cell.args, options.forward_worker_events),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        task = _Task(cell, attempt, proc, parent_conn, options.timeout_s)
        live[parent_conn] = task
        first_start.setdefault(cell.key, task.started)
        events.cell_start(cell, attempt, pid=proc.pid)

    def finish(task: _Task, outcome: CellOutcome) -> None:
        outcomes[task.cell.key] = outcome
        persist(outcome)
        events.cell_end(outcome)

    def fail_or_retry(task: _Task, error: str, tb: Optional[str] = None) -> None:
        nonlocal seq
        if task.attempt <= options.retries:
            backoff = options.backoff_s * task.attempt
            events.retry(task.cell, task.attempt, error, backoff)
            seq += 1  # retries queue after every fresh cell, in failure order
            pending.append(
                (time.perf_counter() + backoff, seq, task.cell, task.attempt + 1)
            )
        else:
            finish(
                task,
                CellOutcome(
                    key=task.cell.key,
                    status="failed",
                    error=error,
                    traceback=tb,
                    attempts=task.attempt,
                    elapsed_s=time.perf_counter() - first_start[task.cell.key],
                    worker_pid=task.pid,
                ),
            )

    try:
        while pending or live:
            now = time.perf_counter()
            # Fill free slots with launchable (ready_at <= now) cells.
            pending.sort(key=lambda item: (item[0], item[1]))
            while pending and len(live) < options.max_workers and pending[0][0] <= now:
                _, _, cell, attempt = pending.pop(0)
                launch(cell, attempt)

            if not live:
                if pending:  # every queued retry is still backing off
                    time.sleep(max(0.0, pending[0][0] - now))
                continue

            # Wake on the earliest of: message ready, deadline, backoff expiry.
            wake_at: Optional[float] = None
            for task in live.values():
                if task.deadline is not None:
                    wake_at = task.deadline if wake_at is None else min(wake_at, task.deadline)
            if pending and len(live) < options.max_workers:
                wake_at = pending[0][0] if wake_at is None else min(wake_at, pending[0][0])
            wait_s = None if wake_at is None else max(0.0, wake_at - time.perf_counter())
            ready = multiprocessing.connection.wait(list(live), timeout=wait_s)

            for conn in ready:
                task = live.get(conn)
                if task is None:
                    continue
                # Drain every queued message (workers stream telemetry
                # ahead of their terminal result/error message).
                while True:
                    try:
                        kind, payload = conn.recv()
                    except (EOFError, OSError):
                        # Worker died without a terminal message (crash/kill).
                        del live[conn]
                        task.proc.join(timeout=1.0)
                        exitcode = task.proc.exitcode
                        _terminate(task)
                        fail_or_retry(
                            task, f"worker died without result (exitcode {exitcode})"
                        )
                        break
                    if kind == "event":
                        events.worker_event(task.cell, task.pid, payload)
                        if conn.poll():
                            continue
                        break
                    if kind == "result":
                        del live[conn]
                        task.proc.join(timeout=5.0)
                        _terminate(task)
                        finish(
                            task,
                            CellOutcome(
                                key=task.cell.key,
                                status="ok",
                                value=payload["value"],
                                attempts=task.attempt,
                                elapsed_s=time.perf_counter()
                                - first_start[task.cell.key],
                                worker_pid=payload.get("pid", task.pid),
                                span_totals=payload.get("span_totals", {}),
                            ),
                        )
                    else:  # "error"
                        del live[conn]
                        task.proc.join(timeout=5.0)
                        _terminate(task)
                        fail_or_retry(task, payload["error"], payload.get("traceback"))
                    break

            # Enforce per-attempt deadlines on whoever is still running.
            now = time.perf_counter()
            for conn, task in list(live.items()):
                if task.deadline is not None and now >= task.deadline:
                    del live[conn]
                    _terminate(task)
                    events.timeout(task.cell, task.attempt)
                    fail_or_retry(
                        task,
                        f"cell exceeded timeout of {options.timeout_s:.3g}s "
                        f"(attempt {task.attempt})",
                    )
    finally:
        for task in list(live.values()):
            _terminate(task)
        live.clear()
    return outcomes


def summarize_outcomes(outcomes: Dict[Tuple[str, ...], CellOutcome]) -> Dict:
    """Aggregate counts + failure list for reports and CLI summaries."""
    failures = [
        {"cell": "/".join(o.key), "error": o.error, "attempts": o.attempts}
        for o in outcomes.values()
        if not o.ok
    ]
    return {
        "n_cells": len(outcomes),
        "n_ok": sum(1 for o in outcomes.values() if o.ok),
        "n_failed": len(failures),
        "n_cached": sum(1 for o in outcomes.values() if o.cached),
        "attempts": sum(o.attempts for o in outcomes.values()),
        "failures": failures,
    }
