"""Sweep worker process entry point and telemetry forwarding.

A sweep worker runs exactly one experiment cell per process (process
isolation is what makes per-task timeouts, kills and crash retries
clean: the parent can always ``terminate()`` a wedged cell without
poisoning a shared pool).  The worker communicates with the parent over
one pipe carrying three message kinds::

    ("event",  {"kind": ..., "fields": {...}})   # streamed telemetry
    ("result", {"value": ..., "span_totals": ..., "pid": ...})
    ("error",  {"error": ..., "traceback": ..., "pid": ...})

Telemetry forwarding
--------------------
Instrumented library code (``Trainer.fit`` epoch events,
``evaluate_under_*`` evaluation events, …) emits through
:func:`repro.telemetry.emit`, which consults the *process-local* active
run.  On fork the child would inherit the parent's open
:class:`~repro.telemetry.Run` — including its ``events.jsonl`` file
handle — so the first thing a worker does is clear that inherited state
(two processes appending to one JSONL stream interleave corruptly).  In
its place the worker installs a :class:`WorkerTelemetry` shim that
duck-types the small Run surface the library uses (``emit`` / ``span``
/ ``record_span`` / ``update_manifest``) and forwards events over the
pipe; the parent re-emits them into the real run wrapped as
``sweep.worker`` events, so ``python -m repro runs tail`` watches a
live sweep.  Span durations are aggregated locally (spans are hot) and
shipped once with the final result.
"""

from __future__ import annotations

import os
import sys
import traceback
from typing import Callable, Dict, Optional, Tuple

from ..telemetry.gauges import Gauge

__all__ = ["WorkerTelemetry", "reset_inherited_telemetry", "worker_main"]


class _ShimSpan:
    """Timing context mirroring :class:`repro.telemetry.run._Span`."""

    __slots__ = ("_owner", "_name", "_start")

    def __init__(self, owner: "WorkerTelemetry", name: str) -> None:
        self._owner = owner
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_ShimSpan":
        import time

        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        import time

        self._owner.record_span(self._name, time.perf_counter() - self._start)


class WorkerTelemetry:
    """In-worker stand-in for :class:`repro.telemetry.Run`.

    Implements the subset of the Run interface that instrumented
    library code touches, so a sweep worker can run the exact same
    code path as an observed in-process run:

    * :meth:`emit` — forwards the event over the parent pipe (dropped
      silently once the pipe breaks: a dying parent must not crash the
      cell);
    * :meth:`span` / :meth:`record_span` — aggregate locally into a
      :class:`~repro.telemetry.gauges.Gauge` (shipped with the result);
    * :meth:`update_manifest` — no-op (workers own no manifest);
    * ``dir`` — ``None``, so :meth:`repro.core.Trainer.fit` never
      routes checkpoints into a nonexistent run directory.
    """

    #: Never stream one event per span from a worker.
    emit_span_events = False
    #: Workers have no run directory (Trainer checks before using it).
    dir = None

    def __init__(self, conn=None, run_id: str = "sweep-worker") -> None:
        self._conn = conn
        self.run_id = f"{run_id}-{os.getpid()}"
        self._spans = Gauge()

    def emit(self, kind: str, **fields) -> None:
        """Forward one event to the parent (best-effort)."""
        if self._conn is None:
            return
        try:
            self._conn.send(("event", {"kind": str(kind), "fields": fields}))
        except (BrokenPipeError, OSError):
            self._conn = None

    # close() parity with Run is intentionally absent: workers never
    # own files; the orchestrator finalises everything parent-side.

    def span(self, name: str) -> _ShimSpan:
        """Aggregate a ``with``-block duration under ``name``."""
        return _ShimSpan(self, name)

    def record_span(self, name: str, seconds: float) -> None:
        """Add a pre-measured duration under ``name``."""
        self._spans.add(name, seconds)

    def span_totals(self) -> Dict[str, Dict[str, float]]:
        """Aggregated ``{name: {seconds, calls}}`` totals so far."""
        return self._spans.snapshot()

    def update_manifest(self, **fields) -> None:
        """Workers own no manifest; accepted and discarded."""

    def __repr__(self) -> str:
        return f"WorkerTelemetry(run_id={self.run_id!r})"


def reset_inherited_telemetry() -> None:
    """Drop any Run state forked from the parent process.

    The inherited ``events.jsonl`` handle is *not* closed — closing a
    dup'd append-mode descriptor is harmless but the Run object still
    belongs to the parent; the child simply stops routing into it.
    Every forked worker (sweep cells, serving plan workers) calls this
    before doing anything observable.
    """
    from ..telemetry import run as _run_module

    _run_module._ACTIVE.clear()


#: Backwards-compatible private alias (pre-serving name).
_reset_inherited_telemetry = reset_inherited_telemetry


def worker_main(
    conn,
    fn: Callable[..., Dict],
    args: Tuple,
    forward_events: bool = True,
) -> None:
    """Run one cell function in this process and report over ``conn``.

    Installs a :class:`WorkerTelemetry` shim as the active run, calls
    ``fn(*args)``, and sends exactly one terminal message (``result``
    or ``error``).  Exits non-zero on failure so the parent can
    distinguish clean completion from a crashed interpreter even if the
    pipe message was lost.
    """
    from ..telemetry import run as _run_module

    reset_inherited_telemetry()
    shim = WorkerTelemetry(conn if forward_events else None)
    _run_module._ACTIVE.append(shim)
    failed = False
    try:
        value = fn(*args)
        conn.send(
            (
                "result",
                {
                    "value": value,
                    "span_totals": shim.span_totals(),
                    "pid": os.getpid(),
                },
            )
        )
    except BaseException as exc:  # noqa: BLE001 — report, then exit non-zero
        failed = True
        try:
            conn.send(
                (
                    "error",
                    {
                        "error": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(limit=30),
                        "pid": os.getpid(),
                    },
                )
            )
        except (BrokenPipeError, OSError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
    if failed:
        sys.exit(1)
