"""On-disk sweep cache: one JSON file per completed experiment cell.

A sweep campaign (e.g. the Table I grid of ``dataset × model × seed``
training cells) can take hours at paper scale; an interrupted run must
resume without recomputing finished cells.  The cache is keyed by a
**protocol fingerprint** — a SHA-256 digest of the canonical JSON of
everything that determines a cell's value (experiment config, cell
function identity, cache schema version) — following the trainer's
checkpoint-fingerprint approach: a silently different protocol could
never be bit-equal, so it gets a different cache directory instead of a
poisoned hit.

Layout::

    <cache_root>/<fingerprint>/
    ├── protocol.json            # the full protocol the digest covers
    └── cells/<cell-key>.json    # one completed CellOutcome value each

Writes are atomic (temp file + rename), so a sweep killed mid-store
never leaves a truncated cell behind; unreadable cell files are treated
as misses, not errors.  Only *successful* cells are stored — failed
cells are retried on the next resume.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import re
import time
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

__all__ = ["CACHE_VERSION", "SweepCache", "sweep_fingerprint"]

PathLike = Union[str, pathlib.Path]

#: Version of the cache layout; bumped on breaking changes so stale
#: caches become misses instead of corrupt hits.
CACHE_VERSION = 1

#: Characters allowed verbatim inside a cell-key path component.
_SAFE_COMPONENT = re.compile(r"[^A-Za-z0-9._-]")


def sweep_fingerprint(protocol: Dict) -> str:
    """Hex digest identifying a sweep protocol (stable across processes).

    ``protocol`` must be JSON-serialisable; key order is normalised so
    logically equal protocols always map to the same fingerprint.
    """
    blob = json.dumps(protocol, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _cell_filename(key: Sequence[str]) -> str:
    """Filesystem-safe file name for one cell key.

    Components are sanitised then joined with ``__``; a short digest of
    the raw key is appended so sanitisation collisions cannot alias two
    distinct cells onto one file.
    """
    parts = [_SAFE_COMPONENT.sub("-", str(part)) for part in key]
    digest = hashlib.sha256("\x1f".join(str(p) for p in key).encode()).hexdigest()[:8]
    return "__".join(parts) + f".{digest}.json"


class SweepCache:
    """Cell-level result cache for one sweep protocol.

    Parameters
    ----------
    root:
        Cache root directory (e.g. ``sweep_cache/``); the fingerprinted
        sweep directory is created beneath it.
    protocol:
        JSON-serialisable description of everything determining cell
        values.  :data:`CACHE_VERSION` is mixed in automatically.
    """

    def __init__(self, root: PathLike, protocol: Dict) -> None:
        self.protocol = {"cache_version": CACHE_VERSION, **protocol}
        self.fingerprint = sweep_fingerprint(self.protocol)
        self.dir = pathlib.Path(root) / self.fingerprint
        self.cells_dir = self.dir / "cells"
        self.cells_dir.mkdir(parents=True, exist_ok=True)
        protocol_path = self.dir / "protocol.json"
        if not protocol_path.exists():
            self._atomic_write(
                protocol_path,
                json.dumps(self.protocol, indent=2, sort_keys=True, default=str) + "\n",
            )

    # -- io ----------------------------------------------------------------

    @staticmethod
    def _atomic_write(path: pathlib.Path, text: str) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        tmp.replace(path)

    def _cell_path(self, key: Sequence[str]) -> pathlib.Path:
        return self.cells_dir / _cell_filename(key)

    # -- cell access ---------------------------------------------------------

    def load(self, key: Sequence[str]) -> Optional[Dict]:
        """Cached value dict for ``key``, or ``None`` on miss/corruption."""
        path = self._cell_path(key)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict) or "value" not in record:
            return None
        return record["value"]

    def store(
        self, key: Sequence[str], value: Dict, meta: Optional[Dict] = None
    ) -> pathlib.Path:
        """Atomically persist one completed cell's value dict.

        ``meta`` carries optional outcome bookkeeping (attempts, elapsed
        seconds, worker pid) alongside the value — the same fields the
        SQLite backend promotes to queryable columns.
        """
        path = self._cell_path(key)
        record = {
            "key": [str(part) for part in key],
            "value": value,
            "stored_unix": time.time(),
        }
        if meta:
            record["meta"] = meta
        self._atomic_write(path, json.dumps(record, sort_keys=True, default=str) + "\n")
        return path

    def keys(self) -> Iterator[Tuple[str, ...]]:
        """Keys of every readable cached cell (unspecified order)."""
        for path in self.cells_dir.glob("*.json"):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(record, dict) and "key" in record:
                yield tuple(record["key"])

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def close(self) -> None:
        """No-op: file-backed cells hold no connection state.

        Present so both storage backends satisfy the same interface
        (see :func:`repro.parallel.store.open_storage`).
        """

    def __repr__(self) -> str:
        return f"SweepCache(dir={str(self.dir)!r}, cells={len(self)})"
