"""Live terminal dashboard for sweep campaigns (``repro sweep --watch``).

The orchestrator already narrates a campaign through the ``sweep.*``
event stream in the run's ``events.jsonl`` (see
``docs/OBSERVABILITY.md``); this module turns that stream into a live
terminal view — no new telemetry, just a reader.  That split keeps the
dashboard *attachable*: it can watch a campaign owned by another
process (the usual case: ``repro sweep …`` in one terminal,
``repro sweep --watch`` in a second), replay a finished run's file, or
render one frame in CI.

:class:`SweepDashboard` is a pure fold over events — ``observe(event)``
updates counters, ``render()`` returns a frame string — so every column
is unit-testable without a TTY, a subprocess or a clock.
:func:`watch` adds the impure shell: tail-follow the file, repaint on
an interval, quit on ``q``/``Ctrl-C`` or when ``sweep.end`` arrives.

Columns and keys are documented in ``docs/CAMPAIGNS.md``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time
from typing import Dict, List, Optional, TextIO, Union

__all__ = ["SweepDashboard", "watch"]

PathLike = Union[str, pathlib.Path]

#: Frame glyphs for the progress bar (filled / current / empty).
_BAR = ("█", "░")


class _Slot:
    """Render-state of one worker slot."""

    __slots__ = ("pid", "cell", "attempt", "done", "busy_since", "busy_s", "replaced")

    def __init__(self, pid: Optional[int]) -> None:
        self.pid = pid
        self.cell: Optional[str] = None
        self.attempt = 0
        self.done = 0
        self.busy_since: Optional[float] = None
        self.busy_s = 0.0
        self.replaced = 0


class SweepDashboard:
    """Fold ``sweep.*`` events into a renderable campaign snapshot.

    Feed events (decoded ``events.jsonl`` dicts) to :meth:`observe`
    in file order; :meth:`render` produces one text frame at any point.
    Unknown event kinds are ignored (the event schema is open), so the
    dashboard keeps working as new kinds appear.
    """

    def __init__(self) -> None:
        self.executor: Optional[str] = None
        self.fingerprint: Optional[str] = None
        self.store: Optional[str] = None
        self.n_cells = 0
        self.n_cached = 0
        self.max_workers = 1
        self.ok = 0
        self.failed = 0
        self.cached_seen = 0
        self.retries = 0
        self.timeouts = 0
        self.steals = 0
        self.restarts = 0
        self.done = False
        self.elapsed_s: Optional[float] = None
        self.started_wall: Optional[float] = None
        self._fresh_elapsed: List[float] = []
        self._slots: Dict[int, _Slot] = {}
        self._slot_by_pid: Dict[int, int] = {}
        self._slot_by_cell: Dict[str, int] = {}
        self.failures: List[str] = []

    # -- event fold --------------------------------------------------------

    def observe(self, event: Dict) -> None:
        """Fold one decoded event into the snapshot (unknown kinds: no-op)."""
        kind = event.get("kind")
        handler = getattr(self, f"_on_{str(kind).replace('.', '_')}", None)
        if handler is not None:
            handler(event)

    def _on_sweep_start(self, event: Dict) -> None:
        self.executor = event.get("executor")
        self.fingerprint = event.get("cache_fingerprint")
        self.store = event.get("store")
        self.n_cells = int(event.get("n_cells", 0))
        self.n_cached = int(event.get("n_cached", 0))
        self.max_workers = int(event.get("max_workers", 1) or 1)
        self.started_wall = event.get("wall")

    def _on_sweep_pool_start(self, event: Dict) -> None:
        for slot, pid in enumerate(event.get("pids", [])):
            self._slots[slot] = _Slot(pid)
            if pid is not None:
                self._slot_by_pid[int(pid)] = slot

    def _on_sweep_pool_steal(self, event: Dict) -> None:
        self.steals += 1

    def _on_sweep_pool_worker_replace(self, event: Dict) -> None:
        self.restarts += 1
        slot_id = event.get("slot")
        if slot_id is None:
            return
        slot = self._slots.setdefault(int(slot_id), _Slot(None))
        old_pid = event.get("old_pid")
        if old_pid is not None:
            self._slot_by_pid.pop(int(old_pid), None)
        slot.pid = event.get("new_pid")
        slot.replaced += 1
        slot.cell = None
        slot.busy_since = None
        if slot.pid is not None:
            self._slot_by_pid[int(slot.pid)] = int(slot_id)

    def _on_sweep_pool_end(self, event: Dict) -> None:
        for slot_key, seconds in (event.get("occupancy") or {}).items():
            slot_id = int(str(slot_key).replace("slot", "") or 0)
            if slot_id in self._slots:
                self._slots[slot_id].busy_s = float(seconds)
                self._slots[slot_id].busy_since = None

    def _on_sweep_cell_start(self, event: Dict) -> None:
        pid = event.get("worker_pid")
        cell = event.get("cell")
        slot_id = self._slot_by_pid.get(int(pid)) if pid is not None else None
        if slot_id is None and pid is not None:
            # Spawn-per-cell executor: treat each distinct pid as a slot.
            slot_id = len(self._slots)
            self._slots[slot_id] = _Slot(pid)
            self._slot_by_pid[int(pid)] = slot_id
        if slot_id is not None:
            slot = self._slots[slot_id]
            slot.cell = cell
            slot.attempt = int(event.get("attempt", 1))
            slot.busy_since = event.get("wall")
            if cell:
                self._slot_by_cell[cell] = slot_id

    def _on_sweep_cell_end(self, event: Dict) -> None:
        if event.get("cached"):
            self.cached_seen += 1
        elif event.get("status") == "ok":
            self.ok += 1
            self._fresh_elapsed.append(float(event.get("elapsed_s", 0.0)))
        else:
            self.failed += 1
            self.failures.append(str(event.get("cell")))
        cell = event.get("cell")
        slot_id = self._slot_by_cell.pop(cell, None) if cell else None
        if slot_id is not None:
            slot = self._slots[slot_id]
            slot.done += 1
            if slot.busy_since is not None and event.get("wall") is not None:
                slot.busy_s += max(0.0, float(event["wall"]) - float(slot.busy_since))
            slot.cell = None
            slot.busy_since = None

    def _on_sweep_retry(self, event: Dict) -> None:
        self.retries += 1

    def _on_sweep_timeout(self, event: Dict) -> None:
        self.timeouts += 1

    def _on_sweep_end(self, event: Dict) -> None:
        self.done = True
        self.elapsed_s = event.get("elapsed_s")
        self.ok = int(event.get("n_ok", self.ok))
        self.failed = int(event.get("n_failed", self.failed))
        for slot in self._slots.values():
            slot.cell = None
            slot.busy_since = None

    # -- derived quantities ------------------------------------------------

    @property
    def completed(self) -> int:
        """Cells with a terminal outcome so far (fresh + cached)."""
        return self.ok + self.failed + self.cached_seen

    def eta_s(self, now_wall: Optional[float] = None) -> Optional[float]:
        """Naive ETA: remaining cells × mean fresh cell time ÷ workers.

        ``None`` until at least one fresh cell has finished (no rate to
        extrapolate from) or once the campaign is done.
        """
        if self.done or not self._fresh_elapsed:
            return None
        remaining = max(0, self.n_cells - self.completed)
        if remaining == 0:
            return 0.0
        mean = sum(self._fresh_elapsed) / len(self._fresh_elapsed)
        return remaining * mean / max(1, self.max_workers)

    # -- rendering ---------------------------------------------------------

    def render(self, width: int = 80, now_wall: Optional[float] = None) -> str:
        """One text frame of the campaign (no ANSI codes, no clock reads).

        ``now_wall`` feeds the busy-duration column for in-flight cells;
        pass ``time.time()`` live, or a fixed value in tests.
        """
        width = max(40, width)
        lines: List[str] = []
        title = f"sweep · executor={self.executor or '?'}"
        if self.store:
            title += f" · store={self.store}"
        if self.fingerprint:
            title += f" · campaign {self.fingerprint}"
        lines.append(title[:width])

        bar_w = max(10, width - 30)
        frac = self.completed / self.n_cells if self.n_cells else 0.0
        filled = int(round(frac * bar_w))
        bar = _BAR[0] * filled + _BAR[1] * (bar_w - filled)
        lines.append(f"[{bar}] {self.completed}/{self.n_cells} ({frac:4.0%})")

        counters = (
            f"ok {self.ok} · failed {self.failed} · cached {self.cached_seen}"
            f" · retries {self.retries} · timeouts {self.timeouts}"
        )
        if self.steals or self.restarts or self.executor == "pool":
            counters += f" · steals {self.steals} · replaced {self.restarts}"
        lines.append(counters[:width])

        if self._slots:
            lines.append(f"{'slot':<6}{'pid':<9}{'state':<34}{'done':>5}{'busy s':>9}")
            for slot_id in sorted(self._slots):
                slot = self._slots[slot_id]
                busy = slot.busy_s
                if slot.busy_since is not None and now_wall is not None:
                    busy += max(0.0, now_wall - slot.busy_since)
                state = f"{slot.cell} (attempt {slot.attempt})" if slot.cell else "idle"
                marker = f"w{slot_id}" + ("*" * min(slot.replaced, 3))
                lines.append(
                    f"{marker:<6}{str(slot.pid or '-'):<9}{state[:33]:<34}"
                    f"{slot.done:>5}{busy:>9.2f}"
                )

        if self.done:
            tail = f"done in {self.elapsed_s:.2f}s" if self.elapsed_s else "done"
        else:
            eta = self.eta_s(now_wall)
            tail = f"eta ~{eta:.0f}s" if eta is not None else "eta —"
        if self.failures:
            tail += f" · failed: {', '.join(self.failures[:4])}"
            if len(self.failures) > 4:
                tail += f" (+{len(self.failures) - 4})"
        lines.append(tail[:width])
        return "\n".join(lines)


def _drain(handle: TextIO, dashboard: SweepDashboard) -> int:
    """Feed every complete new line of ``handle`` to the dashboard."""
    fed = 0
    while True:
        position = handle.tell()
        line = handle.readline()
        if not line:
            break
        if not line.endswith("\n"):
            handle.seek(position)  # partial write — wait for the rest
            break
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(event, dict):
            dashboard.observe(event)
            fed += 1
    return fed


def watch(
    events_path: PathLike,
    interval_s: float = 0.5,
    once: bool = False,
    follow: bool = True,
    out: Optional[TextIO] = None,
    width: int = 80,
) -> SweepDashboard:
    """Render a live dashboard from an ``events.jsonl`` file.

    Tail-follows the file (the campaign may still be writing it),
    repainting every ``interval_s`` until ``sweep.end`` arrives, the
    user quits (``q`` or ``Ctrl-C``), or — with ``follow=False`` — the
    file is exhausted.  ``once=True`` renders exactly one frame from
    the file's current contents and returns (CI-friendly: no TTY, no
    loop).  Returns the final :class:`SweepDashboard` state.
    """
    out = out if out is not None else sys.stdout
    path = pathlib.Path(events_path)
    dashboard = SweepDashboard()
    interactive = (not once) and hasattr(out, "isatty") and out.isatty()

    with path.open("r", encoding="utf-8") as handle:
        lines_painted = 0
        try:
            while True:
                _drain(handle, dashboard)
                frame = dashboard.render(width=width, now_wall=time.time())
                if interactive and lines_painted:
                    out.write(f"\x1b[{lines_painted}F\x1b[J")  # repaint in place
                out.write(frame + "\n")
                out.flush()
                lines_painted = frame.count("\n") + 1
                if once or dashboard.done or not follow:
                    break
                if interactive:
                    if _quit_requested(interval_s):
                        break
                else:
                    time.sleep(interval_s)
        except KeyboardInterrupt:
            pass
    return dashboard


def _quit_requested(interval_s: float) -> bool:
    """Wait one repaint interval; True if the user pressed ``q``."""
    import select

    ready, _, _ = select.select([sys.stdin], [], [], interval_s)
    if ready:
        key = sys.stdin.read(1)
        return key.lower() == "q"
    return False
