"""Persistent work-stealing worker pool for sweep campaigns.

The ``"parallel"`` executor spawns one short-lived process per cell
attempt — robust, but a campaign of hundreds of small cells pays
interpreter/import startup for every one.  The ``"pool"`` executor
keeps ``max_workers`` worker processes alive for the whole campaign:

* **Task queue + work-stealing.**  Cells are sharded into contiguous
  per-worker blocks (preserving cache-friendly submission order); an
  idle worker first drains its own shard, then picks up ready retries,
  then *steals* from the back of the largest remaining shard — so
  heterogeneous cell costs (a slow dataset in one shard) cannot leave
  cores idle.  Every steal is observable as a ``sweep.pool.steal``
  event.
* **Kill + replace.**  The per-attempt timeout and crash handling of
  the spawn-per-cell executor carry over, but because workers are
  shared, a wedged or killed worker is *replaced* (terminate, spawn a
  fresh process, ``sweep.pool.worker_replace``) rather than simply
  discarded, mirroring the serving tier's ``PlanWorkerPool``.  A
  bounded replacement budget (``SweepOptions.pool_restarts``) converts
  systemic worker death into a :class:`PoolBrokenError` instead of an
  infinite respawn loop.
* **Bit-equality.**  Scheduling only decides *where* a cell runs;
  cells are pure functions of their args, so the pool is bit-equal to
  the serial oracle (asserted over result tables and order-normalised
  ``sweep.cell_end`` payloads in ``tests/parallel/``).

Pipe protocol (duplex, extending ``worker.py``'s message kinds with a
task id so one connection serves many cells)::

    parent → worker:  ("task", task_id, fn, args) | ("stop",)
    worker → parent:  ("event",  task_id, {"kind": ..., "fields": ...})
                      ("result", task_id, {"value", "span_totals", "pid"})
                      ("error",  task_id, {"error", "traceback", "pid"})

While a campaign runs, the pool registers a ``"sweep.pool"`` provider
in the process-wide gauge registry (per-slot busy seconds and cell
counts — the dashboard's occupancy column); registration, like worker
processes themselves, is torn down in ``finally`` so a broken pool
leaves no global state behind.
"""

from __future__ import annotations

import collections
import multiprocessing
import multiprocessing.connection
import os
import sys
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from .worker import WorkerTelemetry, reset_inherited_telemetry

__all__ = ["POOL_GAUGE", "PoolBrokenError", "pool_worker_main", "run_pool", "shard_cells"]

#: Name the pool registers in :data:`repro.telemetry.gauges` while a
#: campaign runs (per-slot busy seconds / completed cells).
POOL_GAUGE = "sweep.pool"


class PoolBrokenError(RuntimeError):
    """Worker replacements exceeded the pool's restart budget.

    Raised when workers keep dying faster than the campaign makes
    progress — a systemic failure (broken cell function, OOM-killer)
    that retrying per-cell cannot fix.  The orchestrator guarantees the
    campaign store is closed and the pool gauge unregistered when this
    propagates (regression-tested).
    """


# -- worker side -------------------------------------------------------------


class _PoolTaskTelemetry(WorkerTelemetry):
    """Per-task telemetry shim tagging forwarded events with a task id."""

    def __init__(self, conn, task_id: int) -> None:
        super().__init__(conn, run_id="pool-worker")
        self._task_id = task_id

    def emit(self, kind: str, **fields) -> None:
        """Forward one event to the parent, tagged for its task."""
        if self._conn is None:
            return
        try:
            self._conn.send(
                ("event", self._task_id, {"kind": str(kind), "fields": fields})
            )
        except (BrokenPipeError, OSError):
            self._conn = None


def pool_worker_main(conn, forward_events: bool = True) -> None:
    """Persistent worker loop: serve tasks until ``("stop",)`` or EOF.

    Each ``("task", task_id, fn, args)`` message runs ``fn(*args)``
    under a fresh per-task telemetry shim (span totals must not bleed
    between cells) and answers with exactly one terminal ``result`` /
    ``error`` message carrying the same ``task_id``.  A failed cell
    does *not* exit the process — the worker survives to serve the next
    task; only a lost parent (pipe EOF) or an explicit stop ends the
    loop.
    """
    from ..telemetry import run as _run_module

    reset_inherited_telemetry()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if not message or message[0] == "stop":
            break
        _, task_id, fn, args = message
        shim = _PoolTaskTelemetry(conn if forward_events else None, task_id)
        _run_module._ACTIVE.append(shim)
        try:
            value = fn(*args)
            reply = (
                "result",
                task_id,
                {"value": value, "span_totals": shim.span_totals(), "pid": os.getpid()},
            )
        except BaseException as exc:  # noqa: BLE001 — report, keep serving
            reply = (
                "error",
                task_id,
                {
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(limit=30),
                    "pid": os.getpid(),
                },
            )
        finally:
            try:
                _run_module._ACTIVE.remove(shim)
            except ValueError:
                pass
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass
    sys.exit(0)


# -- parent side -------------------------------------------------------------


def shard_cells(cells: Sequence, n_shards: int) -> List[collections.deque]:
    """Split cells into ``n_shards`` contiguous per-worker deques.

    Contiguous blocks (not round-robin) keep each worker on adjacent
    grid cells *and* make stealing meaningful: heterogeneous shard
    costs leave real imbalance for the stealing path to erase, which is
    how the steal machinery stays exercised (and tested) even on small
    campaigns.
    """
    n_shards = max(1, n_shards)
    shards: List[collections.deque] = [collections.deque() for _ in range(n_shards)]
    base, extra = divmod(len(cells), n_shards)
    index = 0
    for slot in range(n_shards):
        take = base + (1 if slot < extra else 0)
        for cell in cells[index : index + take]:
            shards[slot].append(cell)
        index += take
    return shards


class _PoolWorker:
    """Parent-side handle of one persistent worker slot."""

    __slots__ = ("slot", "proc", "conn", "task", "busy_s", "done", "task_started")

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.proc = None
        self.conn = None
        self.task = None  # (cell, attempt, task_id, deadline) while busy
        self.busy_s = 0.0
        self.done = 0
        self.task_started = 0.0

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None


def run_pool(
    fn: Callable[..., Dict],
    cells: Sequence,
    options,
    events,
    persist: Callable,
) -> Dict[Tuple[str, ...], "object"]:
    """Pooled executor driven by :func:`repro.parallel.run_cells`.

    Same signature and outcome semantics as the spawn-per-cell
    ``_run_parallel`` executor (per-cell retries with linear backoff,
    per-attempt timeouts, graceful per-cell failure), but cells are
    dispatched to persistent workers with work-stealing, and worker
    death triggers kill+replace against a bounded restart budget.

    Raises :class:`PoolBrokenError` when replacements exceed
    ``options.pool_restarts``; all workers and the pool gauge are torn
    down before the exception propagates.
    """
    from .orchestrator import CellOutcome

    ctx = multiprocessing.get_context()
    cells = list(cells)
    n_workers = max(1, min(options.max_workers, max(1, len(cells))))
    shards = shard_cells(cells, n_workers)
    workers = [_PoolWorker(slot) for slot in range(n_workers)]
    #: (ready_at, sequence, cell, next_attempt) — retry queue.
    retries: List[Tuple[float, int, object, int]] = []
    seq = len(cells)
    next_task_id = 0
    outcomes: Dict[Tuple[str, ...], CellOutcome] = {}
    first_start: Dict[Tuple[str, ...], float] = {}
    restarts = 0
    steals = 0

    def gauge_snapshot() -> Dict[str, Dict[str, float]]:
        """Per-slot ``{seconds: busy wall-clock, calls: cells done}``."""
        now = time.perf_counter()
        out: Dict[str, Dict[str, float]] = {}
        for worker in workers:
            busy = worker.busy_s
            if worker.task is not None:
                busy += now - worker.task_started
            out[f"slot{worker.slot}"] = {
                "seconds": round(busy, 6),
                "calls": float(worker.done),
            }
        return out

    def spawn(worker: _PoolWorker) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=pool_worker_main,
            args=(child_conn, options.forward_worker_events),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        worker.proc = proc
        worker.conn = parent_conn
        worker.task = None

    def kill(worker: _PoolWorker) -> None:
        if worker.proc is None:
            return
        try:
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=1.0)
                if worker.proc.is_alive():
                    worker.proc.kill()
                    worker.proc.join(timeout=1.0)
        finally:
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.proc = None
            worker.conn = None
            worker.task = None

    def replace(worker: _PoolWorker, reason: str) -> None:
        nonlocal restarts
        old_pid = worker.pid
        kill(worker)
        restarts += 1
        if restarts > options.pool_restarts:
            raise PoolBrokenError(
                f"pool exceeded its restart budget ({options.pool_restarts}): {reason}"
            )
        spawn(worker)
        telemetry.emit(
            "sweep.pool.worker_replace",
            slot=worker.slot,
            old_pid=old_pid,
            new_pid=worker.pid,
            reason=reason,
            restarts=restarts,
        )

    def finish(worker: _PoolWorker, outcome: CellOutcome) -> None:
        outcomes[outcome.key] = outcome
        persist(outcome)
        events.cell_end(outcome)

    def fail_or_retry(worker: _PoolWorker, cell, attempt: int, error: str,
                      tb: Optional[str] = None) -> None:
        nonlocal seq
        if attempt <= options.retries:
            backoff = options.backoff_s * attempt
            events.retry(cell, attempt, error, backoff)
            seq += 1
            retries.append((time.perf_counter() + backoff, seq, cell, attempt + 1))
        else:
            finish(
                worker,
                CellOutcome(
                    key=cell.key,
                    status="failed",
                    error=error,
                    traceback=tb,
                    attempts=attempt,
                    elapsed_s=time.perf_counter() - first_start[cell.key],
                    worker_pid=worker.pid,
                ),
            )

    def settle(worker: _PoolWorker) -> None:
        """Account a finished task's busy time and free the slot."""
        worker.busy_s += time.perf_counter() - worker.task_started
        worker.done += 1
        worker.task = None

    def next_work(worker: _PoolWorker, now: float):
        """Own shard first, then ready retries, then steal the biggest shard."""
        nonlocal steals
        if shards[worker.slot]:
            return shards[worker.slot].popleft(), 1
        ready = [item for item in retries if item[0] <= now]
        if ready:
            ready.sort(key=lambda item: (item[0], item[1]))
            retries.remove(ready[0])
            return ready[0][2], ready[0][3]
        victim = max(
            (s for s in range(n_workers) if shards[s]),
            key=lambda s: len(shards[s]),
            default=None,
        )
        if victim is not None:
            cell = shards[victim].pop()  # the back: least-soon-needed work
            steals += 1
            telemetry.emit(
                "sweep.pool.steal",
                thief_slot=worker.slot,
                victim_slot=victim,
                cell=cell.label,
            )
            return cell, 1
        return None, 0

    def dispatch(worker: _PoolWorker, cell, attempt: int) -> None:
        nonlocal next_task_id, seq
        next_task_id += 1
        task_id = next_task_id
        try:
            worker.conn.send(("task", task_id, fn, cell.args))
        except (BrokenPipeError, OSError):
            # Worker died before it could accept the task: replace it
            # and requeue the cell at the same attempt (no budget spent).
            replace(worker, f"worker {worker.pid} rejected task ({cell.label})")
            seq += 1
            retries.append((time.perf_counter(), seq, cell, attempt))
            return
        now = time.perf_counter()
        deadline = None if options.timeout_s is None else now + options.timeout_s
        worker.task = (cell, attempt, task_id, deadline)
        worker.task_started = now
        first_start.setdefault(cell.key, now)
        events.cell_start(cell, attempt, pid=worker.pid)

    def work_remains() -> bool:
        return (
            any(shards)
            or bool(retries)
            or any(worker.task is not None for worker in workers)
        )

    telemetry.gauges.register(POOL_GAUGE, gauge_snapshot)
    try:
        for worker in workers:
            spawn(worker)
        telemetry.emit(
            "sweep.pool.start",
            n_workers=n_workers,
            pids=[worker.pid for worker in workers],
            shard_sizes=[len(shard) for shard in shards],
            restart_budget=options.pool_restarts,
        )

        while work_remains():
            now = time.perf_counter()
            for worker in workers:
                if worker.task is None:
                    cell, attempt = next_work(worker, now)
                    if cell is not None:
                        dispatch(worker, cell, attempt)

            busy = [worker for worker in workers if worker.task is not None]
            if not busy:
                if retries:  # everything queued is still backing off
                    time.sleep(max(0.0, min(item[0] for item in retries) - now))
                continue

            # Wake on the earliest of: message, deadline, backoff expiry.
            wake_at: Optional[float] = None
            for worker in busy:
                deadline = worker.task[3]
                if deadline is not None:
                    wake_at = deadline if wake_at is None else min(wake_at, deadline)
            if retries and any(worker.task is None for worker in workers):
                soonest = min(item[0] for item in retries)
                wake_at = soonest if wake_at is None else min(wake_at, soonest)
            wait_s = None if wake_at is None else max(0.0, wake_at - time.perf_counter())
            ready = multiprocessing.connection.wait(
                [worker.conn for worker in busy], timeout=wait_s
            )

            for conn in ready:
                worker = next((w for w in busy if w.conn is conn), None)
                if worker is None or worker.task is None:
                    continue
                cell, attempt, task_id, _ = worker.task
                while True:
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        # Worker died mid-task (crash / SIGKILL): the
                        # attempt failed and the slot needs a new process.
                        dead_pid = worker.pid
                        settle(worker)
                        replace(
                            worker, f"worker {dead_pid} died mid-cell ({cell.label})"
                        )
                        fail_or_retry(
                            worker, cell, attempt,
                            f"worker died without result (pid {dead_pid})",
                        )
                        break
                    kind = message[0]
                    if kind == "event":
                        if message[1] == task_id:
                            events.worker_event(cell, worker.pid, message[2])
                        if conn.poll():
                            continue
                        break
                    if message[1] != task_id:
                        continue  # stale terminal from a superseded task
                    payload = message[2]
                    elapsed = time.perf_counter() - first_start[cell.key]
                    settle(worker)
                    if kind == "result":
                        finish(
                            worker,
                            CellOutcome(
                                key=cell.key,
                                status="ok",
                                value=payload["value"],
                                attempts=attempt,
                                elapsed_s=elapsed,
                                worker_pid=payload.get("pid", worker.pid),
                                span_totals=payload.get("span_totals", {}),
                            ),
                        )
                    else:  # "error"
                        fail_or_retry(
                            worker, cell, attempt,
                            payload["error"], payload.get("traceback"),
                        )
                    break

            # Enforce per-attempt deadlines; a timed-out worker is replaced
            # (it may be wedged beyond interruption), not merely signalled.
            now = time.perf_counter()
            for worker in workers:
                if worker.task is None:
                    continue
                cell, attempt, _, deadline = worker.task
                if deadline is not None and now >= deadline:
                    settle(worker)
                    events.timeout(cell, attempt)
                    replace(worker, f"cell {cell.label} exceeded timeout")
                    fail_or_retry(
                        worker, cell, attempt,
                        f"cell exceeded timeout of {options.timeout_s:.3g}s "
                        f"(attempt {attempt})",
                    )

        telemetry.emit(
            "sweep.pool.end",
            n_workers=n_workers,
            restarts=restarts,
            steals=steals,
            occupancy={
                f"slot{worker.slot}": round(worker.busy_s, 6) for worker in workers
            },
            cells_per_slot={
                f"slot{worker.slot}": worker.done for worker in workers
            },
        )
    finally:
        telemetry.gauges.unregister(POOL_GAUGE)
        for worker in workers:
            if worker.conn is not None:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for worker in workers:
            if worker.proc is not None:
                worker.proc.join(timeout=1.0)
            kill(worker)
    return outcomes
