"""Sharded parallel experiment sweeps with a bit-equal serial oracle.

The experiment harness's table/figure grids (``dataset × model ×
seed``) are embarrassingly parallel: every cell derives its randomness
from its own coordinates through independent ``SeedSequence``-spawned
streams, so cells can execute in any order, on any worker process, and
produce bit-identical values.  This package provides:

* :func:`run_cells` — the orchestrator: ``"serial"`` oracle,
  ``"parallel"`` spawn-per-cell execution, or ``"pool"`` persistent
  work-stealing workers — all with per-task timeouts, bounded
  retry-with-backoff and graceful degradation;
* :class:`SweepOptions` / :class:`SweepCell` / :class:`CellOutcome` —
  the policy/work/result triple;
* :class:`SweepCache` / :class:`CampaignStore` — the two campaign
  storage backends behind one interface (:func:`open_storage`):
  fingerprint-keyed JSON files, or one queryable SQLite database per
  cache root (``python -m repro query``);
* :class:`SweepDashboard` — the live terminal view behind
  ``python -m repro sweep --watch`` (see ``docs/CAMPAIGNS.md``);
* ``sweep.*`` telemetry events streamed into the active
  :class:`repro.telemetry.Run` (see ``docs/OBSERVABILITY.md``).

Entry points: ``repro.core.run_table1`` / ``run_fig7_ablation`` accept
``executor=``/``sweep=`` and the ``python -m repro sweep`` CLI drives a
whole campaign (see ``EXPERIMENTS.md`` and ``docs/CAMPAIGNS.md``).
"""

from .cache import CACHE_VERSION, SweepCache, sweep_fingerprint
from .dashboard import SweepDashboard, watch
from .orchestrator import (
    EXECUTORS,
    CellOutcome,
    SweepCell,
    SweepOptions,
    run_cells,
    summarize_outcomes,
)
from .pool import POOL_GAUGE, PoolBrokenError
from .store import (
    EXAMPLE_QUERIES,
    STORE_BACKENDS,
    CampaignStore,
    campaign_db_path,
    open_storage,
    run_query,
)
from .worker import WorkerTelemetry, reset_inherited_telemetry

__all__ = [
    "CACHE_VERSION",
    "EXAMPLE_QUERIES",
    "EXECUTORS",
    "POOL_GAUGE",
    "STORE_BACKENDS",
    "CampaignStore",
    "CellOutcome",
    "PoolBrokenError",
    "SweepCache",
    "SweepCell",
    "SweepDashboard",
    "SweepOptions",
    "WorkerTelemetry",
    "campaign_db_path",
    "open_storage",
    "reset_inherited_telemetry",
    "run_cells",
    "run_query",
    "summarize_outcomes",
    "sweep_fingerprint",
    "watch",
]
