"""Sharded parallel experiment sweeps with a bit-equal serial oracle.

The experiment harness's table/figure grids (``dataset × model ×
seed``) are embarrassingly parallel: every cell derives its randomness
from its own coordinates through independent ``SeedSequence``-spawned
streams, so cells can execute in any order, on any worker process, and
produce bit-identical values.  This package provides:

* :func:`run_cells` — the orchestrator: ``"serial"`` oracle or
  ``"parallel"`` process-pool execution with per-task timeouts,
  bounded retry-with-backoff and graceful degradation;
* :class:`SweepOptions` / :class:`SweepCell` / :class:`CellOutcome` —
  the policy/work/result triple;
* :class:`SweepCache` — the fingerprint-keyed on-disk cell cache that
  makes interrupted sweeps resumable;
* ``sweep.*`` telemetry events streamed into the active
  :class:`repro.telemetry.Run` (see ``docs/OBSERVABILITY.md``).

Entry points: ``repro.core.run_table1`` / ``run_fig7_ablation`` accept
``executor=``/``sweep=`` and the ``python -m repro sweep`` CLI drives a
whole campaign (see ``EXPERIMENTS.md``).
"""

from .cache import CACHE_VERSION, SweepCache, sweep_fingerprint
from .orchestrator import (
    EXECUTORS,
    CellOutcome,
    SweepCell,
    SweepOptions,
    run_cells,
    summarize_outcomes,
)
from .worker import WorkerTelemetry, reset_inherited_telemetry

__all__ = [
    "CACHE_VERSION",
    "EXECUTORS",
    "CellOutcome",
    "SweepCache",
    "SweepCell",
    "SweepOptions",
    "WorkerTelemetry",
    "reset_inherited_telemetry",
    "run_cells",
    "summarize_outcomes",
    "sweep_fingerprint",
]
