"""SQLite-backed campaign store: queryable sweeps behind one interface.

The on-disk :class:`~repro.parallel.cache.SweepCache` makes campaigns
resumable, but answering a cross-campaign question ("accuracy vs
``mc_samples`` across all precision policies") against loose JSON files
means walking directories and re-parsing every cell.  This module
promotes the cache to a real store: one SQLite database holding every
campaign ever run under a cache root, with campaigns, cells, artifacts
and gauges as queryable tables (schema below, quoted verbatim in
``docs/CAMPAIGNS.md`` and kept honest by ``scripts/check_docs.py``).

Both backends satisfy one **storage interface** — ``fingerprint``,
``load(key)``, ``store(key, value, meta=None)``, ``keys()``,
``close()`` — selected via :func:`open_storage` (the orchestrator's
``SweepOptions.store`` switch).  The contract they share:

* keyed by the same protocol **fingerprint**
  (:func:`~repro.parallel.cache.sweep_fingerprint`), so the two
  backends resume each other's campaigns bit-equally and a changed
  protocol can never poison a hit;
* only *successful* cells are stored, the moment they complete, so a
  campaign SIGKILLed at any point resumes without recomputing finished
  cells;
* corruption degrades to a clean cache **miss** (a corrupt database
  file is moved aside and recreated; an unreadable cell row is
  skipped), never an error or a poisoned value.

Concurrency: the orchestrator process is the only writer (workers
report results over pipes; the parent persists them), while any number
of readers — the live dashboard, ``python -m repro query`` — open the
database read-only in parallel.  WAL journaling is enabled where the
filesystem supports it so readers never block the writer.
"""

from __future__ import annotations

import json
import pathlib
import sqlite3
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .cache import CACHE_VERSION, SweepCache, sweep_fingerprint

__all__ = [
    "DB_FILENAME",
    "EXAMPLE_QUERIES",
    "SCHEMA",
    "STORE_BACKENDS",
    "CampaignStore",
    "campaign_db_path",
    "open_storage",
    "run_query",
]

PathLike = Union[str, pathlib.Path]

#: Valid storage backends for ``SweepOptions.store``.
STORE_BACKENDS = ("files", "sqlite")

#: Database file name under the cache root (shared by every campaign).
DB_FILENAME = "campaigns.sqlite"

#: The campaign-store schema, one ``CREATE TABLE`` per table.  Quoted
#: verbatim in ``docs/CAMPAIGNS.md`` via the ``campaign-schema``
#: generated block, so the documented schema can never drift.
SCHEMA: Dict[str, str] = {
    "campaigns": (
        "CREATE TABLE IF NOT EXISTS campaigns (\n"
        "  id INTEGER PRIMARY KEY,\n"
        "  fingerprint TEXT NOT NULL UNIQUE,  -- sweep_fingerprint(protocol)\n"
        "  protocol TEXT NOT NULL,            -- canonical protocol JSON\n"
        "  created_unix REAL NOT NULL,\n"
        "  last_opened_unix REAL NOT NULL\n"
        ")"
    ),
    "cells": (
        "CREATE TABLE IF NOT EXISTS cells (\n"
        "  campaign_id INTEGER NOT NULL REFERENCES campaigns(id),\n"
        "  cell_key TEXT NOT NULL,            -- '/'-joined SweepCell key\n"
        "  value TEXT NOT NULL,               -- the cell's result dict (JSON)\n"
        "  attempts INTEGER NOT NULL DEFAULT 0,\n"
        "  elapsed_s REAL NOT NULL DEFAULT 0.0,\n"
        "  worker_pid INTEGER,                -- NULL under the serial oracle\n"
        "  stored_unix REAL NOT NULL,\n"
        "  PRIMARY KEY (campaign_id, cell_key)\n"
        ")"
    ),
    "artifacts": (
        "CREATE TABLE IF NOT EXISTS artifacts (\n"
        "  campaign_id INTEGER NOT NULL REFERENCES campaigns(id),\n"
        "  name TEXT NOT NULL,                -- e.g. 'table1.md', 'events.jsonl'\n"
        "  path TEXT NOT NULL,                -- filesystem location\n"
        "  kind TEXT NOT NULL DEFAULT 'file', -- 'file' | 'run_dir' | 'report'\n"
        "  created_unix REAL NOT NULL,\n"
        "  PRIMARY KEY (campaign_id, name)\n"
        ")"
    ),
    "gauges": (
        "CREATE TABLE IF NOT EXISTS gauges (\n"
        "  campaign_id INTEGER NOT NULL REFERENCES campaigns(id),\n"
        "  gauge TEXT NOT NULL,               -- registry name, e.g. 'mc'\n"
        "  key TEXT NOT NULL,                 -- dimension within the gauge\n"
        "  seconds REAL NOT NULL DEFAULT 0.0,\n"
        "  calls REAL NOT NULL DEFAULT 0.0,\n"
        "  quantity REAL,\n"
        "  recorded_unix REAL NOT NULL,\n"
        "  PRIMARY KEY (campaign_id, gauge, key)\n"
        ")"
    ),
}

#: Worked cross-campaign queries (each is ONE SQL statement), shipped
#: as ``python -m repro query --example <name>`` and documented in
#: ``docs/CAMPAIGNS.md``.
EXAMPLE_QUERIES: Dict[str, str] = {
    # The ROADMAP's motivating question: robust accuracy vs the number
    # of Monte-Carlo evaluation draws, broken out by precision policy,
    # across every campaign in the store.
    "accuracy-by-mc-precision": (
        "SELECT json_extract(c.protocol, '$.fingerprint.config.eval_mc')"
        " AS mc_samples,\n"
        "       json_extract(c.protocol, '$.fingerprint.precision')"
        " AS precision,\n"
        "       COUNT(*) AS n_cells,\n"
        "       AVG(json_extract(l.value, '$.robust_acc')) AS robust_acc\n"
        "FROM cells l JOIN campaigns c ON l.campaign_id = c.id\n"
        "WHERE json_extract(l.value, '$.robust_acc') IS NOT NULL\n"
        "GROUP BY mc_samples, precision\n"
        "ORDER BY mc_samples, precision"
    ),
    # Campaign inventory: protocol identity and completion state.
    "campaigns": (
        "SELECT c.fingerprint,\n"
        "       json_extract(c.protocol, '$.fingerprint.artefact') AS artefact,\n"
        "       json_extract(c.protocol, '$.fingerprint.precision') AS precision,\n"
        "       COUNT(l.cell_key) AS n_cells,\n"
        "       datetime(c.created_unix, 'unixepoch') AS created\n"
        "FROM campaigns c LEFT JOIN cells l ON l.campaign_id = c.id\n"
        "GROUP BY c.id ORDER BY c.created_unix"
    ),
    # Straggler hunt: the slowest stored cells across all campaigns.
    "slowest-cells": (
        "SELECT c.fingerprint, l.cell_key, l.elapsed_s, l.attempts\n"
        "FROM cells l JOIN campaigns c ON l.campaign_id = c.id\n"
        "ORDER BY l.elapsed_s DESC LIMIT 20"
    ),
}


def campaign_db_path(root: PathLike) -> pathlib.Path:
    """Database location for a cache root (``<root>/campaigns.sqlite``)."""
    return pathlib.Path(root) / DB_FILENAME


class CampaignStore:
    """SQLite storage backend for one sweep campaign.

    Satisfies the same interface as
    :class:`~repro.parallel.cache.SweepCache` (``load`` / ``store`` /
    ``keys`` / ``fingerprint`` / ``close``) against one shared database
    under the cache root, so every campaign run with
    ``SweepOptions(store="sqlite")`` lands in the same queryable file.

    Parameters
    ----------
    root:
        Cache root directory; the database is created at
        ``<root>/campaigns.sqlite``.
    protocol:
        JSON-serialisable protocol identity (the fingerprint input);
        :data:`~repro.parallel.cache.CACHE_VERSION` is mixed in exactly
        as ``SweepCache`` does, so both backends agree on fingerprints.
    """

    def __init__(self, root: PathLike, protocol: Dict) -> None:
        self.protocol = {"cache_version": CACHE_VERSION, **protocol}
        self.fingerprint = sweep_fingerprint(self.protocol)
        self.path = campaign_db_path(root)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn: Optional[sqlite3.Connection] = None
        try:
            self._conn = self._open()
        except sqlite3.DatabaseError:
            self._quarantine_corrupt()
            self._conn = self._open()
        self.campaign_id = self._register_campaign()

    # -- connection lifecycle ---------------------------------------------

    def _open(self) -> sqlite3.Connection:
        conn = sqlite3.connect(str(self.path), timeout=30.0)
        try:
            # WAL lets the dashboard / query CLI read while a campaign
            # writes; some filesystems refuse it — journal mode is a
            # performance choice, not a correctness requirement.
            conn.execute("PRAGMA journal_mode=WAL")
        except sqlite3.DatabaseError:
            pass
        for ddl in SCHEMA.values():
            # CREATE TABLE IF NOT EXISTS: reopening an existing store
            # is a schema-migration no-op (regression-tested).
            conn.execute(ddl)
        conn.commit()
        return conn

    def _quarantine_corrupt(self) -> None:
        """Move a corrupt database aside so the campaign starts clean.

        Every cell of the quarantined store becomes a cache miss —
        recomputation, never a poisoned hit.  The corrupt file is kept
        (renamed ``campaigns.sqlite.corrupt-<unix>``) for post-mortems.
        """
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        if self.path.exists():
            quarantined = self.path.with_name(
                f"{self.path.name}.corrupt-{int(time.time())}"
            )
            self.path.replace(quarantined)

    def _register_campaign(self) -> int:
        assert self._conn is not None
        now = time.time()
        self._conn.execute(
            "INSERT INTO campaigns (fingerprint, protocol, created_unix,"
            " last_opened_unix) VALUES (?, ?, ?, ?)"
            " ON CONFLICT(fingerprint) DO UPDATE SET last_opened_unix = ?",
            (
                self.fingerprint,
                json.dumps(self.protocol, sort_keys=True, default=str),
                now,
                now,
                now,
            ),
        )
        self._conn.commit()
        row = self._conn.execute(
            "SELECT id FROM campaigns WHERE fingerprint = ?", (self.fingerprint,)
        ).fetchone()
        return int(row[0])

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._conn is None

    def close(self) -> None:
        """Commit and release the database connection (idempotent)."""
        if self._conn is not None:
            try:
                self._conn.commit()
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- cell access -------------------------------------------------------

    @staticmethod
    def _key_text(key: Sequence[str]) -> str:
        return "/".join(str(part) for part in key)

    def load(self, key: Sequence[str]) -> Optional[Dict]:
        """Stored value dict for ``key``, or ``None`` on miss/corruption."""
        if self._conn is None:
            raise RuntimeError("campaign store is closed")
        try:
            row = self._conn.execute(
                "SELECT value FROM cells WHERE campaign_id = ? AND cell_key = ?",
                (self.campaign_id, self._key_text(key)),
            ).fetchone()
        except sqlite3.DatabaseError:
            return None
        if row is None:
            return None
        try:
            value = json.loads(row[0])
        except (TypeError, json.JSONDecodeError):
            return None  # unreadable row — a miss, never an error
        return value if isinstance(value, dict) else None

    def store(
        self, key: Sequence[str], value: Dict, meta: Optional[Dict] = None
    ) -> None:
        """Persist one completed cell (commit-per-cell, resume-safe).

        ``meta`` carries outcome bookkeeping (``attempts`` /
        ``elapsed_s`` / ``worker_pid``) into the queryable columns; the
        result dict itself lands as canonical JSON in ``value``.
        """
        if self._conn is None:
            raise RuntimeError("campaign store is closed")
        meta = meta or {}
        self._conn.execute(
            "INSERT OR REPLACE INTO cells (campaign_id, cell_key, value,"
            " attempts, elapsed_s, worker_pid, stored_unix)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                self.campaign_id,
                self._key_text(key),
                json.dumps(value, sort_keys=True, default=str),
                int(meta.get("attempts", 0) or 0),
                float(meta.get("elapsed_s", 0.0) or 0.0),
                meta.get("worker_pid"),
                time.time(),
            ),
        )
        # Commit each cell as it lands: a SIGKILLed campaign must keep
        # every finished cell (same contract as SweepCache's atomic
        # file-per-cell writes).
        self._conn.commit()

    def keys(self) -> Iterator[Tuple[str, ...]]:
        """Keys of every stored cell of this campaign (insertion order)."""
        if self._conn is None:
            raise RuntimeError("campaign store is closed")
        for (key_text,) in self._conn.execute(
            "SELECT cell_key FROM cells WHERE campaign_id = ? ORDER BY rowid",
            (self.campaign_id,),
        ):
            yield tuple(key_text.split("/"))

    def __len__(self) -> int:
        if self._conn is None:
            raise RuntimeError("campaign store is closed")
        row = self._conn.execute(
            "SELECT COUNT(*) FROM cells WHERE campaign_id = ?", (self.campaign_id,)
        ).fetchone()
        return int(row[0])

    # -- artifacts / gauges ------------------------------------------------

    def store_artifact(self, name: str, path: PathLike, kind: str = "file") -> None:
        """Register a campaign artifact (report, run directory, …)."""
        if self._conn is None:
            raise RuntimeError("campaign store is closed")
        self._conn.execute(
            "INSERT OR REPLACE INTO artifacts (campaign_id, name, path, kind,"
            " created_unix) VALUES (?, ?, ?, ?, ?)",
            (self.campaign_id, str(name), str(path), str(kind), time.time()),
        )
        self._conn.commit()

    def record_gauges(self, snapshot: Dict[str, Dict]) -> None:
        """Flush a gauge-registry snapshot into the ``gauges`` table.

        ``snapshot`` is the :meth:`repro.telemetry.GaugeRegistry.snapshot`
        shape — ``{gauge: {key: {seconds, calls[, quantity]}}}``; nested
        namespaces (e.g. the ``mc`` gauge's ``by_backend``) flatten to
        ``namespace.key`` rows.  Non-numeric leaves are skipped.
        """
        if self._conn is None:
            raise RuntimeError("campaign store is closed")
        now = time.time()
        rows = []
        for gauge, entries in snapshot.items():
            for key, entry in _flatten_gauge(entries):
                rows.append(
                    (
                        self.campaign_id,
                        str(gauge),
                        key,
                        float(entry.get("seconds", 0.0)),
                        float(entry.get("calls", 0.0)),
                        entry.get("quantity"),
                        now,
                    )
                )
        self._conn.executemany(
            "INSERT OR REPLACE INTO gauges (campaign_id, gauge, key, seconds,"
            " calls, quantity, recorded_unix) VALUES (?, ?, ?, ?, ?, ?, ?)",
            rows,
        )
        self._conn.commit()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"cells={len(self)}"
        return f"CampaignStore(path={str(self.path)!r}, {state})"


def _flatten_gauge(entries: Dict) -> List[Tuple[str, Dict]]:
    """Flatten a (possibly nested) gauge snapshot to ``(key, entry)`` rows."""
    rows: List[Tuple[str, Dict]] = []
    for key, entry in entries.items():
        if not isinstance(entry, dict):
            continue
        if any(isinstance(v, dict) for v in entry.values()):
            rows.extend(
                (f"{key}.{sub}", sub_entry) for sub, sub_entry in _flatten_gauge(entry)
            )
        else:
            numeric = {
                k: v for k, v in entry.items() if isinstance(v, (int, float))
            }
            if numeric:
                rows.append((str(key), numeric))
    return rows


def open_storage(root: PathLike, protocol: Dict, backend: str = "files"):
    """Open the campaign storage backend selected by ``backend``.

    ``"files"`` returns the fingerprinted on-disk
    :class:`~repro.parallel.cache.SweepCache` (the fallback backend);
    ``"sqlite"`` returns a :class:`CampaignStore`.  Both satisfy the
    storage interface the orchestrator drives and key cells by the same
    protocol fingerprint, so a campaign resumed on either backend is
    bit-equal (regression-tested in ``tests/parallel/test_store.py``).
    """
    if backend not in STORE_BACKENDS:
        raise ValueError(f"store must be one of {STORE_BACKENDS}, got {backend!r}")
    if backend == "sqlite":
        return CampaignStore(root, protocol)
    return SweepCache(root, protocol)


def run_query(
    db: PathLike, sql: str, parameters: Sequence = ()
) -> Tuple[List[str], List[Tuple]]:
    """Execute one read-only SQL statement against a campaign database.

    Opens the database with SQLite's ``mode=ro`` URI flag, so a query
    can never mutate a store a live campaign is writing to.  Returns
    ``(column_names, rows)``.
    """
    path = pathlib.Path(db)
    if not path.exists():
        raise FileNotFoundError(f"no campaign database at {path}")
    uri = f"file:{path}?mode=ro"
    conn = sqlite3.connect(uri, uri=True, timeout=30.0)
    try:
        cursor = conn.execute(sql, tuple(parameters))
        columns = [d[0] for d in cursor.description or ()]
        return columns, cursor.fetchall()
    finally:
        conn.close()
