"""Per-model LRU cache of compiled :class:`~repro.compile.ForwardPlan`.

Models are registered once and kept for the registry's lifetime (they
are the source of truth — ``/predict_mc`` runs the live model, and an
evicted plan can always be recompiled).  Compiled plans live in a
bounded LRU: serving many models with a small capacity trades compile
latency on the cold path for memory, which the ``serve.plan_compile`` /
``serve.plan_evict`` telemetry makes visible.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from ..compile import ForwardPlan, compile_plan
from .errors import UnknownModelError

__all__ = ["PlanRegistry"]


class PlanRegistry:
    """Thread-safe model registry with an LRU of frozen plans.

    Parameters
    ----------
    capacity:
        Maximum number of compiled plans kept warm (≥ 1).
    precision:
        Precision policy plans are compiled under; the process-wide
        active policy when omitted.
    on_compile / on_evict:
        Optional hooks ``(name, plan, compile_s)`` / ``(name, plan)``
        — the serving tier uses them to emit telemetry and to ship /
        drop plans in worker processes.
    """

    def __init__(
        self,
        capacity: int = 4,
        precision: Optional[str] = None,
        on_compile: Optional[Callable[[str, ForwardPlan, float], None]] = None,
        on_evict: Optional[Callable[[str, ForwardPlan], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self.precision = precision
        self._on_compile = on_compile
        self._on_evict = on_evict
        self._models: Dict[str, object] = {}
        self._plans: "OrderedDict[str, ForwardPlan]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def register(self, name: str, model) -> None:
        """Host ``model`` under ``name`` (replacing drops any stale plan)."""
        if not name or not isinstance(name, str):
            raise ValueError("model name must be a non-empty string")
        with self._lock:
            self._models[name] = model
            stale = self._plans.pop(name, None)
            if stale is not None and self._on_evict is not None:
                self._on_evict(name, stale)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._models)

    def model(self, name: str):
        """The live model hosted under ``name``."""
        with self._lock:
            try:
                return self._models[name]
            except KeyError:
                raise UnknownModelError(f"unknown model {name!r}") from None

    def plan(self, name: str) -> Tuple[ForwardPlan, bool]:
        """``(plan, was_hit)`` for ``name``, compiling on miss.

        A miss beyond capacity evicts the least-recently-used plan
        first (hook fires before the new compile hook).
        """
        with self._lock:
            model = self.model(name)
            plan = self._plans.get(name)
            if plan is not None:
                self._plans.move_to_end(name)
                self.hits += 1
                return plan, True
            self.misses += 1
            while len(self._plans) >= self.capacity:
                evicted_name, evicted = self._plans.popitem(last=False)
                self.evictions += 1
                if self._on_evict is not None:
                    self._on_evict(evicted_name, evicted)
            t0 = time.perf_counter()
            plan = compile_plan(model, precision=self.precision)
            self._plans[name] = plan
            if self._on_compile is not None:
                self._on_compile(name, plan, time.perf_counter() - t0)
            return plan, False

    def signatures(self) -> Dict[str, Dict]:
        """``{name: plan signature}`` for every hosted model (compiling
        as needed) — the ``/models`` endpoint payload."""
        return {name: self.plan(name)[0].signature() for name in self.names()}

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"PlanRegistry(models={len(self._models)}, "
                f"plans={len(self._plans)}/{self.capacity})"
            )
