"""Micro-batching inference service (transport-agnostic core).

:class:`MicroBatchService` owns the whole serving pipeline behind the
HTTP layer:

* a **bounded request queue** — when it is full, :meth:`submit` raises
  :class:`~repro.serve.errors.QueueFullError` immediately
  (backpressure; the HTTP layer maps it to 503) instead of letting
  latency grow without bound;
* a **dispatcher thread** that coalesces compatible queued requests
  (same model, same ``(time, features)`` shape) into one
  ``(batch, time, features)`` plan forward.  A batch closes when it
  reaches ``max_batch``, the batching ``window_s`` expires, or an
  incompatible request arrives (which immediately starts the next
  batch — it is never reordered past);
* a :class:`~repro.serve.registry.PlanRegistry` LRU of frozen
  :class:`~repro.compile.ForwardPlan` artifacts;
* optionally a :class:`~repro.serve.workers.PlanWorkerPool` executing
  batches in crash-isolated worker processes (``workers=0`` executes
  in-process — the bit-stable oracle configuration the fault tests
  compare against);
* a **fleet scheduler** for ``/predict_stream``: every hosted
  streaming session is one row of a per-model
  :class:`~repro.core.MultiStreamSession`, and a dedicated stream
  dispatcher coalesces concurrent chunks for the same model (one per
  session, any lengths) into a single batched fleet step — the
  per-step Python overhead amortises across every active stream
  instead of being paid per session.  Row bit-equality to a lone
  :class:`~repro.core.StreamingSession` is the engine's contract, so
  coalescing never changes anyone's logits.  The stream queue is
  bounded like the request queue (full → :class:`QueueFullError` →
  HTTP 503 + ``Retry-After``), and LRU eviction under
  ``max_sessions`` pressure detaches the session's fleet row
  (``stream.batch.evict``; the next chunk 404s).

Determinism contract: a request's **prediction** is independent of the
batch companions it happens to be coalesced with; logits agree to
floating-point accumulation tolerance (BLAS may select a different
GEMM kernel per batch shape — see ``docs/SERVING.md``).

All ``serve.*`` telemetry flows through the active
:class:`repro.telemetry.Run` (no-op when none is active), serialised by
an internal lock because dispatcher/executor threads emit concurrently.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
import uuid
from collections import OrderedDict, deque
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..telemetry import emit as telemetry_emit
from .errors import (
    QueueFullError,
    RequestTimeoutError,
    ServeError,
    UnknownSessionError,
)
from .registry import PlanRegistry
from .stats import ServeStats
from .workers import PlanWorkerPool

__all__ = ["MicroBatchService", "ServeOptions"]

#: Dispatcher shutdown sentinel.
_STOP = object()


@dataclasses.dataclass(frozen=True)
class ServeOptions:
    """Tuning knobs of the micro-batching service.

    ``window_s = 0`` (or ``max_batch = 1``) disables coalescing — every
    request runs alone, which is the unbatched baseline the serving
    benchmark measures speedup against.
    """

    window_s: float = 0.002
    max_batch: int = 32
    queue_size: int = 128
    request_timeout_s: float = 10.0
    batch_timeout_s: float = 30.0
    workers: int = 0
    worker_restart_limit: int = 8
    plan_capacity: int = 4
    max_sessions: int = 64
    #: Bounded queue of pending stream chunks (full → 503, like
    #: ``queue_size`` for ``/predict``).
    stream_queue_size: int = 128
    #: Coalesce window of the fleet scheduler; ``None`` inherits
    #: ``window_s``.  ``0`` steps every chunk alone (the unbatched
    #: baseline ``bench_streaming.py --multi`` measures against).
    stream_window_s: Optional[float] = None
    precision: Optional[str] = None

    def __post_init__(self) -> None:
        if self.window_s < 0:
            raise ValueError("window_s must be >= 0")
        if self.max_batch < 1 or self.queue_size < 1 or self.plan_capacity < 1:
            raise ValueError("max_batch, queue_size and plan_capacity must be >= 1")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.stream_queue_size < 1:
            raise ValueError("stream_queue_size must be >= 1")
        if self.stream_window_s is not None and self.stream_window_s < 0:
            raise ValueError("stream_window_s must be >= 0 (or None)")
        if self.request_timeout_s <= 0 or self.batch_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")

    @property
    def effective_stream_window_s(self) -> float:
        """The fleet scheduler's coalesce window."""
        return self.window_s if self.stream_window_s is None else self.stream_window_s


class _Request:
    __slots__ = ("name", "series", "future", "submitted")

    def __init__(self, name: str, series: np.ndarray) -> None:
        self.name = name
        self.series = series
        self.future: Future = Future()
        self.submitted = time.perf_counter()


class _StreamEntry:
    """One hosted streaming session: a claimed row of its model's
    fleet.  ``evicted`` flips (under the service's session lock) when
    the row is detached — by an explicit close or by LRU pressure — so
    an in-flight chunk that raced the detach fails cleanly with
    :class:`UnknownSessionError` instead of stepping a row that may
    have been re-assigned."""

    __slots__ = ("name", "row", "evicted")

    def __init__(self, name: str, row: int = -1) -> None:
        self.name = name
        self.row = row
        self.evicted = False


class _StreamRequest:
    """One pending ``/predict_stream`` chunk awaiting a fleet step."""

    __slots__ = (
        "name", "session_id", "entry", "chunk", "reset", "future", "submitted",
    )

    def __init__(self, name: str, session_id: str, entry: _StreamEntry,
                 chunk: np.ndarray, reset: bool) -> None:
        self.name = name
        self.session_id = session_id
        self.entry = entry
        self.chunk = chunk
        self.reset = reset
        self.future: Future = Future()
        self.submitted = time.perf_counter()


class _Fleet:
    """One model's batched stream engine plus its scheduler state.

    ``lock`` serialises every engine mutation (steps, row open/close).
    ``dead`` collects rows of LRU-evicted sessions; eviction happens
    under the *session* lock and must never wait on a fleet mid-step,
    so it only marks the entry and parks the row here — the next
    holder of ``lock`` reclaims them via ``MicroBatchService.
    _drain_dead_rows`` (its own tiny ``dead_lock`` keeps the handoff
    race-free without ordering against any other lock)."""

    __slots__ = ("name", "engine", "lock", "dead", "dead_lock")

    def __init__(self, name: str, engine) -> None:
        self.name = name
        self.engine = engine
        self.lock = threading.Lock()
        self.dead: List[int] = []
        self.dead_lock = threading.Lock()


class MicroBatchService:
    """The serving core: registry + queue + dispatcher (+ worker pool)."""

    def __init__(self, options: Optional[ServeOptions] = None) -> None:
        self.options = options if options is not None else ServeOptions()
        self.stats = ServeStats()
        self._emit_lock = threading.Lock()
        self._mc_lock = threading.Lock()
        self._sessions: "OrderedDict[str, _StreamEntry]" = OrderedDict()
        self._sessions_lock = threading.Lock()
        self._fleets: Dict[str, _Fleet] = {}
        self._fleets_lock = threading.Lock()
        self._closed = False

        self._pool: Optional[PlanWorkerPool] = (
            PlanWorkerPool(
                self.options.workers,
                restart_limit=self.options.worker_restart_limit,
                on_restart=self._on_worker_restart,
            )
            if self.options.workers > 0
            else None
        )
        self.registry = PlanRegistry(
            capacity=self.options.plan_capacity,
            precision=self.options.precision,
            on_compile=self._on_plan_compile,
            on_evict=self._on_plan_evict,
        )
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.options.queue_size)
        # In-process plans share scratch arenas -> exactly one executor
        # thread then; with a worker pool, one thread per worker keeps
        # every process busy.
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.options.workers),
            thread_name_prefix="serve-batch",
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatch", daemon=True
        )
        self._dispatcher.start()
        # Stream chunks coalesce through their own bounded queue and
        # dispatcher: a stateful chunk can never join a /predict batch,
        # but chunks of *different* sessions of the same model step
        # together as one fleet advance.
        self._stream_queue: "queue.Queue" = queue.Queue(
            maxsize=self.options.stream_queue_size
        )
        self._stream_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-fleet"
        )
        self._stream_dispatcher = threading.Thread(
            target=self._stream_dispatch_loop, name="serve-stream-dispatch",
            daemon=True,
        )
        self._stream_dispatcher.start()
        self._emit(
            "serve.start",
            window_s=self.options.window_s,
            max_batch=self.options.max_batch,
            queue_size=self.options.queue_size,
            workers=self.options.workers,
            precision=self.options.precision or "inherit",
        )

    # -- telemetry hooks -------------------------------------------------

    def _emit(self, kind: str, **fields) -> None:
        with self._emit_lock:
            telemetry_emit(kind, **fields)

    def _on_plan_compile(self, name, plan, compile_s) -> None:
        if self._pool is not None:
            self._pool.load(name, plan)
        self._emit(
            "serve.plan_compile",
            model=name,
            compile_ms=compile_s * 1e3,
            nbytes=plan.nbytes(),
        )

    def _on_plan_evict(self, name, plan) -> None:
        if self._pool is not None:
            self._pool.unload(name)
        self._emit("serve.plan_evict", model=name)

    def _on_worker_restart(self, pid, reason) -> None:
        self.stats.record_worker_restart()
        self._emit("serve.worker_restart", pid=pid, reason=reason)

    # -- model hosting ---------------------------------------------------

    def register(self, name: str, model, warm: bool = True) -> None:
        """Host ``model`` under ``name``; ``warm`` pre-compiles its plan."""
        self.registry.register(name, model)
        if warm:
            self.registry.plan(name)

    # -- request path ----------------------------------------------------

    def submit(self, name: str, series) -> Future:
        """Validate and enqueue one request; resolves to a result dict.

        Raises :class:`UnknownModelError` / :class:`PlanInputError`
        synchronously (the request never reaches the queue) and
        :class:`QueueFullError` when the bounded queue rejects it.
        """
        if self._closed:
            raise ServeError("service is closed")
        plan, hit = self.registry.plan(name)
        self.stats.record_plan(hit)
        request = _Request(name, plan.coerce_series(series))
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self.stats.record_request(0.0, status="queue_full")
            self._emit("serve.queue_full", model=name)
            raise QueueFullError(
                f"request queue full ({self.options.queue_size} pending)"
            ) from None
        return request.future

    def predict(self, name: str, series, timeout: Optional[float] = None) -> Dict:
        """Blocking request: submit, await the micro-batched result.

        Returns ``{model, prediction, logits, latency_ms, batch_size}``.
        """
        budget = timeout if timeout is not None else self.options.request_timeout_s
        t0 = time.perf_counter()
        future = self.submit(name, series)
        try:
            outcome = future.result(timeout=budget)
        except FutureTimeoutError:
            future.cancel()
            self.stats.record_request(0.0, status="timeout")
            self._emit("serve.timeout", model=name)
            raise RequestTimeoutError(f"no result within {budget}s") from None
        except Exception:
            self.stats.record_request(0.0, status="error")
            raise
        latency = time.perf_counter() - t0
        self.stats.record_request(latency, status="ok")
        self._emit(
            "serve.request",
            model=name,
            status="ok",
            latency_ms=latency * 1e3,
            batch_size=outcome["batch_size"],
        )
        logits = outcome["logits"]
        return {
            "model": name,
            "prediction": int(np.argmax(logits)),
            "logits": [float(v) for v in logits],
            "latency_ms": latency * 1e3,
            "batch_size": outcome["batch_size"],
        }

    def predict_mc(
        self,
        name: str,
        series,
        draws: int = 32,
        spread: float = 0.10,
        seed: int = 0,
    ) -> Dict:
        """Monte-Carlo prediction with device-variation confidence.

        Runs the *live* model (not the frozen plan) under a fresh
        ±``spread`` :class:`~repro.circuits.UniformVariation` sampler
        with ``draws`` batched hardware instances; the confidence is the
        fraction of instances voting for the majority class.
        Serialised by a lock (the sampler swap mutates the model).
        """
        from ..autograd import no_grad
        from ..circuits import UniformVariation, VariationSampler

        if not 1 <= draws <= 1024:
            raise ValueError("draws must be in [1, 1024]")
        if not 0 <= spread < 1:
            raise ValueError("spread must be in [0, 1)")
        model = self.registry.model(name)
        plan, _ = self.registry.plan(name)
        arr = plan.coerce_series(series)
        t0 = time.perf_counter()
        sampler = VariationSampler(
            model=UniformVariation(spread), rng=np.random.default_rng(seed)
        )
        with self._mc_lock:
            original = model.sampler
            model.set_sampler(sampler)
            try:
                with no_grad(), sampler.batched(draws):
                    logits = model(arr[None]).data[:, 0, :]
            finally:
                model.set_sampler(original)
        votes = np.bincount(np.argmax(logits, axis=-1), minlength=model.n_classes)
        prediction = int(np.argmax(votes))
        latency = time.perf_counter() - t0
        self.stats.record_request(latency, status="ok")
        self._emit(
            "serve.request",
            model=name,
            status="ok",
            latency_ms=latency * 1e3,
            batch_size=draws,
            mc=True,
        )
        return {
            "model": name,
            "prediction": prediction,
            "confidence": float(votes[prediction] / draws),
            "class_votes": [int(v) for v in votes],
            "mean_logits": [float(v) for v in logits.mean(axis=0)],
            "draws": draws,
            "spread": spread,
            "latency_ms": latency * 1e3,
        }

    # -- streaming fleet --------------------------------------------------

    def _get_fleet(self, name: str, plan) -> _Fleet:
        """The per-model fleet, created on first stream open."""
        from ..core.streaming import MultiStreamSession

        with self._fleets_lock:
            fleet = self._fleets.get(name)
            if fleet is None:
                fleet = _Fleet(
                    name,
                    MultiStreamSession(plan, capacity=self.options.max_sessions),
                )
                self._fleets[name] = fleet
            return fleet

    def _drain_dead_rows(self, fleet: _Fleet) -> None:
        """Reclaim LRU-detached rows.  Caller holds ``fleet.lock``."""
        with fleet.dead_lock:
            dead, fleet.dead = fleet.dead, []
        for row in dead:
            fleet.engine.close(row)

    def _park_dead_row(self, session_id: str, entry: _StreamEntry) -> None:
        """Hand an evicted session's row to its fleet for reclamation."""
        if entry.row < 0:
            return  # still opening; its opener sees ``evicted`` and rolls back
        with self._fleets_lock:
            fleet = self._fleets.get(entry.name)
        if fleet is None:  # pragma: no cover — fleet outlives its sessions
            return
        with fleet.dead_lock:
            fleet.dead.append(entry.row)
        self.stats.record_stream_eviction()
        self._emit(
            "stream.batch.evict",
            model=entry.name,
            session=session_id,
            row=entry.row,
            reason="lru",
        )

    def _open_stream(self, name: str, plan) -> Tuple[str, _StreamEntry]:
        """Claim a fleet row for a new session; LRU-evict on pressure."""
        fleet = self._get_fleet(name, plan)
        session_id = uuid.uuid4().hex
        entry = _StreamEntry(name)
        evicted: List[Tuple[str, _StreamEntry]] = []
        with self._sessions_lock:
            self._sessions[session_id] = entry
            while len(self._sessions) > self.options.max_sessions:
                old_id, old = self._sessions.popitem(last=False)
                old.evicted = True
                evicted.append((old_id, old))
        for old_id, old in evicted:
            self._park_dead_row(old_id, old)
        with fleet.lock:
            self._drain_dead_rows(fleet)
            row = fleet.engine.open()
            entry.row = row
            if entry.evicted:
                # Evicted between map insert and row claim (pathological
                # churn): roll the row back and report like any eviction.
                fleet.engine.close(row)
                raise UnknownSessionError(
                    f"session {session_id} was evicted before its first chunk"
                )
            occupancy = fleet.engine.occupancy
        self._emit(
            "stream.batch.open",
            model=name,
            session=session_id,
            row=row,
            occupancy=occupancy,
            capacity=fleet.engine.capacity,
        )
        return session_id, entry

    def predict_stream(
        self,
        name: str,
        chunk=None,
        session_id: Optional[str] = None,
        reset: bool = False,
        close: bool = False,
        timeout: Optional[float] = None,
    ) -> Dict:
        """Stateful streaming prediction over a hosted fleet row.

        Without ``session_id`` the model's fleet (a
        :class:`~repro.core.MultiStreamSession` over the registry's
        frozen plan) assigns the new session a state row and its id is
        returned for the caller to thread through subsequent chunks.
        State carries across calls, so feeding a series chunk-by-chunk
        is bit-equal to one shot, and — by the fleet-invariance
        contract of :mod:`repro.core.streaming` — bit-equal no matter
        which other sessions' chunks were coalesced into the same
        batched step.  Sessions are LRU-bounded by
        ``ServeOptions.max_sessions`` (eviction detaches the row; the
        next chunk 404s); ``reset=True`` discharges the filter state
        before processing, ``close=True`` releases the row (``chunk``
        may then be omitted).

        Chunks go through the bounded stream queue (full →
        :class:`QueueFullError`, HTTP 503 + ``Retry-After``) to the
        fleet dispatcher, which coalesces concurrent chunks of the
        same model — at most one in-flight chunk per session, so
        per-session FIFO order is preserved.
        """
        if self._closed:
            raise ServeError("service is closed")
        if close:
            if session_id is None:
                raise ValueError('closing a stream requires a "session" id')
            with self._sessions_lock:
                entry = self._sessions.pop(session_id, None)
                if entry is not None:
                    entry.evicted = True
            if entry is None:
                raise UnknownSessionError(f"no such session: {session_id}")
            with self._fleets_lock:
                fleet = self._fleets.get(entry.name)
            steps_seen = 0
            if fleet is not None and entry.row >= 0:
                with fleet.lock:
                    self._drain_dead_rows(fleet)
                    steps_seen = fleet.engine.steps_seen(entry.row)
                    fleet.engine.close(entry.row)
            return {
                "model": entry.name,
                "session": session_id,
                "closed": True,
                "steps_seen": steps_seen,
            }
        if chunk is None:
            raise ValueError('streaming request requires a "series" chunk')
        plan, hit = self.registry.plan(name)
        self.stats.record_plan(hit)
        series = plan.coerce_series(chunk)
        opened = session_id is None
        if opened:
            session_id, entry = self._open_stream(name, plan)
        else:
            with self._sessions_lock:
                entry = self._sessions.get(session_id)
                if entry is not None:
                    self._sessions.move_to_end(session_id)
            if entry is None:
                raise UnknownSessionError(f"no such session: {session_id}")
            if entry.name != name:
                raise ValueError(
                    f"session {session_id} belongs to model {entry.name!r}, "
                    f"not {name!r}"
                )
        request = _StreamRequest(name, session_id, entry, series, reset)
        t0 = time.perf_counter()
        try:
            self._stream_queue.put_nowait(request)
        except queue.Full:
            if opened:
                # Roll the never-fed session back so a rejected open
                # does not leak a fleet row.
                with self._sessions_lock:
                    self._sessions.pop(session_id, None)
                    entry.evicted = True
                self._park_dead_row(session_id, entry)
            self.stats.record_request(0.0, status="queue_full")
            self._emit("serve.queue_full", model=name, stream=True)
            raise QueueFullError(
                f"stream queue full ({self.options.stream_queue_size} pending)"
            ) from None
        budget = timeout if timeout is not None else self.options.request_timeout_s
        try:
            outcome = request.future.result(timeout=budget)
        except FutureTimeoutError:
            request.future.cancel()
            self.stats.record_request(0.0, status="timeout")
            self._emit("serve.timeout", model=name, stream=True)
            raise RequestTimeoutError(f"no result within {budget}s") from None
        except Exception:
            self.stats.record_request(0.0, status="error")
            raise
        latency = time.perf_counter() - t0
        self.stats.record_request(latency, status="ok")
        logits = outcome["logits"]
        self._emit(
            "serve.request",
            model=name,
            status="ok",
            latency_ms=latency * 1e3,
            batch_size=int(logits.shape[0]),
            stream=True,
        )
        return {
            "model": name,
            "session": session_id,
            "prediction": int(np.argmax(logits[-1])),
            "logits": [float(v) for v in logits[-1]],
            "steps_seen": outcome["steps_seen"],
            "chunk_steps": int(logits.shape[0]),
            "batch_rows": outcome["batch_rows"],
            "latency_ms": latency * 1e3,
        }

    def _stream_dispatch_loop(self) -> None:
        """Coalesce pending stream chunks into per-model fleet batches.

        Held-back chunks (other model, or a second chunk of a session
        already in the forming batch) stay in arrival order in ``held``
        and seed subsequent batches — per-session FIFO is preserved
        because ``held`` is always scanned before the queue.
        """
        window = self.options.effective_stream_window_s
        cap = self.options.max_sessions
        held: deque = deque()
        while True:
            item = held.popleft() if held else self._stream_queue.get()
            if item is _STOP:
                break
            batch = [item]
            sids = {item.session_id}
            model = item.name
            deadline = time.perf_counter() + window
            still: deque = deque()
            while held:
                nxt = held.popleft()
                if (
                    nxt is not _STOP
                    and len(batch) < cap
                    and nxt.name == model
                    and nxt.session_id not in sids
                ):
                    batch.append(nxt)
                    sids.add(nxt.session_id)
                else:
                    still.append(nxt)
            held = still
            stop = False
            while len(batch) < cap:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    nxt = self._stream_queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _STOP:
                    stop = True
                    break
                if nxt.name == model and nxt.session_id not in sids:
                    batch.append(nxt)
                    sids.add(nxt.session_id)
                else:
                    held.append(nxt)
            live = [r for r in batch if r.future.set_running_or_notify_cancel()]
            if live:
                self._stream_executor.submit(self._run_stream_batch, live)
            if stop:
                break
        failure = ServeError("service closed")
        for leftover in held:
            if leftover is not _STOP and not leftover.future.done():
                leftover.future.set_exception(failure)

    def _run_stream_batch(self, live: List[_StreamRequest]) -> None:
        """Advance one model's fleet by one coalesced ragged batch."""
        model = live[0].name
        wait_ms = (time.perf_counter() - live[0].submitted) * 1e3
        with self._fleets_lock:
            fleet = self._fleets.get(model)
        if fleet is None:  # pragma: no cover — opens precede chunks
            exc = UnknownSessionError(f"no fleet for model {model!r}")
            for r in live:
                if not r.future.done():
                    r.future.set_exception(exc)
            return
        t0 = time.perf_counter()
        with fleet.lock:
            self._drain_dead_rows(fleet)
            ready = []
            for r in live:
                # The evicted flag flips before the row is released, so
                # a chunk that raced a close/eviction dies here instead
                # of stepping a row that may belong to someone else.
                if r.entry.evicted:
                    r.future.set_exception(
                        UnknownSessionError(f"no such session: {r.session_id}")
                    )
                else:
                    ready.append(r)
            if not ready:
                return
            try:
                for r in ready:
                    if r.reset:
                        fleet.engine.reset(r.entry.row)
                results = fleet.engine.process_many(
                    {r.entry.row: r.chunk for r in ready}
                )
                steps_seen = {
                    r.entry.row: fleet.engine.steps_seen(r.entry.row)
                    for r in ready
                }
                occupancy = fleet.engine.occupancy
            except BaseException as exc:  # noqa: BLE001 — delivered to waiters
                for r in ready:
                    if not r.future.done():
                        r.future.set_exception(exc)
                self._emit(
                    "stream.batch.step",
                    model=model,
                    rows=len(ready),
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                )
                return
        exec_ms = (time.perf_counter() - t0) * 1e3
        steps = max(r.chunk.shape[0] for r in ready)
        self.stats.record_stream_batch(len(ready), steps, occupancy)
        self._emit(
            "stream.batch.step",
            model=model,
            rows=len(ready),
            steps=steps,
            occupancy=occupancy,
            capacity=fleet.engine.capacity,
            wait_ms=wait_ms,
            exec_ms=exec_ms,
        )
        for r in ready:
            if not r.future.done():
                r.future.set_result(
                    {
                        "logits": results[r.entry.row],
                        "steps_seen": steps_seen[r.entry.row],
                        "batch_rows": len(ready),
                    }
                )

    # -- dispatcher ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        opts = self.options
        pending = None
        while True:
            item = pending if pending is not None else self._queue.get()
            pending = None
            if item is _STOP:
                break
            batch = [item]
            deadline = time.perf_counter() + opts.window_s
            while len(batch) < opts.max_batch:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _STOP or not (
                    nxt.name == item.name and nxt.series.shape == item.series.shape
                ):
                    # Incompatible (or shutdown): flush what we have, the
                    # held-back item seeds the next batch.
                    pending = nxt
                    break
                batch.append(nxt)
            depth = self._queue.qsize()
            live = [r for r in batch if r.future.set_running_or_notify_cancel()]
            if live:
                self._executor.submit(self._run_batch, live, depth)

    def _run_batch(self, live, depth: int) -> None:
        name = live[0].name
        wait_ms = (time.perf_counter() - live[0].submitted) * 1e3
        t0 = time.perf_counter()
        try:
            plan, _ = self.registry.plan(name)
            x = np.stack([r.series for r in live])
            if self._pool is not None:
                logits = self._pool.execute(
                    name, x, timeout=self.options.batch_timeout_s
                )
            else:
                logits = plan(x)
        except BaseException as exc:  # noqa: BLE001 — delivered to every waiter
            for request in live:
                if not request.future.done():
                    request.future.set_exception(exc)
            self._emit(
                "serve.batch",
                model=name,
                size=len(live),
                queue_depth=depth,
                status="error",
                error=f"{type(exc).__name__}: {exc}",
            )
            return
        exec_ms = (time.perf_counter() - t0) * 1e3
        self.stats.record_batch(len(live), depth)
        self._emit(
            "serve.batch",
            model=name,
            size=len(live),
            queue_depth=depth,
            wait_ms=wait_ms,
            exec_ms=exec_ms,
        )
        for i, request in enumerate(live):
            if not request.future.done():
                request.future.set_result(
                    {"logits": np.array(logits[i]), "batch_size": len(live)}
                )

    # -- lifecycle -------------------------------------------------------

    def emit_stats(self) -> Dict:
        """Emit (and return) a ``serve.stats`` snapshot."""
        snapshot = self.stats.snapshot()
        self._emit("serve.stats", **snapshot)
        return snapshot

    def close(self) -> None:
        """Drain, stop the dispatcher/executor/pool, emit final stats."""
        if self._closed:
            return
        self._closed = True
        # Insert the dispatcher sentinel even into a wedged-full queue:
        # displace pending requests (failed below) rather than stalling
        # shutdown behind a dispatcher that may never drain them.
        leftovers = []
        while True:
            try:
                self._queue.put_nowait(_STOP)
                break
            except queue.Full:
                try:
                    leftovers.append(self._queue.get_nowait())
                except queue.Empty:
                    pass
        self._dispatcher.join(timeout=10.0)
        self._executor.shutdown(wait=True)
        # Same drill for the stream dispatcher and its queue.
        while True:
            try:
                self._stream_queue.put_nowait(_STOP)
                break
            except queue.Full:
                try:
                    leftovers.append(self._stream_queue.get_nowait())
                except queue.Empty:
                    pass
        self._stream_dispatcher.join(timeout=10.0)
        self._stream_executor.shutdown(wait=True)
        # Fail anything the dispatchers never picked up.
        for q in (self._queue, self._stream_queue):
            while True:
                try:
                    leftovers.append(q.get_nowait())
                except queue.Empty:
                    break
        for leftover in leftovers:
            if leftover is not _STOP and not leftover.future.done():
                leftover.future.set_exception(ServeError("service closed"))
        if self._pool is not None:
            self._pool.close()
        with self._sessions_lock:
            self._sessions.clear()
        with self._fleets_lock:
            self._fleets.clear()
        snapshot = self.stats.snapshot()
        self._emit("serve.stats", **snapshot)
        self._emit("serve.end", **snapshot)

    def __enter__(self) -> "MicroBatchService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"MicroBatchService(models={len(self.registry)}, "
            f"workers={self.options.workers}, closed={self._closed})"
        )
