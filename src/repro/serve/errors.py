"""Serving-tier error taxonomy (maps 1:1 onto HTTP status codes)."""

from __future__ import annotations

__all__ = [
    "ServeError",
    "UnknownModelError",
    "UnknownSessionError",
    "QueueFullError",
    "RequestTimeoutError",
    "WorkerCrashError",
    "PoolBrokenError",
]


class ServeError(Exception):
    """Base class of all serving-tier failures."""


class UnknownModelError(ServeError, KeyError):
    """Request names a model the service does not host (HTTP 404)."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0] if self.args else ""


class UnknownSessionError(ServeError, KeyError):
    """Request names a streaming session the service does not hold —
    never created, already closed, or LRU-evicted (HTTP 404)."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0] if self.args else ""


class QueueFullError(ServeError):
    """The bounded request queue rejected the request (HTTP 503)."""


class RequestTimeoutError(ServeError, TimeoutError):
    """No result within the per-request deadline (HTTP 504)."""


class WorkerCrashError(ServeError):
    """A plan worker died (or hung) while executing a batch, and the
    retry after restart failed too (HTTP 500)."""


class PoolBrokenError(ServeError):
    """The worker pool exceeded its restart budget and shut down."""
