"""Stdlib HTTP front-end for the micro-batching service.

Endpoints (JSON in, JSON out)::

    GET  /healthz      -> {"status": "ok", "models": [...]}
    GET  /stats        -> ServeStats snapshot
    GET  /models       -> {name: frozen-plan signature}
    POST /predict      -> {"model": ..., "series": [...]}
                       -> {"model", "prediction", "logits",
                           "latency_ms", "batch_size"}
    POST /predict_mc   -> {"model", "series", "draws"?, "spread"?, "seed"?}
                       -> adds {"confidence", "class_votes",
                                "mean_logits", "draws", "spread"}
    POST /predict_stream -> {"model", "series", "session"?, "reset"?,
                             "close"?}
                       -> {"model", "session", "prediction", "logits",
                           "steps_seen", "chunk_steps", "latency_ms"}
                          (omit "session" to open one; thread the
                          returned id through subsequent chunks —
                          filter state carries across requests;
                          ``close: true`` discards it, "series" then
                          optional)

Error mapping: malformed payloads → 400, unknown model/session → 404,
oversize body → 413, queue full → 503 (with ``Retry-After``), request
timeout → 504, anything else → 500.  Built on ``http.server.ThreadingHTTPServer``
— one thread per in-flight request, all funnelling into the service's
bounded queue, so concurrency is capped by backpressure rather than by
the transport.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..compile import PlanInputError
from .batching import MicroBatchService
from .errors import (
    QueueFullError,
    RequestTimeoutError,
    ServeError,
    UnknownModelError,
    UnknownSessionError,
)

__all__ = ["ServeHTTPServer", "MAX_BODY_BYTES"]

#: Largest accepted request body (covers ~60k-sample float series).
MAX_BODY_BYTES = 4 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto the owning :class:`ServeHTTPServer`."""

    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> MicroBatchService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # noqa: D102 — silence stderr access log
        pass

    def _send_json(self, code: int, payload: dict, retry_after: Optional[int] = None):
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str, retry_after: Optional[int] = None):
        self._send_json(code, {"error": message}, retry_after=retry_after)

    # -- GET -------------------------------------------------------------

    def do_GET(self):  # noqa: N802 — http.server API
        if self.path == "/healthz":
            self._send_json(
                200, {"status": "ok", "models": self.service.registry.names()}
            )
        elif self.path == "/stats":
            self._send_json(200, self.service.stats.snapshot())
        elif self.path == "/models":
            self._send_json(200, self.service.registry.signatures())
        else:
            self._error(404, f"no such endpoint: {self.path}")

    # -- POST ------------------------------------------------------------

    def _read_request(self, require_series: bool = True) -> Tuple[str, object, dict]:
        """Parse and minimally validate the JSON body of a POST."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise _BadRequest("invalid Content-Length header") from None
        if length <= 0:
            raise _BadRequest("empty request body")
        if length > MAX_BODY_BYTES:
            raise _TooLarge(f"request body exceeds {MAX_BODY_BYTES} bytes")
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _BadRequest("body must be a JSON object")
        name = payload.get("model")
        if not isinstance(name, str) or not name:
            raise _BadRequest('missing or non-string "model" field')
        if require_series and "series" not in payload:
            raise _BadRequest('missing "series" field')
        return name, payload.get("series"), payload

    def do_POST(self):  # noqa: N802 — http.server API
        try:
            if self.path == "/predict_stream":
                # "series" may be omitted on close-only requests.
                name, series, payload = self._read_request(require_series=False)
                close = _bool_field(payload, "close", False)
                if not close and series is None:
                    raise _BadRequest('missing "series" field')
                result = self.service.predict_stream(
                    name,
                    series,
                    session_id=_opt_str_field(payload, "session"),
                    reset=_bool_field(payload, "reset", False),
                    close=close,
                )
            else:
                name, series, payload = self._read_request()
                if self.path == "/predict":
                    result = self.service.predict(name, series)
                elif self.path == "/predict_mc":
                    result = self.service.predict_mc(
                        name,
                        series,
                        draws=_int_field(payload, "draws", 32),
                        spread=_float_field(payload, "spread", 0.10),
                        seed=_int_field(payload, "seed", 0),
                    )
                else:
                    self._error(404, f"no such endpoint: {self.path}")
                    return
        except _TooLarge as exc:
            self._error(413, str(exc))
        except _BadRequest as exc:
            self._error(400, str(exc))
        except (PlanInputError, ValueError) as exc:
            self._error(400, str(exc))
        except (UnknownModelError, UnknownSessionError) as exc:
            self._error(404, str(exc))
        except QueueFullError as exc:
            self._error(503, str(exc), retry_after=1)
        except RequestTimeoutError as exc:
            self._error(504, str(exc))
        except ServeError as exc:
            self._error(500, str(exc))
        else:
            self._send_json(200, result)


class _BadRequest(Exception):
    pass


class _TooLarge(Exception):
    pass


def _int_field(payload: dict, key: str, default: int) -> int:
    value = payload.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise _BadRequest(f'"{key}" must be an integer')
    return value


def _float_field(payload: dict, key: str, default: float) -> float:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _BadRequest(f'"{key}" must be a number')
    return float(value)


def _bool_field(payload: dict, key: str, default: bool) -> bool:
    value = payload.get(key, default)
    if not isinstance(value, bool):
        raise _BadRequest(f'"{key}" must be a boolean')
    return value


def _opt_str_field(payload: dict, key: str) -> Optional[str]:
    value = payload.get(key)
    if value is not None and (not isinstance(value, str) or not value):
        raise _BadRequest(f'"{key}" must be a non-empty string')
    return value


class ServeHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`MicroBatchService`.

    ``port=0`` binds an ephemeral port (tests); :attr:`url` reports the
    resolved address.  :meth:`start_background` runs ``serve_forever``
    on a daemon thread; :meth:`close` stops the transport (the service
    itself is closed by its owner).
    """

    daemon_threads = True

    def __init__(
        self, service: MicroBatchService, host: str = "127.0.0.1", port: int = 8000
    ) -> None:
        super().__init__((host, port), _Handler)
        self.service = service
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> "ServeHTTPServer":
        self._thread = threading.Thread(
            target=self.serve_forever, name="serve-http", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ServeHTTPServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
