"""Plan worker processes: crash/hang-isolated batch execution.

Follows the :mod:`repro.parallel.worker` pattern — process isolation is
what makes per-batch timeouts, kills and crash retries clean — but
where a sweep worker runs one cell and exits, a plan worker is
*persistent*: it holds the frozen plans it was sent (``load``) and
answers ``batch`` messages until stopped.  Pipe protocol::

    parent -> worker : ("load", name, plan) | ("unload", name)
                     | ("batch", name, x)   | ("stop",)
    worker -> parent : ("result", logits)   | ("error", message)

The pool hands one worker exclusively to one batch at a time (an idle
queue), so replies can never interleave.  A worker that crashes
(pipe EOF) or hangs (no reply within the batch deadline) is killed,
replaced — replaying the loaded plans into the fresh process — and the
batch retried once on another worker.  Replacements count against a
restart budget; exhausting it marks the pool broken rather than
restart-looping forever.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from typing import Callable, Dict, List, Optional

from ..parallel.worker import reset_inherited_telemetry
from .errors import PoolBrokenError, RequestTimeoutError, WorkerCrashError

__all__ = ["PlanWorkerPool", "serve_worker_main"]


def serve_worker_main(conn) -> None:
    """Entry point of one plan worker process (see module docstring)."""
    reset_inherited_telemetry()
    plans: Dict[str, object] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        except Exception:
            # Undecodable frame (e.g. an unpicklable fault-injection
            # payload): the protocol state is unknowable, so die cleanly
            # and let the pool's crash path replace this process.
            break
        kind = msg[0]
        if kind == "load":
            plans[msg[1]] = msg[2]
        elif kind == "unload":
            plans.pop(msg[1], None)
        elif kind == "stop":
            break
        elif kind == "batch":
            try:
                out = ("result", plans[msg[1]](msg[2]))
            except BaseException as exc:  # noqa: BLE001 — reported to parent
                out = ("error", f"{type(exc).__name__}: {exc}")
            try:
                conn.send(out)
            except (BrokenPipeError, OSError):
                break
    try:
        conn.close()
    except OSError:
        pass


class _Worker:
    """One live worker process plus its parent-side pipe end."""

    __slots__ = ("proc", "conn", "lock")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        # Serialises sends: `load` broadcasts may race an in-flight
        # `batch` send from the executing thread (recv never races —
        # only the thread that checked the worker out reads).
        self.lock = threading.Lock()

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid

    def send(self, msg) -> None:
        with self.lock:
            self.conn.send(msg)


class PlanWorkerPool:
    """Fixed-size pool of persistent plan workers with fault recovery.

    Parameters
    ----------
    workers:
        Number of worker processes (≥ 1).
    restart_limit:
        Total crash/hang replacements tolerated before the pool
        declares itself broken.
    on_restart:
        Optional ``(pid, reason)`` hook — the serving tier emits
        ``serve.worker_restart`` telemetry from it.
    """

    def __init__(
        self,
        workers: int,
        restart_limit: int = 8,
        on_restart: Optional[Callable[[Optional[int], str], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("worker pool needs at least one worker")
        self._ctx = multiprocessing.get_context()
        self._on_restart = on_restart
        self._restart_limit = restart_limit
        self.restarts = 0
        self._plans: Dict[str, object] = {}
        self._state_lock = threading.Lock()
        self._workers: List[_Worker] = []
        self._idle: "queue.Queue[_Worker]" = queue.Queue()
        self._broken = False
        self._closed = False
        for _ in range(workers):
            self._idle.put(self._spawn())

    # -- lifecycle -------------------------------------------------------

    def _spawn(self) -> _Worker:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=serve_worker_main, args=(child,), daemon=True, name="plan-worker"
        )
        proc.start()
        child.close()
        worker = _Worker(proc, parent)
        with self._state_lock:
            self._workers.append(worker)
            replay = list(self._plans.items())
        for name, plan in replay:
            worker.send(("load", name, plan))
        return worker

    def _discard(self, worker: _Worker, reason: str) -> None:
        """Kill a misbehaving worker and, budget permitting, replace it."""
        with self._state_lock:
            if worker in self._workers:
                self._workers.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass
        pid = worker.pid
        worker.proc.terminate()
        worker.proc.join(timeout=2.0)
        if worker.proc.is_alive():
            worker.proc.kill()
            worker.proc.join(timeout=2.0)
        self.restarts += 1
        if self._on_restart is not None:
            self._on_restart(pid, reason)
        if self.restarts > self._restart_limit:
            self._broken = True
            return
        if not self._closed:
            self._idle.put(self._spawn())

    def pids(self) -> List[int]:
        """PIDs of the live workers (fault-injection tests kill these)."""
        with self._state_lock:
            return [w.pid for w in self._workers if w.pid is not None]

    def close(self) -> None:
        """Stop every worker (idle ones politely, the rest by terminate)."""
        self._closed = True
        while True:
            try:
                worker = self._idle.get_nowait()
            except queue.Empty:
                break
            try:
                worker.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        with self._state_lock:
            workers = list(self._workers)
            self._workers.clear()
        for worker in workers:
            worker.proc.terminate()
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.kill()
            try:
                worker.conn.close()
            except OSError:
                pass

    # -- plan distribution ----------------------------------------------

    def load(self, name: str, plan) -> None:
        """Ship a compiled plan to every worker (and future respawns)."""
        with self._state_lock:
            self._plans[name] = plan
            workers = list(self._workers)
        for worker in workers:
            try:
                worker.send(("load", name, plan))
            except (BrokenPipeError, OSError):
                pass  # dead worker — execute() will discover and replace it

    def unload(self, name: str) -> None:
        """Drop an evicted plan from every worker."""
        with self._state_lock:
            self._plans.pop(name, None)
            workers = list(self._workers)
        for worker in workers:
            try:
                worker.send(("unload", name))
            except (BrokenPipeError, OSError):
                pass

    # -- execution -------------------------------------------------------

    def execute(self, name: str, x, timeout: float = 30.0):
        """Run one batch on an idle worker; returns the logits array.

        Crash/hang → kill, replace, retry once on a fresh worker.  A
        worker-side *application* error (the plan itself raised) is not
        retried — the worker is healthy and a retry would fail again.
        """
        if self._broken:
            raise PoolBrokenError(
                f"worker pool exceeded its restart budget ({self._restart_limit})"
            )
        deadline = time.perf_counter() + timeout
        last_error = "unknown"
        for _attempt in range(2):
            try:
                worker = self._idle.get(timeout=max(0.0, deadline - time.perf_counter()))
            except queue.Empty:
                raise RequestTimeoutError(
                    f"no idle plan worker within {timeout}s"
                ) from None
            try:
                worker.send(("batch", name, x))
                if not worker.conn.poll(max(0.0, deadline - time.perf_counter())):
                    last_error = f"worker pid={worker.pid} hung (> {timeout}s)"
                    self._discard(worker, reason="hang")
                    continue
                kind, payload = worker.conn.recv()
            except (BrokenPipeError, EOFError, OSError) as exc:
                last_error = f"worker pid={worker.pid} crashed: {exc}"
                self._discard(worker, reason="crash")
                continue
            self._idle.put(worker)
            if kind == "result":
                return payload
            raise WorkerCrashError(f"plan execution failed in worker: {payload}")
        if self._broken:
            raise PoolBrokenError(
                f"worker pool exceeded its restart budget ({self._restart_limit}); "
                f"last error: {last_error}"
            )
        raise WorkerCrashError(f"batch failed twice: {last_error}")

    def __repr__(self) -> str:
        with self._state_lock:
            alive = len(self._workers)
        return f"PlanWorkerPool(workers={alive}, restarts={self.restarts})"
