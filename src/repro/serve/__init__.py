"""Inference serving tier: frozen forward plans behind micro-batching.

The deployment face of the reproduction (ROADMAP item 1).  A trained
:class:`~repro.core.PrintedTemporalClassifier` is frozen into a
graph-free :class:`~repro.compile.ForwardPlan` (bit-equal to the live
model — see ``tests/compile/test_plan.py``) and served by:

* :class:`MicroBatchService` — bounded request queue, micro-batching
  window coalescing concurrent requests into one
  ``(batch, time, features)`` forward, per-model LRU of compiled plans,
  optional crash-isolated worker processes, and graceful degradation
  (queue-full rejections, per-request timeouts, worker restarts);
* :class:`ServeHTTPServer` — the stdlib HTTP transport
  (``/predict``, ``/predict_mc``, ``/predict_stream``, ``/healthz``,
  ``/stats``, ``/models``).  ``/predict_stream`` hosts stateful
  :class:`~repro.core.StreamingSession` instances (LRU-bounded by
  ``ServeOptions.max_sessions``) whose filter state carries across
  requests — chunked delivery is bit-equal to one-shot;
* ``serve.*`` telemetry events streamed into the active
  :class:`repro.telemetry.Run` and rendered by ``python -m repro
  report`` (see ``docs/SERVING.md`` and ``docs/OBSERVABILITY.md``).

Start a server from the CLI with ``python -m repro serve``; benchmark
the micro-batching speedup with ``benchmarks/bench_serving.py``.
"""

from .batching import MicroBatchService, ServeOptions
from .errors import (
    PoolBrokenError,
    QueueFullError,
    RequestTimeoutError,
    ServeError,
    UnknownModelError,
    UnknownSessionError,
    WorkerCrashError,
)
from .registry import PlanRegistry
from .service import MAX_BODY_BYTES, ServeHTTPServer
from .stats import ServeStats, percentile
from .workers import PlanWorkerPool, serve_worker_main

__all__ = [
    "MAX_BODY_BYTES",
    "MicroBatchService",
    "PlanRegistry",
    "PlanWorkerPool",
    "PoolBrokenError",
    "QueueFullError",
    "RequestTimeoutError",
    "ServeError",
    "ServeHTTPServer",
    "ServeOptions",
    "ServeStats",
    "UnknownModelError",
    "UnknownSessionError",
    "WorkerCrashError",
    "percentile",
    "serve_worker_main",
]
