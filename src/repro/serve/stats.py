"""Thread-safe serving statistics: QPS, latency percentiles, batching.

One :class:`ServeStats` instance aggregates everything the ``/stats``
endpoint, the ``serve.stats`` telemetry event and the serving benchmark
report.  Latencies are kept in a bounded window (newest
``latency_window`` requests) so a long-lived server's percentiles track
recent behaviour instead of averaging over its whole lifetime.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Dict, List

__all__ = ["ServeStats", "percentile"]


def percentile(values: List[float], q: float) -> float:
    """The ``q``-th percentile (0-100) by nearest-rank, 0.0 when empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return float(ordered[rank])


class ServeStats:
    """Counters and reservoirs behind one lock (all methods thread-safe)."""

    def __init__(self, latency_window: int = 4096) -> None:
        self._lock = threading.Lock()
        self._latencies: deque = deque(maxlen=latency_window)
        self._status = Counter()
        self._batch_sizes = Counter()
        self._batches = 0
        self._batched_requests = 0
        self._max_queue_depth = 0
        self._worker_restarts = 0
        self._stream_batches = 0
        self._stream_rows = 0
        self._stream_steps = 0
        self._stream_max_rows = 0
        self._stream_max_occupancy = 0
        self._stream_evictions = 0
        self._plan_hits = 0
        self._plan_misses = 0
        self._plan_evictions = 0
        self._first_request: float = 0.0
        self._last_request: float = 0.0

    # -- recording -------------------------------------------------------

    def record_request(self, latency_s: float, status: str = "ok") -> None:
        """One finished (or rejected) request and its outcome."""
        now = time.perf_counter()
        with self._lock:
            self._status[status] += 1
            if status == "ok":
                self._latencies.append(latency_s)
            if self._first_request == 0.0:
                self._first_request = now
            self._last_request = now

    def record_batch(self, size: int, queue_depth: int) -> None:
        """One executed micro-batch and the queue depth at formation."""
        with self._lock:
            self._batches += 1
            self._batched_requests += size
            self._batch_sizes[int(size)] += 1
            self._max_queue_depth = max(self._max_queue_depth, queue_depth)

    def record_worker_restart(self) -> None:
        with self._lock:
            self._worker_restarts += 1

    def record_stream_batch(self, rows: int, steps: int, occupancy: int) -> None:
        """One executed fleet step batch: how many stream rows advanced
        together, the longest chunk in the batch, and the fleet
        occupancy at execution."""
        with self._lock:
            self._stream_batches += 1
            self._stream_rows += rows
            self._stream_steps += steps
            self._stream_max_rows = max(self._stream_max_rows, rows)
            self._stream_max_occupancy = max(self._stream_max_occupancy, occupancy)

    def record_stream_eviction(self) -> None:
        """One streaming session detached from its fleet by LRU pressure."""
        with self._lock:
            self._stream_evictions += 1

    def record_plan(self, hit: bool, evicted: bool = False) -> None:
        with self._lock:
            if hit:
                self._plan_hits += 1
            else:
                self._plan_misses += 1
            if evicted:
                self._plan_evictions += 1

    # -- reporting -------------------------------------------------------

    def snapshot(self) -> Dict:
        """JSON-serialisable summary (``/stats`` payload, ``serve.stats``
        event, benchmark record)."""
        with self._lock:
            latencies = list(self._latencies)
            ok = self._status.get("ok", 0)
            elapsed = max(self._last_request - self._first_request, 1e-9)
            qps = ok / elapsed if ok > 1 else float(ok)
            mean_batch = (
                self._batched_requests / self._batches if self._batches else 0.0
            )
            return {
                "requests": sum(self._status.values()),
                "by_status": dict(self._status),
                "qps": qps,
                "latency_ms": {
                    "p50": percentile(latencies, 50) * 1e3,
                    "p99": percentile(latencies, 99) * 1e3,
                    "mean": (sum(latencies) / len(latencies) * 1e3)
                    if latencies
                    else 0.0,
                },
                "batches": self._batches,
                "mean_batch_size": mean_batch,
                "batch_size_histogram": {
                    str(k): v for k, v in sorted(self._batch_sizes.items())
                },
                "max_queue_depth": self._max_queue_depth,
                "worker_restarts": self._worker_restarts,
                "stream": {
                    "batches": self._stream_batches,
                    "rows_stepped": self._stream_rows,
                    "mean_rows_per_batch": (
                        self._stream_rows / self._stream_batches
                        if self._stream_batches
                        else 0.0
                    ),
                    "max_rows_per_batch": self._stream_max_rows,
                    "max_occupancy": self._stream_max_occupancy,
                    "evictions": self._stream_evictions,
                },
                "plan_cache": {
                    "hits": self._plan_hits,
                    "misses": self._plan_misses,
                    "evictions": self._plan_evictions,
                },
            }

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"ServeStats(requests={snap['requests']}, qps={snap['qps']:.1f}, "
            f"batches={snap['batches']})"
        )
