"""Benchmark datasets (synthetic UCR-like substitutes) and preprocessing."""

from .datasets import (
    DATASET_INFO,
    DatasetInfo,
    DatasetSplits,
    dataset_names,
    load_dataset,
)
from .generators import GENERATORS, generate
from .io import load_series_csv, load_splits, save_series_csv, save_splits
from .preprocessing import (
    TARGET_LENGTH,
    normalize_series,
    resize_series,
    train_val_test_split,
)
from .streams import (
    BURST_KINDS,
    STREAM_SCENARIOS,
    SensorStream,
    burst_stream,
    drift_stream,
    inject_bursts,
    long_horizon_stream,
    make_stream,
    resampled_stream,
)

__all__ = [
    "DatasetInfo",
    "DatasetSplits",
    "DATASET_INFO",
    "dataset_names",
    "load_dataset",
    "GENERATORS",
    "generate",
    "resize_series",
    "normalize_series",
    "train_val_test_split",
    "TARGET_LENGTH",
    "save_series_csv",
    "load_series_csv",
    "save_splits",
    "load_splits",
    "SensorStream",
    "BURST_KINDS",
    "STREAM_SCENARIOS",
    "make_stream",
    "drift_stream",
    "burst_stream",
    "inject_bursts",
    "resampled_stream",
    "long_horizon_stream",
]
