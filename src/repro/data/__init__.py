"""Benchmark datasets (synthetic UCR-like substitutes) and preprocessing."""

from .datasets import (
    DATASET_INFO,
    DatasetInfo,
    DatasetSplits,
    dataset_names,
    load_dataset,
)
from .generators import GENERATORS, generate
from .io import load_series_csv, load_splits, save_series_csv, save_splits
from .preprocessing import (
    TARGET_LENGTH,
    normalize_series,
    resize_series,
    train_val_test_split,
)

__all__ = [
    "DatasetInfo",
    "DatasetSplits",
    "DATASET_INFO",
    "dataset_names",
    "load_dataset",
    "GENERATORS",
    "generate",
    "resize_series",
    "normalize_series",
    "train_val_test_split",
    "TARGET_LENGTH",
    "save_series_csv",
    "load_series_csv",
    "save_splits",
    "load_splits",
]
