"""Sensor-stream scenario generators for online (streaming) evaluation.

Everything upstream of this module is an offline, fixed-length-64
window; a deployed printed circuit instead sees an *unbounded* sensor
voltage whose statistics shift while it runs.  This module layers
streaming scenarios over the synthetic benchmark generators
(:mod:`repro.data.generators`):

* **concept drift** — the active class changes at configurable
  changepoints (:func:`drift_stream`);
* **sensor fault bursts** — dropout (signal collapses to 0 V),
  saturation (rail-clipping) and stuck-at (the sample-and-hold freezes)
  bursts injected over a drifting stream (:func:`burst_stream`,
  :func:`inject_bursts`);
* **variable-rate resampling** — the effective sensor sampling rate
  wanders, stretching/compressing each segment in time
  (:func:`resampled_stream`);
* **long horizons** — T ≫ 64 concatenations that hold class statistics
  for thousands of steps (:func:`long_horizon_stream`).

Every scenario is **seeded and replayable**: the same ``(scenario,
dataset, seed)`` triple produces a bit-identical
:class:`SensorStream` in any process (pinned by
``tests/data/test_streams.py``).  Streams are built from length-64
windows resized/normalised exactly like the training pipeline
(:func:`~repro.data.preprocessing.resize_series` /
:func:`~repro.data.preprocessing.normalize_series`), so a model trained
offline sees in-distribution segments separated by realistic
discontinuities.

Use :func:`make_stream` (or the :data:`STREAM_SCENARIOS` registry) to
build scenarios by name — the path the ``python -m repro stream-eval``
CLI and the streaming benchmark take.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .datasets import DATASET_INFO
from .generators import generate
from .preprocessing import TARGET_LENGTH, normalize_series, resize_series

__all__ = [
    "SensorStream",
    "BURST_KINDS",
    "STREAM_SCENARIOS",
    "make_stream",
    "drift_stream",
    "burst_stream",
    "inject_bursts",
    "resampled_stream",
    "long_horizon_stream",
]

#: Supported sensor-fault burst kinds.
BURST_KINDS = ("dropout", "saturation", "stuck")


@dataclasses.dataclass(frozen=True)
class SensorStream:
    """One replayable sensor stream with per-step ground truth.

    ``x`` is the univariate signal ``(steps,)`` in [-1, 1]; ``labels``
    the per-step class; ``changepoints`` the step indices where the
    active class switches; ``burst_mask`` flags the steps a sensor
    fault corrupted.
    """

    name: str
    dataset: str
    seed: int
    x: np.ndarray
    labels: np.ndarray
    changepoints: Tuple[int, ...]
    burst_mask: np.ndarray

    def __post_init__(self) -> None:
        if self.x.ndim != 1:
            raise ValueError(f"stream signal must be 1-D, got {self.x.shape}")
        if self.labels.shape != self.x.shape or self.burst_mask.shape != self.x.shape:
            raise ValueError(
                f"labels {self.labels.shape} and burst_mask "
                f"{self.burst_mask.shape} must match signal {self.x.shape}"
            )
        for cp in self.changepoints:
            if not 0 < cp < self.x.size:
                raise ValueError(f"changepoint {cp} outside (0, {self.x.size})")

    @property
    def steps(self) -> int:
        """Stream length in samples."""
        return int(self.x.size)

    def segments(self) -> List[Tuple[int, int, int]]:
        """The ``(lo, hi, label)`` spans between changepoints."""
        edges = [0] + list(self.changepoints) + [self.steps]
        return [
            (lo, hi, int(self.labels[lo])) for lo, hi in zip(edges[:-1], edges[1:])
        ]

    def __repr__(self) -> str:
        return (
            f"SensorStream({self.name!r}, dataset={self.dataset!r}, "
            f"seed={self.seed}, steps={self.steps}, "
            f"changepoints={len(self.changepoints)})"
        )


def _window_pool(
    dataset: str, seed: int, needed: Dict[int, int]
) -> Dict[int, np.ndarray]:
    """Deterministic per-class pools of normalised length-64 windows.

    Draws batches from the dataset's synthetic generator (seed-offset
    per refill, so the pool is a pure function of ``(dataset, seed)``)
    until every class has its requested window count.
    """
    if dataset not in DATASET_INFO:
        raise KeyError(f"unknown dataset {dataset!r} (known: {', '.join(DATASET_INFO)})")
    buckets: Dict[int, List[np.ndarray]] = {c: [] for c in needed}
    batch = max(32, 4 * sum(needed.values()))
    for refill in range(64):
        if all(len(buckets[c]) >= n for c, n in needed.items()):
            break
        x, y = generate(dataset, batch, seed=seed + 1_000_003 * refill)
        x = normalize_series(resize_series(x))
        for xi, yi in zip(x, y):
            c = int(yi)
            if c in buckets and len(buckets[c]) < needed[c]:
                buckets[c].append(xi)
    short = {c: n for c, n in needed.items() if len(buckets[c]) < n}
    if short:
        raise RuntimeError(
            f"generator {dataset!r} did not produce enough windows for "
            f"classes {sorted(short)}"
        )
    return {c: np.stack(buckets[c]) for c in buckets}


def _segment_classes(
    n_segments: int, n_classes: int, rng: np.random.Generator
) -> List[int]:
    """Per-segment classes; consecutive segments always differ (so every
    interior boundary is a genuine changepoint) unless only one class
    exists."""
    classes: List[int] = []
    for _ in range(n_segments):
        c = int(rng.integers(0, n_classes))
        while n_classes > 1 and classes and c == classes[-1]:
            c = int(rng.integers(0, n_classes))
        classes.append(c)
    return classes


def drift_stream(
    dataset: str = "Slope",
    *,
    segments: int = 6,
    windows_per_segment: int = 3,
    seed: int = 0,
    name: str = "drift",
) -> SensorStream:
    """Concept-drift stream: the active class shifts at changepoints.

    Each of ``segments`` spans concatenates ``windows_per_segment``
    in-distribution windows of one class; consecutive segments carry
    different classes, so every interior boundary is a changepoint
    (``segments - 1`` of them, each ``windows_per_segment * 64`` steps
    apart).
    """
    if segments < 1 or windows_per_segment < 1:
        raise ValueError("segments and windows_per_segment must be >= 1")
    if dataset not in DATASET_INFO:
        raise KeyError(f"unknown dataset {dataset!r} (known: {', '.join(DATASET_INFO)})")
    rng = np.random.default_rng(seed)
    n_classes = DATASET_INFO[dataset].n_classes
    classes = _segment_classes(segments, n_classes, rng)
    needed: Dict[int, int] = {}
    for c in classes:
        needed[c] = needed.get(c, 0) + windows_per_segment
    pool = _window_pool(dataset, seed, needed)
    cursor = {c: 0 for c in pool}

    pieces: List[np.ndarray] = []
    labels: List[np.ndarray] = []
    changepoints: List[int] = []
    steps = 0
    for c in classes:
        if steps:
            changepoints.append(steps)
        take = pool[c][cursor[c] : cursor[c] + windows_per_segment]
        cursor[c] += windows_per_segment
        segment = take.reshape(-1)
        pieces.append(segment)
        labels.append(np.full(segment.size, c, dtype=np.int64))
        steps += segment.size
    x = np.concatenate(pieces)
    return SensorStream(
        name=name,
        dataset=dataset,
        seed=seed,
        x=x,
        labels=np.concatenate(labels),
        changepoints=tuple(changepoints),
        burst_mask=np.zeros(x.size, dtype=bool),
    )


def inject_bursts(
    stream: SensorStream,
    kind: str,
    *,
    rate: float = 0.08,
    length_range: Tuple[int, int] = (4, 16),
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> SensorStream:
    """Inject sensor-fault bursts into an existing stream.

    ``rate`` is the target fraction of corrupted steps; bursts have
    uniformly drawn lengths in ``length_range`` and may overlap.  Kinds:

    * ``dropout`` — the sensor line floats to 0 V;
    * ``saturation`` — the front-end clips to the nearer ±1 rail;
    * ``stuck`` — the sample-and-hold repeats the value at burst start.

    Fully deterministic in ``seed`` (defaulting to a fixed offset of the
    stream's own seed); the returned stream's :attr:`~SensorStream.burst_mask`
    marks exactly the corrupted steps.
    """
    if kind not in BURST_KINDS:
        raise ValueError(f"burst kind must be one of {BURST_KINDS}, got {kind!r}")
    if not 0 < rate < 1:
        raise ValueError("rate must be in (0, 1)")
    lo, hi = length_range
    if not 1 <= lo <= hi < stream.steps:
        raise ValueError(f"invalid burst length_range {length_range}")
    rng = np.random.default_rng(stream.seed + 7919 if seed is None else seed)
    x = stream.x.copy()
    mask = np.zeros(stream.steps, dtype=bool)
    mean_len = (lo + hi) / 2.0
    n_bursts = max(1, int(round(rate * stream.steps / mean_len)))
    for _ in range(n_bursts):
        length = int(rng.integers(lo, hi + 1))
        start = int(rng.integers(0, stream.steps - length + 1))
        span = slice(start, start + length)
        if kind == "dropout":
            x[span] = 0.0
        elif kind == "saturation":
            x[span] = np.where(stream.x[span] >= 0.0, 1.0, -1.0)
        else:  # stuck
            x[span] = x[start]
        mask[span] = True
    return SensorStream(
        name=name if name is not None else f"{stream.name}+{kind}",
        dataset=stream.dataset,
        seed=stream.seed,
        x=x,
        labels=stream.labels,
        changepoints=stream.changepoints,
        burst_mask=mask,
    )


def burst_stream(
    dataset: str = "Slope",
    *,
    kind: str = "dropout",
    segments: int = 4,
    windows_per_segment: int = 3,
    rate: float = 0.08,
    length_range: Tuple[int, int] = (4, 16),
    seed: int = 0,
) -> SensorStream:
    """A drifting stream with ``kind`` sensor-fault bursts injected."""
    base = drift_stream(
        dataset,
        segments=segments,
        windows_per_segment=windows_per_segment,
        seed=seed,
        name=kind,
    )
    return inject_bursts(
        base, kind, rate=rate, length_range=length_range, name=kind
    )


def resampled_stream(
    dataset: str = "Slope",
    *,
    segments: int = 4,
    windows_per_segment: int = 3,
    rate_range: Tuple[float, float] = (0.5, 2.0),
    seed: int = 0,
) -> SensorStream:
    """Variable-rate stream: each segment's effective sampling rate is
    drawn from ``rate_range`` and the segment is linearly resampled
    accordingly (rate > 1 compresses — the sensor under-samples; rate <
    1 stretches).  Changepoints move to the resampled boundaries."""
    lo_r, hi_r = rate_range
    if not 0 < lo_r <= hi_r:
        raise ValueError(f"invalid rate_range {rate_range}")
    base = drift_stream(
        dataset,
        segments=segments,
        windows_per_segment=windows_per_segment,
        seed=seed,
        name="resample",
    )
    rng = np.random.default_rng(seed + 104729)
    pieces: List[np.ndarray] = []
    labels: List[np.ndarray] = []
    changepoints: List[int] = []
    steps = 0
    for lo, hi, label in base.segments():
        if steps:
            changepoints.append(steps)
        segment = base.x[lo:hi]
        rate = float(rng.uniform(lo_r, hi_r))
        new_len = max(8, int(round(segment.size / rate)))
        src = np.linspace(0.0, 1.0, segment.size)
        dst = np.linspace(0.0, 1.0, new_len)
        warped = np.interp(dst, src, segment)
        pieces.append(warped)
        labels.append(np.full(new_len, label, dtype=np.int64))
        steps += new_len
    x = np.concatenate(pieces)
    return SensorStream(
        name="resample",
        dataset=dataset,
        seed=seed,
        x=x,
        labels=np.concatenate(labels),
        changepoints=tuple(changepoints),
        burst_mask=np.zeros(x.size, dtype=bool),
    )


def long_horizon_stream(
    dataset: str = "Slope",
    *,
    segments: int = 2,
    windows_per_segment: int = 24,
    seed: int = 0,
) -> SensorStream:
    """Long-horizon stream: T ≫ 64 (default 2 × 24 × 64 = 3072 steps)
    with class statistics held for thousands of steps per segment."""
    return drift_stream(
        dataset,
        segments=segments,
        windows_per_segment=windows_per_segment,
        seed=seed,
        name="long-horizon",
    )


def _dropout_stream(dataset: str = "Slope", *, seed: int = 0, **kw) -> SensorStream:
    """Drift + dropout bursts (see :func:`burst_stream`)."""
    return burst_stream(dataset, kind="dropout", seed=seed, **kw)


def _saturation_stream(dataset: str = "Slope", *, seed: int = 0, **kw) -> SensorStream:
    """Drift + saturation bursts (see :func:`burst_stream`)."""
    return burst_stream(dataset, kind="saturation", seed=seed, **kw)


def _stuck_stream(dataset: str = "Slope", *, seed: int = 0, **kw) -> SensorStream:
    """Drift + stuck-at bursts (see :func:`burst_stream`)."""
    return burst_stream(dataset, kind="stuck", seed=seed, **kw)


#: Scenario registry: name -> builder ``(dataset, *, seed, **kw)``.
STREAM_SCENARIOS: Dict[str, Callable[..., SensorStream]] = {
    "drift": drift_stream,
    "dropout": _dropout_stream,
    "saturation": _saturation_stream,
    "stuck": _stuck_stream,
    "resample": resampled_stream,
    "long-horizon": long_horizon_stream,
}


def make_stream(
    scenario: str, dataset: str = "Slope", seed: int = 0, **overrides
) -> SensorStream:
    """Build one named scenario (the CLI/benchmark entry point)."""
    try:
        builder = STREAM_SCENARIOS[scenario]
    except KeyError:
        raise KeyError(
            f"unknown stream scenario {scenario!r} "
            f"(known: {', '.join(STREAM_SCENARIOS)})"
        ) from None
    return builder(dataset, seed=seed, **overrides)
