"""Dataset registry: metadata, loading and split containers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .generators import GENERATORS, generate
from .preprocessing import (
    TARGET_LENGTH,
    normalize_series,
    resize_series,
    train_val_test_split,
)

__all__ = ["DatasetInfo", "DatasetSplits", "DATASET_INFO", "dataset_names", "load_dataset"]


@dataclass(frozen=True)
class DatasetInfo:
    """Static metadata for one benchmark dataset."""

    name: str
    n_classes: int
    description: str


#: Class counts match the corresponding UCR datasets so that model
#: topologies (and hence the hardware-cost table) are comparable.
DATASET_INFO: Dict[str, DatasetInfo] = {
    "CBF": DatasetInfo("CBF", 3, "Cylinder-Bell-Funnel synthetic shapes"),
    "DPTW": DatasetInfo("DPTW", 6, "DistalPhalanxTW bone-outline age groups"),
    "FRT": DatasetInfo("FRT", 2, "FreezerRegularTrain power traces"),
    "FST": DatasetInfo("FST", 2, "FreezerSmallTrain power traces (noisy)"),
    "GPAS": DatasetInfo("GPAS", 2, "GunPointAgeSpan hand motion"),
    "GPMVF": DatasetInfo("GPMVF", 2, "GunPointMaleVersusFemale hand motion"),
    "GPOVY": DatasetInfo("GPOVY", 2, "GunPointOldVersusYoung hand motion"),
    "MPOAG": DatasetInfo("MPOAG", 3, "MiddlePhalanxOutlineAgeGroup outlines"),
    "MSRT": DatasetInfo("MSRT", 5, "MixedShapesRegularTrain shape families"),
    "PowerCons": DatasetInfo("PowerCons", 2, "Household power, warm/cold season"),
    "PPOC": DatasetInfo("PPOC", 2, "ProximalPhalanxOutlineCorrect outlines"),
    "SRSCP2": DatasetInfo("SRSCP2", 2, "SelfRegulationSCP2 cortical potentials"),
    "Slope": DatasetInfo("Slope", 3, "Linear trend direction (down/flat/up)"),
    "SmoothS": DatasetInfo("SmoothS", 3, "SmoothSubspace smooth basis mixtures"),
    "Symbols": DatasetInfo("Symbols", 6, "Pseudo-glyph pen trajectories"),
}

assert set(DATASET_INFO) == set(GENERATORS), "registry out of sync with generators"


def dataset_names() -> List[str]:
    """The 15 benchmark dataset names in the paper's table order."""
    return list(DATASET_INFO)


@dataclass
class DatasetSplits:
    """Preprocessed train/val/test arrays for one dataset.

    Series have shape ``(n, TARGET_LENGTH)`` with values in [-1, 1];
    labels are integer arrays.
    """

    info: DatasetInfo
    x_train: np.ndarray
    y_train: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray

    @property
    def series_length(self) -> int:
        return self.x_train.shape[1]

    def sizes(self) -> Tuple[int, int, int]:
        """(train, val, test) sample counts."""
        return self.x_train.shape[0], self.x_val.shape[0], self.x_test.shape[0]


def load_dataset(
    name: str,
    n_samples: int = 150,
    seed: int = 0,
    length: int = TARGET_LENGTH,
) -> DatasetSplits:
    """Generate, preprocess and split one benchmark dataset.

    Applies the paper's pipeline: resize to ``length`` (default 64),
    normalise to [-1, 1], shuffle, split 60/20/20.  The same ``seed``
    always yields the same arrays.
    """
    info = DATASET_INFO.get(name)
    if info is None:
        raise KeyError(f"unknown dataset {name!r}; choose from {dataset_names()}")
    x_raw, y = generate(name, n_samples, seed=seed)
    x = normalize_series(resize_series(x_raw, length))
    xt, yt, xv, yv, xs, ys = train_val_test_split(x, y, seed=seed + 1)
    return DatasetSplits(info, xt, yt, xv, yv, xs, ys)
