"""Synthetic generators for the 15 UCR-like benchmark datasets.

The paper evaluates on 15 datasets from the UCR Time Series
Classification Archive [29].  The archive is not redistributable inside
this offline reproduction, so each dataset is replaced by a synthetic
generator that mimics its class structure (shape families, class count,
and the kind of within-class variability that makes it hard).  The
experiments measure *relative* robustness of circuit models under
component variation and input perturbation, which requires separable
temporal classes with realistic nuisance variation — not the archive's
exact samples.  Class counts match the real datasets so the hardware
cost table (which depends only on topology) stays comparable.

Every generator returns ``(x, y)`` with ``x`` of shape
``(n_samples, series_length)`` and integer labels ``y``; raw lengths
intentionally differ from 64 so the preprocessing resize path is always
exercised.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

__all__ = ["GENERATORS", "generate"]

Series = Tuple[np.ndarray, np.ndarray]
Generator = Callable[[int, np.random.Generator], Series]


def _time(length: int) -> np.ndarray:
    return np.linspace(0.0, 1.0, length)


def _smooth_noise(rng: np.random.Generator, length: int, sigma: float) -> np.ndarray:
    """Low-frequency correlated noise (sensor drift)."""
    raw = rng.normal(0.0, sigma, length)
    kernel = np.ones(7) / 7.0
    return np.convolve(raw, kernel, mode="same")


def cbf(n: int, rng: np.random.Generator, length: int = 128) -> Series:
    """Cylinder-Bell-Funnel: the classic 3-class synthetic benchmark.

    Each series is noise plus a plateau (cylinder), ramp-up (bell) or
    ramp-down (funnel) supported on a random interval — the standard
    construction of Saito (1994).
    """
    x = np.zeros((n, length))
    y = rng.integers(0, 3, size=n)
    for i in range(n):
        a = rng.integers(length // 8, length // 3)
        b = rng.integers(a + length // 4, min(length - 4, a + 2 * length // 3))
        amplitude = rng.normal(6.0, 1.0)
        base = rng.normal(0.0, 1.0, length)
        support = np.zeros(length)
        idx = np.arange(a, b)
        if y[i] == 0:  # cylinder
            support[idx] = amplitude
        elif y[i] == 1:  # bell
            support[idx] = amplitude * (idx - a) / max(b - a, 1)
        else:  # funnel
            support[idx] = amplitude * (b - idx) / max(b - a, 1)
        x[i] = base + support
    return x, y


def dptw(n: int, rng: np.random.Generator, length: int = 80) -> Series:
    """DistalPhalanxTW-like: 6 age-group classes of bone outline profiles.

    Classes differ in the width and skew of a smooth bump profile.
    """
    x = np.zeros((n, length))
    y = rng.integers(0, 6, size=n)
    t = _time(length)
    for i in range(n):
        width = 0.10 + 0.05 * y[i] + rng.normal(0, 0.012)
        skew = 0.3 + 0.08 * y[i] + rng.normal(0, 0.02)
        centre = 0.5 + rng.normal(0, 0.03)
        left = np.exp(-((t - centre) ** 2) / (2 * (width * skew) ** 2))
        right = np.exp(-((t - centre) ** 2) / (2 * width**2))
        profile = np.where(t < centre, left, right)
        x[i] = profile + _smooth_noise(rng, length, 0.05)
    return x, y


def _freezer(n: int, rng: np.random.Generator, length: int, noise: float) -> Series:
    """Freezer power traces: 2 classes differing in defrost-cycle shape."""
    x = np.zeros((n, length))
    y = rng.integers(0, 2, size=n)
    t = _time(length)
    for i in range(n):
        period = 0.24 + rng.normal(0, 0.015)
        phase = rng.uniform(0, period)
        duty = 0.35 if y[i] == 0 else 0.6
        square = ((t + phase) % period < period * duty).astype(float)
        spike_pos = rng.uniform(0.3, 0.7)
        spike = (1.2 if y[i] == 1 else 0.4) * np.exp(-((t - spike_pos) ** 2) / 2e-3)
        x[i] = square + spike + rng.normal(0, noise, length)
    return x, y


def frt(n: int, rng: np.random.Generator, length: int = 96) -> Series:
    """FreezerRegularTrain-like: 2 classes, modest noise."""
    return _freezer(n, rng, length, noise=0.08)


def fst(n: int, rng: np.random.Generator, length: int = 96) -> Series:
    """FreezerSmallTrain-like: same generative family, noisier draws."""
    return _freezer(n, rng, length, noise=0.2)


def _gunpoint(
    n: int, rng: np.random.Generator, length: int, separation: float
) -> Series:
    """GunPoint family: hand-motion profiles, 2 classes.

    Class 0 ("gun") has a plateau at the raise apex; class 1 ("point")
    returns immediately.  ``separation`` controls plateau contrast.
    """
    x = np.zeros((n, length))
    y = rng.integers(0, 2, size=n)
    t = _time(length)
    for i in range(n):
        raise_t = 0.25 + rng.normal(0, 0.02)
        lower_t = 0.75 + rng.normal(0, 0.02)
        apex = 1.0 + rng.normal(0, 0.05)
        profile = apex * 0.5 * (np.tanh((t - raise_t) * 25) - np.tanh((t - lower_t) * 25))
        if y[i] == 0:
            dip = separation * np.exp(-((t - 0.5) ** 2) / 4e-3)
            profile = profile - dip + separation * 0.5
        x[i] = profile + _smooth_noise(rng, length, 0.04)
    return x, y


def gpas(n: int, rng: np.random.Generator, length: int = 100) -> Series:
    """GunPointAgeSpan-like: weak class contrast (hard)."""
    return _gunpoint(n, rng, length, separation=0.12)


def gpmvf(n: int, rng: np.random.Generator, length: int = 100) -> Series:
    """GunPointMaleVersusFemale-like: medium class contrast."""
    return _gunpoint(n, rng, length, separation=0.3)


def gpovy(n: int, rng: np.random.Generator, length: int = 100) -> Series:
    """GunPointOldVersusYoung-like: strong class contrast (easy)."""
    return _gunpoint(n, rng, length, separation=0.55)


def mpoag(n: int, rng: np.random.Generator, length: int = 80) -> Series:
    """MiddlePhalanxOutlineAgeGroup-like: 3 bump-sharpness classes."""
    x = np.zeros((n, length))
    y = rng.integers(0, 3, size=n)
    t = _time(length)
    for i in range(n):
        sharp = 8.0 + 6.0 * y[i] + rng.normal(0, 1.0)
        centre = 0.45 + 0.05 * y[i] + rng.normal(0, 0.02)
        x[i] = 1.0 / (1.0 + np.abs((t - centre) * sharp) ** 2) + _smooth_noise(rng, length, 0.05)
    return x, y


def msrt(n: int, rng: np.random.Generator, length: int = 128) -> Series:
    """MixedShapesRegularTrain-like: 5 shape-family classes."""
    x = np.zeros((n, length))
    y = rng.integers(0, 5, size=n)
    t = _time(length)
    for i in range(n):
        phase = rng.uniform(0, 2 * np.pi)
        if y[i] == 0:  # arrow: sawtooth
            sig = 2.0 * ((t * 3 + phase) % 1.0) - 1.0
        elif y[i] == 1:  # ellipse: sine
            sig = np.sin(2 * np.pi * 2 * t + phase)
        elif y[i] == 2:  # star: rectified sine
            sig = np.abs(np.sin(2 * np.pi * 3 * t + phase)) * 2 - 1
        elif y[i] == 3:  # quadrilateral: square wave
            sig = np.sign(np.sin(2 * np.pi * 2 * t + phase))
        else:  # u-shape: parabola
            c = 0.5 + rng.normal(0, 0.05)
            sig = 4.0 * (t - c) ** 2 - 0.5
        x[i] = sig + rng.normal(0, 0.15, length)
    return x, y


def powercons(n: int, rng: np.random.Generator, length: int = 144) -> Series:
    """PowerCons-like: household power, warm vs cold season, 2 classes."""
    x = np.zeros((n, length))
    y = rng.integers(0, 2, size=n)
    t = _time(length)
    for i in range(n):
        base = 0.4 + 0.2 * np.sin(2 * np.pi * t + rng.uniform(0, 0.5))
        if y[i] == 1:  # cold season: heating peaks morning/evening
            base = base + 0.8 * np.exp(-((t - 0.3) ** 2) / 4e-3)
            base = base + 0.9 * np.exp(-((t - 0.8) ** 2) / 4e-3)
        else:  # warm season: flat midday plateau
            base = base + 0.4 * np.exp(-((t - 0.55) ** 2) / 2.5e-2)
        x[i] = base + rng.normal(0, 0.07, length)
    return x, y


def ppoc(n: int, rng: np.random.Generator, length: int = 80) -> Series:
    """ProximalPhalanxOutlineCorrect-like: correct vs distorted outline."""
    x = np.zeros((n, length))
    y = rng.integers(0, 2, size=n)
    t = _time(length)
    for i in range(n):
        outline = np.sin(np.pi * t) ** 1.5
        if y[i] == 1:  # distorted: secondary lobe
            outline = outline + 0.35 * np.sin(3 * np.pi * t + rng.normal(0, 0.2))
        x[i] = outline + _smooth_noise(rng, length, 0.06)
    return x, y


def srscp2(n: int, rng: np.random.Generator, length: int = 112) -> Series:
    """SelfRegulationSCP2-like: slow cortical potentials, 2 classes (hard).

    Classes differ only in the sign of a weak drift under strong
    correlated noise — the real dataset is near-chance for most models.
    """
    x = np.zeros((n, length))
    y = rng.integers(0, 2, size=n)
    t = _time(length)
    for i in range(n):
        drift = (0.5 if y[i] == 1 else -0.5) * t
        x[i] = drift + _smooth_noise(rng, length, 0.6) + rng.normal(0, 0.3, length)
    return x, y


def slope(n: int, rng: np.random.Generator, length: int = 72) -> Series:
    """Slope: 3 classes of linear trends (down / flat / up).

    A synthetic staple of the printed-temporal-circuits literature —
    the class is carried purely by temporal dynamics, not by amplitude.
    """
    x = np.zeros((n, length))
    y = rng.integers(0, 3, size=n)
    t = _time(length)
    for i in range(n):
        gradient = (-1.0, 0.0, 1.0)[y[i]] * rng.uniform(0.8, 1.2)
        offset = rng.uniform(-0.5, 0.5)
        x[i] = gradient * t + offset + rng.normal(0, 0.12, length)
    return x, y


def smooths(n: int, rng: np.random.Generator, length: int = 60) -> Series:
    """SmoothSubspace-like: 3 classes living in smooth low-dim subspaces."""
    x = np.zeros((n, length))
    y = rng.integers(0, 3, size=n)
    t = _time(length)
    bases = [
        np.stack([np.sin(np.pi * t), np.sin(2 * np.pi * t)]),
        np.stack([np.cos(np.pi * t), np.sin(3 * np.pi * t)]),
        np.stack([t - 0.5, np.cos(2 * np.pi * t)]),
    ]
    for i in range(n):
        coeff = rng.normal(1.0, 0.25, 2)
        x[i] = coeff @ bases[y[i]] + rng.normal(0, 0.1, length)
    return x, y


def symbols(n: int, rng: np.random.Generator, length: int = 128) -> Series:
    """Symbols-like: 6 pseudo-glyph pen trajectories."""
    x = np.zeros((n, length))
    y = rng.integers(0, 6, size=n)
    t = _time(length)
    for i in range(n):
        f = 1 + y[i] % 3
        warp = t + 0.04 * np.sin(2 * np.pi * t * rng.uniform(0.8, 1.2))
        if y[i] < 3:
            sig = np.sin(2 * np.pi * f * warp) + 0.3 * np.sin(4 * np.pi * f * warp)
        else:
            sig = np.sign(np.sin(2 * np.pi * f * warp)) * np.abs(np.sin(np.pi * warp))
        x[i] = sig * rng.uniform(0.85, 1.15) + rng.normal(0, 0.08, length)
    return x, y


#: Registry mapping the paper's dataset abbreviations to generators.
GENERATORS: Dict[str, Generator] = {
    "CBF": cbf,
    "DPTW": dptw,
    "FRT": frt,
    "FST": fst,
    "GPAS": gpas,
    "GPMVF": gpmvf,
    "GPOVY": gpovy,
    "MPOAG": mpoag,
    "MSRT": msrt,
    "PowerCons": powercons,
    "PPOC": ppoc,
    "SRSCP2": srscp2,
    "Slope": slope,
    "SmoothS": smooths,
    "Symbols": symbols,
}


def generate(name: str, n_samples: int, seed: int = 0) -> Series:
    """Generate ``n_samples`` raw series for the named dataset."""
    if name not in GENERATORS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(GENERATORS)}")
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    rng = np.random.default_rng(seed)
    return GENERATORS[name](n_samples, rng)
