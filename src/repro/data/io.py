"""Dataset import/export.

The synthetic benchmark suite is deterministic, but users replicating
the paper against the *real* UCR archive need a way in: this module
reads/writes the simple ``label, v0, v1, ...`` CSV layout (one series
per row — the UCR distribution format) and a compact ``.npz`` form for
preprocessed splits.
"""

from __future__ import annotations

import pathlib
from typing import Tuple, Union

import numpy as np

from .datasets import DatasetInfo, DatasetSplits

__all__ = ["save_series_csv", "load_series_csv", "save_splits", "load_splits"]

PathLike = Union[str, pathlib.Path]


def save_series_csv(path: PathLike, x: np.ndarray, y: np.ndarray) -> None:
    """Write labelled series as ``label, v0, v1, ...`` rows."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y)
    if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
        raise ValueError("need x of shape (n, length) and matching 1-D labels")
    data = np.column_stack([y.astype(np.float64), x])
    np.savetxt(path, data, delimiter=",", fmt="%.9g")


def load_series_csv(path: PathLike) -> Tuple[np.ndarray, np.ndarray]:
    """Read a ``label, v0, v1, ...`` CSV; returns ``(x, y)``."""
    data = np.loadtxt(path, delimiter=",", ndmin=2)
    if data.shape[1] < 2:
        raise ValueError("CSV must have a label column plus at least one sample")
    y = data[:, 0].astype(np.int64)
    if not np.allclose(data[:, 0], y):
        raise ValueError("label column must hold integers")
    return data[:, 1:].copy(), y


def save_splits(path: PathLike, splits: DatasetSplits) -> None:
    """Write a preprocessed dataset (all three splits) to ``.npz``."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez(
        path,
        name=np.array(splits.info.name),
        n_classes=np.array(splits.info.n_classes),
        description=np.array(splits.info.description),
        x_train=splits.x_train,
        y_train=splits.y_train,
        x_val=splits.x_val,
        y_val=splits.y_val,
        x_test=splits.x_test,
        y_test=splits.y_test,
    )


def load_splits(path: PathLike) -> DatasetSplits:
    """Read a dataset written by :func:`save_splits`."""
    with np.load(pathlib.Path(path)) as archive:
        info = DatasetInfo(
            name=str(archive["name"]),
            n_classes=int(archive["n_classes"]),
            description=str(archive["description"]),
        )
        return DatasetSplits(
            info=info,
            x_train=archive["x_train"].copy(),
            y_train=archive["y_train"].copy(),
            x_val=archive["x_val"].copy(),
            y_val=archive["y_val"].copy(),
            x_test=archive["x_test"].copy(),
            y_test=archive["y_test"].copy(),
        )
