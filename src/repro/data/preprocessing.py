"""Dataset preprocessing per Sec. IV-A2 of the paper.

"The datasets were preprocessed by uniformly resizing the series
lengths to 64, normalizing the signal values to the range of [-1, 1],
and reshuffling and splitting the datasets into training (60%),
validation (20%), and test (20%) sets."
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["resize_series", "normalize_series", "train_val_test_split", "TARGET_LENGTH"]

TARGET_LENGTH = 64


def resize_series(x: np.ndarray, length: int = TARGET_LENGTH) -> np.ndarray:
    """Uniformly resample every series to ``length`` via linear interpolation.

    ``x`` has shape ``(n, original_length)``.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected (n, length), got {x.shape}")
    if length <= 1:
        raise ValueError("target length must exceed 1")
    n, original = x.shape
    if original == length:
        return x.copy()
    src = np.linspace(0.0, 1.0, original)
    dst = np.linspace(0.0, 1.0, length)
    out = np.empty((n, length))
    for i in range(n):
        out[i] = np.interp(dst, src, x[i])
    return out


def normalize_series(x: np.ndarray) -> np.ndarray:
    """Scale each series into [-1, 1] (per-series min/max normalisation).

    Constant series map to all-zeros.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected (n, length), got {x.shape}")
    lo = x.min(axis=1, keepdims=True)
    hi = x.max(axis=1, keepdims=True)
    span = hi - lo
    out = np.zeros_like(x)
    nonconst = span[:, 0] > 1e-12
    out[nonconst] = 2.0 * (x[nonconst] - lo[nonconst]) / span[nonconst] - 1.0
    return out


def train_val_test_split(
    x: np.ndarray,
    y: np.ndarray,
    seed: int = 0,
    fractions: Tuple[float, float, float] = (0.6, 0.2, 0.2),
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Reshuffle and split into train/val/test with the paper's 60/20/20.

    Returns ``(x_train, y_train, x_val, y_val, x_test, y_test)``.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape[0] != y.shape[0]:
        raise ValueError("x and y must have matching first dimension")
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError("fractions must sum to 1")
    n = x.shape[0]
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_train = int(round(fractions[0] * n))
    n_val = int(round(fractions[1] * n))
    train_idx = order[:n_train]
    val_idx = order[n_train : n_train + n_val]
    test_idx = order[n_train + n_val :]
    return (
        x[train_idx],
        y[train_idx],
        x[val_idx],
        y[val_idx],
        x[test_idx],
        y[test_idx],
    )
