"""Small-signal AC analysis: transfer functions and cutoff extraction.

Replaces the Cadence Virtuoso runs the paper used to obtain "filter
magnitude, impulse response and the cutoff frequencies" (Sec. IV-A1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .mna import MNAAssembler
from .netlist import Circuit, canonical_node
from .transient import transient
from .waveforms import Step

__all__ = ["ACResult", "ac_sweep", "cutoff_frequency", "step_response"]


@dataclass
class ACResult:
    """Complex transfer function H(f) of an output node w.r.t. a unit source."""

    frequencies: np.ndarray
    transfer: np.ndarray

    @property
    def magnitude(self) -> np.ndarray:
        """|H(f)|."""
        return np.abs(self.transfer)

    @property
    def magnitude_db(self) -> np.ndarray:
        """20·log10 |H(f)|."""
        return 20.0 * np.log10(np.maximum(self.magnitude, 1e-300))

    @property
    def phase(self) -> np.ndarray:
        """Phase of H(f) in radians."""
        return np.angle(self.transfer)


def ac_sweep(
    circuit: Circuit,
    source_name: str,
    output_node: str,
    frequencies: np.ndarray,
) -> ACResult:
    """Sweep the transfer from one voltage source to an output node.

    The named source is replaced (conceptually) by a unit phasor; every
    other independent source is zeroed — standard small-signal analysis.
    Linearity of the netlist makes this exact here.
    """
    frequencies = np.asarray(frequencies, dtype=np.float64)
    if np.any(frequencies <= 0):
        raise ValueError("AC frequencies must be positive")
    output_node = canonical_node(output_node)
    assembler = MNAAssembler(circuit)
    found = any(v.name == source_name for v in circuit.voltage_sources)
    if not found:
        raise KeyError(f"no voltage source named {source_name}")
    out_idx = circuit.node_index(output_node)

    transfer = np.zeros(frequencies.size, dtype=complex)
    for i, f in enumerate(frequencies):
        omega = 2.0 * np.pi * f
        a, z = assembler.assemble(capacitor_mode="admittance", omega=omega)
        # Zero all sources, then set the swept one to unit amplitude.
        z = np.zeros_like(z)
        for k, branch in enumerate(assembler.branches):
            if branch.name == source_name:
                z[assembler.num_nodes + k] = 1.0
        x = assembler.solve(a, z)
        transfer[i] = x[out_idx]
    return ACResult(frequencies=frequencies, transfer=transfer)


def cutoff_frequency(result: ACResult, reference: Optional[float] = None) -> float:
    """-3 dB cutoff: first frequency where |H| falls below ref/sqrt(2).

    ``reference`` defaults to the low-frequency magnitude.  Returns the
    log-interpolated crossing; raises if the response never crosses.
    """
    mag = result.magnitude
    ref = reference if reference is not None else mag[0]
    threshold = ref / np.sqrt(2.0)
    below = np.nonzero(mag < threshold)[0]
    if below.size == 0:
        raise ValueError("response never falls below the -3 dB threshold in the sweep")
    j = below[0]
    if j == 0:
        return float(result.frequencies[0])
    f0, f1 = result.frequencies[j - 1], result.frequencies[j]
    m0, m1 = mag[j - 1], mag[j]
    # Interpolate in log-frequency for a smooth estimate.
    w = (m0 - threshold) / (m0 - m1)
    return float(np.exp(np.log(f0) + w * (np.log(f1) - np.log(f0))))


def step_response(
    circuit: Circuit,
    source_name: str,
    output_node: str,
    dt: float,
    steps: int,
) -> np.ndarray:
    """Unit-step response of ``output_node`` (the time-domain characterisation).

    Temporarily rebinds the named source's waveform to a unit step.
    """
    source = None
    for v in circuit.voltage_sources:
        if v.name == source_name:
            source = v
            break
    if source is None:
        raise KeyError(f"no voltage source named {source_name}")
    original = source.waveform
    source.waveform = Step(low=0.0, high=1.0, t0=0.0)
    try:
        result = transient(circuit, dt=dt, steps=steps, probes=[output_node])
    finally:
        source.waveform = original
    return result[output_node]
