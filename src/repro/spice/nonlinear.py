"""Nonlinear DC analysis with printed EGT transistors.

The printed tanh-like activation circuit (Fig. 3b of the paper) is
built from two resistors and two n-type electrolyte-gated transistors
(n-EGTs, Fig. 2c); its η parameters "are determined by the component
values q^A = [R₁, R₂, T₁, T₂]" (Sec. II-B).  To derive those η from
physical values — as the authors do with Cadence and the printed PDK
[27, 28] — this module adds a behavioural EGT model and a
Newton-Raphson DC solver on top of the linear MNA engine.

The EGT model is a square-law FET with a channel-length-modulation
term, the standard behavioural abstraction used for printed inorganic
EGTs in the pPDK literature:

* cutoff      (V_GS ≤ V_T):            I_D = 0
* triode      (V_DS < V_GS − V_T):     I_D = K (2 (V_GS − V_T) V_DS − V_DS²)
* saturation  (V_DS ≥ V_GS − V_T):     I_D = K (V_GS − V_T)² (1 + λ V_DS)

n-EGTs print with low threshold voltages (V_T ≈ 0.2-0.4 V) and operate
from a 1 V supply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .mna import GMIN, MNAAssembler
from .netlist import Circuit, canonical_node

__all__ = [
    "EGTParameters",
    "EGT",
    "BehavioralTransfer",
    "NonlinearCircuit",
    "newton_dc",
    "dc_transfer_sweep",
]


@dataclass(frozen=True)
class EGTParameters:
    """Behavioural parameters of one printed n-EGT.

    Attributes
    ----------
    k:
        Transconductance coefficient (A/V²).  Printed EGTs reach
        1e-5 - 1e-3 A/V² depending on channel geometry.
    v_t:
        Threshold voltage (V).
    lambda_:
        Channel-length modulation (1/V).
    """

    k: float = 1e-4
    v_t: float = 0.3
    lambda_: float = 0.05

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("transconductance coefficient must be positive")
        if self.lambda_ < 0:
            raise ValueError("channel-length modulation must be non-negative")

    def current(self, v_gs: float, v_ds: float) -> float:
        """Drain current for the given terminal voltages (V_DS ≥ 0).

        Both regimes carry the (1 + λ V_DS) factor so the current and
        its first derivatives are continuous across the
        triode/saturation boundary — without this, Newton iteration
        limit-cycles around the corner in high-gain stages.
        """
        v_ov = v_gs - self.v_t
        if v_ov <= 0 or v_ds <= 0:
            return 0.0
        clm = 1.0 + self.lambda_ * v_ds
        if v_ds < v_ov:  # triode
            return self.k * (2.0 * v_ov * v_ds - v_ds * v_ds) * clm
        return self.k * v_ov * v_ov * clm

    def derivatives(self, v_gs: float, v_ds: float) -> Tuple[float, float]:
        """(g_m, g_ds) = (∂I/∂V_GS, ∂I/∂V_DS) at the operating point."""
        v_ov = v_gs - self.v_t
        if v_ov <= 0 or v_ds <= 0:
            return 0.0, 0.0
        clm = 1.0 + self.lambda_ * v_ds
        if v_ds < v_ov:  # triode
            core = 2.0 * v_ov * v_ds - v_ds * v_ds
            g_m = self.k * 2.0 * v_ds * clm
            g_ds = self.k * ((2.0 * v_ov - 2.0 * v_ds) * clm + core * self.lambda_)
            return g_m, g_ds
        g_m = 2.0 * self.k * v_ov * clm
        g_ds = self.k * v_ov * v_ov * self.lambda_
        return g_m, g_ds


@dataclass
class EGT:
    """An n-EGT instance wired drain/gate/source."""

    name: str
    drain: str
    gate: str
    source: str
    params: EGTParameters


@dataclass
class BehavioralTransfer:
    """A behavioural voltage transfer element: V(out) = f(V(ctrl)).

    Used by the model compiler to represent a printed ptanh stage whose
    η have been *trained* (the physical EGT realisation is a separate
    synthesis step).  ``fn`` and its derivative ``dfn`` take a float and
    return a float; the element drives ``out`` from an ideal source
    referenced to ground.
    """

    name: str
    out: str
    ctrl: str
    fn: "callable"
    dfn: "callable"


class NonlinearCircuit(Circuit):
    """A netlist that may also contain EGT transistors and behavioural
    transfer elements."""

    def __init__(self, name: str = "nonlinear") -> None:
        super().__init__(name)
        self.egts: List[EGT] = []
        self.behavioral: List[BehavioralTransfer] = []

    def add_egt(
        self,
        name: str,
        drain,
        gate,
        source,
        params: Optional[EGTParameters] = None,
    ) -> EGT:
        """Add a printed n-EGT between drain/gate/source nodes."""
        egt = EGT(
            name,
            self._register_node(drain),
            self._register_node(gate),
            self._register_node(source),
            params if params is not None else EGTParameters(),
        )
        if egt.name in self._names:
            raise ValueError(f"duplicate component name: {name}")
        self._names[egt.name] = egt  # type: ignore[assignment]
        self.egts.append(egt)
        return egt

    def add_behavioral(
        self, name: str, out, ctrl, fn, dfn
    ) -> BehavioralTransfer:
        """Add a behavioural transfer element ``V(out) = fn(V(ctrl))``.

        The element needs a branch-current unknown like a voltage
        source, which the Newton loop provides by stamping it as a
        VCVS linearised at the current operating point.
        """
        element = BehavioralTransfer(
            name, self._register_node(out), self._register_node(ctrl), fn, dfn
        )
        if name in self._names:
            raise ValueError(f"duplicate component name: {name}")
        self._names[name] = element  # type: ignore[assignment]
        self.behavioral.append(element)
        # Reserve the branch row via a unit-gain VCVS placeholder whose
        # gain/RHS the Newton loop overwrites each iteration.
        self.add_vcvs(f"_{name}_branch", element.out, "0", element.ctrl, "0", 1.0)
        return element


def _node_voltage(x: np.ndarray, assembler: MNAAssembler, label: str) -> float:
    if label == "0":
        return 0.0
    return float(x[assembler.circuit.node_index(label)])


def newton_solve(
    circuit: NonlinearCircuit,
    assembler: MNAAssembler,
    assemble_kwargs: Dict,
    x0: Optional[np.ndarray] = None,
    max_iterations: int = 300,
    tolerance: float = 1e-9,
    damping: float = 0.6,
) -> np.ndarray:
    """Newton-Raphson solve of one (possibly transient) time point.

    ``assemble_kwargs`` selects the capacitor treatment (open for DC,
    companion for a transient step); nonlinear elements are linearised
    and re-stamped each iteration.  Raises ``RuntimeError`` on
    non-convergence.
    """
    x = np.zeros(assembler.size) if x0 is None else np.array(x0, dtype=float)
    if x.shape != (assembler.size,):
        raise ValueError("x0 has the wrong size for this circuit")

    for iteration in range(max_iterations):
        a, z = assembler.assemble(**assemble_kwargs)
        a = a.astype(float)
        z = z.astype(float)

        for egt in circuit.egts:
            v_g = _node_voltage(x, assembler, egt.gate)
            v_d = _node_voltage(x, assembler, egt.drain)
            v_s = _node_voltage(x, assembler, egt.source)
            v_gs, v_ds = v_g - v_s, v_d - v_s
            i_d = egt.params.current(v_gs, v_ds)
            g_m, g_ds = egt.params.derivatives(v_gs, v_ds)
            g_ds = max(g_ds, GMIN)
            # companion: I = I_D0 + g_m (v_gs - v_gs0) + g_ds (v_ds - v_ds0)
            i_eq = i_d - g_m * v_gs - g_ds * v_ds

            d = -1 if egt.drain == "0" else circuit.node_index(egt.drain)
            g = -1 if egt.gate == "0" else circuit.node_index(egt.gate)
            s = -1 if egt.source == "0" else circuit.node_index(egt.source)

            def stamp(row: int, col: int, val: float) -> None:
                if row >= 0 and col >= 0:
                    a[row, col] += val

            # current flows drain -> source inside the device
            for row, sign in ((d, +1.0), (s, -1.0)):
                if row < 0:
                    continue
                stamp(row, g, sign * g_m)
                stamp(row, s, -sign * (g_m + g_ds))
                stamp(row, d, sign * g_ds)
                z[row] -= sign * i_eq

        for element in circuit.behavioral:
            # Overwrite the placeholder VCVS row with the linearisation
            # V(out) - f'(v_c) V(ctrl) = f(v_c) - f'(v_c) v_c.
            row = assembler.branch_index(f"_{element.name}_branch")
            v_c = _node_voltage(x, assembler, element.ctrl)
            gain = float(element.dfn(v_c))
            if element.ctrl != "0":
                col = circuit.node_index(element.ctrl)
                a[row, col] += 1.0 - gain  # placeholder stamped -1.0
            z[row] = float(element.fn(v_c)) - gain * v_c

        x_new = np.linalg.solve(a, z)
        step = x_new - x
        # SPICE-style voltage limiting: bound the per-node update so the
        # iterate cannot jump across the triode/saturation corner and
        # enter a limit cycle.
        limit = 0.1 if iteration < 50 else 0.05
        step = np.clip(step, -limit, limit)
        x = x + damping * step
        if np.max(np.abs(step)) < tolerance:
            return x

    raise RuntimeError(
        f"Newton failed to converge within {max_iterations} iterations "
        f"(residual step {np.max(np.abs(step)):.3e})"
    )


def newton_dc(
    circuit: NonlinearCircuit,
    t: float = 0.0,
    max_iterations: int = 300,
    tolerance: float = 1e-9,
    damping: float = 0.6,
    x0: Optional[np.ndarray] = None,
) -> Dict[str, float]:
    """Newton-Raphson DC operating point of a circuit with EGTs.

    Linear elements are stamped once per iteration via the MNA
    assembler; each EGT contributes its linearised companion model
    (g_m, g_ds and an equivalent current source).  Damped updates keep
    the high-gain cascaded stages of the ptanh circuit from
    oscillating; pass ``x0`` (e.g. the previous sweep point) to
    warm-start.  Raises ``RuntimeError`` on non-convergence.
    """
    assembler = MNAAssembler(circuit)
    x = newton_solve(
        circuit,
        assembler,
        {"t": t, "capacitor_mode": "open"},
        x0=x0,
        max_iterations=max_iterations,
        tolerance=tolerance,
        damping=damping,
    )
    voltages = assembler.voltages_from_solution(x)
    return {k: float(np.real(v)) for k, v in voltages.items()}


def _solution_vector(circuit: NonlinearCircuit, op: Dict[str, float]) -> np.ndarray:
    """Rebuild an initial-guess vector from a node-voltage dict."""
    assembler = MNAAssembler(circuit)
    x = np.zeros(assembler.size)
    for label, value in op.items():
        if label != "0" and label in circuit.nodes:
            x[circuit.node_index(label)] = value
    return x


def dc_transfer_sweep(
    circuit: NonlinearCircuit,
    source_name: str,
    output_node: str,
    values: np.ndarray,
) -> np.ndarray:
    """Sweep an input source and record the DC output voltage.

    The circuit-level characterisation used to extract the ptanh
    transfer curve (and hence η) from component values.
    """
    source = None
    for v in circuit.voltage_sources:
        if v.name == source_name:
            source = v
            break
    if source is None:
        raise KeyError(f"no voltage source named {source_name}")
    output_node = canonical_node(output_node)

    original = source.waveform
    out = np.zeros(len(values))
    warm_start: Optional[np.ndarray] = None
    try:
        from .waveforms import DC

        for i, value in enumerate(np.asarray(values, dtype=np.float64)):
            source.waveform = DC(float(value))
            op = newton_dc(circuit, x0=warm_start)
            warm_start = _solution_vector(circuit, op)
            out[i] = op[output_node]
    finally:
        source.waveform = original
    return out
