"""Source waveforms for transient analysis.

Each waveform is a callable ``v(t)`` used by voltage/current sources.
The printed-circuit experiments drive filter netlists with sampled
sensor series (:class:`PiecewiseLinear`) and characterise them with
:class:`Step` and :class:`Sine` stimuli.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["Waveform", "DC", "Step", "Sine", "Pulse", "PiecewiseLinear"]


class Waveform:
    """Base class; subclasses implement :meth:`__call__`."""

    def __call__(self, t: float) -> float:
        raise NotImplementedError


class DC(Waveform):
    """Constant value for all time."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def __call__(self, t: float) -> float:
        return self.value


class Step(Waveform):
    """Steps from ``low`` to ``high`` at ``t0``."""

    def __init__(self, low: float = 0.0, high: float = 1.0, t0: float = 0.0) -> None:
        self.low = float(low)
        self.high = float(high)
        self.t0 = float(t0)

    def __call__(self, t: float) -> float:
        return self.high if t >= self.t0 else self.low


class Sine(Waveform):
    """``offset + amplitude * sin(2π f t + phase)``."""

    def __init__(
        self,
        amplitude: float = 1.0,
        frequency: float = 1.0,
        offset: float = 0.0,
        phase: float = 0.0,
    ) -> None:
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        self.amplitude = float(amplitude)
        self.frequency = float(frequency)
        self.offset = float(offset)
        self.phase = float(phase)

    def __call__(self, t: float) -> float:
        return self.offset + self.amplitude * np.sin(
            2.0 * np.pi * self.frequency * t + self.phase
        )


class Pulse(Waveform):
    """Periodic rectangular pulse of the given width and period."""

    def __init__(
        self,
        low: float = 0.0,
        high: float = 1.0,
        width: float = 0.5,
        period: float = 1.0,
        t0: float = 0.0,
    ) -> None:
        if width <= 0 or period <= 0 or width > period:
            raise ValueError("need 0 < width <= period")
        self.low = float(low)
        self.high = float(high)
        self.width = float(width)
        self.period = float(period)
        self.t0 = float(t0)

    def __call__(self, t: float) -> float:
        if t < self.t0:
            return self.low
        phase = (t - self.t0) % self.period
        return self.high if phase < self.width else self.low


class PiecewiseLinear(Waveform):
    """Linear interpolation through ``(times, values)`` samples.

    Values are held constant outside the sampled range — matching how a
    zero-order-hold DAC (or a sensor front-end) would drive the printed
    filter with a recorded time series.
    """

    def __init__(self, times: Sequence[float], values: Sequence[float]) -> None:
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.ndim != 1 or times.shape != values.shape:
            raise ValueError("times and values must be equal-length 1-D sequences")
        if times.size < 2:
            raise ValueError("need at least two samples")
        if np.any(np.diff(times) <= 0):
            raise ValueError("times must be strictly increasing")
        self.times = times
        self.values = values

    def __call__(self, t: float) -> float:
        return float(np.interp(t, self.times, self.values))
