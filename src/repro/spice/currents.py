"""Branch-current extraction and simulation-based power measurement.

The hardware power model (:mod:`repro.hw.power`) estimates static
dissipation from component values; this module *measures* it from a
solved operating point — ``P = Σ I²R`` over the resistors plus source
output power — giving an independent cross-check of the estimate and a
way to analyse currents in bespoke netlists.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .mna import MNAAssembler
from .netlist import GROUND, Circuit

__all__ = ["resistor_currents", "resistor_power", "source_currents", "measure_static_power"]


def _solve(circuit: Circuit, t: float) -> tuple:
    assembler = MNAAssembler(circuit)
    a, z = assembler.assemble(t=t, capacitor_mode="open")
    x = assembler.solve(a, z)
    voltages = assembler.voltages_from_solution(x)
    return assembler, x, {k: float(np.real(v)) for k, v in voltages.items()}


def resistor_currents(circuit: Circuit, t: float = 0.0) -> Dict[str, float]:
    """DC current through every resistor (positive from ``pos`` to ``neg``)."""
    _, _, voltages = _solve(circuit, t)
    currents = {}
    for r in circuit.resistors:
        vp = 0.0 if r.node_pos == GROUND else voltages[r.node_pos]
        vn = 0.0 if r.node_neg == GROUND else voltages[r.node_neg]
        currents[r.name] = (vp - vn) / r.resistance
    return currents


def resistor_power(circuit: Circuit, t: float = 0.0) -> Dict[str, float]:
    """DC power dissipated in every resistor (watts)."""
    currents = resistor_currents(circuit, t)
    return {
        r.name: currents[r.name] ** 2 * r.resistance for r in circuit.resistors
    }


def source_currents(circuit: Circuit, t: float = 0.0) -> Dict[str, float]:
    """Branch current delivered by each voltage source / VCVS.

    Positive current flows out of the positive terminal into the
    circuit (source delivering power).
    """
    assembler, x, _ = _solve(circuit, t)
    out = {}
    for k, branch in enumerate(assembler.branches):
        # MNA convention: the branch unknown is the current flowing
        # into the positive terminal; negate for delivered current.
        out[branch.name] = float(-np.real(x[assembler.num_nodes + k]))
    return out


def measure_static_power(circuit: Circuit, t: float = 0.0) -> float:
    """Total resistive dissipation of the DC operating point (watts).

    By Tellegen's theorem this equals the net power delivered by the
    sources in a resistive network — the test suite checks both sides.
    """
    return float(sum(resistor_power(circuit, t).values()))
