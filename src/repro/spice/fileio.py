"""SPICE netlist file I/O.

Writes :class:`~repro.spice.Circuit` /
:class:`~repro.spice.NonlinearCircuit` objects as ngspice-compatible
netlists — including behavioural ptanh stages as B-sources — so a
compiled ADAPT-pNC can be handed to an external SPICE engine or a
printed-PDK flow.  A parser for the linear subset (R, C, V, I, E lines)
reads netlists back for round-tripping and for importing externally
designed filters.

Supported syntax (a pragmatic subset of Berkeley SPICE):

* ``R<name> n+ n- value`` — resistor
* ``C<name> n+ n- value [IC=v0]`` — capacitor
* ``V<name> n+ n- [DC] value`` — DC voltage source
* ``I<name> n+ n- [DC] value`` — DC current source
* ``E<name> n+ n- nc+ nc- gain`` — VCVS
* ``B<name> n+ n- V=expr`` — behavioural source (write-only)
* ``*`` comments, ``.title``, ``.end`` lines

Engineering suffixes (``k``, ``meg``, ``m``, ``u``, ``n``, ``p``, ``f``,
``g``, ``t``) are handled in both directions.
"""

from __future__ import annotations

import re
from typing import List, Union

from .components import VCVS, Capacitor, CurrentSource, Resistor, VoltageSource
from .netlist import Circuit
from .waveforms import DC

__all__ = ["format_value", "parse_value", "circuit_to_spice", "spice_to_circuit"]

_SUFFIXES = [
    (1e12, "t"),
    (1e9, "g"),
    (1e6, "meg"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
]

_SUFFIX_VALUES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}


def format_value(value: float) -> str:
    """Render a component value with an engineering suffix (``4.7k``)."""
    if value == 0.0:
        return "0"
    magnitude = abs(value)
    for scale, suffix in _SUFFIXES:
        if magnitude >= scale:
            scaled = value / scale
            text = f"{scaled:.6g}"
            return f"{text}{suffix}"
    return f"{value:.6g}"


def parse_value(token: str) -> float:
    """Parse a SPICE value token (``4.7k``, ``100n``, ``1e-6``)."""
    token = token.strip().lower()
    match = re.fullmatch(r"([-+]?[0-9]*\.?[0-9]+(?:e[-+]?[0-9]+)?)(meg|[tgkmunpf])?.*", token)
    if not match:
        raise ValueError(f"cannot parse SPICE value {token!r}")
    base = float(match.group(1))
    suffix = match.group(2)
    if suffix:
        base *= _SUFFIX_VALUES[suffix]
    return base


def _node(label: str) -> str:
    return "0" if label == "0" else label


def circuit_to_spice(circuit: Circuit, title: str | None = None) -> str:
    """Serialise a circuit as an ngspice-compatible netlist string.

    Time-varying sources are emitted at their t = 0 value with a
    comment (external engines define their own stimuli); behavioural
    elements of a :class:`NonlinearCircuit` become B-sources and EGTs
    become commented placeholder lines referencing the pPDK model.
    """
    lines: List[str] = [f".title {title or circuit.name}"]

    def designator(kind: str, name: str) -> str:
        return name if name[:1].upper() == kind else f"{kind}{name}"

    for r in circuit.resistors:
        lines.append(
            f"{designator('R', r.name)} {_node(r.node_pos)} {_node(r.node_neg)} "
            f"{format_value(r.resistance)}"
        )
    for c in circuit.capacitors:
        ic = f" IC={format_value(c.initial_voltage)}" if c.initial_voltage else ""
        lines.append(
            f"{designator('C', c.name)} {_node(c.node_pos)} {_node(c.node_neg)} "
            f"{format_value(c.capacitance)}{ic}"
        )
    for v in circuit.voltage_sources:
        value = v.value(0.0)
        note = "" if isinstance(v.waveform, DC) else "  * time-varying; value at t=0"
        lines.append(
            f"{designator('V', v.name)} {_node(v.node_pos)} {_node(v.node_neg)} "
            f"DC {format_value(value)}{note}"
        )
    for i in circuit.current_sources:
        value = i.value(0.0)
        note = "" if isinstance(i.waveform, DC) else "  * time-varying; value at t=0"
        lines.append(
            f"{designator('I', i.name)} {_node(i.node_pos)} {_node(i.node_neg)} "
            f"DC {format_value(value)}{note}"
        )
    for e in circuit.vcvs:
        if e.name.startswith("_") and e.name.endswith("_branch"):
            continue  # internal placeholder row of a behavioural element
        lines.append(
            f"{designator('E', e.name)} {_node(e.node_pos)} {_node(e.node_neg)} "
            f"{_node(e.ctrl_pos)} {_node(e.ctrl_neg)} {format_value(e.gain)}"
        )

    behavioral = getattr(circuit, "behavioral", [])
    for b in behavioral:
        # Compiled ptanh stages carry their eta on the closure defaults.
        defaults = getattr(b.fn, "__defaults__", None)
        if defaults and len(defaults) == 4:
            e1, e2, e3, e4 = defaults
            expr = f"{e1:.6g}+{e2:.6g}*tanh((v({_node(b.ctrl)})-{e3:.6g})*{e4:.6g})"
        else:
            expr = f"f(v({_node(b.ctrl)}))  * opaque python transfer"
        lines.append(f"{designator('B', b.name)} {_node(b.out)} 0 V={expr}")

    for egt in getattr(circuit, "egts", []):
        lines.append(
            f"M{egt.name} {_node(egt.drain)} {_node(egt.gate)} {_node(egt.source)} "
            f"{_node(egt.source)} negt_model W=1 L=1"
            f"  * n-EGT: k={egt.params.k:.3g} vt={egt.params.v_t:.3g} lambda={egt.params.lambda_:.3g}"
        )

    lines.append(".end")
    return "\n".join(lines) + "\n"


def spice_to_circuit(text: str, name: str = "imported") -> Circuit:
    """Parse the linear subset of a SPICE netlist into a circuit.

    Handles R/C/V/I/E lines, comments, ``.title``/``.end``; raises on
    anything else (behavioural sources and transistors cannot be
    imported into the linear engine).
    """
    circuit = Circuit(name)
    for raw in text.splitlines():
        line = raw.split("*", 1)[0].strip()
        if not line:
            continue
        lower = line.lower()
        if lower.startswith(".title"):
            circuit.name = line.split(None, 1)[1] if " " in line else circuit.name
            continue
        if lower.startswith(".end"):
            break
        if lower.startswith("."):
            continue  # ignore other directives
        tokens = line.split()
        kind = tokens[0][0].upper()
        # Keep the full designator as the name: suffixes alone collide
        # across element kinds (R1 and C1 would both become "1").
        ident = tokens[0]
        if kind == "R":
            circuit.add_resistor(ident, tokens[1], tokens[2], parse_value(tokens[3]))
        elif kind == "C":
            ic = 0.0
            for tok in tokens[4:]:
                if tok.upper().startswith("IC="):
                    ic = parse_value(tok[3:])
            circuit.add_capacitor(ident, tokens[1], tokens[2], parse_value(tokens[3]), ic)
        elif kind == "V":
            value_tokens = [t for t in tokens[3:] if t.upper() != "DC"]
            circuit.add_voltage_source(ident, tokens[1], tokens[2], parse_value(value_tokens[0]))
        elif kind == "I":
            value_tokens = [t for t in tokens[3:] if t.upper() != "DC"]
            circuit.add_current_source(ident, tokens[1], tokens[2], parse_value(value_tokens[0]))
        elif kind == "E":
            circuit.add_vcvs(
                ident, tokens[1], tokens[2], tokens[3], tokens[4], parse_value(tokens[5])
            )
        else:
            raise ValueError(f"unsupported SPICE element: {line!r}")
    return circuit
