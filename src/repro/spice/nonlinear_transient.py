"""Transient analysis of nonlinear circuits.

Backward-Euler time stepping where every time point is solved with the
Newton loop of :mod:`repro.spice.nonlinear`: capacitors become
companion conductances; EGTs and behavioural transfer elements are
linearised per Newton iteration.  This is what lets a *compiled* ADAPT-
pNC — filters, crossbars, inverters and tanh stages in one netlist —
be simulated end-to-end at circuit level.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .mna import MNAAssembler
from .netlist import GROUND, canonical_node
from .nonlinear import NonlinearCircuit, newton_solve

__all__ = ["transient_nonlinear"]


def _capacitor_voltage(c, voltages: Dict[str, float]) -> float:
    vp = voltages.get(c.node_pos, 0.0) if c.node_pos != GROUND else 0.0
    vn = voltages.get(c.node_neg, 0.0) if c.node_neg != GROUND else 0.0
    return vp - vn


def transient_nonlinear(
    circuit: NonlinearCircuit,
    dt: float,
    steps: int,
    probes: Optional[Sequence[str]] = None,
):
    """Backward-Euler transient of a nonlinear netlist.

    Returns a :class:`~repro.spice.transient.TransientResult`.  Each
    step warm-starts Newton from the previous solution, so well-behaved
    printed-circuit netlists converge in a handful of iterations per
    sample.
    """
    from .transient import TransientResult

    if dt <= 0:
        raise ValueError("dt must be positive")
    if steps <= 0:
        raise ValueError("steps must be positive")

    assembler = MNAAssembler(circuit)
    probe_labels: List[str] = (
        [canonical_node(p) for p in probes] if probes is not None else list(circuit.nodes)
    )
    for label in probe_labels:
        if label != GROUND and label not in circuit.nodes:
            raise KeyError(f"unknown probe node {label}")

    cap_v: Dict[str, float] = {c.name: c.initial_voltage for c in circuit.capacitors}

    times = np.zeros(steps + 1)
    records: Dict[str, np.ndarray] = {label: np.zeros(steps + 1) for label in probe_labels}

    # t = 0 snapshot with capacitors pinned near their initial voltages.
    x = newton_solve(
        circuit,
        assembler,
        {
            "t": 0.0,
            "capacitor_mode": "companion",
            "dt": dt * 1e-6,
            "cap_prev_voltages": cap_v,
        },
    )
    voltages = assembler.voltages_from_solution(x)
    for label in probe_labels:
        records[label][0] = 0.0 if label == GROUND else float(voltages[label])
    for c in circuit.capacitors:
        cap_v[c.name] = _capacitor_voltage(c, voltages)

    t = 0.0
    for k in range(1, steps + 1):
        t += dt
        times[k] = t
        x = newton_solve(
            circuit,
            assembler,
            {
                "t": t,
                "capacitor_mode": "companion",
                "dt": dt,
                "cap_prev_voltages": cap_v,
            },
            x0=x,
        )
        voltages = assembler.voltages_from_solution(x)
        for label in probe_labels:
            records[label][k] = 0.0 if label == GROUND else float(voltages[label])
        for c in circuit.capacitors:
            cap_v[c.name] = _capacitor_voltage(c, voltages)

    return TransientResult(times=times, voltages=records)
