"""Modified Nodal Analysis (MNA) assembly and DC solve.

Unknown vector ``x = [node voltages | source branch currents]``.
Voltage sources and VCVS elements contribute branch-current unknowns;
resistors stamp conductances; capacitors are open in DC and become
backward-Euler companion models in transient analysis (see
``transient.py``).  A small ``gmin`` from every node to ground keeps
matrices non-singular for floating capacitive nodes, as in production
SPICE engines.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .netlist import GROUND, Circuit

__all__ = ["MNAAssembler", "dc_operating_point"]

GMIN = 1e-12


class MNAAssembler:
    """Precomputes index maps for a circuit and assembles MNA systems."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.num_nodes = len(circuit.nodes)
        self.branches = list(circuit.voltage_sources) + list(circuit.vcvs)
        self.num_branches = len(self.branches)
        self.size = self.num_nodes + self.num_branches

    # -- index helpers -----------------------------------------------------

    def _node(self, label: str) -> int:
        """MNA row of a node, or -1 for ground."""
        if label == GROUND:
            return -1
        return self.circuit.node_index(label)

    def branch_index(self, name: str) -> int:
        """Row of a voltage-source/VCVS branch current in the unknown vector."""
        for k, b in enumerate(self.branches):
            if b.name == name:
                return self.num_nodes + k
        raise KeyError(f"no branch element named {name}")

    # -- stamps -------------------------------------------------------------

    @staticmethod
    def _stamp_conductance(a: np.ndarray, i: int, j: int, g: complex) -> None:
        if i >= 0:
            a[i, i] += g
        if j >= 0:
            a[j, j] += g
        if i >= 0 and j >= 0:
            a[i, j] -= g
            a[j, i] -= g

    def assemble(
        self,
        t: float = 0.0,
        *,
        capacitor_mode: str = "open",
        dt: float = 0.0,
        cap_prev_voltages: Dict[str, float] | None = None,
        cap_prev_currents: Dict[str, float] | None = None,
        omega: float = 0.0,
        complex_valued: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Assemble the system matrix and RHS.

        Parameters
        ----------
        t:
            Evaluation time for source waveforms.
        capacitor_mode:
            ``"open"`` (DC), ``"companion"`` (backward-Euler transient,
            requires ``dt`` and ``cap_prev_voltages``),
            ``"companion_trapezoidal"`` (additionally requires
            ``cap_prev_currents``), or ``"admittance"`` (AC at angular
            frequency ``omega``; implies complex matrices).
        """
        dtype = complex if (complex_valued or capacitor_mode == "admittance") else float
        a = np.zeros((self.size, self.size), dtype=dtype)
        z = np.zeros(self.size, dtype=dtype)

        for node in range(self.num_nodes):
            a[node, node] += GMIN

        for r in self.circuit.resistors:
            self._stamp_conductance(a, self._node(r.node_pos), self._node(r.node_neg), r.conductance)

        for c in self.circuit.capacitors:
            i, j = self._node(c.node_pos), self._node(c.node_neg)
            if capacitor_mode == "open":
                continue
            if capacitor_mode in ("companion", "companion_trapezoidal"):
                if dt <= 0:
                    raise ValueError("companion mode requires dt > 0")
                if cap_prev_voltages is None or c.name not in cap_prev_voltages:
                    raise ValueError(f"missing previous voltage for capacitor {c.name}")
                if capacitor_mode == "companion":
                    g_eq = c.capacitance / dt
                    i_eq = g_eq * cap_prev_voltages[c.name]
                else:
                    if cap_prev_currents is None or c.name not in cap_prev_currents:
                        raise ValueError(
                            f"missing previous current for capacitor {c.name}"
                        )
                    g_eq = 2.0 * c.capacitance / dt
                    i_eq = g_eq * cap_prev_voltages[c.name] + cap_prev_currents[c.name]
                self._stamp_conductance(a, i, j, g_eq)
                if i >= 0:
                    z[i] += i_eq
                if j >= 0:
                    z[j] -= i_eq
            elif capacitor_mode == "admittance":
                self._stamp_conductance(a, i, j, 1j * omega * c.capacitance)
            else:
                raise ValueError(f"unknown capacitor_mode {capacitor_mode!r}")

        for src in self.circuit.current_sources:
            i, j = self._node(src.node_pos), self._node(src.node_neg)
            value = src.value(t)
            if i >= 0:
                z[i] -= value
            if j >= 0:
                z[j] += value

        for k, branch in enumerate(self.branches):
            row = self.num_nodes + k
            i, j = self._node(branch.node_pos), self._node(branch.node_neg)
            if i >= 0:
                a[i, row] += 1.0
                a[row, i] += 1.0
            if j >= 0:
                a[j, row] -= 1.0
                a[row, j] -= 1.0
            if hasattr(branch, "gain"):  # VCVS: V(pos,neg) - gain * V(cp,cn) = 0
                cp, cn = self._node(branch.ctrl_pos), self._node(branch.ctrl_neg)
                if cp >= 0:
                    a[row, cp] -= branch.gain
                if cn >= 0:
                    a[row, cn] += branch.gain
            else:  # independent voltage source
                z[row] = branch.value(t)

        return a, z

    def solve(self, a: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Solve the assembled system."""
        return np.linalg.solve(a, z)

    def voltages_from_solution(self, x: np.ndarray) -> Dict[str, float]:
        """Map a solution vector to ``{node_label: voltage}`` (ground included)."""
        out = {GROUND: 0.0}
        for label in self.circuit.nodes:
            out[label] = x[self.circuit.node_index(label)]
        return out


def dc_operating_point(circuit: Circuit, t: float = 0.0) -> Dict[str, float]:
    """Solve the DC operating point (capacitors open) at time ``t``.

    Returns a dict of node voltages (floats), keyed by node label, with
    ground at 0.
    """
    assembler = MNAAssembler(circuit)
    a, z = assembler.assemble(t=t, capacitor_mode="open")
    x = assembler.solve(a, z)
    return {k: float(np.real(v)) for k, v in assembler.voltages_from_solution(x).items()}
