"""Transient analysis via backward Euler.

Backward Euler is what the discrete-time filter model in the paper
(Eqs. 3-5 / 10-11) corresponds to: the companion-model update of an RC
stage at step size Δt reproduces
``V_k = (RC · V_{k-1} + Δt · V_in,k) / (RC + Δt)`` exactly, which is how
we cross-validate the differentiable filter layer against the circuit
simulator in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .mna import MNAAssembler
from .netlist import GROUND, Circuit, canonical_node

__all__ = ["TransientResult", "transient"]


@dataclass
class TransientResult:
    """Waveforms produced by :func:`transient`.

    Attributes
    ----------
    times:
        Sample instants, shape ``(steps + 1,)`` (includes t = 0).
    voltages:
        ``{node_label: array}`` of node voltages at each instant.
    """

    times: np.ndarray
    voltages: Dict[str, np.ndarray]

    def __getitem__(self, node: str) -> np.ndarray:
        return self.voltages[canonical_node(node)]


def _capacitor_voltage(c, voltages: Dict[str, float]) -> float:
    vp = voltages.get(c.node_pos, 0.0) if c.node_pos != GROUND else 0.0
    vn = voltages.get(c.node_neg, 0.0) if c.node_neg != GROUND else 0.0
    return vp - vn


def transient(
    circuit: Circuit,
    dt: float,
    steps: int,
    probes: Optional[Sequence[str]] = None,
    use_ic: bool = True,
    method: str = "backward_euler",
) -> TransientResult:
    """Fixed-step transient simulation.

    Parameters
    ----------
    circuit:
        Netlist to simulate.
    dt:
        Fixed time step (seconds).
    steps:
        Number of steps after t = 0.
    probes:
        Node labels to record (all non-ground nodes when omitted).
    use_ic:
        When True, capacitors start from their ``initial_voltage`` and
        t = 0 node voltages come from a DC solve with sources at t = 0
        and capacitors replaced by voltage constraints approximated via
        their companion model at the first step.  When False, a plain DC
        operating point initialises the state.
    method:
        ``"backward_euler"`` (default; matches the paper's discrete
        filter model exactly) or ``"trapezoidal"`` (second-order
        accurate; used to cross-check discretisation error).  The
        trapezoidal capacitor companion is
        ``i_k = (2C/dt)(v_k − v_{k−1}) − i_{k−1}``.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    if steps <= 0:
        raise ValueError("steps must be positive")
    if method not in ("backward_euler", "trapezoidal"):
        raise ValueError(f"unknown integration method {method!r}")

    assembler = MNAAssembler(circuit)
    probe_labels: List[str] = (
        [canonical_node(p) for p in probes] if probes is not None else list(circuit.nodes)
    )
    for label in probe_labels:
        if label != GROUND and label not in circuit.nodes:
            raise KeyError(f"unknown probe node {label}")

    # Initial condition: capacitor voltages from their declared ICs.
    cap_v: Dict[str, float] = {}
    for c in circuit.capacitors:
        cap_v[c.name] = c.initial_voltage if use_ic else 0.0

    times = np.zeros(steps + 1)
    records: Dict[str, np.ndarray] = {label: np.zeros(steps + 1) for label in probe_labels}

    # t = 0 snapshot: treat capacitors as voltage-holding elements via a
    # very small dt companion solve so their ICs shape the node voltages.
    dt0 = dt * 1e-6
    a0, z0 = assembler.assemble(
        t=0.0, capacitor_mode="companion", dt=dt0, cap_prev_voltages=cap_v
    )
    x0 = assembler.solve(a0, z0)
    v0 = assembler.voltages_from_solution(x0)
    for label in probe_labels:
        records[label][0] = 0.0 if label == GROUND else float(np.real(v0[label]))

    # Capacitor branch currents at t = 0 (the trapezoidal companion
    # carries current state): i = C dv/dt from the snapshot solve.
    cap_i: Dict[str, float] = {}
    for c in circuit.capacitors:
        v_snap = _capacitor_voltage(c, v0)
        cap_i[c.name] = (c.capacitance / dt0) * (v_snap - cap_v[c.name])
        cap_v[c.name] = v_snap

    t = 0.0
    for k in range(1, steps + 1):
        t += dt
        times[k] = t
        if method == "backward_euler":
            a, z = assembler.assemble(
                t=t, capacitor_mode="companion", dt=dt, cap_prev_voltages=cap_v
            )
        else:
            a, z = assembler.assemble(
                t=t,
                capacitor_mode="companion_trapezoidal",
                dt=dt,
                cap_prev_voltages=cap_v,
                cap_prev_currents=cap_i,
            )
        x = assembler.solve(a, z)
        voltages = assembler.voltages_from_solution(x)
        for label in probe_labels:
            records[label][k] = 0.0 if label == GROUND else float(np.real(voltages[label]))
        for c in circuit.capacitors:
            v_new = _capacitor_voltage(c, voltages)
            if method == "trapezoidal":
                cap_i[c.name] = (2.0 * c.capacitance / dt) * (v_new - cap_v[c.name]) - cap_i[
                    c.name
                ]
            cap_v[c.name] = v_new

    return TransientResult(times=times, voltages=records)
