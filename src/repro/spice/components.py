"""Circuit element definitions for the MNA simulator.

The printed-electronics netlists in this reproduction need linear
elements only: resistors and capacitors (the printed RC filters and
crossbars), independent sources (sensor drive), and a voltage-controlled
voltage source used as the behavioural model of the printed inverter
and of the high-impedance ptanh input stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from .waveforms import DC, Waveform

__all__ = [
    "Component",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "VCVS",
]

Node = Union[str, int]


def _coerce_waveform(value: Union[float, Waveform]) -> Waveform:
    return value if isinstance(value, Waveform) else DC(float(value))


@dataclass
class Component:
    """Common fields: a unique name and two terminal nodes."""

    name: str
    node_pos: Node
    node_neg: Node

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("component name must be non-empty")


@dataclass
class Resistor(Component):
    """Linear resistor; resistance in ohms (> 0)."""

    resistance: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.resistance <= 0:
            raise ValueError(f"resistor {self.name}: resistance must be positive")

    @property
    def conductance(self) -> float:
        """1/R in siemens."""
        return 1.0 / self.resistance


@dataclass
class Capacitor(Component):
    """Linear capacitor; capacitance in farads (> 0), optional initial voltage."""

    capacitance: float = 1e-9
    initial_voltage: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.capacitance <= 0:
            raise ValueError(f"capacitor {self.name}: capacitance must be positive")


@dataclass
class VoltageSource(Component):
    """Independent voltage source driven by a :class:`Waveform`."""

    waveform: Union[float, Waveform] = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        self.waveform = _coerce_waveform(self.waveform)

    def value(self, t: float) -> float:
        """Source voltage at time ``t``."""
        return float(self.waveform(t))


@dataclass
class CurrentSource(Component):
    """Independent current source (positive current flows pos -> neg externally)."""

    waveform: Union[float, Waveform] = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        self.waveform = _coerce_waveform(self.waveform)

    def value(self, t: float) -> float:
        """Source current at time ``t``."""
        return float(self.waveform(t))


@dataclass
class VCVS(Component):
    """Voltage-controlled voltage source: V(pos,neg) = gain * V(ctrl_pos,ctrl_neg).

    Used as the behavioural printed-inverter model (gain ≈ -1) in the
    crossbar netlists.
    """

    ctrl_pos: Node = "0"
    ctrl_neg: Node = "0"
    gain: float = 1.0
