"""Netlist container with builder methods.

A :class:`Circuit` collects components over named nodes; node ``"0"``
(or ``0`` or ``"gnd"``) is ground.  The MNA assembler consumes the
circuit's component lists and node index.
"""

from __future__ import annotations

from typing import Dict, List, Union

from .components import (
    Capacitor,
    Component,
    CurrentSource,
    Node,
    Resistor,
    VCVS,
    VoltageSource,
)
from .waveforms import Waveform

__all__ = ["Circuit", "GROUND"]

GROUND = "0"

_GROUND_ALIASES = {"0", 0, "gnd", "GND"}


def canonical_node(node: Node) -> str:
    """Normalise a node label; all ground aliases map to ``"0"``."""
    if node in _GROUND_ALIASES:
        return GROUND
    return str(node)


class Circuit:
    """A flat netlist of linear components.

    Example
    -------
    >>> c = Circuit("rc")
    >>> c.add_voltage_source("vin", "in", "0", 1.0)
    >>> c.add_resistor("r1", "in", "out", 1e3)
    >>> c.add_capacitor("c1", "out", "0", 1e-6)
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.resistors: List[Resistor] = []
        self.capacitors: List[Capacitor] = []
        self.voltage_sources: List[VoltageSource] = []
        self.current_sources: List[CurrentSource] = []
        self.vcvs: List[VCVS] = []
        self._names: Dict[str, Component] = {}
        self._nodes: Dict[str, int] = {}

    # -- node bookkeeping ------------------------------------------------

    def _register_node(self, node: Node) -> str:
        label = canonical_node(node)
        if label != GROUND and label not in self._nodes:
            self._nodes[label] = len(self._nodes)
        return label

    @property
    def nodes(self) -> List[str]:
        """Non-ground node labels in registration order."""
        return list(self._nodes)

    def node_index(self, node: Node) -> int:
        """Index of a non-ground node in the MNA unknown vector."""
        label = canonical_node(node)
        if label == GROUND:
            raise KeyError("ground has no index; its voltage is 0 by definition")
        return self._nodes[label]

    def _register(self, component: Component) -> None:
        if component.name in self._names:
            raise ValueError(f"duplicate component name: {component.name}")
        self._names[component.name] = component

    def __contains__(self, name: str) -> bool:
        return name in self._names

    def __getitem__(self, name: str) -> Component:
        return self._names[name]

    def num_components(self) -> int:
        """Total component count."""
        return len(self._names)

    # -- builders ----------------------------------------------------------

    def add_resistor(self, name: str, pos: Node, neg: Node, resistance: float) -> Resistor:
        """Add a resistor between ``pos`` and ``neg``."""
        r = Resistor(name, self._register_node(pos), self._register_node(neg), resistance)
        self._register(r)
        self.resistors.append(r)
        return r

    def add_capacitor(
        self,
        name: str,
        pos: Node,
        neg: Node,
        capacitance: float,
        initial_voltage: float = 0.0,
    ) -> Capacitor:
        """Add a capacitor between ``pos`` and ``neg``."""
        c = Capacitor(
            name,
            self._register_node(pos),
            self._register_node(neg),
            capacitance,
            initial_voltage,
        )
        self._register(c)
        self.capacitors.append(c)
        return c

    def add_voltage_source(
        self, name: str, pos: Node, neg: Node, waveform: Union[float, Waveform]
    ) -> VoltageSource:
        """Add an independent voltage source."""
        v = VoltageSource(name, self._register_node(pos), self._register_node(neg), waveform)
        self._register(v)
        self.voltage_sources.append(v)
        return v

    def add_current_source(
        self, name: str, pos: Node, neg: Node, waveform: Union[float, Waveform]
    ) -> CurrentSource:
        """Add an independent current source."""
        i = CurrentSource(name, self._register_node(pos), self._register_node(neg), waveform)
        self._register(i)
        self.current_sources.append(i)
        return i

    def add_vcvs(
        self,
        name: str,
        pos: Node,
        neg: Node,
        ctrl_pos: Node,
        ctrl_neg: Node,
        gain: float,
    ) -> VCVS:
        """Add a voltage-controlled voltage source."""
        e = VCVS(
            name,
            self._register_node(pos),
            self._register_node(neg),
            self._register_node(ctrl_pos),
            self._register_node(ctrl_neg),
            gain,
        )
        self._register(e)
        self.vcvs.append(e)
        return e

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, nodes={len(self._nodes)}, "
            f"R={len(self.resistors)}, C={len(self.capacitors)}, "
            f"V={len(self.voltage_sources)}, I={len(self.current_sources)}, "
            f"E={len(self.vcvs)})"
        )
