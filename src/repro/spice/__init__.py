"""Linear analog circuit simulator (the Cadence/SPICE substitute).

Provides netlist construction (:class:`Circuit`), DC operating point,
backward-Euler transient analysis and AC sweeps — everything the paper
used SPICE for: validating printed RC filter behaviour, extracting
cutoff frequencies, and bounding the coupling factor μ.
"""

from .ac import ACResult, ac_sweep, cutoff_frequency, step_response
from .components import VCVS, Capacitor, CurrentSource, Resistor, VoltageSource
from .currents import (
    measure_static_power,
    resistor_currents,
    resistor_power,
    source_currents,
)
from .fileio import circuit_to_spice, format_value, parse_value, spice_to_circuit
from .mna import MNAAssembler, dc_operating_point
from .netlist import GROUND, Circuit
from .nonlinear import (
    EGT,
    BehavioralTransfer,
    EGTParameters,
    NonlinearCircuit,
    dc_transfer_sweep,
    newton_dc,
    newton_solve,
)
from .nonlinear_transient import transient_nonlinear
from .transient import TransientResult, transient
from .waveforms import DC, PiecewiseLinear, Pulse, Sine, Step, Waveform

__all__ = [
    "Circuit",
    "GROUND",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "VCVS",
    "MNAAssembler",
    "dc_operating_point",
    "transient",
    "TransientResult",
    "ac_sweep",
    "ACResult",
    "cutoff_frequency",
    "step_response",
    "Waveform",
    "DC",
    "Step",
    "Sine",
    "Pulse",
    "PiecewiseLinear",
    "EGT",
    "EGTParameters",
    "BehavioralTransfer",
    "NonlinearCircuit",
    "newton_dc",
    "newton_solve",
    "dc_transfer_sweep",
    "transient_nonlinear",
    "circuit_to_spice",
    "spice_to_circuit",
    "format_value",
    "parse_value",
    "resistor_currents",
    "resistor_power",
    "source_currents",
    "measure_static_power",
]
