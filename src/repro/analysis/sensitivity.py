"""Component-group sensitivity: which variation hurts most?

The pNC has three variation-exposed circuit groups — the filter bank's
R/C values, the crossbar conductances, and the ptanh η — and design
effort should go where the accuracy is most sensitive.  This module
applies variation to *one group at a time* (the others stay nominal)
and measures the accuracy drop, per temporal block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..autograd import no_grad
from ..circuits import UniformVariation, VariationSampler, ideal_sampler
from ..core.models import PrintedTemporalClassifier

__all__ = ["SensitivityReport", "component_sensitivity"]

GROUPS = ("filters", "crossbar", "activation")


@dataclass
class SensitivityReport:
    """Accuracy under selective variation, per circuit group."""

    nominal_accuracy: float
    group_accuracy: Dict[str, float]
    delta: float

    def drops(self) -> Dict[str, float]:
        """Accuracy drop caused by each group's variation alone."""
        return {
            group: self.nominal_accuracy - acc
            for group, acc in self.group_accuracy.items()
        }

    def most_sensitive(self) -> str:
        """The group whose variation costs the most accuracy."""
        return max(self.drops(), key=self.drops().get)


def _accuracy(model, x, y) -> float:
    with no_grad():
        logits = model(x)
    return float((np.argmax(logits.data, axis=1) == np.asarray(y)).mean())


def component_sensitivity(
    model: PrintedTemporalClassifier,
    x: np.ndarray,
    y: np.ndarray,
    delta: float = 0.10,
    mc_samples: int = 10,
    seed: int = 0,
) -> SensitivityReport:
    """Measure per-group variation sensitivity of a trained printed model.

    For each of {filters, crossbar, activation}: install a ±``delta``
    sampler on that group only (in every block) and average accuracy
    over ``mc_samples`` draws.  The original samplers are restored.
    """
    if mc_samples < 1:
        raise ValueError("mc_samples must be >= 1")
    original = [
        (block.filters.sampler, block.crossbar.sampler, block.activation.sampler)
        for block in model.blocks
    ]
    try:
        model.set_sampler(ideal_sampler())
        nominal = _accuracy(model, x, y)

        group_accuracy: Dict[str, float] = {}
        for group in GROUPS:
            model.set_sampler(ideal_sampler())
            sampler = VariationSampler(
                model=UniformVariation(delta), rng=np.random.default_rng(seed)
            )
            for block in model.blocks:
                setattr_target = getattr(block, group)
                setattr_target.sampler = sampler
            accs = [_accuracy(model, x, y) for _ in range(mc_samples)]
            group_accuracy[group] = float(np.mean(accs))
        return SensitivityReport(
            nominal_accuracy=nominal, group_accuracy=group_accuracy, delta=delta
        )
    finally:
        for block, (f, c, a) in zip(model.blocks, original):
            block.filters.sampler = f
            block.crossbar.sampler = c
            block.activation.sampler = a
