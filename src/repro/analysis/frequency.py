"""Frequency-domain analysis of the *learned* filters.

The discrete-time recurrence ``v_k = a v_{k-1} + b x_k`` has transfer

    H(e^{jωΔt}) = b / (1 − a e^{−jωΔt})

so the frequency response of a trained filter bank follows in closed
form from its learned (R, C) values.  A second-order filter is the
product of its two stage responses.  This is the digital-domain
counterpart of the AC sweeps in :mod:`repro.spice` — the test suite
cross-validates the two against each other.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..circuits.filters import (
    FirstOrderLearnableFilter,
    SecondOrderLearnableFilter,
    _RCStage,
)

__all__ = ["stage_response", "filter_frequency_response", "filter_cutoff_frequencies"]

LearnableFilter = Union[FirstOrderLearnableFilter, SecondOrderLearnableFilter]


def _stage_coefficients(stage: _RCStage, dt: float, mu: float = 1.0):
    r = np.exp(stage.log_r.data)
    c = np.exp(stage.log_c.data)
    rc = r * c
    a = rc / (rc + mu * dt)
    b = dt / (rc + mu * dt)
    return a, b


def stage_response(
    stage: _RCStage, frequencies: np.ndarray, dt: float, mu: float = 1.0
) -> np.ndarray:
    """Complex response of one RC stage, shape ``(n_freq, n_filters)``."""
    frequencies = np.asarray(frequencies, dtype=np.float64)
    nyquist = 0.5 / dt
    if np.any(frequencies <= 0) or np.any(frequencies > nyquist):
        raise ValueError(f"frequencies must lie in (0, {nyquist}] Hz")
    a, b = _stage_coefficients(stage, dt, mu)
    z_inv = np.exp(-1j * 2.0 * np.pi * frequencies * dt)[:, None]
    return b[None, :] / (1.0 - a[None, :] * z_inv)


def filter_frequency_response(
    flt: LearnableFilter, frequencies: np.ndarray, mu: float = 1.0
) -> np.ndarray:
    """Complex response of a trained filter bank, ``(n_freq, n_filters)``.

    For SO-LF banks the response is the product of the two learned
    stages — the sharper roll-off the paper's Fig. 4 sketches.
    """
    if isinstance(flt, FirstOrderLearnableFilter):
        return stage_response(flt.stage, frequencies, flt.dt, mu)
    if isinstance(flt, SecondOrderLearnableFilter):
        return stage_response(flt.stage1, frequencies, flt.dt, mu) * stage_response(
            flt.stage2, frequencies, flt.dt, mu
        )
    raise TypeError(f"unsupported filter type {type(flt).__name__}")


def filter_cutoff_frequencies(flt: LearnableFilter, points: int = 400) -> np.ndarray:
    """-3 dB cutoff of every channel of a trained filter bank (Hz).

    Channels whose response never falls 3 dB below DC within the
    Nyquist band report the Nyquist frequency.
    """
    nyquist = 0.5 / flt.dt
    freqs = np.logspace(np.log10(nyquist * 1e-4), np.log10(nyquist), points)
    magnitude = np.abs(filter_frequency_response(flt, freqs))
    dc = magnitude[0]
    threshold = dc / np.sqrt(2.0)
    cutoffs = np.full(flt.num_filters, nyquist)
    for ch in range(flt.num_filters):
        below = np.nonzero(magnitude[:, ch] < threshold[ch])[0]
        if below.size:
            j = below[0]
            if j == 0:
                cutoffs[ch] = freqs[0]
            else:
                m0, m1 = magnitude[j - 1, ch], magnitude[j, ch]
                w = (m0 - threshold[ch]) / (m0 - m1)
                cutoffs[ch] = np.exp(
                    np.log(freqs[j - 1]) + w * (np.log(freqs[j]) - np.log(freqs[j - 1]))
                )
    return cutoffs
