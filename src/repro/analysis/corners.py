"""Process-corner analysis of printed temporal networks.

Monte-Carlo variation answers "what is the average fabricated instance
like"; corner analysis answers the designer's sign-off question: does
the circuit still work when the printing process lands *systematically*
slow or fast?  Following silicon practice we evaluate five corners:

* **TT** — typical: every component at its nominal value;
* **SS** — slow-slow: every component value scaled by 1 − δ;
* **FF** — fast-fast: every component value scaled by 1 + δ;
* **SF** — filters slow (1 − δ), crossbar/activation fast (1 + δ);
* **FS** — filters fast, crossbar/activation slow.

The mixed corners matter because ink batches differ per layer: the
capacitor dielectric and the resistor ink are printed in separate
passes, so their deviations need not be correlated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..autograd import no_grad
from ..circuits.variation import VariationModel, VariationSampler, ideal_sampler
from ..core.models import PrintedTemporalClassifier

__all__ = ["ConstantVariation", "CornerReport", "corner_analysis", "CORNERS"]


@dataclass(frozen=True)
class ConstantVariation(VariationModel):
    """Deterministic variation: every ε equals ``factor``."""

    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("factor must be positive")

    def sample(self, shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return np.full(shape, self.factor)

    def spread(self) -> float:
        return abs(self.factor - 1.0)


#: corner name -> (filter factor sign, crossbar/activation factor sign)
CORNERS: Dict[str, Tuple[int, int]] = {
    "TT": (0, 0),
    "SS": (-1, -1),
    "FF": (+1, +1),
    "SF": (-1, +1),
    "FS": (+1, -1),
}


@dataclass
class CornerReport:
    """Accuracy at each process corner."""

    accuracy: Dict[str, float]
    delta: float

    def worst_corner(self) -> str:
        """The corner with the lowest accuracy."""
        return min(self.accuracy, key=self.accuracy.get)

    def spread(self) -> float:
        """Best-minus-worst corner accuracy."""
        return max(self.accuracy.values()) - min(self.accuracy.values())


def _constant_sampler(factor: float) -> VariationSampler:
    return VariationSampler(
        model=ConstantVariation(factor), mu_low=1.0, mu_high=1.0, v0_max=0.0
    )


def _accuracy(model, x, y) -> float:
    with no_grad():
        logits = model(x)
    return float((np.argmax(logits.data, axis=1) == np.asarray(y)).mean())


def corner_analysis(
    model: PrintedTemporalClassifier,
    x: np.ndarray,
    y: np.ndarray,
    delta: float = 0.10,
) -> CornerReport:
    """Evaluate a trained printed model at the five process corners.

    Deterministic (no Monte-Carlo): each corner pins every component of
    a group at its extreme.  The model's samplers are restored
    afterwards.
    """
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    original = [
        (b.filters.sampler, b.crossbar.sampler, b.activation.sampler)
        for b in model.blocks
    ]
    try:
        accuracy: Dict[str, float] = {}
        for name, (filter_sign, rest_sign) in CORNERS.items():
            filter_sampler = (
                ideal_sampler()
                if filter_sign == 0
                else _constant_sampler(1.0 + filter_sign * delta)
            )
            rest_sampler = (
                ideal_sampler()
                if rest_sign == 0
                else _constant_sampler(1.0 + rest_sign * delta)
            )
            for block in model.blocks:
                block.filters.sampler = filter_sampler
                block.crossbar.sampler = rest_sampler
                block.activation.sampler = rest_sampler
            accuracy[name] = _accuracy(model, x, y)
        return CornerReport(accuracy=accuracy, delta=delta)
    finally:
        for block, (f, c, a) in zip(model.blocks, original):
            block.filters.sampler = f
            block.crossbar.sampler = c
            block.activation.sampler = a
