"""Fabrication-fault injection for printed neuromorphic circuits.

Beyond parametric variation, additive printing suffers *catastrophic*
defects: "droplet irregularities and missing droplets" (Sec. II-E,
[20, 23]) leave crossings open.  This module injects such faults into
a trained model and measures the accuracy degradation:

* **open crossbar crossing** — a missing weight droplet: the surrogate
  θ is zeroed (the crossing disappears from the conductance divider);
* **open filter path** — a broken filter resistor: the channel's RC
  drive vanishes, modelled by pushing the time constant to the
  printable maximum so the channel holds a stale value;
* **stuck activation** — a dead ptanh stage: η₂ is zeroed, pinning the
  neuron's output at its offset η₁.

All injections operate on a state-dict *copy*; the trained model is
never mutated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..autograd import no_grad
from ..core.models import PrintedTemporalClassifier

__all__ = ["FaultResult", "inject_faults", "fault_sweep"]

FAULT_KINDS = ("open_crossing", "open_filter", "stuck_activation")


@dataclass
class FaultResult:
    """Accuracy under one fault scenario."""

    kind: str
    n_faults: int
    mean_accuracy: float
    std_accuracy: float

    def __repr__(self) -> str:
        return (
            f"FaultResult({self.kind}, n={self.n_faults}, "
            f"acc={self.mean_accuracy:.3f} ± {self.std_accuracy:.3f})"
        )


def _accuracy(model, x, y) -> float:
    with no_grad():
        logits = model(x)
    return float((np.argmax(logits.data, axis=1) == np.asarray(y)).mean())


def _inject_open_crossings(model, n: int, rng: np.random.Generator) -> None:
    """Zero n random printable crossbar crossings."""
    sites = []
    for b, block in enumerate(model.blocks):
        theta = block.crossbar.theta.data
        for idx in np.ndindex(theta.shape):
            sites.append((b, idx))
    chosen = rng.choice(len(sites), size=min(n, len(sites)), replace=False)
    for k in np.atleast_1d(chosen):
        b, idx = sites[int(k)]
        model.blocks[b].crossbar.theta.data[idx] = 0.0


def _inject_open_filters(model, n: int, rng: np.random.Generator) -> None:
    """Break n random filter channels (stage 1 of each)."""
    sites = []
    for b, block in enumerate(model.blocks):
        for ch in range(block.filters.num_filters):
            sites.append((b, ch))
    chosen = rng.choice(len(sites), size=min(n, len(sites)), replace=False)
    for k in np.atleast_1d(chosen):
        b, ch = sites[int(k)]
        filters = model.blocks[b].filters
        stage = filters.stage1 if hasattr(filters, "stage1") else filters.stage
        # Broken series resistor: the channel can no longer charge —
        # time constant pushed far beyond the sequence duration.
        stage.log_r.data[ch] = np.log(filters.pdk.filter_r_max * 1e3)


def _inject_stuck_activations(model, n: int, rng: np.random.Generator) -> None:
    """Kill n random ptanh stages (zero swing)."""
    sites = []
    for b, block in enumerate(model.blocks):
        for neuron in range(block.activation.num_neurons):
            sites.append((b, neuron))
    chosen = rng.choice(len(sites), size=min(n, len(sites)), replace=False)
    for k in np.atleast_1d(chosen):
        b, neuron = sites[int(k)]
        model.blocks[b].activation.eta2.data[neuron] = 0.0


_INJECTORS = {
    "open_crossing": _inject_open_crossings,
    "open_filter": _inject_open_filters,
    "stuck_activation": _inject_stuck_activations,
}


def inject_faults(
    model: PrintedTemporalClassifier,
    x: np.ndarray,
    y: np.ndarray,
    kind: str,
    n_faults: int = 1,
    trials: int = 10,
    seed: int = 0,
) -> FaultResult:
    """Accuracy under ``n_faults`` random defects of one kind.

    Each trial restores the trained parameters, injects fresh fault
    sites and classifies the test set.
    """
    if kind not in _INJECTORS:
        raise ValueError(f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}")
    if n_faults < 1 or trials < 1:
        raise ValueError("n_faults and trials must be >= 1")
    pristine = model.state_dict()
    rng = np.random.default_rng(seed)
    accuracies = np.zeros(trials)
    try:
        for t in range(trials):
            model.load_state_dict(pristine)
            _INJECTORS[kind](model, n_faults, rng)
            accuracies[t] = _accuracy(model, x, y)
    finally:
        model.load_state_dict(pristine)
    return FaultResult(
        kind=kind,
        n_faults=n_faults,
        mean_accuracy=float(accuracies.mean()),
        std_accuracy=float(accuracies.std()),
    )


def fault_sweep(
    model: PrintedTemporalClassifier,
    x: np.ndarray,
    y: np.ndarray,
    max_faults: int = 4,
    trials: int = 8,
    seed: int = 0,
) -> Dict[str, List[FaultResult]]:
    """Accuracy vs defect count for every fault kind.

    Returns ``{kind: [FaultResult for n = 1..max_faults]}``.
    """
    if max_faults < 1:
        raise ValueError("max_faults must be >= 1")
    return {
        kind: [
            inject_faults(model, x, y, kind, n_faults=n, trials=trials, seed=seed + n)
            for n in range(1, max_faults + 1)
        ]
        for kind in FAULT_KINDS
    }
