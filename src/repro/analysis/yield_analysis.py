"""Manufacturing-yield analysis of printed neuromorphic circuits.

A fabricated pNC instance is one draw of every component's variation;
the instance "yields" if its classification accuracy clears an
application threshold.  Yield — the fraction of printed instances that
meet spec — is the economic quantity behind the paper's robustness
story: variation-aware training buys printable circuits, not just
average accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..autograd import no_grad
from ..circuits import UniformVariation, VariationSampler
from ..nn.module import Module

__all__ = ["YieldResult", "estimate_yield", "yield_curve"]


@dataclass
class YieldResult:
    """Yield statistics over Monte-Carlo fabricated instances."""

    yield_fraction: float
    threshold: float
    accuracies: np.ndarray

    @property
    def mean_accuracy(self) -> float:
        """Mean accuracy across instances."""
        return float(self.accuracies.mean())

    @property
    def worst_case(self) -> float:
        """Worst sampled instance — the pessimistic corner."""
        return float(self.accuracies.min())

    def __repr__(self) -> str:
        return (
            f"YieldResult(yield={self.yield_fraction:.1%} @ acc>={self.threshold:.2f}, "
            f"mean={self.mean_accuracy:.3f}, worst={self.worst_case:.3f})"
        )


def _instance_accuracies(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    delta: float,
    instances: int,
    seed: int,
) -> np.ndarray:
    if not hasattr(model, "set_sampler"):
        raise TypeError("yield analysis requires a printed model (set_sampler)")
    if instances < 1:
        raise ValueError("instances must be >= 1")
    original = model.sampler
    try:
        sampler = VariationSampler(
            model=UniformVariation(delta), rng=np.random.default_rng(seed)
        )
        model.set_sampler(sampler)
        y = np.asarray(y)
        accuracies = np.zeros(instances)
        for i in range(instances):
            with no_grad():
                logits = model(x)
            accuracies[i] = float((np.argmax(logits.data, axis=1) == y).mean())
        return accuracies
    finally:
        model.set_sampler(original)


def estimate_yield(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    threshold: float = 0.7,
    delta: float = 0.10,
    instances: int = 50,
    seed: int = 0,
) -> YieldResult:
    """Fraction of fabricated instances with accuracy ≥ ``threshold``.

    Each instance draws fresh ±``delta`` component variations (plus
    sampled μ and V₀) and classifies the full test set.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    accuracies = _instance_accuracies(model, x, y, delta, instances, seed)
    return YieldResult(
        yield_fraction=float((accuracies >= threshold).mean()),
        threshold=threshold,
        accuracies=accuracies,
    )


def yield_curve(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    thresholds: Sequence[float] = (0.5, 0.6, 0.7, 0.8, 0.9),
    delta: float = 0.10,
    instances: int = 50,
    seed: int = 0,
) -> dict:
    """Yield at several accuracy thresholds (one MC batch, reused).

    Returns ``{threshold: yield_fraction}``.
    """
    accuracies = _instance_accuracies(model, x, y, delta, instances, seed)
    return {float(t): float((accuracies >= t).mean()) for t in thresholds}
