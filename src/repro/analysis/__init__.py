"""Post-training analysis: frequency responses, yield, sensitivity, corners."""

from .corners import CORNERS, ConstantVariation, CornerReport, corner_analysis
from .faults import FAULT_KINDS, FaultResult, fault_sweep, inject_faults
from .frequency import (
    filter_cutoff_frequencies,
    filter_frequency_response,
    stage_response,
)
from .sensitivity import SensitivityReport, component_sensitivity
from .yield_analysis import YieldResult, estimate_yield, yield_curve

__all__ = [
    "filter_frequency_response",
    "filter_cutoff_frequencies",
    "stage_response",
    "estimate_yield",
    "yield_curve",
    "YieldResult",
    "component_sensitivity",
    "SensitivityReport",
    "corner_analysis",
    "CornerReport",
    "ConstantVariation",
    "CORNERS",
    "inject_faults",
    "fault_sweep",
    "FaultResult",
    "FAULT_KINDS",
]
