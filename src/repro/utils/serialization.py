"""Model and training-state checkpointing to ``.npz`` files.

State dicts are plain ``{name: ndarray}`` mappings, so numpy's archive
format is a natural, dependency-free checkpoint: one array per
parameter, keyed by its dotted module path.

:func:`save_checkpoint` / :func:`load_checkpoint` generalise this to
full *training* checkpoints: arbitrary named array groups (model
parameters, optimizer moments, best-so-far state) plus a JSON metadata
document (RNG bit-generator state, scheduler counters, history) stored
inside the same archive — one file, no pickle, bit-exact round trip.
The trainer's checkpoint/resume support
(:meth:`repro.core.Trainer.fit`) is built on these two functions.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Tuple, Union

import numpy as np

from ..nn.module import Module

__all__ = [
    "save_model",
    "load_model",
    "save_state_dict",
    "load_state_dict",
    "save_checkpoint",
    "load_checkpoint",
]

PathLike = Union[str, pathlib.Path]

#: Reserved archive key holding the JSON metadata document.
_META_KEY = "__checkpoint_meta__"


def save_state_dict(state: dict, path: PathLike) -> None:
    """Write a state dict to ``path`` (``.npz`` appended if missing)."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez(path, **state)


def load_state_dict(path: PathLike) -> dict:
    """Read a state dict written by :func:`save_state_dict`."""
    with np.load(pathlib.Path(path)) as archive:
        return {name: archive[name].copy() for name in archive.files}


def save_model(model: Module, path: PathLike) -> None:
    """Snapshot a model's parameters to ``path``."""
    save_state_dict(model.state_dict(), path)


def load_model(model: Module, path: PathLike) -> Module:
    """Load parameters into an already-constructed model (in place).

    The model must have the same architecture the checkpoint was saved
    from; mismatches raise ``KeyError``/``ValueError``.
    """
    model.load_state_dict(load_state_dict(path))
    return model


def save_checkpoint(arrays: Dict[str, np.ndarray], meta: Dict, path: PathLike) -> pathlib.Path:
    """Write a ``{name: ndarray}`` mapping plus JSON metadata to ``path``.

    Array names may be slash-namespaced (``"model/blocks.0.theta"``,
    ``"optim/m/3"``).  ``meta`` must be JSON-serialisable; non-finite
    floats survive (the stdlib ``json`` round-trips ``Infinity``/
    ``NaN``).  Writes atomically (temp file + rename) so a run killed
    mid-checkpoint never leaves a truncated archive behind; returns the
    final path (``.npz`` appended if missing).
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    if _META_KEY in arrays:
        raise ValueError(f"array name {_META_KEY!r} is reserved for checkpoint metadata")
    payload = dict(arrays)
    payload[_META_KEY] = np.array(json.dumps(meta, sort_keys=True))
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as fh:
        np.savez(fh, **payload)
    tmp.replace(path)
    return path


def load_checkpoint(path: PathLike) -> Tuple[Dict[str, np.ndarray], Dict]:
    """Read ``(arrays, meta)`` written by :func:`save_checkpoint`."""
    with np.load(pathlib.Path(path)) as archive:
        if _META_KEY not in archive.files:
            raise ValueError(f"{path} is not a checkpoint archive (missing metadata)")
        meta = json.loads(str(archive[_META_KEY]))
        arrays = {
            name: archive[name].copy() for name in archive.files if name != _META_KEY
        }
    return arrays, meta
