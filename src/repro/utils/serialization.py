"""Model checkpointing to ``.npz`` files.

State dicts are plain ``{name: ndarray}`` mappings, so numpy's archive
format is a natural, dependency-free checkpoint: one array per
parameter, keyed by its dotted module path.
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np

from ..nn.module import Module

__all__ = ["save_model", "load_model", "save_state_dict", "load_state_dict"]

PathLike = Union[str, pathlib.Path]


def save_state_dict(state: dict, path: PathLike) -> None:
    """Write a state dict to ``path`` (``.npz`` appended if missing)."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez(path, **state)


def load_state_dict(path: PathLike) -> dict:
    """Read a state dict written by :func:`save_state_dict`."""
    with np.load(pathlib.Path(path)) as archive:
        return {name: archive[name].copy() for name in archive.files}


def save_model(model: Module, path: PathLike) -> None:
    """Snapshot a model's parameters to ``path``."""
    save_state_dict(model.state_dict(), path)


def load_model(model: Module, path: PathLike) -> Module:
    """Load parameters into an already-constructed model (in place).

    The model must have the same architecture the checkpoint was saved
    from; mismatches raise ``KeyError``/``ValueError``.
    """
    model.load_state_dict(load_state_dict(path))
    return model
