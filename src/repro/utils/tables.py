"""ASCII table rendering for experiment reports."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["render_table", "format_mean_std"]


def format_mean_std(mean: float, std: float, digits: int = 3) -> str:
    """Render ``mean ± std`` the way the paper's tables do."""
    return f"{mean:.{digits}f} ± {std:.{digits}f}"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a padded ASCII table with a header rule.

    Column widths adapt to content; all cells are stringified.
    """
    if not headers:
        raise ValueError("headers must be non-empty")
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines = [fmt(headers), "-" * (sum(widths) + 2 * (len(widths) - 1))]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)
