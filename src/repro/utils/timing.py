"""Wall-clock timing helpers for the runtime comparison (Table II)
and the Monte-Carlo instrumentation (draws/sec, forward vs backward
wall-clock, per-backend filter-scan timings) used by the vectorized
variation engine and the fused filter-scan kernel.

Since the telemetry layer landed, :class:`MCCounters` is a thin facade
over :class:`repro.telemetry.Gauge` accumulators, and the process-wide
instance registers itself in the shared
:data:`repro.telemetry.gauges` registry under the ``"mc"`` name — so
training, ``mc-bench``/``scan-bench`` and every active
:class:`repro.telemetry.Run` read one sink instead of maintaining
parallel counter dicts.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

from ..telemetry.gauges import Gauge, gauges

__all__ = ["Stopwatch", "time_callable", "MCCounters", "mc_counters"]


class Stopwatch:
    """Context manager measuring elapsed wall time in seconds."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


class MCCounters:
    """Aggregate counters for Monte-Carlo forward/backward passes.

    The trainer (and the evaluation harness) record every MC objective
    evaluation here, so experiments can report draws/sec and the
    forward/backward wall-clock split without any profiler.  The filter
    banks additionally record per-``scan_backend`` wall-clock for the
    RC-recurrence forward (``fused`` kernel vs ``unfused`` node-per-step
    oracle).

    Internally each dimension is one :class:`repro.telemetry.Gauge`
    (seconds/calls/quantity per key); :meth:`snapshot` renders the
    historical JSON layout on top.  The single process-wide instance
    (:data:`mc_counters`) is registered in the telemetry gauge registry
    as ``"mc"`` — enough for single-threaded training — but independent
    unregistered instances can be created for scoped measurements (the
    MC-vectorization and filter-scan benchmarks do).
    """

    def __init__(self) -> None:
        self._forward = Gauge()  # keyed by MC backend; quantity = draws
        self._backward = Gauge()  # single "backward" key
        self._scan = Gauge()  # keyed by scan backend
        self._precision = Gauge()  # keyed by compute dtype; quantity = draws

    # -- recording ------------------------------------------------------

    def record_forward(self, seconds: float, draws: int, backend: str = "batched") -> None:
        """Record one MC objective evaluation covering ``draws`` draws."""
        self._forward.add(backend, seconds, quantity=int(draws))

    def record_precision(self, dtype: str, seconds: float, draws: int = 0) -> None:
        """Record objective wall-clock under compute dtype ``dtype``.

        Keyed by numpy dtype name (``"float64"`` / ``"float32"``), so
        mixed-policy runs show up under their float32 compute dtype —
        the per-dtype split the precision benches report.
        """
        self._precision.add(str(dtype), seconds, quantity=int(draws))

    def record_backward(self, seconds: float) -> None:
        """Record one backward pass through the MC objective."""
        self._backward.add("backward", seconds)

    def record_scan(self, seconds: float, backend: str) -> None:
        """Record one filter-bank recurrence forward under ``backend``."""
        self._scan.add(backend, seconds)

    # -- aggregate views ------------------------------------------------

    @property
    def forward_seconds(self) -> float:
        """Total MC objective forward wall-clock across backends."""
        return self._forward.total_seconds()

    @property
    def backward_seconds(self) -> float:
        """Total MC objective backward wall-clock."""
        return self._backward.total_seconds()

    @property
    def forward_calls(self) -> int:
        """Number of recorded objective forwards."""
        return self._forward.total_calls()

    @property
    def backward_calls(self) -> int:
        """Number of recorded backward passes."""
        return self._backward.total_calls()

    @property
    def draws(self) -> int:
        """Total Monte-Carlo draws covered by the recorded forwards."""
        return self._forward.total_quantity()

    def draws_per_second(self) -> float:
        """Monte-Carlo draw throughput of the recorded forwards."""
        seconds = self.forward_seconds
        if seconds <= 0.0:
            return 0.0
        return self.draws / seconds

    def reset(self) -> None:
        """Zero every counter (start of an experiment/benchmark)."""
        self._forward.reset()
        self._backward.reset()
        self._scan.reset()
        self._precision.reset()

    def snapshot(self) -> Dict[str, object]:
        """JSON-serialisable view (stored in ``results.json`` records).

        MC-backend, scan-backend and compute-dtype timings are
        namespaced under the ``"by_backend"`` / ``"scan"`` /
        ``"precision"`` sub-dicts so arbitrary backend names can never
        collide with the fixed top-level keys.
        """
        forward = self._forward.snapshot()
        return {
            "forward_seconds": self.forward_seconds,
            "backward_seconds": self.backward_seconds,
            "forward_calls": float(self.forward_calls),
            "backward_calls": float(self.backward_calls),
            "draws": float(self.draws),
            "draws_per_second": self.draws_per_second(),
            "by_backend": {key: entry["seconds"] for key, entry in forward.items()},
            "scan": self._scan.snapshot(),
            "precision": self._precision.snapshot(),
        }


#: Process-wide Monte-Carlo counters (reset between experiments);
#: registered as the ``"mc"`` gauge so runs snapshot it at close.
mc_counters = MCCounters()
gauges.register("mc", mc_counters.snapshot)


def time_callable(fn: Callable[[], object], repeats: int = 3) -> float:
    """Average wall time of ``fn()`` over ``repeats`` calls (seconds)."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    total = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        total += time.perf_counter() - start
    return total / repeats
