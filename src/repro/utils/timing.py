"""Wall-clock timing helpers for the runtime comparison (Table II)
and lightweight Monte-Carlo instrumentation (draws/sec, forward vs
backward wall-clock, per-backend filter-scan timings) used by the
vectorized variation engine and the fused filter-scan kernel."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict

__all__ = ["Stopwatch", "time_callable", "MCCounters", "mc_counters"]


class Stopwatch:
    """Context manager measuring elapsed wall time in seconds."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class MCCounters:
    """Aggregate counters for Monte-Carlo forward/backward passes.

    The trainer (and the evaluation harness) record every MC objective
    evaluation here, so experiments can report draws/sec and the
    forward/backward wall-clock split without any profiler.  The filter
    banks additionally record per-``scan_backend`` wall-clock for the
    RC-recurrence forward (``fused`` kernel vs ``unfused`` node-per-step
    oracle).  A single process-wide instance (:data:`mc_counters`) is
    enough — training is single-threaded — but independent instances can
    be created for scoped measurements (the MC-vectorization and
    filter-scan benchmarks do).
    """

    forward_seconds: float = 0.0
    backward_seconds: float = 0.0
    forward_calls: int = 0
    backward_calls: int = 0
    draws: int = 0
    _by_backend_seconds: Dict[str, float] = field(default_factory=dict)
    _scan_seconds: Dict[str, float] = field(default_factory=dict)
    _scan_calls: Dict[str, int] = field(default_factory=dict)

    def record_forward(self, seconds: float, draws: int, backend: str = "batched") -> None:
        """Record one MC objective evaluation covering ``draws`` draws."""
        self.forward_seconds += seconds
        self.forward_calls += 1
        self.draws += int(draws)
        self._by_backend_seconds[backend] = (
            self._by_backend_seconds.get(backend, 0.0) + seconds
        )

    def record_backward(self, seconds: float) -> None:
        """Record one backward pass through the MC objective."""
        self.backward_seconds += seconds
        self.backward_calls += 1

    def record_scan(self, seconds: float, backend: str) -> None:
        """Record one filter-bank recurrence forward under ``backend``."""
        self._scan_seconds[backend] = self._scan_seconds.get(backend, 0.0) + seconds
        self._scan_calls[backend] = self._scan_calls.get(backend, 0) + 1

    def draws_per_second(self) -> float:
        """Monte-Carlo draw throughput of the recorded forwards."""
        if self.forward_seconds <= 0.0:
            return 0.0
        return self.draws / self.forward_seconds

    def reset(self) -> None:
        """Zero every counter (start of an experiment/benchmark)."""
        self.forward_seconds = 0.0
        self.backward_seconds = 0.0
        self.forward_calls = 0
        self.backward_calls = 0
        self.draws = 0
        self._by_backend_seconds = {}
        self._scan_seconds = {}
        self._scan_calls = {}

    def snapshot(self) -> Dict[str, object]:
        """JSON-serialisable view (stored in ``results.json`` records).

        MC-backend and scan-backend timings are namespaced under the
        ``"by_backend"`` / ``"scan"`` sub-dicts so arbitrary backend
        names can never collide with the fixed top-level keys.
        """
        return {
            "forward_seconds": self.forward_seconds,
            "backward_seconds": self.backward_seconds,
            "forward_calls": float(self.forward_calls),
            "backward_calls": float(self.backward_calls),
            "draws": float(self.draws),
            "draws_per_second": self.draws_per_second(),
            "by_backend": dict(self._by_backend_seconds),
            "scan": {
                backend: {
                    "seconds": seconds,
                    "calls": float(self._scan_calls.get(backend, 0)),
                }
                for backend, seconds in self._scan_seconds.items()
            },
        }


#: Process-wide Monte-Carlo counters (reset between experiments).
mc_counters = MCCounters()


def time_callable(fn: Callable[[], object], repeats: int = 3) -> float:
    """Average wall time of ``fn()`` over ``repeats`` calls (seconds)."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    total = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        total += time.perf_counter() - start
    return total / repeats
