"""Wall-clock timing helpers for the runtime comparison (Table II)."""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Stopwatch", "time_callable"]


class Stopwatch:
    """Context manager measuring elapsed wall time in seconds."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_callable(fn: Callable[[], object], repeats: int = 3) -> float:
    """Average wall time of ``fn()`` over ``repeats`` calls (seconds)."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    total = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        total += time.perf_counter() - start
    return total / repeats
