"""Shared utilities: tables, timing, checkpointing."""

from .serialization import load_model, load_state_dict, save_model, save_state_dict
from .tables import format_mean_std, render_table
from .timing import MCCounters, Stopwatch, mc_counters, time_callable

__all__ = [
    "render_table",
    "format_mean_std",
    "Stopwatch",
    "time_callable",
    "MCCounters",
    "mc_counters",
    "save_model",
    "load_model",
    "save_state_dict",
    "load_state_dict",
]
