"""Event schema of the structured run telemetry (``events.jsonl``).

Every telemetry event is one JSON object per line in a run directory's
append-only ``events.jsonl``.  The schema is versioned: every event
carries ``"v": SCHEMA_VERSION`` and two clocks,

* ``t`` — seconds since the run started, measured on the *monotonic*
  clock (ordering/duration authority, immune to NTP steps);
* ``wall`` — unix wall time (cross-run correlation only).

plus a free-form ``kind`` discriminator.  The kinds emitted by the
library are listed in :data:`EVENT_KINDS`; consumers must ignore
unknown kinds (the schema is open — new kinds are a *minor* change,
renaming/removing required fields of an existing kind bumps
:data:`SCHEMA_VERSION`).

Well-known kinds
----------------
``fit_start`` / ``fit_end``
    Emitted by :meth:`repro.core.Trainer.fit` around the epoch loop;
    carry the training protocol (config dict, model class, backends)
    and the final summary (``epochs_run``, ``best_val_loss``).
``epoch``
    One per training epoch: ``epoch`` (0-based), ``train_loss``,
    ``val_loss``, ``lr``, ``epoch_s`` wall-clock, and — for
    variation-aware runs — the Monte-Carlo loss distribution across
    draws (``mc_loss_mean``, ``mc_loss_std``, ``mc_draws``).
``evaluation``
    One per ``evaluate_under_*`` call: ``model``, ``variation``,
    ``mc_samples``, ``backend``, ``accuracy_mean``, ``accuracy_std``,
    ``elapsed_s``.
``checkpoint``
    One per checkpoint written by the trainer: ``epoch``, ``path``.
``experiment``
    One per table/figure cell produced by the experiment harness:
    ``artefact`` (``table1``/``table2``/``fig7``/…) plus
    artefact-specific fields (``dataset``, ``model``, means).
``gauges``
    Snapshot of the process-wide gauge registry, emitted by the
    benchmark harnesses (``source``, ``gauges``).
``sweep.start`` / ``sweep.end``
    Emitted by :func:`repro.parallel.run_cells` around a sweep
    campaign: executor, cell counts (total/cached), worker budget and
    cache fingerprint; the end event adds ``n_ok`` / ``n_failed`` /
    ``n_cached`` and the campaign wall-clock.
``sweep.cell_start`` / ``sweep.cell_end``
    One pair per cell attempt/completion: ``cell`` (``"/"``-joined
    key), ``attempt``, ``worker_pid``; the end event carries
    ``status`` (``ok``/``failed``), ``attempts``, ``cached``,
    ``elapsed_s`` and the cell's ``values`` dict (``error`` when it
    failed).
``sweep.retry`` / ``sweep.timeout``
    Fault-handling markers: which cell failed/overran, the attempt
    number, the error string and the backoff before the relaunch
    (``timeout_s`` for timeouts).
``sweep.worker``
    A telemetry event a worker process emitted mid-cell (epoch losses,
    evaluations, …), forwarded by the orchestrator: ``cell``,
    ``worker_pid``, ``worker_kind`` and the original payload under
    ``fields``.
``sweep.pool.start`` / ``sweep.pool.end``
    Emitted by the persistent-pool executor around a campaign:
    ``n_workers``, worker ``pids``, per-worker ``shard_sizes`` and the
    ``restart_budget``; the end event adds totals (``restarts``,
    ``steals``) plus per-slot ``occupancy`` (busy seconds) and
    ``cells_per_slot`` — the dashboard's occupancy column.
``sweep.pool.steal``
    An idle worker stole a cell from another worker's shard:
    ``thief_slot``, ``victim_slot``, ``cell``.
``sweep.pool.worker_replace``
    A dead or wedged pool worker was killed and replaced: ``slot``,
    ``old_pid``, ``new_pid``, ``reason`` and the running ``restarts``
    count (bounded by ``SweepOptions.pool_restarts``).
``stream.start`` / ``stream.end``
    Emitted by :func:`repro.core.evaluate_streaming` around one online
    evaluation pass: ``scenario``, ``dataset``, ``model``, ``steps``,
    ``chunk_size`` and ``n_changepoints``; the end event adds the
    overall ``accuracy``, per-segment accuracies, the
    pre/post-changepoint and burst/clean accuracy splits (``null`` when
    the scenario has no changepoints/bursts) and ``elapsed_s``.
``stream.chunk``
    One per processed chunk of a streaming evaluation: ``scenario``,
    the half-open step span ``lo``/``hi``, the chunk ``accuracy`` and
    the chunk processing ``latency_ms``.
``stream.batch.open``
    A stream joined a serving fleet (claimed a row of the batched
    multi-stream state matrix): ``model``, ``session``, ``row``, the
    fleet ``occupancy`` after the join and its ``capacity``.
``stream.batch.step``
    One per executed fleet step batch — concurrent ``/predict_stream``
    chunks coalesced into one batched advance: ``model``, ``rows``
    (streams stepped per kernel call), ``steps`` (longest chunk in the
    batch), fleet ``occupancy``/``capacity``, ``wait_ms`` (coalesce
    window time of the oldest chunk) and ``exec_ms``.
``stream.batch.evict``
    A session's fleet row was detached by LRU pressure: ``model``,
    ``session``, ``row``, ``reason`` (``lru``).  The next chunk for
    that session 404s (``UnknownSessionError``).
``serve.start`` / ``serve.end``
    Emitted by :class:`repro.serve.MicroBatchService` on creation and
    close: the serving options (window, batch/queue bounds, worker
    count, precision); the end event carries the final stats snapshot
    (total requests, QPS, latency percentiles, batch histogram).
``serve.request``
    One per answered ``/predict`` request: ``model``, ``status``
    (``ok``/``error``), ``latency_ms`` (submit → result, including the
    batching window) and ``batch_size`` (companions it was coalesced
    with).
``serve.batch``
    One per executed micro-batch: ``model``, ``size``, ``queue_depth``
    at formation, ``wait_ms`` (window time) and ``exec_ms`` (plan
    forward, including worker round-trip).
``serve.queue_full`` / ``serve.timeout``
    Graceful-degradation markers: a request rejected because the
    bounded queue was full (HTTP 503), or one whose result did not
    arrive within the per-request timeout (HTTP 504); both carry
    ``model``.
``serve.plan_compile`` / ``serve.plan_evict``
    Plan-LRU activity: a model's frozen plan was compiled on miss
    (``model``, ``compile_ms``, ``nbytes``) or evicted to make room
    (``model``).
``serve.worker_restart``
    A crashed or hung plan worker was replaced: ``pid`` of the dead
    worker and ``reason`` (``crash``/``hang``).
``serve.stats``
    Periodic/final stats snapshot from the serving tier (same payload
    as the ``/stats`` endpoint).
``span``
    Optional per-span records when the run was opened with
    ``emit_span_events=True``: ``name``, ``dur_s``; aggregated span
    totals are always available in the manifest regardless.
``run_end``
    Final event: ``status``, aggregated ``span_totals`` and the
    process-wide gauge snapshot (``gauges``).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterator, List, Union

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_KINDS",
    "EVENTS_FILENAME",
    "MANIFEST_FILENAME",
    "encode_event",
    "read_events",
    "iter_events",
    "validate_event",
]

PathLike = Union[str, pathlib.Path]

#: Version of the event schema; bumped on breaking field changes.
SCHEMA_VERSION = 1

#: Event kinds emitted by the library (the schema is open: consumers
#: must tolerate kinds outside this list).
EVENT_KINDS = (
    "fit_start",
    "epoch",
    "checkpoint",
    "fit_end",
    "evaluation",
    "experiment",
    "sweep.start",
    "sweep.cell_start",
    "sweep.cell_end",
    "sweep.retry",
    "sweep.timeout",
    "sweep.worker",
    "sweep.pool.start",
    "sweep.pool.steal",
    "sweep.pool.worker_replace",
    "sweep.pool.end",
    "sweep.end",
    "stream.start",
    "stream.chunk",
    "stream.end",
    "stream.batch.open",
    "stream.batch.step",
    "stream.batch.evict",
    "serve.start",
    "serve.request",
    "serve.batch",
    "serve.queue_full",
    "serve.timeout",
    "serve.plan_compile",
    "serve.plan_evict",
    "serve.worker_restart",
    "serve.stats",
    "serve.end",
    "span",
    "gauges",
    "run_end",
)

#: Canonical file names inside a run directory.
EVENTS_FILENAME = "events.jsonl"
MANIFEST_FILENAME = "run.json"

#: Fields every event must carry.
REQUIRED_FIELDS = ("v", "kind", "t", "wall")


def encode_event(kind: str, t: float, wall: float, fields: Dict) -> str:
    """Serialise one event as a single compact JSON line (no newline).

    The envelope fields (``v``/``kind``/``t``/``wall``) win over any
    identically named payload field, so the schema invariants cannot be
    clobbered by callers.
    """
    record = dict(fields)
    record.update({"v": SCHEMA_VERSION, "kind": str(kind), "t": t, "wall": wall})
    return json.dumps(record, sort_keys=True, default=_coerce)


def _coerce(obj: object) -> object:
    """JSON fallback for numpy scalars/arrays appearing in payloads."""
    item = getattr(obj, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        return tolist()
    raise TypeError(f"unserialisable telemetry field of type {type(obj).__name__}")


def validate_event(event: Dict) -> None:
    """Raise ``ValueError`` unless ``event`` satisfies the envelope schema."""
    for field in REQUIRED_FIELDS:
        if field not in event:
            raise ValueError(f"telemetry event missing required field {field!r}: {event}")
    if event["v"] > SCHEMA_VERSION:
        raise ValueError(
            f"event schema version {event['v']} is newer than supported "
            f"{SCHEMA_VERSION} — upgrade repro to read this run"
        )
    if not isinstance(event["kind"], str):
        raise ValueError(f"event kind must be a string, got {event['kind']!r}")


def iter_events(path: PathLike, kind: str | None = None) -> Iterator[Dict]:
    """Stream validated events from an ``events.jsonl`` file.

    ``kind`` filters to one event kind.  A trailing partial line (a run
    killed mid-write) is tolerated and skipped; corruption anywhere
    else raises ``ValueError``.
    """
    path = pathlib.Path(path)
    with path.open("r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                return  # interrupted final write — expected for killed runs
            raise ValueError(f"{path}:{i + 1}: corrupt telemetry event: {line[:80]!r}")
        validate_event(event)
        if kind is None or event["kind"] == kind:
            yield event


def read_events(path: PathLike, kind: str | None = None) -> List[Dict]:
    """Load (optionally kind-filtered) events of an ``events.jsonl`` file."""
    return list(iter_events(path, kind=kind))
