"""The :class:`Run` context — one training/evaluation run, one directory.

A run directory is the unit of observability::

    runs/20260806-141523-000-powercons/
    ├── run.json        # manifest: schema, git SHA, seed, config, status
    ├── events.jsonl    # append-only monotonic-clock event stream
    └── checkpoints/    # trainer checkpoints (optional)

Opening a :class:`Run` (it is a context manager) makes it the *active*
run of the process; instrumented code everywhere in the library emits
into it through the module-level hooks :func:`emit`, :func:`span` and
:func:`record_span`, which are strict no-ops while no run is active —
the telemetry-off fast path is a single ``None`` check, so hot loops
pay nothing when nobody is observing.

Durations come from the monotonic clock (``time.perf_counter``); wall
time is recorded alongside for cross-run correlation only.  Span
totals aggregate in memory and land in the manifest at close (set
``emit_span_events=True`` to additionally stream one ``span`` event
per completed span).  On close the run also snapshots the process-wide
:data:`~repro.telemetry.gauges.gauges` registry, so Monte-Carlo /
filter-scan counters are preserved with the run that produced them.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import time
from contextlib import nullcontext
from typing import Dict, Iterator, Optional, Union

from .events import EVENTS_FILENAME, MANIFEST_FILENAME, SCHEMA_VERSION, encode_event
from .gauges import Gauge, gauges

__all__ = ["Run", "active_run", "emit", "span", "record_span", "git_sha"]

PathLike = Union[str, pathlib.Path]

#: The innermost active run (runs may nest; inner shadows outer).
_ACTIVE: list = []

#: Shared no-op context manager returned by :func:`span` when inactive.
_NULL_SPAN = nullcontext()

#: Monotonic per-process counter making same-second run ids unique.
_SEQ = 0


def git_sha(cwd: Optional[PathLike] = None) -> str:
    """Current git commit SHA, or ``"unknown"`` outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def active_run() -> Optional["Run"]:
    """The innermost active :class:`Run`, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


def emit(kind: str, **fields) -> None:
    """Emit one event into the active run; no-op when none is active."""
    run = active_run()
    if run is not None:
        run.emit(kind, **fields)


def span(name: str):
    """Context manager timing a block into the active run's span totals.

    Returns a shared null context (zero timing work) when no run is
    active, so instrumented hot paths cost one call and a ``None``
    check in the telemetry-off case.
    """
    run = active_run()
    if run is None:
        return _NULL_SPAN
    return run.span(name)


def record_span(name: str, seconds: float) -> None:
    """Add a pre-measured duration to the active run's span totals.

    For code that already owns a stopwatch (e.g. the filter-scan
    kernel): no-op without an active run.
    """
    run = active_run()
    if run is not None:
        run.record_span(name, seconds)


class _Span:
    """Timing context produced by :meth:`Run.span`."""

    __slots__ = ("_run", "_name", "_start")

    def __init__(self, run: "Run", name: str) -> None:
        self._run = run
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._run.record_span(self._name, time.perf_counter() - self._start)


class Run:
    """Owns one run directory: manifest, event stream and span totals.

    Parameters
    ----------
    root:
        Directory under which the run directory is created (default
        ``"runs"``); ignored when ``dir`` names an exact directory.
    name:
        Human-readable suffix of the generated run id.
    dir:
        Exact run directory (created; must not already contain a run).
    seed / dataset / config:
        Manifest fields; ``config`` may be a dataclass (e.g.
        :class:`~repro.core.TrainingConfig`) or a plain dict.
    emit_span_events:
        Stream one ``span`` event per completed span in addition to the
        aggregated totals (off by default: totals are always kept).
    meta:
        Extra JSON-serialisable manifest fields.
    """

    def __init__(
        self,
        root: PathLike = "runs",
        name: Optional[str] = None,
        dir: Optional[PathLike] = None,
        seed: Optional[int] = None,
        dataset: Optional[str] = None,
        config: object = None,
        emit_span_events: bool = False,
        meta: Optional[Dict] = None,
    ) -> None:
        global _SEQ
        if dir is not None:
            self.dir = pathlib.Path(dir)
            run_id = self.dir.name
        else:
            stamp = time.strftime("%Y%m%d-%H%M%S")
            run_id = f"{stamp}-{_SEQ:03d}" + (f"-{name}" if name else "")
            _SEQ += 1
            self.dir = pathlib.Path(root) / run_id
        self.dir.mkdir(parents=True, exist_ok=True)
        self.events_path = self.dir / EVENTS_FILENAME
        self.manifest_path = self.dir / MANIFEST_FILENAME
        if self.manifest_path.exists():
            raise FileExistsError(f"{self.manifest_path} already holds a run manifest")

        self.run_id = run_id
        self.emit_span_events = emit_span_events
        self._spans = Gauge()
        self._events = 0
        self._t0 = time.perf_counter()
        self._fh = None
        self._closed = False

        self.manifest: Dict = {
            "schema_version": SCHEMA_VERSION,
            "run_id": run_id,
            "name": name,
            "created_unix": time.time(),
            "created_iso": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "pid": os.getpid(),
            "git_sha": git_sha(),
            "seed": seed,
            "dataset": dataset,
            "status": "running",
        }
        if config is not None:
            self.manifest["training_config"] = _config_dict(config)
        if meta:
            self.manifest.update(meta)
        self._write_manifest()
        self._fh = self.events_path.open("a", encoding="utf-8")

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "Run":
        _ACTIVE.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            _ACTIVE.remove(self)
        except ValueError:
            pass
        self.close(status="failed" if exc_type is not None else "completed")

    def close(self, status: str = "completed") -> None:
        """Flush gauges/span totals, finalise the manifest, close files."""
        if self._closed:
            return
        self._closed = True
        gauge_snapshot = gauges.snapshot()
        span_totals = self._spans.snapshot()
        self.emit_unchecked(
            "run_end", status=status, span_totals=span_totals, gauges=gauge_snapshot
        )
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self.manifest.update(
            {
                "status": status,
                "events": self._events,
                "span_totals": span_totals,
                "gauges": gauge_snapshot,
                "closed_unix": time.time(),
            }
        )
        self._write_manifest()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    # -- manifest --------------------------------------------------------

    def update_manifest(self, **fields) -> None:
        """Merge fields into ``run.json`` and rewrite it atomically.

        Used by :meth:`repro.core.Trainer.fit` to key the manifest with
        the training protocol (config, model, backend switches) without
        the caller having to thread them through :class:`Run`.
        """
        for key, value in fields.items():
            self.manifest[key] = _config_dict(value) if key == "training_config" else value
        self._write_manifest()

    def _write_manifest(self) -> None:
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(self.manifest, indent=2, sort_keys=True, default=str) + "\n",
            encoding="utf-8",
        )
        tmp.replace(self.manifest_path)

    # -- events ----------------------------------------------------------

    def emit(self, kind: str, **fields) -> None:
        """Append one event (monotonic offset + wall clock) to the stream."""
        if self._closed:
            raise RuntimeError(f"run {self.run_id} is closed")
        self.emit_unchecked(kind, **fields)

    def emit_unchecked(self, kind: str, **fields) -> None:
        """:meth:`emit` without the closed-run guard (used by close itself)."""
        if self._fh is None:
            return
        line = encode_event(
            kind, t=time.perf_counter() - self._t0, wall=time.time(), fields=fields
        )
        self._fh.write(line + "\n")
        self._fh.flush()
        self._events += 1

    # -- spans -----------------------------------------------------------

    def span(self, name: str) -> _Span:
        """Time a ``with`` block under ``name`` (aggregated; see class doc)."""
        return _Span(self, name)

    def record_span(self, name: str, seconds: float) -> None:
        """Add a pre-measured duration under ``name``."""
        self._spans.add(name, seconds)
        if self.emit_span_events and not self._closed:
            self.emit("span", name=name, dur_s=seconds)

    def span_totals(self) -> Dict[str, Dict[str, float]]:
        """Aggregated ``{name: {seconds, calls}}`` span totals so far."""
        return self._spans.snapshot()

    def __repr__(self) -> str:
        return f"Run(id={self.run_id!r}, dir={str(self.dir)!r}, events={self._events})"


def _config_dict(config: object) -> Dict:
    """Coerce a dataclass/dict config into a JSON-serialisable dict."""
    if isinstance(config, dict):
        return dict(config)
    import dataclasses

    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    raise TypeError(f"config must be a dataclass or dict, got {type(config).__name__}")
