"""Reading saved runs back: discovery, summaries, history reconstruction.

The write side lives in :mod:`repro.telemetry.run`; this module is the
read side used by ``python -m repro runs list/show/tail`` and by
:func:`repro.report.render_run`.  Everything here works on plain run
directories — no live :class:`~repro.telemetry.run.Run` required.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from .events import EVENTS_FILENAME, MANIFEST_FILENAME, read_events

__all__ = ["RunSummary", "is_run_dir", "load_manifest", "list_runs", "load_epochs", "tail_events"]

PathLike = Union[str, pathlib.Path]


@dataclass(frozen=True)
class RunSummary:
    """One row of ``python -m repro runs list``."""

    dir: pathlib.Path
    run_id: str
    status: str
    created_iso: str
    epochs: int
    last_train_loss: Optional[float]
    last_val_loss: Optional[float]
    events: int


def is_run_dir(path: PathLike) -> bool:
    """Whether ``path`` holds a telemetry run (has a ``run.json``)."""
    return (pathlib.Path(path) / MANIFEST_FILENAME).is_file()


def load_manifest(run_dir: PathLike) -> Dict:
    """Load and return a run directory's ``run.json``."""
    path = pathlib.Path(run_dir) / MANIFEST_FILENAME
    if not path.is_file():
        raise FileNotFoundError(f"{run_dir} is not a run directory (no {MANIFEST_FILENAME})")
    return json.loads(path.read_text(encoding="utf-8"))


def load_epochs(run_dir: PathLike) -> List[Dict]:
    """The per-epoch records of a run, ordered by epoch index."""
    events_path = pathlib.Path(run_dir) / EVENTS_FILENAME
    if not events_path.is_file():
        return []
    epochs = read_events(events_path, kind="epoch")
    return sorted(epochs, key=lambda e: e.get("epoch", 0))


def tail_events(run_dir: PathLike, n: int = 10) -> List[Dict]:
    """The last ``n`` events of a run's stream (oldest first)."""
    events_path = pathlib.Path(run_dir) / EVENTS_FILENAME
    if not events_path.is_file():
        return []
    events = read_events(events_path)
    return events[-n:] if n > 0 else []


def summarize_run(run_dir: PathLike) -> RunSummary:
    """Build the list-row summary for one run directory."""
    run_dir = pathlib.Path(run_dir)
    manifest = load_manifest(run_dir)
    epochs = load_epochs(run_dir)
    last = epochs[-1] if epochs else {}
    return RunSummary(
        dir=run_dir,
        run_id=str(manifest.get("run_id", run_dir.name)),
        status=str(manifest.get("status", "?")),
        created_iso=str(manifest.get("created_iso", "?")),
        epochs=len(epochs),
        last_train_loss=last.get("train_loss"),
        last_val_loss=last.get("val_loss"),
        events=int(manifest.get("events", 0)) or _count_events(run_dir),
    )


def _count_events(run_dir: pathlib.Path) -> int:
    events_path = run_dir / EVENTS_FILENAME
    if not events_path.is_file():
        return 0
    return sum(1 for line in events_path.read_text(encoding="utf-8").splitlines() if line.strip())


def list_runs(root: PathLike = "runs") -> List[RunSummary]:
    """Summaries of every run directory under ``root``, newest first.

    ``root`` itself may be a run directory; otherwise its immediate
    children are scanned.  Missing roots yield an empty list.
    """
    root = pathlib.Path(root)
    if is_run_dir(root):
        return [summarize_run(root)]
    if not root.is_dir():
        return []
    summaries = [summarize_run(child) for child in sorted(root.iterdir()) if is_run_dir(child)]
    summaries.sort(key=lambda s: s.created_iso, reverse=True)
    return summaries


__all__.append("summarize_run")
