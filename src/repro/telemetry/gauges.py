"""Gauges — named, always-on aggregate counters with one shared sink.

A :class:`Gauge` accumulates per-key wall-clock/count/quantity totals
(e.g. seconds per scan backend).  The process-wide
:data:`gauge registry <gauges>` is the single sink every instrumented
subsystem registers its snapshot into: the Monte-Carlo counters of
:mod:`repro.utils.timing` register as ``"mc"``, and every
:class:`~repro.telemetry.run.Run` flushes the full registry snapshot
into its manifest and final ``run_end`` event, so training, the
``mc-bench``/``scan-bench`` harnesses and ``repro.report`` all read the
same numbers instead of maintaining parallel counter dicts.

Gauges are deliberately cheap (plain dict updates, no clocks, no I/O)
and active whether or not a :class:`~repro.telemetry.run.Run` is open —
they aggregate; the run merely snapshots them.
"""

from __future__ import annotations

from typing import Callable, Dict

__all__ = ["Gauge", "GaugeRegistry", "gauges"]


class Gauge:
    """Accumulates ``(seconds, calls, quantity)`` totals per string key.

    ``quantity`` is an optional per-record payload count (e.g. Monte-
    Carlo draws covered by one timed forward); it defaults to 0 so pure
    timing gauges stay two-column.
    """

    __slots__ = ("_seconds", "_calls", "_quantity")

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}
        self._quantity: Dict[str, int] = {}

    def add(self, key: str, seconds: float, quantity: int = 0) -> None:
        """Record one observation under ``key``."""
        self._seconds[key] = self._seconds.get(key, 0.0) + seconds
        self._calls[key] = self._calls.get(key, 0) + 1
        if quantity:
            self._quantity[key] = self._quantity.get(key, 0) + int(quantity)

    def seconds(self, key: str) -> float:
        """Total seconds recorded under ``key`` (0.0 if never seen)."""
        return self._seconds.get(key, 0.0)

    def calls(self, key: str) -> int:
        """Number of observations recorded under ``key``."""
        return self._calls.get(key, 0)

    def quantity(self, key: str) -> int:
        """Total quantity recorded under ``key``."""
        return self._quantity.get(key, 0)

    def total_seconds(self) -> float:
        """Seconds summed over every key."""
        return sum(self._seconds.values())

    def total_calls(self) -> int:
        """Calls summed over every key."""
        return sum(self._calls.values())

    def total_quantity(self) -> int:
        """Quantity summed over every key."""
        return sum(self._quantity.values())

    def reset(self) -> None:
        """Zero every key."""
        self._seconds.clear()
        self._calls.clear()
        self._quantity.clear()

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-serialisable ``{key: {seconds, calls[, quantity]}}`` view."""
        out: Dict[str, Dict[str, float]] = {}
        for key, seconds in self._seconds.items():
            entry: Dict[str, float] = {
                "seconds": seconds,
                "calls": float(self._calls.get(key, 0)),
            }
            if key in self._quantity:
                entry["quantity"] = float(self._quantity[key])
            out[key] = entry
        return out


class GaugeRegistry:
    """Named snapshot providers — the process-wide telemetry sink.

    Subsystems register a zero-argument callable returning a
    JSON-serialisable snapshot; :meth:`snapshot` collects all of them.
    Registration is idempotent by name (re-registering replaces).
    """

    def __init__(self) -> None:
        self._providers: Dict[str, Callable[[], Dict]] = {}

    def register(self, name: str, provider: Callable[[], Dict]) -> None:
        """Install (or replace) the snapshot provider for ``name``."""
        if not callable(provider):
            raise TypeError("gauge provider must be callable")
        self._providers[name] = provider

    def unregister(self, name: str) -> None:
        """Remove a provider; unknown names are ignored."""
        self._providers.pop(name, None)

    def names(self) -> list:
        """Registered provider names, sorted."""
        return sorted(self._providers)

    def snapshot(self) -> Dict[str, Dict]:
        """Collect every registered provider's snapshot."""
        return {name: provider() for name, provider in sorted(self._providers.items())}


#: Process-wide gauge registry (the shared sink).
gauges = GaugeRegistry()
