"""Structured run telemetry: manifests, event streams, spans, gauges.

The observability layer of the training/benchmark stack (see
``docs/OBSERVABILITY.md`` for the full schema and worked examples).
One :class:`Run` context manager owns a run directory containing a
``run.json`` manifest (schema version, git SHA, seed, training config,
backend switches) and an append-only, monotonic-clock ``events.jsonl``
stream.  Instrumented code — :meth:`repro.core.Trainer.fit`, the
``evaluate_under_*`` harness, the filter-scan kernel, the variation
sampler — emits through the module-level hooks, which are strict
no-ops when no run is active::

    from repro.telemetry import Run

    with Run(root="runs", name="powercons", seed=0) as run:
        trainer.fit(x_tr, y_tr, x_va, y_va)          # emits epoch events
    # runs/<id>/run.json + events.jsonl now exist

    # python -m repro runs list / show / tail renders them back.

Three instrument kinds, one sink:

* **events** (:func:`emit`) — discrete JSONL records (per-epoch
  losses, evaluations, checkpoints);
* **spans** (:func:`span` / :func:`record_span`) — wall-clock of named
  code regions, aggregated into the manifest's ``span_totals``;
* **gauges** (:data:`gauges`) — process-wide aggregate counters
  (Monte-Carlo draws/sec, per-backend scan seconds) registered once
  and snapshotted into every run at close.
"""

from .events import (
    EVENT_KINDS,
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    SCHEMA_VERSION,
    encode_event,
    iter_events,
    read_events,
    validate_event,
)
from .gauges import Gauge, GaugeRegistry, gauges
from .run import Run, active_run, emit, git_sha, record_span, span
from .runs import (
    RunSummary,
    is_run_dir,
    list_runs,
    load_epochs,
    load_manifest,
    summarize_run,
    tail_events,
)

__all__ = [
    "Run",
    "active_run",
    "emit",
    "span",
    "record_span",
    "git_sha",
    "Gauge",
    "GaugeRegistry",
    "gauges",
    "SCHEMA_VERSION",
    "EVENT_KINDS",
    "EVENTS_FILENAME",
    "MANIFEST_FILENAME",
    "encode_event",
    "iter_events",
    "read_events",
    "validate_event",
    "RunSummary",
    "is_run_dir",
    "list_runs",
    "load_epochs",
    "load_manifest",
    "summarize_run",
    "tail_events",
]
