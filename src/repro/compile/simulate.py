"""Circuit-level inference on a compiled model."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..spice.nonlinear_transient import transient_nonlinear
from ..spice.waveforms import PiecewiseLinear
from .model_compiler import CompiledModel

__all__ = ["simulate_series", "classify_series"]


def simulate_series(
    compiled: CompiledModel,
    series: np.ndarray,
    dt: Optional[float] = None,
) -> np.ndarray:
    """Stream one sensor series through the compiled netlist.

    Parameters
    ----------
    compiled:
        Output of :func:`repro.compile.compile_model`.
    series:
        1-D voltage series (univariate models) or ``(steps, channels)``
        for multivariate inputs; values are the dataset's normalised
        [-1, 1] samples.
    dt:
        Override the model's training step if needed.

    Returns
    -------
    Output-node voltages over time, shape ``(steps, n_classes)``.
    """
    try:
        series = np.asarray(series, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ValueError(
            "series must be a numeric array (or nested list with uniform "
            f"row lengths): {exc}"
        ) from exc
    n_inputs = len(compiled.input_nodes)
    if series.ndim == 1:
        series = series[:, None]
    if series.ndim != 2 or series.shape[1] != n_inputs:
        raise ValueError(
            f"series must be 1-D (univariate) or (steps, {n_inputs}), "
            f"got shape {series.shape}"
        )
    if series.shape[0] < 2:
        raise ValueError(
            f"series must contain at least 2 samples, got {series.shape[0]}"
        )
    dt = dt if dt is not None else compiled.dt
    steps = series.shape[0]

    expected = {"vin"} if n_inputs == 1 else {f"vin{ch}" for ch in range(n_inputs)}
    sources = [v for v in compiled.circuit.voltage_sources if v.name in expected]
    assert len(sources) == n_inputs, "compiled circuit must carry one source per input"
    sources.sort(key=lambda v: v.name)

    times = np.arange(steps + 1) * dt
    originals = [v.waveform for v in sources]
    for ch, source in enumerate(sources):
        drive = np.concatenate([[series[0, ch]], series[:, ch]])
        source.waveform = PiecewiseLinear(times, drive)
    try:
        result = transient_nonlinear(
            compiled.circuit, dt=dt, steps=steps, probes=compiled.output_nodes
        )
    finally:
        for source, original in zip(sources, originals):
            source.waveform = original
    return np.stack([result[node][1:] for node in compiled.output_nodes], axis=1)


def classify_series(compiled: CompiledModel, series: np.ndarray) -> int:
    """Predicted class of one series: argmax of the final output voltages."""
    outputs = simulate_series(compiled, series)
    return int(np.argmax(outputs[-1] * compiled.logit_scale))
