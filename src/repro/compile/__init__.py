"""Model-to-netlist compilation and circuit-level inference."""

from .model_compiler import CompiledModel, compile_model
from .plan import ForwardPlan, PlanInputError, PlanLayer, compile_plan
from .simulate import classify_series, simulate_series

__all__ = [
    "CompiledModel",
    "compile_model",
    "ForwardPlan",
    "PlanLayer",
    "PlanInputError",
    "compile_plan",
    "simulate_series",
    "classify_series",
]
