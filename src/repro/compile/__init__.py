"""Model-to-netlist compilation and circuit-level inference."""

from .model_compiler import CompiledModel, compile_model
from .simulate import classify_series, simulate_series

__all__ = ["CompiledModel", "compile_model", "simulate_series", "classify_series"]
