"""Frozen forward plans — graph-free inference for serving.

A :class:`ForwardPlan` is a trained
:class:`~repro.core.PrintedTemporalClassifier` reduced to the minimum
needed to answer inference requests: per layer, the nominal RC
recurrence coefficients (one ``(a, b)`` pair per filter stage, via the
same :meth:`~repro.circuits.filters._RCStage.nominal_coefficients`
extraction the :class:`~repro.core.StreamingClassifier` uses), the
effective crossbar weight matrix and bias, and the four ptanh η
vectors.  No autograd graph, no ``Tensor`` wrappers, no variation
sampler — executing a plan is a handful of numpy calls.

Bit-equality contract
---------------------
``compile_plan(model)(x)`` is **bit-equal** to
``model(x).data`` under ``no_grad`` with the ideal sampler, provided
the active precision policy matches the one the parameters live in
(the float32/mixed plan agrees with its float64 counterpart to the
usual dtype tolerances).  This holds because every reduction is
mirrored operation-for-operation:

* the scan replays :class:`~repro.autograd.function.FilterScan`'s
  time-major recurrence (prefilled ``b ⊙ x`` buffer, densified ``a``,
  two ufunc calls per step) on preallocated arena buffers;
* the crossbar collapse multiplies by ε ≡ 1 exactly (IEEE ``x·1 = x``)
  and keeps the live op order ``(path · g) / denom`` and
  ``((sign·g_b) / denom) · V_dd``;
* the weight matrix is stored C-contiguous ``(out, in)`` and the GEMM
  runs on its ``swapaxes(-1, -2)`` view — the same memory layout the
  live crossbar hands BLAS, so the same kernel runs.

Plans are plainly picklable (the scratch arena is dropped and rebuilt
lazily), which is how the serving tier ships them to worker processes.
A plan instance is **not** thread-safe: the arena buffers are reused
across calls.  Give each thread/process its own plan (pickle
round-trip) or serialise calls.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from ..autograd.precision import (
    PrecisionPolicy,
    get_precision,
    resolve_policy,
)
from ..circuits.crossbar import THETA_MAX, THETA_MIN
from ..circuits.filters import filter_stages

__all__ = [
    "ForwardPlan",
    "PlanLayer",
    "PlanInputError",
    "compile_plan",
    "row_affine",
    "row_ptanh",
    "row_stage",
]


class PlanInputError(ValueError):
    """A request payload does not fit the plan's input contract."""


class _Arena:
    """Keyed scratch buffers reused across plan executions.

    ``buffer`` returns an uninitialised array (fully overwritten by the
    caller); ``constant`` memoises a derived read-only array.  Buffers
    are replaced when the requested shape changes (a new batch size or
    sequence length), so steady-state serving allocates nothing per
    request in the scan loop.
    """

    def __init__(self) -> None:
        self._buffers: Dict[tuple, np.ndarray] = {}

    def buffer(self, key: tuple, shape: tuple, dtype: np.dtype) -> np.ndarray:
        buf = self._buffers.get(key)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        return buf

    def constant(self, key: tuple, shape: tuple, build) -> np.ndarray:
        buf = self._buffers.get(key)
        if buf is None or buf.shape != shape:
            buf = build()
            self._buffers[key] = buf
        return buf


# -- row-stable step kernels -------------------------------------------------
#
# The streaming engines (single-stream ``StreamingSession`` and the
# batched ``MultiStreamSession`` fleet) advance one time step for a
# ``(rows, features)`` matrix of concurrent streams.  Their contract is
# that every row's result is **bit-equal regardless of how many rows
# share the matrix** — a stream stepped alone and the same stream
# stepped inside a 32-row fleet must produce identical bits.  BLAS
# cannot promise that: GEMM kernels are selected by matrix shape, so
# ``(A @ B)[i]`` differs from ``A[i:i+1] @ B`` in the last ulp for most
# shapes (measured: float64 OpenBLAS diverges already at ``k=3, n=8``).
# These kernels therefore stick to per-element-deterministic primitives:
# elementwise ufuncs (whose results are independent of array shape) and
# ``np.einsum`` with its default non-BLAS sum-of-products loop, which
# accumulates the contracted axis in fixed index order per output
# element — measured row-stable across shapes for float64 and float32.
# Both streaming engines call exactly these functions, so their
# bit-equality is structural, not coincidental.


def row_stage(a: np.ndarray, b: np.ndarray, h: np.ndarray, v: np.ndarray,
              out: np.ndarray, tmp: np.ndarray) -> np.ndarray:
    """One RC-stage step ``out = a·v + b·h`` for ``(rows, n)`` state.

    Identical per-element op order as the live scan kernel's
    ``v_k = a ⊙ v_{k-1} + b ⊙ x_k``; ``out``/``tmp`` are caller scratch
    of shape ``(rows, n)``.  ``out`` may alias ``v`` (the update is
    purely elementwise) but must not alias ``tmp`` or ``h``.
    """
    np.multiply(a, v, out=out)
    np.multiply(b, h, out=tmp)
    out += tmp
    return out


def row_affine(h: np.ndarray, weights: np.ndarray, bias: np.ndarray,
               out: np.ndarray) -> np.ndarray:
    """Row-count-invariant affine map ``out = h @ weights.T + bias``.

    ``h`` is ``(rows, in)``, ``weights`` the plan's C-contiguous
    ``(out, in)`` matrix, ``out`` caller scratch ``(rows, out)``.  The
    contraction runs through ``np.einsum``'s C sum-of-products loop
    (never BLAS), which reduces the ``in`` axis in fixed index order
    per output element — so row ``i`` of the result carries the same
    bits no matter how many rows are computed together (unlike a GEMM,
    where kernel selection depends on the row count).
    """
    np.einsum("ri,oi->ro", h, weights, out=out)
    out += bias
    return out


def row_ptanh(mm: np.ndarray, eta, out: np.ndarray) -> np.ndarray:
    """Elementwise printed-tanh ``η₁ + η₂·tanh((mm − η₃)·η₄)`` on rows.

    Same per-element op sequence as the live activation (ufuncs only),
    writing into caller scratch ``out`` (may alias ``mm``).
    """
    e1, e2, e3, e4 = eta
    np.subtract(mm, e3, out=out)
    out *= e4
    np.tanh(out, out=out)
    out *= e2
    out += e1
    return out


@dataclasses.dataclass(frozen=True)
class PlanLayer:
    """One frozen pTPB: filter stages, collapsed crossbar, ptanh η."""

    #: ``((a, b), ...)`` — one coefficient pair per RC stage, shape ``(in,)``.
    stages: Tuple[Tuple[np.ndarray, np.ndarray], ...]
    #: Effective signed crossbar weights, C-contiguous ``(out, in)``.
    weights: np.ndarray
    #: Crossbar bias voltages ``(out,)``.
    bias: np.ndarray
    #: ptanh parameters ``(η₁, η₂, η₃, η₄)``, each ``(out,)``.
    eta: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    in_features: int
    out_features: int


@dataclasses.dataclass
class ForwardPlan:
    """A compiled, callable inference artifact (see module docstring).

    Call the plan with a batch — ``(batch, time)`` for single-channel
    models or ``(batch, time, in_channels)`` — to get logits
    ``(batch, n_classes)`` as a plain ``ndarray``.
    """

    layers: Tuple[PlanLayer, ...]
    in_channels: int
    n_classes: int
    dt: float
    logit_scale: float
    precision: str
    dtype: np.dtype
    model_class: str
    filter_order: int

    # -- serialisation: the arena is scratch state, rebuilt lazily ------

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_arena", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @property
    def arena(self) -> _Arena:
        arena = self.__dict__.get("_arena")
        if arena is None:
            arena = self.__dict__["_arena"] = _Arena()
        return arena

    # -- input contract -------------------------------------------------

    def coerce_series(self, series) -> np.ndarray:
        """Validate one request series and return it as ``(time, channels)``.

        Raises :class:`PlanInputError` (a ``ValueError``) with a clear
        message instead of letting a malformed payload shape-crash
        deep inside the forward.
        """
        try:
            arr = np.asarray(series)
        except (TypeError, ValueError) as exc:
            raise PlanInputError(f"series is not numeric: {exc}") from exc
        if arr.dtype == object or not np.issubdtype(arr.dtype, np.number):
            raise PlanInputError(
                "series must be a (possibly nested) list of numbers with "
                "uniform row lengths"
            )
        arr = np.ascontiguousarray(arr, dtype=self.dtype)
        if arr.ndim == 1 and self.in_channels == 1:
            arr = arr[:, None]
        if arr.ndim != 2 or arr.shape[1] != self.in_channels:
            expect = "(time,)" if self.in_channels == 1 else ""
            raise PlanInputError(
                f"series must be {expect + ' or ' if expect else ''}"
                f"(time, {self.in_channels}) for this model, got shape {arr.shape}"
            )
        if arr.shape[0] < 1:
            raise PlanInputError("series must contain at least one time step")
        if not np.isfinite(arr).all():
            raise PlanInputError("series contains non-finite values (NaN/Inf)")
        return arr

    def _validate_batch(self, x) -> np.ndarray:
        try:
            arr = np.asarray(x, dtype=self.dtype)
        except (TypeError, ValueError) as exc:
            raise PlanInputError(f"batch is not numeric: {exc}") from exc
        if arr.ndim == 2 and self.in_channels == 1:
            arr = arr[:, :, None]
        if arr.ndim != 3 or arr.shape[2] != self.in_channels:
            raise PlanInputError(
                f"expected (batch, time) or (batch, time, {self.in_channels}) "
                f"input, got shape {np.shape(x)}"
            )
        if arr.shape[1] < 1:
            raise PlanInputError("batch must contain at least one time step")
        if not np.isfinite(arr).all():
            raise PlanInputError("batch contains non-finite values (NaN/Inf)")
        return arr

    # -- streaming-state arenas -----------------------------------------

    def stream_state(self, rows: int) -> "List[List[np.ndarray]]":
        """Zeroed filter state for ``rows`` concurrent streams.

        One ``(rows, in_features)`` matrix per RC stage per layer — the
        discharged-capacitor initial condition.  ``rows=1`` is a single
        :class:`~repro.core.StreamingSession`; a
        :class:`~repro.core.MultiStreamSession` allocates its whole
        fleet here so that every stream is one row of a shared matrix.
        """
        if rows < 1:
            raise ValueError("stream_state needs rows >= 1")
        return [
            [
                np.zeros((rows, layer.in_features), dtype=self.dtype)
                for _ in layer.stages
            ]
            for layer in self.layers
        ]

    def stream_scratch(self, rows: int) -> "Dict[str, list]":
        """Preallocated per-step scratch for ``rows``-stream stepping.

        Keys: ``stage`` / ``stage_tmp`` — per layer ``(rows,
        in_features)`` buffers for :func:`row_stage`; ``affine`` — per
        layer ``(rows, out_features)`` buffers for :func:`row_affine` /
        :func:`row_ptanh`.  Allocated once per engine, reused every
        step, never shared between engines (plans themselves stay
        stateless for streaming).
        """
        if rows < 1:
            raise ValueError("stream_scratch needs rows >= 1")
        dtype = self.dtype
        return {
            "stage": [
                np.empty((rows, layer.in_features), dtype=dtype)
                for layer in self.layers
            ],
            "stage_tmp": [
                np.empty((rows, layer.in_features), dtype=dtype)
                for layer in self.layers
            ],
            "affine": [
                np.empty((rows, layer.out_features), dtype=dtype)
                for layer in self.layers
            ],
        }

    # -- execution ------------------------------------------------------

    def _scan(self, x: np.ndarray, a: np.ndarray, b: np.ndarray, key: tuple) -> np.ndarray:
        """One RC stage over ``(batch, time, n)`` — FilterScan's forward
        on arena buffers (same time-major layout, same two ufunc calls
        per step, so the values are bit-equal)."""
        steps = x.shape[-2]
        step_shape = (x.shape[0], x.shape[-1])
        arena = self.arena
        # A chained stage's input is the previous stage's moveaxis view:
        # ascontiguousarray recovers the underlying time-major buffer
        # without a copy, exactly like the live kernel.
        x_tm = np.ascontiguousarray(np.moveaxis(x, -2, 0))
        buf = arena.buffer(key + ("buf",), (steps,) + step_shape, self.dtype)
        np.multiply(b[None], x_tm, out=buf)
        a_d = arena.constant(
            key + ("a_dense",),
            step_shape,
            lambda: np.ascontiguousarray(np.broadcast_to(a, step_shape)),
        )
        v0 = arena.constant(
            key + ("v0",), step_shape, lambda: np.zeros(step_shape, dtype=self.dtype)
        )
        tmp = arena.buffer(key + ("tmp",), step_shape, self.dtype)
        v = v0
        for k in range(steps):
            vk = buf[k]
            np.multiply(a_d, v, out=tmp)
            vk += tmp
            v = vk
        return np.moveaxis(buf, 0, -2)

    def forward(self, x) -> np.ndarray:
        """Logits ``(batch, n_classes)`` for a batch of series."""
        seq = self._validate_batch(x)
        for li, layer in enumerate(self.layers):
            for si, (a, b) in enumerate(layer.stages):
                seq = self._scan(seq, a, b, (li, si))
            batch, steps = seq.shape[0], seq.shape[1]
            flat = seq.reshape(batch * steps, layer.in_features)
            mm = flat @ layer.weights.swapaxes(-1, -2)
            mm += layer.bias
            e1, e2, e3, e4 = layer.eta
            act = e1 + e2 * np.tanh((mm - e3) * e4)
            seq = act.reshape(batch, steps, layer.out_features)
        return seq[:, -1, :] * self.logit_scale

    __call__ = forward

    def predict(self, series) -> int:
        """Predicted class of one series (argmax of the final logits)."""
        logits = self.forward(self.coerce_series(series)[None])
        return int(np.argmax(logits[0]))

    # -- introspection --------------------------------------------------

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def nbytes(self) -> int:
        """Total frozen-parameter footprint in bytes."""
        total = 0
        for layer in self.layers:
            total += layer.weights.nbytes + layer.bias.nbytes
            total += sum(a.nbytes + b.nbytes for a, b in layer.stages)
            total += sum(e.nbytes for e in layer.eta)
        return total

    def signature(self) -> Dict[str, object]:
        """JSON-serialisable summary (served by the ``/models`` endpoint)."""
        return {
            "model_class": self.model_class,
            "in_channels": self.in_channels,
            "n_classes": self.n_classes,
            "num_layers": self.num_layers,
            "filter_order": self.filter_order,
            "dt": self.dt,
            "logit_scale": self.logit_scale,
            "precision": self.precision,
            "dtype": str(self.dtype),
            "nbytes": self.nbytes(),
        }

    def __repr__(self) -> str:
        return (
            f"ForwardPlan({self.model_class}, layers={self.num_layers}, "
            f"in_channels={self.in_channels}, n_classes={self.n_classes}, "
            f"dtype={self.dtype})"
        )


def compile_plan(
    model, precision: "Optional[str | PrecisionPolicy]" = None
) -> ForwardPlan:
    """Freeze a trained classifier into a :class:`ForwardPlan`.

    Parameters
    ----------
    model:
        A :class:`~repro.core.PrintedTemporalClassifier` (or subclass).
        The nominal (ideal-sampler) instance is captured; the model's
        own sampler is not consulted.
    precision:
        Precision policy resolving the plan's compute dtype; the
        process-wide active policy when omitted.  The bit-equality
        contract holds when this matches the policy the model's
        parameters were created under.
    """
    from ..core.models import PrintedTemporalClassifier

    if not isinstance(model, PrintedTemporalClassifier):
        raise TypeError(
            f"compile_plan expects a PrintedTemporalClassifier, "
            f"got {type(model).__name__}"
        )
    policy = resolve_policy(precision) if precision is not None else get_precision()
    dtype = policy.compute

    layers = []
    dt = None
    for block in model.blocks:
        filters = block.filters
        dt = filters.dt
        stages = tuple(
            tuple(np.asarray(c, dtype=dtype) for c in stage.nominal_coefficients(dt))
            for stage in filter_stages(filters)
        )

        # Collapse the crossbar under ε ≡ 1, mirroring
        # PrintedCrossbar.forward operation-for-operation.
        cb = block.crossbar
        theta = np.asarray(cb.theta.data, dtype=dtype)
        theta_b = np.asarray(cb.theta_b.data, dtype=dtype)
        theta_d = np.asarray(cb.theta_d.data, dtype=dtype)
        mag = np.abs(theta)
        mask = (mag >= THETA_MIN).astype(dtype)
        g = np.clip(mag, 0.0, THETA_MAX) * mask
        g_b = np.clip(np.abs(theta_b), 0.0, THETA_MAX)
        g_d = np.clip(np.abs(theta_d), THETA_MIN, THETA_MAX)
        denom = g.sum(axis=-1) + g_b + g_d
        sign = np.sign(theta)
        # path = direct + ε_inv·inverted with ε_inv ≡ 1.
        path = np.where(sign >= 0, 1.0, 0.0).astype(dtype) + np.where(
            sign >= 0, 0.0, -1.0
        ).astype(dtype)
        weights = np.ascontiguousarray(path * g / denom[..., None])
        bias = np.sign(theta_b) * g_b / denom * cb.pdk.supply_voltage

        eta = tuple(
            np.asarray(p.data, dtype=dtype)
            for p in (
                block.activation.eta1,
                block.activation.eta2,
                block.activation.eta3,
                block.activation.eta4,
            )
        )
        layers.append(
            PlanLayer(
                stages=stages,
                weights=weights,
                bias=np.asarray(bias, dtype=dtype),
                eta=eta,
                in_features=block.in_features,
                out_features=block.out_features,
            )
        )

    return ForwardPlan(
        layers=tuple(layers),
        in_channels=model.in_channels,
        n_classes=model.n_classes,
        dt=float(dt),
        logit_scale=float(model.logit_scale),
        precision=policy.name,
        dtype=np.dtype(dtype),
        model_class=type(model).__name__,
        filter_order=model.filter_order,
    )
