"""Compile a trained printed temporal classifier into an analog netlist.

The differentiable model (:class:`repro.core.PrintedTemporalClassifier`)
is an abstraction of a physical circuit; this module makes the
correspondence concrete by emitting the full netlist of a trained
model:

* each learnable filter channel becomes its printed R(s) and C(s),
  taken from the trained ``log_r`` / ``log_c`` values;
* each crossbar column becomes a resistor network whose resistances
  realise the trained surrogate conductances (negative crossings route
  through a gain −1 inverter element), with the bias rail at
  V_b = 1 V and the dummy resistor to ground — Eq. (1) then *emerges*
  from nodal analysis instead of being asserted;
* each ptanh neuron becomes a behavioural transfer element carrying its
  trained η (synthesising physical q^A values for given η is the
  complementary flow in :mod:`repro.circuits.ptanh_physical`);
* optional unity-gain buffers decouple the stages, matching the
  μ = 1 idealisation of the differentiable model; omit them to expose
  physical inter-stage coupling.

The compiled netlist is simulated with
:func:`repro.spice.transient_nonlinear`, giving an end-to-end
circuit-level check of a trained classifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..circuits.crossbar import THETA_MIN, PrintedCrossbar
from ..circuits.filters import FirstOrderLearnableFilter, SecondOrderLearnableFilter
from ..circuits.ptanh import PrintedTanh
from ..core.models import PrintedTemporalClassifier
from ..spice.nonlinear import NonlinearCircuit

__all__ = ["CompiledModel", "compile_model"]

#: Normalised conductance 1.0 maps to this conductance (S); only the
#: ratios matter for the crossbar output, but the absolute scale sets
#: realistic currents.
G_UNIT = 1e-5


@dataclass
class CompiledModel:
    """A trained model lowered to a netlist.

    Attributes
    ----------
    circuit:
        The nonlinear netlist (drive ``input_node`` and run
        :func:`repro.spice.transient_nonlinear`).
    input_node:
        Node the sensor series is applied to (has a voltage source
        named ``vin`` attached).
    output_nodes:
        One node per class; their voltages (× ``logit_scale``) are the
        logits.
    dt:
        The temporal discretisation the model was trained at.
    logit_scale:
        Scale mapping output voltages to logits.
    """

    circuit: NonlinearCircuit
    input_nodes: List[str]
    output_nodes: List[str]
    dt: float
    logit_scale: float

    @property
    def input_node(self) -> str:
        """First input node (the only one for univariate models)."""
        return self.input_nodes[0]


def _buffer(circuit: NonlinearCircuit, name: str, src: str) -> str:
    """Insert a unity-gain buffer; returns the buffered node."""
    out = f"{name}_buf"
    circuit.add_vcvs(name, out, "0", src, "0", 1.0)
    return out


def _compile_filters(
    circuit: NonlinearCircuit,
    filters,
    input_nodes: List[str],
    prefix: str,
    decouple: bool,
) -> List[str]:
    """Emit the filter bank; returns the filtered (pre-crossbar) nodes."""
    outputs = []
    if isinstance(filters, FirstOrderLearnableFilter):
        r_values, c_values = filters.stage.nominal_values()
        for i, src in enumerate(input_nodes):
            node = f"{prefix}_f{i}"
            circuit.add_resistor(f"{prefix}_r{i}", src, node, float(r_values[i]))
            circuit.add_capacitor(f"{prefix}_c{i}", node, "0", float(c_values[i]))
            outputs.append(
                _buffer(circuit, f"{prefix}_fb{i}", node) if decouple else node
            )
        return outputs
    if isinstance(filters, SecondOrderLearnableFilter):
        r1, c1 = filters.stage1.nominal_values()
        r2, c2 = filters.stage2.nominal_values()
        for i, src in enumerate(input_nodes):
            mid = f"{prefix}_m{i}"
            circuit.add_resistor(f"{prefix}_r1_{i}", src, mid, float(r1[i]))
            circuit.add_capacitor(f"{prefix}_c1_{i}", mid, "0", float(c1[i]))
            stage2_in = _buffer(circuit, f"{prefix}_mb{i}", mid) if decouple else mid
            node = f"{prefix}_f{i}"
            circuit.add_resistor(f"{prefix}_r2_{i}", stage2_in, node, float(r2[i]))
            circuit.add_capacitor(f"{prefix}_c2_{i}", node, "0", float(c2[i]))
            outputs.append(
                _buffer(circuit, f"{prefix}_fb{i}", node) if decouple else node
            )
        return outputs
    raise TypeError(f"unsupported filter bank {type(filters).__name__}")


def _compile_crossbar(
    circuit: NonlinearCircuit,
    crossbar: PrintedCrossbar,
    input_nodes: List[str],
    prefix: str,
    vdd_node: str,
    vss_node: str,
) -> List[str]:
    """Emit one crossbar layer; returns the summing nodes."""
    theta = crossbar.theta.data
    theta_b = crossbar.theta_b.data
    theta_d = crossbar.theta_d.data
    inverted_nodes: dict = {}

    def inverted(i: int) -> str:
        if i not in inverted_nodes:
            node = f"{prefix}_inv{i}"
            circuit.add_vcvs(f"{prefix}_einv{i}", node, "0", input_nodes[i], "0", -1.0)
            inverted_nodes[i] = node
        return inverted_nodes[i]

    outputs = []
    for o in range(crossbar.out_features):
        node = f"{prefix}_s{o}"
        for i in range(crossbar.in_features):
            magnitude = abs(theta[o, i])
            if magnitude < THETA_MIN:
                continue  # pruned: not printed
            src = input_nodes[i] if theta[o, i] >= 0 else inverted(i)
            resistance = 1.0 / (min(magnitude, 1.0) * G_UNIT)
            circuit.add_resistor(f"{prefix}_rw{o}_{i}", src, node, resistance)
        mag_b = abs(theta_b[o])
        if mag_b >= THETA_MIN:
            rail = vdd_node if theta_b[o] >= 0 else vss_node
            circuit.add_resistor(
                f"{prefix}_rb{o}", rail, node, 1.0 / (min(mag_b, 1.0) * G_UNIT)
            )
        mag_d = float(np.clip(abs(theta_d[o]), THETA_MIN, 1.0))
        circuit.add_resistor(f"{prefix}_rd{o}", node, "0", 1.0 / (mag_d * G_UNIT))
        outputs.append(node)
    return outputs


def _compile_activation(
    circuit: NonlinearCircuit,
    activation: PrintedTanh,
    input_nodes: List[str],
    prefix: str,
) -> List[str]:
    """Emit the ptanh stages; returns the activation output nodes."""
    outputs = []
    for o, src in enumerate(input_nodes):
        node = f"{prefix}_a{o}"
        e1 = float(activation.eta1.data[o])
        e2 = float(activation.eta2.data[o])
        e3 = float(activation.eta3.data[o])
        e4 = float(activation.eta4.data[o])

        def fn(v, e1=e1, e2=e2, e3=e3, e4=e4):
            return e1 + e2 * np.tanh((v - e3) * e4)

        def dfn(v, e2=e2, e3=e3, e4=e4):
            return e2 * e4 * (1.0 - np.tanh((v - e3) * e4) ** 2)

        circuit.add_behavioral(f"{prefix}_ptanh{o}", node, src, fn, dfn)
        outputs.append(node)
    return outputs


def compile_model(
    model: PrintedTemporalClassifier, decouple: bool = True
) -> CompiledModel:
    """Lower a trained printed classifier to a simulatable netlist.

    Parameters
    ----------
    model:
        A (trained) :class:`PrintedTemporalClassifier` — the baseline
        PTPNC and the proposed AdaptPNC both qualify.
    decouple:
        Insert unity-gain buffers between stages (matches the
        differentiable model's μ = 1 idealisation exactly).  With
        ``False`` the netlist is fully passive between stages and
        exhibits the physical coupling the μ factor approximates.
    """
    circuit = NonlinearCircuit(f"compiled_{type(model).__name__}")
    in_channels = getattr(model, "in_channels", 1)
    input_nodes = []
    for ch in range(in_channels):
        node = "in" if in_channels == 1 else f"in{ch}"
        circuit.add_voltage_source(f"vin{ch}" if in_channels > 1 else "vin", node, "0", 0.0)
        input_nodes.append(node)
    circuit.add_voltage_source("vdd", "vdd", "0", 1.0)
    circuit.add_vcvs("evss", "vss", "0", "vdd", "0", -1.0)  # -1 V bias rail

    nodes = list(input_nodes)
    for b, block in enumerate(model.blocks):
        prefix = f"b{b}"
        filtered = _compile_filters(circuit, block.filters, nodes, prefix, decouple)
        summed = _compile_crossbar(
            circuit, block.crossbar, filtered, prefix, "vdd", "vss"
        )
        nodes = _compile_activation(circuit, block.activation, summed, prefix)

    return CompiledModel(
        circuit=circuit,
        input_nodes=input_nodes,
        output_nodes=nodes,
        dt=model.blocks[0].filters.dt,
        logit_scale=model.logit_scale,
    )
